//! Minimal fixed-width table rendering for terminal reports.

use std::fmt;

/// A right-aligned fixed-width text table (first column left-aligned).
///
/// # Example
///
/// ```
/// use voltprop_bench::table::Table;
///
/// let mut t = Table::new(vec!["circuit", "nodes"]);
/// t.add_row(vec!["C0".into(), "30000".into()]);
/// let text = t.to_string();
/// assert!(text.contains("C0"));
/// assert!(text.contains("nodes"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table {
            headers: headers.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are dropped.
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                if let Some(cell) = row.get(c) {
                    widths[c] = widths[c].max(cell.len());
                }
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for c in 0..cols {
                let cell = cells.get(c).map(String::as_str).unwrap_or("");
                if c == 0 {
                    write!(f, "{cell:<width$}", width = widths[0])?;
                } else {
                    write!(f, "  {cell:>width$}", width = widths[c])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats bytes as mebibytes with two decimals.
pub fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats seconds adaptively (µs/ms/s).
pub fn secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1} us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.add_row(vec!["short".into(), "1".into()]);
        t.add_row(vec!["a-much-longer-name".into(), "12345".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + rule + 2 rows
        assert!(lines[0].contains("value"));
        assert!(lines[1].starts_with('-'));
        // All lines same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.add_row(vec!["only-one".into()]);
        t.add_row(vec!["x".into(), "y".into(), "z".into(), "extra".into()]);
        let text = t.to_string();
        assert!(text.contains("only-one"));
        assert!(!text.contains("extra"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(mib(3 * 1024 * 1024), "3.00");
        assert_eq!(secs(0.5e-4), "50.0 us");
        assert_eq!(secs(0.25), "250.0 ms");
        assert_eq!(secs(2.5), "2.50 s");
    }
}
