//! The numbers the paper reports, for paper-vs-measured tables.
//!
//! Source: Table I of Zhang, Pavlidis, De Micheli, DATE 2012, measured on
//! a 2.67 GHz / 3 GB Linux workstation. Absolute values are hardware-bound
//! (and their "SPICE" is a commercial simulator); the reproduction targets
//! the *shape*: VP beats PCG by 10–20×, uses roughly a third of its
//! memory, and SPICE exhausts memory past 230 K nodes.

use voltprop_grid::TableCircuit;

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Which benchmark circuit.
    pub circuit: TableCircuit,
    /// Node count as printed in the paper.
    pub nodes: usize,
    /// VP memory (MB).
    pub vp_memory_mb: f64,
    /// VP runtime (s).
    pub vp_time_s: f64,
    /// PCG memory (MB).
    pub pcg_memory_mb: f64,
    /// PCG runtime (s).
    pub pcg_time_s: f64,
    /// SPICE memory (MB), if SPICE completed.
    pub spice_memory_mb: Option<f64>,
    /// SPICE runtime (s), if SPICE completed.
    pub spice_time_s: Option<f64>,
}

impl PaperRow {
    /// The paper's PCG-over-VP speedup for this row.
    pub fn speedup(&self) -> f64 {
        self.pcg_time_s / self.vp_time_s
    }

    /// The paper's PCG-over-VP memory ratio for this row.
    pub fn memory_ratio(&self) -> f64 {
        self.pcg_memory_mb / self.vp_memory_mb
    }
}

/// Table I exactly as printed.
pub const TABLE1: [PaperRow; 6] = [
    PaperRow {
        circuit: TableCircuit::C0,
        nodes: 30_000,
        vp_memory_mb: 1.5,
        vp_time_s: 0.516,
        pcg_memory_mb: 3.1,
        pcg_time_s: 6.063,
        spice_memory_mb: Some(330.0),
        spice_time_s: Some(512.7),
    },
    PaperRow {
        circuit: TableCircuit::C1,
        nodes: 90_000,
        vp_memory_mb: 3.2,
        vp_time_s: 1.453,
        pcg_memory_mb: 7.8,
        pcg_time_s: 22.47,
        spice_memory_mb: Some(1100.0),
        spice_time_s: Some(2905.0),
    },
    PaperRow {
        circuit: TableCircuit::C2,
        nodes: 230_000,
        vp_memory_mb: 6.9,
        vp_time_s: 3.625,
        pcg_memory_mb: 18.5,
        pcg_time_s: 50.71,
        spice_memory_mb: Some(3000.0),
        spice_time_s: Some(22394.0),
    },
    PaperRow {
        circuit: TableCircuit::C3,
        nodes: 1_000_000,
        vp_memory_mb: 27.0,
        vp_time_s: 15.75,
        pcg_memory_mb: 77.0,
        pcg_time_s: 264.8,
        spice_memory_mb: None,
        spice_time_s: None,
    },
    PaperRow {
        circuit: TableCircuit::C4,
        nodes: 3_000_000,
        vp_memory_mb: 80.0,
        vp_time_s: 49.29,
        pcg_memory_mb: 230.0,
        pcg_time_s: 877.5,
        spice_memory_mb: None,
        spice_time_s: None,
    },
    PaperRow {
        circuit: TableCircuit::C5,
        nodes: 12_000_000,
        vp_memory_mb: 322.0,
        vp_time_s: 219.7,
        pcg_memory_mb: 880.0,
        pcg_time_s: 4843.0,
        spice_memory_mb: None,
        spice_time_s: None,
    },
];

/// Looks up the paper row for a circuit.
pub fn row_for(circuit: TableCircuit) -> &'static PaperRow {
    TABLE1
        .iter()
        .find(|r| r.circuit == circuit)
        .expect("every circuit is in TABLE1")
}

/// The paper's accuracy budget (§IV, per ref \[12\]): 0.5 mV.
pub const MAX_ERROR_VOLTS: f64 = 5e-4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedups_match_the_abstract() {
        // "Speedups between 10x to 20x" — smallest circuit ≈ 12x, largest
        // ≈ 22x as printed.
        assert!(row_for(TableCircuit::C0).speedup() > 10.0);
        assert!(row_for(TableCircuit::C5).speedup() > 20.0);
        for row in &TABLE1 {
            assert!(row.speedup() >= 10.0, "{}", row.circuit);
        }
    }

    #[test]
    fn memory_ratio_matches_conclusion() {
        // "one third of the memory size used by the PCG technique".
        for row in &TABLE1 {
            let r = row.memory_ratio();
            assert!((2.0..4.0).contains(&r), "{}: ratio {r}", row.circuit);
        }
    }

    #[test]
    fn spice_dies_past_c2() {
        assert!(row_for(TableCircuit::C2).spice_time_s.is_some());
        assert!(row_for(TableCircuit::C3).spice_time_s.is_none());
    }
}
