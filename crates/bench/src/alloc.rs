//! A counting global allocator for peak-memory measurement.
//!
//! The paper's Table I reports per-solver memory; wrapping the system
//! allocator lets the `repro` binary measure the real high-water mark of
//! each solve instead of trusting the solvers' own estimates.
//!
//! Usage (in a binary):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: voltprop_bench::alloc::CountingAllocator =
//!     voltprop_bench::alloc::CountingAllocator;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static CALLS: AtomicUsize = AtomicUsize::new(0);

/// A [`System`]-backed allocator that tracks live and peak bytes.
pub struct CountingAllocator;

// SAFETY: delegates directly to `System`; the atomic bookkeeping has no
// effect on allocation behaviour.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            CALLS.fetch_add(1, Ordering::Relaxed);
            let now = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            CALLS.fetch_add(1, Ordering::Relaxed);
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let now = CURRENT.fetch_add(grow, Ordering::Relaxed) + grow;
                PEAK.fetch_max(now, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Live heap bytes right now.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Total allocator calls (`alloc` + `realloc`) since process start; the
/// zero-allocation solve path is verified by this counter standing still
/// across a warm solve.
pub fn alloc_calls() -> usize {
    CALLS.load(Ordering::Relaxed)
}

/// Peak heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak marker to the current live size and returns the live
/// size; call before the region you want to measure.
pub fn reset_peak() -> usize {
    let now = CURRENT.load(Ordering::Relaxed);
    PEAK.store(now, Ordering::Relaxed);
    now
}

/// Measures the peak *additional* heap used while running `f`.
///
/// Only meaningful in binaries that install [`CountingAllocator`]; in
/// other processes it returns 0 extra bytes.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = reset_peak();
    let out = f();
    let peak = peak_bytes();
    (out, peak.saturating_sub(before))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: the test binary does not install the allocator, so only the
    // API contracts (not the counters) can be exercised here; the repro
    // binary has an end-to-end self-check (`repro selfcheck`).
    #[test]
    fn measure_peak_returns_closure_output() {
        let (value, extra) = measure_peak(|| 40 + 2);
        assert_eq!(value, 42);
        let _ = extra; // counter value depends on the installed allocator
    }

    #[test]
    fn reset_is_idempotent() {
        let a = reset_peak();
        let b = reset_peak();
        // Both snapshots observe the same (untracked) live size.
        assert_eq!(a, b);
        assert!(peak_bytes() >= current_bytes().min(peak_bytes()));
    }
}
