//! The benchmark trajectory file: an append-only JSON record of perf runs.
//!
//! `perfsuite` writes one entry per invocation to `BENCH_rowbased.json` at
//! the repository root, so the performance history accumulates across PRs
//! and regressions are visible as a time series. The file is plain JSON:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "runs": [
//!     { ...run 1... },
//!     { ...run 2... }
//!   ]
//! }
//! ```
//!
//! The workspace builds without serde, so appending splices text: the file
//! always ends with the exact marker `\n  ]\n}\n`, and a new run replaces
//! that suffix with `,\n<entry>\n  ]\n}\n`. Hand-edited files keep working
//! as long as the marker survives.
//!
//! # Run-entry sections
//!
//! Each run entry is one JSON object. The sections grow with the PRs:
//!
//! * `row_sweeps` (PR 1) — baseline vs prefactored-engine ns/sweep and
//!   cross-schedule agreement per grid;
//! * `vp_solver` (PR 1) — warm full-solver latency and allocator calls
//!   per `parallelism`;
//! * `vp_batch` (PR 2) — warm per-RHS batched-solve time per batch size
//!   (`hardware_threads`/`parallelism` context embedded);
//! * `pool_latency` (PR 3) — small-grid per-solve latency of the
//!   persistent worker pool vs the legacy scoped-spawn dispatch at each
//!   thread count, with `pool_warm_alloc_calls` (asserted 0: warm pool
//!   solves never touch the allocator);
//! * `batch_compaction` (PR 3) — fixed-budget masked batch sweeps at
//!   several active-lane counts, compacted vs uncompacted, against a
//!   scalar single-RHS reference (`compacted` entries carry
//!   `ms_vs_scalar`, the straggler-cost ratio the compaction caps);
//! * `session` (PR 4) — the `Session` lifecycle on one prefactored
//!   handle: warm single/batch/transient latencies with per-request
//!   `session_*_warm_alloc_calls` (asserted 0); since PR 5 the bitwise
//!   behavior is pinned by the `tests/session.rs` fixture instead of
//!   the (removed) deprecated `VpSolver` entry points;
//! * `pcg` (PR 5) — the `Backend::Pcg` reference route on the session's
//!   prefactored engine: warm single and batch-8 latencies vs the
//!   VoltProp route (`voltprop_speedup_over_pcg_*` — the method's
//!   committed speedup over the general sparse reference),
//!   `pcg_iterations`, `max_abs_dv_pcg_vs_voltprop` (asserted
//!   < 0.5 mV), and `pcg_*_warm_alloc_calls` (asserted 0);
//! * `kernels` (PR 6) — per-kernel effective GB/s of the vectorized
//!   hot loops (batched f64 solve sweep, red-black sweep at
//!   parallelism 2, PCG axpy/dot) under a fixed traffic model, the
//!   f64-vs-mixed batched-sweep throughput ratio
//!   (`mixed_over_f64_sweep_throughput`), warm f64/mixed per-RHS solve
//!   latencies, `max_abs_dv_mixed_vs_f64` (asserted ≤ 1e-7), and
//!   `warm_alloc_calls_*` on the mixed paths (asserted 0).

use std::fs;
use std::io;
use std::path::Path;

/// The suffix every trajectory file ends with.
const TAIL: &str = "\n  ]\n}\n";

/// Appends one run entry (a complete JSON object, no trailing comma) to
/// the trajectory at `path`, creating the file if needed.
///
/// # Errors
///
/// I/O errors from reading/writing the file, or
/// [`io::ErrorKind::InvalidData`] if an existing file does not end with
/// the expected marker (e.g. a hand edit broke the format).
pub fn append_run(path: &Path, entry: &str) -> io::Result<()> {
    let entry = indent(entry.trim(), "    ");
    let text = match fs::read_to_string(path) {
        Ok(existing) => {
            let head = existing.strip_suffix(TAIL).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{} does not end with the trajectory marker; \
                         refusing to splice (fix or delete the file)",
                        path.display()
                    ),
                )
            })?;
            format!("{head},\n{entry}{TAIL}")
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            format!("{{\n  \"schema\": 1,\n  \"runs\": [\n{entry}{TAIL}")
        }
        Err(e) => return Err(e),
    };
    fs::write(path, text)
}

/// Prefixes every line of `text` with `pad`.
fn indent(text: &str, pad: &str) -> String {
    text.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Formats an `f64` for the trajectory (finite → shortest roundtrip
/// representation, non-finite → `null`; JSON has no NaN/Infinity).
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Formats a `bool` for the trajectory.
pub fn json_bool(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}

/// Hardware threads visible to this process (1 when unknown).
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// JSON fragment recording the hardware context of a measurement: the
/// machine's `hardware_threads` next to the solver `parallelism` knob the
/// numbers were taken with. Embed this in every timing block — PR 1's
/// parallel speedups were uninterpretable without it (that container had
/// a single hardware thread).
pub fn hardware_context_json(parallelism: usize) -> String {
    format!(
        "\"hardware_threads\": {}, \"parallelism\": {parallelism}",
        hardware_threads()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("voltprop-trajectory-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn creates_then_appends() {
        let path = tmpfile("create");
        let _ = fs::remove_file(&path);
        append_run(&path, "{ \"run\": 1 }").unwrap();
        append_run(&path, "{ \"run\": 2 }").unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\n  \"schema\": 1"));
        assert!(text.ends_with(TAIL));
        assert_eq!(text.matches("\"run\"").count(), 2);
        // Two runs are comma-separated inside the array.
        assert!(
            text.contains("{ \"run\": 1 },\n    { \"run\": 2 }"),
            "{text}"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn refuses_corrupt_files() {
        let path = tmpfile("corrupt");
        fs::write(&path, "not a trajectory").unwrap();
        let err = append_run(&path, "{}").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn json_f64_handles_non_finite() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn json_bool_spells_json_literals() {
        assert_eq!(json_bool(true), "true");
        assert_eq!(json_bool(false), "false");
    }

    #[test]
    fn hardware_context_names_both_knobs() {
        assert!(hardware_threads() >= 1);
        let ctx = hardware_context_json(4);
        assert!(ctx.contains("\"hardware_threads\": "), "{ctx}");
        assert!(ctx.contains("\"parallelism\": 4"), "{ctx}");
    }
}
