//! Timed, memory-metered solver runs.

use crate::alloc;
use std::time::Instant;
use voltprop_grid::{NetKind, Stack3d};
use voltprop_solvers::{residual, SolverError, StackSolver};

/// One measured solver run.
#[derive(Debug, Clone)]
pub struct MeasuredRun {
    /// Solver name.
    pub name: &'static str,
    /// Iterations from the solver's report.
    pub iterations: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Peak additional heap during the solve (bytes; 0 unless the counting
    /// allocator is installed, e.g. in the `repro` binary).
    pub peak_bytes: usize,
    /// The solver's own workspace estimate (bytes).
    pub workspace_bytes: usize,
    /// Max |ΔV| vs the reference voltages, if one was supplied.
    pub max_error: Option<f64>,
}

impl MeasuredRun {
    /// The larger of the measured peak and the solver's estimate — the
    /// number reported in memory columns (the estimate covers processes
    /// without the counting allocator).
    pub fn memory_bytes(&self) -> usize {
        self.peak_bytes.max(self.workspace_bytes)
    }
}

/// Runs a solver on a stack, measuring wall time and allocation peak, and
/// comparing against optional reference voltages.
///
/// # Errors
///
/// Propagates the solver's error.
pub fn run_stack_solver(
    solver: &dyn StackSolver,
    stack: &Stack3d,
    net: NetKind,
    reference: Option<&[f64]>,
) -> Result<(MeasuredRun, Vec<f64>), SolverError> {
    let t0 = Instant::now();
    let (result, peak_bytes) = alloc::measure_peak(|| solver.solve_stack(stack, net));
    let seconds = t0.elapsed().as_secs_f64();
    let sol = result?;
    let max_error = reference.map(|r| residual::max_abs_error(r, &sol.voltages));
    Ok((
        MeasuredRun {
            name: solver.solver_name(),
            iterations: sol.report.iterations,
            seconds,
            peak_bytes,
            workspace_bytes: sol.report.workspace_bytes,
            max_error,
        },
        sol.voltages,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltprop_core::VpSolver;
    use voltprop_grid::SynthConfig;
    use voltprop_solvers::DirectCholesky;

    #[test]
    fn measures_a_run_end_to_end() {
        // Pad pitch 4: the default 10 leaves a 10x10 footprint with one
        // corner bump, a degenerate delivery topology.
        let stack = SynthConfig::new(10, 10, 3)
            .pad_pitch(Some(4))
            .seed(4)
            .build()
            .unwrap();
        let (reference, ref_v) =
            run_stack_solver(&DirectCholesky::new(), &stack, NetKind::Power, None).unwrap();
        assert!(reference.seconds > 0.0);
        assert!(reference.max_error.is_none());

        let (vp, _) =
            run_stack_solver(&VpSolver::default(), &stack, NetKind::Power, Some(&ref_v)).unwrap();
        assert_eq!(vp.name, "voltage-propagation");
        assert!(vp.max_error.unwrap() < crate::paper::MAX_ERROR_VOLTS);
        assert!(vp.memory_bytes() >= vp.workspace_bytes);
    }
}
