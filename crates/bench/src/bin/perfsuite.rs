//! `perfsuite` — the row-sweep / solver performance suite.
//!
//! Measures, on synthetic stacks:
//!
//! * the row-sweep kernels: the seed's re-eliminating sequential
//!   [`RowBased`] baseline vs the prefactored [`TierEngine`] under the
//!   sequential and red-black schedules (1, 2, and 4 threads);
//! * numerical agreement between the schedules (max |ΔV| of the
//!   converged solutions, required ≤ 1e-9);
//! * full `Session` solves at `parallelism` 1 and 4;
//! * the zero-allocation warm path: allocator calls/bytes across a warm
//!   `Session::solve` (expected 0 at every `parallelism` — parallel
//!   solves dispatch to the persistent worker pool once it is warm);
//! * the batched multi-load path: warm `Session::solve_batch` per-RHS
//!   time at several batch sizes against warm sequential single solves,
//!   with the required max |ΔV| ≤ 1e-12 agreement (the batch is
//!   bitwise-identical by construction);
//! * the persistent worker pool: small-grid per-solve latency of the
//!   pool dispatch vs the legacy per-solve scoped spawn at parallelism
//!   2 (and 4 in full runs), **asserting zero allocator calls** across
//!   the warm pool solves;
//! * active-lane compaction: fixed-budget batch-64 masked sweeps at 1/8/
//!   32 active lanes, compacted vs uncompacted (asserted bitwise
//!   identical) against a scalar single-RHS reference;
//! * the `Session` lifecycle: warm single, batch-64, and 24-step
//!   `solve_steps` requests on one prefactored session, **asserting zero
//!   allocator calls** per warm request (bitwise behavior is pinned by
//!   the saved fixture in `tests/session.rs`);
//! * the true-transient engine: `Session::transient_dynamic` stepping a
//!   waveform with backward-Euler companion models on a decap-loaded
//!   stack — warm steps/s per backend on the **single** prefactored
//!   `G + C/h` system, **asserting zero allocator calls** and zero
//!   re-prefactors across the warm step loop, plus the committed
//!   factor-reuse speedup over `refactor_each_step`;
//! * the `Backend::Pcg` reference route: warm single and batch-8 PCG
//!   requests on the session's prefactored engine, **asserting zero
//!   allocator calls** and sub-0.5 mV agreement with VoltProp, recording
//!   the method's speedup over the general sparse reference;
//! * the shared-session concurrency path: one [`SharedSession`] (built
//!   at parallelism 2) serving warm solves from 1/4/16 simulated client
//!   threads — requests/s and p50/p99 per-request latency — with
//!   **zero allocator calls** asserted on the single-threaded warm
//!   checkout → solve → return hot path;
//! * the vectorized kernels: per-kernel effective GB/s of the batched
//!   f64 solve sweep, the red-black sweep at parallelism 2, and the PCG
//!   axpy/dot core, plus the f64-vs-mixed batched-sweep throughput
//!   ratio and per-RHS solve latency — **asserting zero allocator
//!   calls** on the warm mixed paths and refined-f32 tolerance parity
//!   (max |ΔV| vs the f64 solve ≤ 1e-7 at parallelism 2);
//! * row-band sharding: band-scaling per-sweep throughput of the
//!   halo-exchanging sharded engine on a tier footprint that exceeds one
//!   shard's cache, against the unsharded red-black pool path at the
//!   same thread count — **asserting bitwise-identical** fixed-budget
//!   states and **zero allocator calls** on every warm sharded pass —
//!   plus the sharded-`Session` contract (warm single / batch /
//!   transient requests at `shards = 2`: 0 allocs, bitwise equal to the
//!   unsharded session, zero mid-loop re-prefactors);
//! * the overload/admission path: bounded-wait `try_solve_for` shed
//!   decision latency against a saturated one-slot pool (asserted close
//!   to the configured wait — a shed must not dawdle), admission
//!   latency once the slot frees, and cooperative-deadline shed
//!   accuracy (elapsed time of a budget-starved solve vs its deadline,
//!   the overshoot bounded by one outer iteration).
//!
//! Each invocation appends one JSON entry to `BENCH_rowbased.json` at the
//! repository root (see [`voltprop_bench::trajectory`]), building the
//! performance history future PRs extend.
//!
//! Usage: `cargo run --release -p voltprop-bench --bin perfsuite`
//! (`--quick` shrinks the grids for a smoke run; `--out PATH` redirects
//! the trajectory file; `--batch N[,N...]` overrides the batch sizes of
//! the batched experiment).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use voltprop_bench::alloc::{self, CountingAllocator};
use voltprop_bench::trajectory::{
    append_run, hardware_context_json, hardware_threads, json_bool, json_f64,
};
use voltprop_core::{
    Backend, Deadline, FnWaveform, LoadCase, LoadSet, Session, SessionError, SharedSession,
    SolveParams, TraceSink, TransientParams, TransientReport, TryCheckout, VpConfig,
};
use voltprop_grid::Stack3d;
use voltprop_solvers::rowbased::{RbWorkspace, RowBased, TierProblem};
use voltprop_solvers::SolverError;
use voltprop_solvers::{LaneReport, ParDispatch, SweepSchedule, TierEngine};
use voltprop_sparse::vec_ops;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// A VP-regime tier fixture: every other node pinned (the paper's TSV
/// density), uniform loads on the free nodes.
struct TierFixture {
    edge: usize,
    fixed: Vec<bool>,
    injection: Vec<f64>,
    v0: Vec<f64>,
}

impl TierFixture {
    fn new(edge: usize) -> Self {
        let n = edge * edge;
        let mut fixed = vec![false; n];
        for y in (0..edge).step_by(2) {
            for x in (0..edge).step_by(2) {
                fixed[y * edge + x] = true;
            }
        }
        let injection = (0..n).map(|i| if fixed[i] { 0.0 } else { -5e-4 }).collect();
        TierFixture {
            edge,
            fixed,
            injection,
            v0: vec![1.8; n],
        }
    }

    fn problem<'a>(&'a self, zeros: &'a [f64]) -> TierProblem<'a> {
        TierProblem {
            width: self.edge,
            height: self.edge,
            g_h: 50.0,
            g_v: 50.0,
            fixed: &self.fixed,
            extra_diag: zeros,
            injection: &self.injection,
        }
    }

    fn engine(&self, schedule: SweepSchedule) -> TierEngine {
        TierEngine::new(
            self.edge,
            self.edge,
            50.0,
            50.0,
            Arc::from(&self.fixed[..]),
            None,
            schedule,
        )
        .expect("fixture tier is well-formed")
    }
}

/// Times `sweeps` fixed-budget engine sweeps, returning ns/sweep.
fn time_engine_sweeps(fixture: &TierFixture, schedule: SweepSchedule, sweeps: usize) -> f64 {
    let mut engine = fixture.engine(schedule);
    let mut v = fixture.v0.clone();
    // Warm-up (first touch, page faults, branch history).
    let _ = engine.solve(&fixture.injection, &mut v, 0.0, sweeps.min(8));
    let mut v = fixture.v0.clone();
    let start = Instant::now();
    // tolerance 0 never triggers, so exactly `sweeps` sweeps run.
    let _ = engine.solve(&fixture.injection, &mut v, 0.0, sweeps);
    start.elapsed().as_nanos() as f64 / sweeps as f64
}

/// Times the seed's re-eliminating sequential kernel, returning ns/sweep.
fn time_baseline_sweeps(fixture: &TierFixture, sweeps: usize) -> f64 {
    let zeros = vec![0.0; fixture.edge * fixture.edge];
    let problem = fixture.problem(&zeros);
    let rb = RowBased::default();
    let mut ws = RbWorkspace::new(fixture.edge);
    let mut v = fixture.v0.clone();
    for i in 0..sweeps.min(8) {
        let _ = rb.sweep_once(&problem, &mut v, &mut ws, i % 2 == 0);
    }
    let mut v = fixture.v0.clone();
    let start = Instant::now();
    for i in 0..sweeps {
        let _ = rb.sweep_once(&problem, &mut v, &mut ws, i % 2 == 0);
    }
    start.elapsed().as_nanos() as f64 / sweeps as f64
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
}

/// One row-sweep comparison block on an `edge × edge` tier.
fn row_sweep_block(edge: usize, sweeps: usize) -> String {
    eprintln!("row sweeps {edge}x{edge} ({sweeps} sweeps per kernel)...");
    let fixture = TierFixture::new(edge);
    let baseline = time_baseline_sweeps(&fixture, sweeps);
    let engine_seq = time_engine_sweeps(&fixture, SweepSchedule::Sequential, sweeps);
    let mut rb_lines = Vec::new();
    let mut rb4 = f64::NAN;
    for threads in [1usize, 2, 4] {
        let ns = time_engine_sweeps(&fixture, SweepSchedule::RedBlack { threads }, sweeps);
        if threads == 4 {
            rb4 = ns;
        }
        rb_lines.push(format!(
            "      {{ \"threads\": {threads}, \"ns_per_sweep\": {} }}",
            json_f64(ns)
        ));
    }

    // Converged-solution agreement: sequential vs 4-thread red-black.
    let mut v_seq = fixture.v0.clone();
    fixture
        .engine(SweepSchedule::Sequential)
        .solve(&fixture.injection, &mut v_seq, 1e-12, 200_000)
        .expect("sequential converges");
    let mut v_rb = fixture.v0.clone();
    fixture
        .engine(SweepSchedule::RedBlack { threads: 4 })
        .solve(&fixture.injection, &mut v_rb, 1e-12, 200_000)
        .expect("red-black converges");
    let agreement = max_abs_diff(&v_seq, &v_rb);
    assert!(
        agreement <= 1e-9,
        "red-black and sequential disagree by {agreement} V"
    );

    format!(
        "{{\n    \"grid\": \"{edge}x{edge}\",\n    \"sweeps_timed\": {sweeps},\n    \
         \"baseline_rowbased_seq_ns_per_sweep\": {},\n    \
         \"engine_seq_ns_per_sweep\": {},\n    \
         \"engine_redblack\": [\n{}\n    ],\n    \
         \"speedup_redblack4_vs_seed_baseline\": {},\n    \
         \"speedup_redblack4_vs_engine_seq\": {},\n    \
         \"max_abs_dv_redblack_vs_seq\": {}\n  }}",
        json_f64(baseline),
        json_f64(engine_seq),
        rb_lines.join(",\n"),
        json_f64(baseline / rb4),
        json_f64(engine_seq / rb4),
        json_f64(agreement),
    )
}

/// One full-solver block: a prefactored `Session` at a given parallelism
/// on a stack, timed warm (built up front, second solve measured), with
/// allocator deltas across the measured solve.
fn vp_block(w: usize, h: usize, tiers: usize, parallelism: usize, dv_vs_seq: f64) -> String {
    eprintln!("Session {w}x{h}x{tiers} parallelism={parallelism}...");
    let stack = Stack3d::builder(w, h, tiers)
        .uniform_load(2e-4)
        .build()
        .expect("valid stack");
    let mut session =
        Session::build(&stack, VpConfig::new().parallelism(parallelism)).expect("session builds");
    let case = LoadCase::new(&stack);
    // Warm solve: faults pages, fills the arenas.
    session.solve(&case).expect("warm solve converges");
    let calls_before = alloc::alloc_calls();
    let bytes_before = alloc::reset_peak();
    let start = Instant::now();
    let report = *session
        .solve(&case)
        .expect("timed solve converges")
        .report();
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let alloc_calls = alloc::alloc_calls() - calls_before;
    let alloc_peak_bytes = alloc::peak_bytes().saturating_sub(bytes_before);
    format!(
        "{{\n    \"grid\": \"{w}x{h}x{tiers}\",\n    \"parallelism\": {parallelism},\n    \
         \"warm_solve_ms\": {},\n    \"outer_iterations\": {},\n    \
         \"inner_sweeps\": {},\n    \"pad_mismatch_v\": {},\n    \
         \"warm_alloc_calls\": {alloc_calls},\n    \"warm_alloc_peak_bytes\": {alloc_peak_bytes},\n    \
         \"max_abs_dv_vs_parallelism1\": {}\n  }}",
        json_f64(ms),
        report.outer_iterations,
        report.inner_sweeps,
        json_f64(report.pad_mismatch),
        json_f64(dv_vs_seq),
    )
}

/// `k` load vectors for the what-if sweep: the stack's loads scaled per
/// lane into the 0.75×–1.25× band (so the lanes follow distinct but
/// comparable convergence trajectories, like a real corner sweep).
fn sweep_loads(stack: &Stack3d, k: usize) -> Vec<f64> {
    let mut loads = Vec::with_capacity(k * stack.num_nodes());
    for j in 0..k {
        let scale = 0.75 + 0.5 * j as f64 / k.max(2) as f64;
        loads.extend(stack.loads().iter().map(|l| scale * l));
    }
    loads
}

/// The batched-solve experiment: warm per-RHS `Session::solve_batch`
/// time at each batch size on one stack, plus the warm sequential
/// `Session::solve` per-RHS reference and the batch-vs-sequential
/// max |ΔV| (required ≤ 1e-12; bitwise 0 by construction).
fn batch_block(w: usize, h: usize, tiers: usize, batch_sizes: &[usize]) -> String {
    eprintln!("VpSolver batch {w}x{h}x{tiers} sizes {batch_sizes:?}...");
    let stack = Stack3d::builder(w, h, tiers)
        .uniform_load(2e-4)
        .build()
        .expect("valid stack");
    let nn = stack.num_nodes();
    let kmax = *batch_sizes.iter().max().expect("non-empty batch sizes");
    let loads = sweep_loads(&stack, kmax);

    // Warm sequential reference over the largest batch's lanes: per-RHS
    // time and the solution each batch lane must reproduce exactly. The
    // lane stacks are prebuilt and the agreement snapshots taken in a
    // separate untimed pass, so the timed window holds nothing but warm
    // single-case solves (clone/copy overhead must not pad the reference
    // the batch speedup is judged against). One session serves both the
    // sequential reference and every batch size.
    let lane_stacks: Vec<Stack3d> = (0..kmax)
        .map(|j| {
            let mut s = stack.clone();
            s.set_loads(loads[j * nn..(j + 1) * nn].to_vec())
                .expect("lane loads");
            s
        })
        .collect();
    let mut session = Session::build(&stack, VpConfig::default()).expect("session builds");
    let mut seq_voltages: Vec<Vec<f64>> = Vec::with_capacity(kmax);
    for lane_stack in &lane_stacks {
        let view = session
            .solve(&LoadCase::new(lane_stack))
            .expect("sequential solve converges");
        seq_voltages.push(view.voltages().to_vec());
    }
    // Two timed passes, keeping the faster one — same scheduler-drift
    // guard as the pool block (this host oversubscribes its one core).
    let mut seq_ms_per_rhs = f64::INFINITY;
    for _ in 0..2 {
        let start = Instant::now();
        for lane_stack in &lane_stacks {
            session
                .solve(&LoadCase::new(lane_stack))
                .expect("sequential solve converges");
        }
        let pass = start.elapsed().as_secs_f64() * 1e3 / kmax as f64;
        seq_ms_per_rhs = seq_ms_per_rhs.min(pass);
    }

    let mut batch_lines = Vec::new();
    let mut per_rhs_by_size = Vec::new();
    let mut worst_dv = 0.0f64;
    for &k in batch_sizes {
        let set = LoadSet::new(&stack, &loads[..k * nn]);
        // Warm call sizes the arena; then three timed calls, keeping the
        // fastest (every timed call must stay allocation-free).
        session.solve_batch(&set).expect("warm batch solve");
        let calls_before = alloc::alloc_calls();
        let bytes_before = alloc::reset_peak();
        let mut ms = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            session.solve_batch(&set).expect("timed batch solve");
            ms = ms.min(start.elapsed().as_secs_f64() * 1e3);
        }
        let view = session.solve_batch(&set).expect("checked batch solve");
        let alloc_calls = alloc::alloc_calls() - calls_before;
        let alloc_peak_bytes = alloc::peak_bytes().saturating_sub(bytes_before);
        assert!(view.converged(), "batch {k}: all lanes must converge");
        for (j, seq_v) in seq_voltages.iter().take(k).enumerate() {
            let dv = max_abs_diff(view.lane_voltages(j).expect("lane in range"), seq_v);
            worst_dv = worst_dv.max(dv);
            assert!(
                dv <= 1e-12,
                "batch {k} lane {j} deviates {dv} V from the sequential solve"
            );
        }
        let ms_per_rhs = ms / k as f64;
        per_rhs_by_size.push((k, ms_per_rhs));
        batch_lines.push(format!(
            "      {{ \"batch\": {k}, \"warm_solve_ms\": {}, \"ms_per_rhs\": {}, \
             \"warm_alloc_calls\": {alloc_calls}, \"warm_alloc_peak_bytes\": {alloc_peak_bytes} }}",
            json_f64(ms),
            json_f64(ms_per_rhs),
        ));
    }
    let per_rhs_at = |k: usize| {
        per_rhs_by_size
            .iter()
            .find(|&&(b, _)| b == k)
            .map(|&(_, t)| t)
    };
    let speedup_largest_vs_1 = match (per_rhs_at(1), per_rhs_at(kmax)) {
        (Some(t1), Some(tk)) if kmax > 1 => t1 / tk,
        _ => f64::NAN,
    };
    format!(
        "{{\n    \"grid\": \"{w}x{h}x{tiers}\",\n    {},\n    \
         \"sequential_warm_ms_per_rhs\": {},\n    \
         \"batches\": [\n{}\n    ],\n    \
         \"per_rhs_speedup_batch{kmax}_vs_batch1\": {},\n    \
         \"max_abs_dv_vs_sequential\": {}\n  }}",
        hardware_context_json(1),
        json_f64(seq_ms_per_rhs),
        batch_lines.join(",\n"),
        json_f64(speedup_largest_vs_1),
        json_f64(worst_dv),
    )
}

/// Times `solves` fixed-budget parallel engine solves under the given
/// dispatch, returning `(ns_per_solve, alloc_calls_during_timed_loop)`.
/// `tolerance = 0` never triggers, so every solve runs exactly `sweeps`
/// sweeps and the returned error is ignored — the loop measures dispatch
/// plus sweep cost, nothing else.
fn time_dispatch_solves(
    fixture: &TierFixture,
    threads: usize,
    dispatch: ParDispatch,
    solves: usize,
    sweeps: usize,
) -> (f64, usize) {
    let mut engine = fixture.engine(SweepSchedule::RedBlack { threads });
    engine.set_dispatch(dispatch);
    let mut v = fixture.v0.clone();
    // Warm-up: spawns pool workers, sizes pinned scratch, faults pages.
    for _ in 0..4 {
        let _ = engine.solve(&fixture.injection, &mut v, 0.0, sweeps);
    }
    let calls_before = alloc::alloc_calls();
    let start = Instant::now();
    for _ in 0..solves {
        let _ = engine.solve(&fixture.injection, &mut v, 0.0, sweeps);
    }
    let ns = start.elapsed().as_nanos() as f64 / solves as f64;
    (ns, alloc::alloc_calls() - calls_before)
}

/// The pool-latency experiment: per-solve latency of small-grid parallel
/// solves, persistent pool vs the legacy per-solve scoped spawn, at each
/// thread count. Warm pool solves must not touch the allocator (asserted
/// — this is the CI smoke contract).
fn pool_block(edge: usize, threads_list: &[usize], solves: usize, sweeps: usize) -> String {
    eprintln!("worker pool {edge}x{edge} ({solves} solves x {sweeps} sweeps)...");
    let fixture = TierFixture::new(edge);
    let mut lines = Vec::new();
    for &threads in threads_list {
        // Two interleaved passes per dispatch, keeping the faster one:
        // on oversubscribed machines the scheduler drifts between runs
        // and the minimum is the stable dispatch-cost estimate.
        let mut pool_ns = f64::INFINITY;
        let mut scoped_ns = f64::INFINITY;
        let mut pool_allocs = 0usize;
        for _ in 0..2 {
            let (ns, allocs) =
                time_dispatch_solves(&fixture, threads, ParDispatch::Pool, solves, sweeps);
            pool_ns = pool_ns.min(ns);
            pool_allocs += allocs;
            let (ns, _) =
                time_dispatch_solves(&fixture, threads, ParDispatch::ScopedSpawn, solves, sweeps);
            scoped_ns = scoped_ns.min(ns);
        }
        assert_eq!(
            pool_allocs, 0,
            "parallelism {threads}: warm pool solves must make zero allocator calls"
        );
        lines.push(format!(
            "      {{ \"parallelism\": {threads}, \"pool_ns_per_solve\": {}, \
             \"scoped_spawn_ns_per_solve\": {}, \"pool_warm_alloc_calls\": {pool_allocs}, \
             \"scoped_over_pool\": {} }}",
            json_f64(pool_ns),
            json_f64(scoped_ns),
            json_f64(scoped_ns / pool_ns),
        ));
    }
    format!(
        "{{\n    \"grid\": \"{edge}x{edge}\",\n    \"hardware_threads\": {},\n    \
         \"solves_timed\": {solves},\n    \"sweeps_per_solve\": {sweeps},\n    \
         \"dispatch\": [\n{}\n    ]\n  }}",
        hardware_threads(),
        lines.join(",\n"),
    )
}

/// The active-lane compaction experiment: a batch of `k` lanes with only
/// `m` active (masked), swept for a fixed budget, compacted vs
/// uncompacted (asserted bitwise identical) and against a scalar
/// single-RHS solve of the same budget — the cost a straggler *should*
/// have.
fn compaction_block(edge: usize, k: usize, actives: &[usize], sweeps: usize) -> String {
    eprintln!("lane compaction {edge}x{edge} batch {k}, active {actives:?}...");
    let fixture = TierFixture::new(edge);
    let n = edge * edge;

    // Scalar single-RHS reference: the same fixed sweep budget on one
    // right-hand side (tolerance 0 → exactly `sweeps` sweeps, Err ignored).
    let mut scalar_engine = fixture.engine(SweepSchedule::Sequential);
    let mut v1 = fixture.v0.clone();
    let _ = scalar_engine.solve(&fixture.injection, &mut v1, 0.0, sweeps.min(8));
    let start = Instant::now();
    let _ = scalar_engine.solve(&fixture.injection, &mut v1, 0.0, sweeps);
    let scalar_ms = start.elapsed().as_secs_f64() * 1e3;

    // Batch arrays: every lane carries a scaled copy of the fixture load.
    let mut injection = vec![0.0; n * k];
    let mut v0 = vec![0.0; n * k];
    for i in 0..n {
        for j in 0..k {
            injection[i * k + j] = (0.75 + 0.5 * j as f64 / k as f64) * fixture.injection[i];
            v0[i * k + j] = fixture.v0[i];
        }
    }

    let mut lines = Vec::new();
    for &m in actives {
        let mask: Vec<bool> = (0..k).map(|j| j < m).collect();
        let run = |compacted: bool| -> (f64, usize, Vec<f64>) {
            let mut engine = fixture.engine(SweepSchedule::Sequential);
            engine.set_lane_compaction(compacted);
            let mut lanes = vec![LaneReport::default(); k];
            let mut v = v0.clone();
            // Warm call sizes the batch arena; the second is measured.
            engine
                .solve_batch_masked(
                    &injection,
                    &mut v,
                    0.0,
                    sweeps,
                    1.0,
                    Some(&mask),
                    &mut lanes,
                )
                .expect("warm masked batch");
            let mut v = v0.clone();
            let calls_before = alloc::alloc_calls();
            let start = Instant::now();
            engine
                .solve_batch_masked(
                    &injection,
                    &mut v,
                    0.0,
                    sweeps,
                    1.0,
                    Some(&mask),
                    &mut lanes,
                )
                .expect("timed masked batch");
            let ms = start.elapsed().as_secs_f64() * 1e3;
            (ms, alloc::alloc_calls() - calls_before, v)
        };
        let (compacted_ms, compacted_allocs, v_on) = run(true);
        assert_eq!(
            compacted_allocs, 0,
            "active {m}: warm compacted batch must make zero allocator calls"
        );
        let (uncompacted_ms, _, v_off) = run(false);
        assert!(
            v_on.iter()
                .zip(&v_off)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "active {m}: compacted and uncompacted sweeps must be bitwise identical"
        );
        lines.push(format!(
            "      {{ \"active\": {m}, \"compacted_ms\": {}, \"uncompacted_ms\": {}, \
             \"uncompacted_over_compacted\": {}, \"ms_vs_scalar\": {} }}",
            json_f64(compacted_ms),
            json_f64(uncompacted_ms),
            json_f64(uncompacted_ms / compacted_ms),
            json_f64(compacted_ms / scalar_ms),
        ));
    }
    format!(
        "{{\n    \"grid\": \"{edge}x{edge}\",\n    \"batch\": {k},\n    \
         \"sweeps_timed\": {sweeps},\n    \"scalar_single_rhs_ms\": {},\n    \
         \"bitwise_identical\": {},\n    \"active_lanes\": [\n{}\n    ]\n  }}",
        json_f64(scalar_ms),
        json_bool(true),
        lines.join(",\n"),
    )
}

/// Solves a stack at the given parallelism and returns the voltages (for
/// cross-parallelism agreement).
fn vp_voltages(w: usize, h: usize, tiers: usize, parallelism: usize) -> Vec<f64> {
    let stack = Stack3d::builder(w, h, tiers)
        .uniform_load(2e-4)
        .build()
        .expect("valid stack");
    let mut session =
        Session::build(&stack, VpConfig::new().parallelism(parallelism)).expect("session builds");
    let view = session
        .solve(&LoadCase::new(&stack))
        .expect("solve converges");
    view.voltages().to_vec()
}

/// The session-API experiment: one prefactored [`Session`] serving a warm
/// single solve, a warm batch of `k` lanes, and a warm `steps`-step
/// quasi-static `solve_steps` sweep — asserting **zero allocator calls**
/// on each warm request.
/// (Bitwise behavior is pinned separately by the saved fixture in
/// `tests/session.rs`, which replaced the deleted `VpSolver` legacy
/// comparison paths.)
fn session_block(w: usize, h: usize, tiers: usize, k: usize, steps: usize) -> String {
    eprintln!("session lifecycle {w}x{h}x{tiers} (batch {k}, transient {steps})...");
    let stack = Stack3d::builder(w, h, tiers)
        .uniform_load(2e-4)
        .build()
        .expect("valid stack");
    let nn = stack.num_nodes();
    let loads = sweep_loads(&stack, k);
    let wave = sweep_loads(&stack, steps);

    // Build once, serve all three request shapes warm.
    let mut session = Session::build(&stack, VpConfig::default()).expect("session builds");
    let case = LoadCase::new(&stack);
    let timed =
        |label: &str, session: &mut Session, run: &mut dyn FnMut(&mut Session)| -> (f64, usize) {
            run(session); // warm
            let calls_before = alloc::alloc_calls();
            let start = Instant::now();
            run(session);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            let allocs = alloc::alloc_calls() - calls_before;
            assert_eq!(allocs, 0, "{label}: warm session request must not allocate");
            (ms, allocs)
        };

    let (single_ms, single_allocs) = timed("single", &mut session, &mut |s| {
        s.solve(&case).expect("session solve");
    });

    let set = LoadSet::new(&stack, &loads);
    let (batch_ms, batch_allocs) = timed("batch", &mut session, &mut |s| {
        s.solve_batch(&set).expect("session batch");
    });

    let (transient_ms, transient_allocs) = timed("solve_steps", &mut session, &mut |s| {
        s.solve_steps(&case, steps, |j, lane| {
            lane.copy_from_slice(&wave[j * nn..(j + 1) * nn]);
        })
        .expect("session solve_steps");
    });

    format!(
        "{{\n    \"grid\": \"{w}x{h}x{tiers}\",\n    \"batch\": {k},\n    \
         \"transient_steps\": {steps},\n    \
         \"session_single_warm_ms\": {},\n    \
         \"session_batch_warm_ms\": {},\n    \
         \"session_transient_warm_ms\": {},\n    \
         \"session_single_warm_alloc_calls\": {single_allocs},\n    \
         \"session_batch_warm_alloc_calls\": {batch_allocs},\n    \
         \"session_transient_warm_alloc_calls\": {transient_allocs}\n  }}",
        json_f64(single_ms),
        json_f64(batch_ms),
        json_f64(transient_ms),
    )
}

/// The true-transient experiment: `Session::transient_dynamic` stepping a
/// `steps`-step waveform on a decap-loaded stack with backward-Euler
/// companion models. Measures warm steps/s per backend on the **single**
/// prefactored `G + C/h` system — asserting **zero allocator calls** and
/// zero re-prefactors across the warm step loop — and times the same
/// waveform with `refactor_each_step`, committing the factor-reuse
/// speedup (asserted > 1: reusing the factor must never lose to
/// rebuilding it every step).
fn transient_block(w: usize, h: usize, tiers: usize, steps: usize) -> String {
    eprintln!("transient engine {w}x{h}x{tiers} ({steps} steps)...");
    let stack = Stack3d::builder(w, h, tiers)
        .uniform_load(1e-4)
        .grid_capacitance(2e-13)
        .decap(0, w / 3, h / 3, 2e-10)
        .pad_capacitance(5e-13)
        .build()
        .expect("valid stack");
    let nn = stack.num_nodes();
    let h_step = 2e-11;
    // Pre-rendered load frames: the streaming waveform copies one frame
    // per step, so the warm step loop stays allocation-free.
    let frames = sweep_loads(&stack, steps);
    let watch = [nn / 2];
    let mut session = Session::build(&stack, VpConfig::default()).expect("session builds");

    let measure = |session: &mut Session,
                   backend: Backend,
                   refactor_each_step: bool|
     -> (f64, usize, TransientReport) {
        let request = TransientParams::new(&stack, h_step)
            .backend(backend)
            .observe(&watch)
            .refactor_each_step(refactor_each_step);
        let mut sink = TraceSink::with_capacity(steps, 1);
        let run_once = |session: &mut Session, sink: &mut TraceSink| -> TransientReport {
            let mut wave = FnWaveform::new(steps, |s, _t, loads: &mut [f64]| {
                loads.copy_from_slice(&frames[s * nn..(s + 1) * nn]);
            });
            sink.clear();
            session
                .transient_dynamic(&mut wave, sink, &request)
                .expect("transient run")
        };
        run_once(session, &mut sink); // cold: builds + factors the companion system
        let calls_before = alloc::alloc_calls();
        let start = Instant::now();
        let report = run_once(session, &mut sink);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let allocs = alloc::alloc_calls() - calls_before;
        assert_eq!(report.steps, steps);
        if refactor_each_step {
            assert_eq!(
                report.refactors, steps,
                "{backend:?}: refactor_each_step must rebuild the factor every step"
            );
        } else {
            assert_eq!(
                allocs, 0,
                "{backend:?}: warm transient step loop must not allocate"
            );
            assert_eq!(
                report.refactors, 0,
                "{backend:?}: warm step loop must reuse the prefactored companion system"
            );
        }
        (ms, allocs, report)
    };

    let (vp_ms, vp_allocs, vp_report) = measure(&mut session, Backend::VoltProp, false);
    let (rb_ms, rb_allocs, _) = measure(&mut session, Backend::Rb3d, false);
    let (pcg_ms, pcg_allocs, _) = measure(&mut session, Backend::Pcg, false);
    let (refactor_ms, _, _) = measure(&mut session, Backend::VoltProp, true);
    let speedup = refactor_ms / vp_ms;
    assert!(
        speedup > 1.0,
        "factor reuse ({vp_ms:.3} ms) must beat re-prefactoring every step ({refactor_ms:.3} ms)"
    );

    let steps_per_s = |ms: f64| steps as f64 / (ms / 1e3);
    format!(
        "{{\n    \"grid\": \"{w}x{h}x{tiers}\",\n    \"steps\": {steps},\n    \
         \"step_ps\": {},\n    \
         \"voltprop_warm_ms\": {},\n    \"voltprop_steps_per_s\": {},\n    \
         \"rb3d_warm_ms\": {},\n    \"rb3d_steps_per_s\": {},\n    \
         \"pcg_warm_ms\": {},\n    \"pcg_steps_per_s\": {},\n    \
         \"voltprop_solver_iterations\": {},\n    \
         \"warm_alloc_calls\": {},\n    \
         \"refactor_each_step_ms\": {},\n    \"factor_reuse_speedup\": {}\n  }}",
        json_f64(h_step * 1e12),
        json_f64(vp_ms),
        json_f64(steps_per_s(vp_ms)),
        json_f64(rb_ms),
        json_f64(steps_per_s(rb_ms)),
        json_f64(pcg_ms),
        json_f64(steps_per_s(pcg_ms)),
        vp_report.solver_iterations,
        vp_allocs + rb_allocs + pcg_allocs,
        json_f64(refactor_ms),
        json_f64(speedup),
    )
}

/// The PCG-reference experiment: `Backend::Pcg` served from the session's
/// prefactored engine (system stamped + IC(0) factored at build) — warm
/// single and batch-`k` requests, **asserting zero allocator calls** on
/// each, with the warm VoltProp latencies alongside so the method's
/// speedup over the general sparse reference is a committed trajectory
/// number (and the two backends' agreement is asserted within the
/// paper's 0.5 mV budget).
fn pcg_block(w: usize, h: usize, tiers: usize, k: usize) -> String {
    eprintln!("pcg backend {w}x{h}x{tiers} (batch {k})...");
    let stack = Stack3d::builder(w, h, tiers)
        .uniform_load(2e-4)
        .build()
        .expect("valid stack");
    let nn = stack.num_nodes();
    let mut session = Session::build(&stack, VpConfig::default()).expect("session builds");
    let pcg_params = SolveParams::new()
        .inner_tolerance(1e-8)
        .max_inner_sweeps(50_000);
    let vp_case = LoadCase::new(&stack);
    let pcg_case = LoadCase::new(&stack)
        .backend(Backend::Pcg)
        .params(pcg_params);

    // Agreement + iteration count (untimed pass).
    let vp_v = session
        .solve(&vp_case)
        .expect("voltprop solve")
        .voltages()
        .to_vec();
    let view = session.solve(&pcg_case).expect("pcg solve");
    let pcg_iterations = view.report().outer_iterations;
    let dv = max_abs_diff(&vp_v, view.voltages());
    assert!(
        dv < 5e-4,
        "pcg and voltprop disagree by {dv} V (> 0.5 mV budget)"
    );

    let timed = |label: &str,
                 session: &mut Session,
                 assert_allocs: bool,
                 run: &mut dyn FnMut(&mut Session)|
     -> (f64, usize) {
        run(session); // warm
        let calls_before = alloc::alloc_calls();
        let start = Instant::now();
        run(session);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let allocs = alloc::alloc_calls() - calls_before;
        if assert_allocs {
            assert_eq!(allocs, 0, "{label}: warm pcg request must not allocate");
        }
        (ms, allocs)
    };

    let (vp_single_ms, _) = timed("vp-single", &mut session, false, &mut |s| {
        s.solve(&vp_case).expect("voltprop solve");
    });
    let (pcg_single_ms, pcg_single_allocs) = timed("pcg-single", &mut session, true, &mut |s| {
        s.solve(&pcg_case).expect("pcg solve");
    });

    let loads = sweep_loads(&stack, k);
    let vp_set = LoadSet::new(&stack, &loads[..k * nn]);
    let pcg_set = LoadSet::new(&stack, &loads[..k * nn])
        .backend(Backend::Pcg)
        .params(pcg_params);
    let (vp_batch_ms, _) = timed("vp-batch", &mut session, false, &mut |s| {
        s.solve_batch(&vp_set).expect("voltprop batch");
    });
    let (pcg_batch_ms, pcg_batch_allocs) = timed("pcg-batch", &mut session, true, &mut |s| {
        let view = s.solve_batch(&pcg_set).expect("pcg batch");
        assert!(view.converged(), "all pcg lanes must converge");
    });

    format!(
        "{{\n    \"grid\": \"{w}x{h}x{tiers}\",\n    \"batch\": {k},\n    \
         \"pcg_iterations\": {pcg_iterations},\n    \
         \"max_abs_dv_pcg_vs_voltprop\": {},\n    \
         \"voltprop_single_warm_ms\": {},\n    \"pcg_single_warm_ms\": {},\n    \
         \"voltprop_batch_warm_ms\": {},\n    \"pcg_batch_warm_ms\": {},\n    \
         \"voltprop_speedup_over_pcg_single\": {},\n    \
         \"voltprop_speedup_over_pcg_batch\": {},\n    \
         \"pcg_single_warm_alloc_calls\": {pcg_single_allocs},\n    \
         \"pcg_batch_warm_alloc_calls\": {pcg_batch_allocs}\n  }}",
        json_f64(dv),
        json_f64(vp_single_ms),
        json_f64(pcg_single_ms),
        json_f64(vp_batch_ms),
        json_f64(pcg_batch_ms),
        json_f64(pcg_single_ms / vp_single_ms),
        json_f64(pcg_batch_ms / vp_batch_ms),
    )
}

/// The shared-session concurrency experiment: one [`SharedSession`]
/// built at the given parallelism with `slots` scratch slots, serving
/// `requests_per_client` warm solves from each of 1/4/16 simulated
/// client threads. Reports aggregate requests/s and p50/p99 per-request
/// latency (latency vectors are preallocated so measurement itself never
/// allocates inside a request window), after asserting **zero allocator
/// calls** across warm single-threaded checkout → solve → return
/// round-trips — the `SharedSession` hot-path contract.
fn concurrency_block(
    w: usize,
    h: usize,
    tiers: usize,
    parallelism: usize,
    slots: usize,
    clients_list: &[usize],
    requests_per_client: usize,
) -> String {
    eprintln!(
        "shared session {w}x{h}x{tiers} parallelism={parallelism} slots={slots} \
         clients {clients_list:?} x {requests_per_client}..."
    );
    let stack = Stack3d::builder(w, h, tiers)
        .uniform_load(2e-4)
        .build()
        .expect("valid stack");
    let shared = SharedSession::build(&stack, VpConfig::new().parallelism(parallelism), slots)
        .expect("shared session builds");
    let case = LoadCase::new(&stack);

    // Warm every scratch slot: hold all slots checked out at once so each
    // one faults its pages and sizes its arenas before anything is timed.
    {
        let guards: Vec<_> = (0..slots)
            .map(|_| shared.solve(&case).expect("warm solve converges"))
            .collect();
        drop(guards);
    }

    // The zero-allocation hot path: warm checkout → solve → return,
    // single-threaded so the counting allocator sees only this path.
    let hot_rounds = 4usize;
    let calls_before = alloc::alloc_calls();
    for _ in 0..hot_rounds {
        let solution = shared.solve(&case).expect("warm shared solve");
        assert!(solution.view().converged());
    }
    let hot_path_allocs = alloc::alloc_calls() - calls_before;
    assert_eq!(
        hot_path_allocs, 0,
        "warm SharedSession checkout → solve → return must make zero allocator calls"
    );

    let mut lines = Vec::new();
    for &clients in clients_list {
        let total = clients * requests_per_client;
        let mut latencies: Vec<Vec<f64>> = (0..clients)
            .map(|_| Vec::with_capacity(requests_per_client))
            .collect();
        let start = Instant::now();
        std::thread::scope(|scope| {
            for lane in latencies.iter_mut() {
                let shared = &shared;
                let case = &case;
                scope.spawn(move || {
                    for _ in 0..requests_per_client {
                        let t0 = Instant::now();
                        let solution = shared.solve(case).expect("concurrent solve converges");
                        assert!(solution.view().converged());
                        drop(solution); // slot goes back before the clock stops
                        lane.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                });
            }
        });
        let wall_s = start.elapsed().as_secs_f64();
        let mut all: Vec<f64> = latencies.into_iter().flatten().collect();
        all.sort_by(f64::total_cmp);
        let pct = |p: f64| all[((all.len() - 1) as f64 * p).round() as usize];
        lines.push(format!(
            "      {{ \"clients\": {clients}, \"requests\": {total}, \
             \"requests_per_s\": {}, \"p50_ms\": {}, \"p99_ms\": {} }}",
            json_f64(total as f64 / wall_s),
            json_f64(pct(0.50)),
            json_f64(pct(0.99)),
        ));
    }
    format!(
        "{{\n    \"grid\": \"{w}x{h}x{tiers}\",\n    \"parallelism\": {parallelism},\n    \
         \"slots\": {slots},\n    \"requests_per_client\": {requests_per_client},\n    \
         \"hot_path_warm_alloc_calls\": {hot_path_allocs},\n    \
         \"clients\": [\n{}\n    ]\n  }}",
        lines.join(",\n"),
    )
}

/// The overload/admission experiment: how fast the robustness machinery
/// makes its decisions. Against a deliberately saturated one-slot
/// [`SharedSession`]:
///
/// * `try_solve_for(wait)` must report `Busy` in about `wait` — the
///   shed decision may not dawdle (asserted ≤ 10× the configured wait;
///   the slack absorbs scheduler noise on oversubscribed CI hosts);
/// * once the slot frees, the same call must be admitted;
/// * a budget-starved solve (unattainable tolerance, huge iteration
///   budget) under a cooperative [`Deadline`] must return
///   `DeadlineExceeded` shortly after the deadline — the overshoot is
///   the between-iteration check granularity the serve layer's typed
///   `deadline-exceeded` contract rests on.
fn overload_block(w: usize, h: usize, tiers: usize, wait_ms: u64, deadline_ms: u64) -> String {
    eprintln!(
        "overload admission {w}x{h}x{tiers} (wait {wait_ms} ms, deadline {deadline_ms} ms)..."
    );
    let stack = Stack3d::builder(w, h, tiers)
        .uniform_load(2e-4)
        .build()
        .expect("valid stack");
    let shared = SharedSession::build(&stack, VpConfig::default(), 1).expect("session builds");
    let case = LoadCase::new(&stack);
    let wait = std::time::Duration::from_millis(wait_ms);

    // Warm the single slot, then hold it checked out: every admission
    // attempt below contends against a saturated pool.
    drop(shared.solve(&case).expect("warm solve converges"));
    let sheds = 6usize;
    let mut shed_ms = Vec::with_capacity(sheds);
    let admitted_ms;
    {
        let hog = shared.solve(&case).expect("hog solve converges");
        for _ in 0..sheds {
            let start = Instant::now();
            match shared.try_solve_for(&case, wait) {
                Ok(TryCheckout::Busy) => shed_ms.push(start.elapsed().as_secs_f64() * 1e3),
                Ok(TryCheckout::Ready(_)) => panic!("a held slot cannot admit"),
                Err(e) => panic!("shed attempt errored: {e}"),
            }
        }
        drop(hog);
        // The freed slot admits the very next bounded-wait attempt.
        let start = Instant::now();
        match shared.try_solve_for(&case, wait) {
            Ok(TryCheckout::Ready(solution)) => {
                assert!(solution.view().converged());
                admitted_ms = start.elapsed().as_secs_f64() * 1e3;
            }
            Ok(TryCheckout::Busy) => panic!("a freed slot must admit"),
            Err(e) => panic!("admitted attempt errored: {e}"),
        }
    }
    shed_ms.sort_by(f64::total_cmp);
    let shed_p50 = shed_ms[shed_ms.len() / 2];
    let shed_worst = *shed_ms.last().expect("non-empty");
    assert!(
        shed_worst <= 10.0 * wait_ms as f64,
        "shed decision took {shed_worst} ms against a {wait_ms} ms bounded wait"
    );

    // Cooperative-deadline accuracy on a solve only the deadline can end.
    let starved = LoadCase::new(&stack)
        .params(
            SolveParams::new()
                .epsilon(1e-300)
                .inner_tolerance(1e-5)
                .max_outer_iterations(1_000_000_000),
        )
        .deadline(Deadline::after(std::time::Duration::from_millis(
            deadline_ms,
        )));
    let start = Instant::now();
    match shared.solve(&starved) {
        Err(SessionError::Solver(SolverError::DeadlineExceeded { .. })) => {}
        other => panic!("starved solve must exceed its deadline, got {other:?}"),
    }
    let deadline_elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let overshoot_ms = deadline_elapsed_ms - deadline_ms as f64;
    assert!(
        overshoot_ms <= 1_000.0,
        "deadline shed overshot by {overshoot_ms} ms (check granularity regressed)"
    );

    format!(
        "{{\n    \"grid\": \"{w}x{h}x{tiers}\",\n    \"slots\": 1,\n    \
         \"bounded_wait_ms\": {wait_ms},\n    \"sheds_timed\": {sheds},\n    \
         \"shed_decision_p50_ms\": {},\n    \"shed_decision_worst_ms\": {},\n    \
         \"admitted_after_release_ms\": {},\n    \
         \"deadline_ms\": {deadline_ms},\n    \
         \"deadline_shed_elapsed_ms\": {},\n    \
         \"deadline_overshoot_ms\": {}\n  }}",
        json_f64(shed_p50),
        json_f64(shed_worst),
        json_f64(admitted_ms),
        json_f64(deadline_elapsed_ms),
        json_f64(overshoot_ms),
    )
}

/// The vectorized-kernel bandwidth experiment: effective GB/s of the
/// hot kernels this workspace spends its time in — the batched f64
/// solve sweep, the red-black sweep at parallelism 2, and the PCG
/// axpy/dot core — plus the f64-vs-mixed comparison: per-sweep latency
/// of the batched sweep kernel in both precisions (fixed budget, the
/// throughput-ratio acceptance number) and warm per-RHS latency of a
/// converging single solve at parallelism 2 in both precisions, with
/// the refined-f32 solution asserted to agree with the f64 one
/// (tolerance parity) and **zero allocator calls** asserted on every
/// warm path including the mixed ones.
///
/// Effective bandwidth uses a fixed per-sweep traffic model over the
/// free (unpinned) nodes: per lane 24 B (`v` read + write + injection
/// read) plus 32 B of lane-independent prefactored coefficients; axpy
/// moves 24 B and dot 16 B per element. The model undercounts cache
/// refills, so the numbers are comparable across runs rather than
/// absolute — that is all a trajectory needs.
fn kernels_block(edge: usize, k: usize, sweeps: usize, vec_len: usize) -> String {
    eprintln!("kernels {edge}x{edge} batch {k} ({sweeps} sweeps, vec {vec_len})...");
    let fixture = TierFixture::new(edge);
    let n = edge * edge;
    let n_free = fixture.fixed.iter().filter(|&&f| !f).count();

    // Batch arrays: every lane carries a scaled copy of the fixture load.
    let mut injection = vec![0.0; n * k];
    let mut v0 = vec![0.0; n * k];
    for i in 0..n {
        for j in 0..k {
            injection[i * k + j] = (0.75 + 0.5 * j as f64 / k as f64) * fixture.injection[i];
            v0[i * k + j] = fixture.v0[i];
        }
    }
    let batch_sweep_bytes = (24 * k + 32) as f64 * n_free as f64;

    // Fixed-budget batched sweeps, f64 and mixed (tolerance 0 never
    // converges, so the f64 path runs exactly `batch_sweeps` sweeps and
    // the mixed path refines until the same total-f32-sweep budget is
    // spent). The budget is 4× the single-RHS one so the mixed path's
    // per-round f64 residual evaluation is amortized the way a real
    // refinement round amortizes it (the stagnation cut ends rounds
    // after dozens of sweeps on grids this size, not a handful). One
    // warm call per precision sizes the arenas; then three timed passes
    // per precision, interleaved f64/mixed and keeping the fastest of
    // each — the same scheduler-drift guard as the pool block, applied
    // to both sides of the throughput ratio. No timed pass may allocate.
    let batch_sweeps = 4 * sweeps;
    let mut engine = fixture.engine(SweepSchedule::Sequential);
    let mut lanes = vec![LaneReport::default(); k];
    let mut time_batch = |mixed: bool| -> (f64, usize) {
        let mut v = v0.clone();
        let calls_before = alloc::alloc_calls();
        let start = Instant::now();
        if mixed {
            engine
                .solve_batch_masked_mixed(
                    &injection,
                    &mut v,
                    0.0,
                    batch_sweeps,
                    1.0,
                    None,
                    &mut lanes,
                )
                .expect("mixed batch sweeps");
        } else {
            engine
                .solve_batch_masked(&injection, &mut v, 0.0, batch_sweeps, 1.0, None, &mut lanes)
                .expect("f64 batch sweeps");
        }
        let ns = start.elapsed().as_nanos() as f64 / batch_sweeps as f64;
        (ns, alloc::alloc_calls() - calls_before)
    };
    time_batch(false); // warm: sizes the f64 arenas, faults pages
    time_batch(true); // warm: sizes the f32 shadow scratch
    let (mut f64_ns_per_sweep, mut mixed_ns_per_sweep) = (f64::INFINITY, f64::INFINITY);
    let (mut f64_allocs, mut mixed_allocs) = (0usize, 0usize);
    for _ in 0..3 {
        let (ns, allocs) = time_batch(false);
        f64_ns_per_sweep = f64_ns_per_sweep.min(ns);
        f64_allocs += allocs;
        let (ns, allocs) = time_batch(true);
        mixed_ns_per_sweep = mixed_ns_per_sweep.min(ns);
        mixed_allocs += allocs;
    }
    assert_eq!(
        f64_allocs, 0,
        "warm f64 batch sweeps must make zero allocator calls"
    );
    assert_eq!(
        mixed_allocs, 0,
        "warm mixed batch sweeps must make zero allocator calls"
    );

    // Red-black sweep at parallelism 2 (single RHS).
    let rb2_ns = time_engine_sweeps(&fixture, SweepSchedule::RedBlack { threads: 2 }, sweeps);
    let rb_sweep_bytes = (24 + 32) as f64 * n_free as f64;

    // PCG vector core: axpy and dot over `vec_len` elements. The axpy
    // alpha alternates sign so `y` stays bounded across repetitions; the
    // dot results are accumulated so the loop cannot be elided.
    let reps = 200usize;
    let x: Vec<f64> = (0..vec_len).map(|i| 1.0 + (i % 7) as f64 * 0.125).collect();
    let mut y = vec![0.5; vec_len];
    vec_ops::axpy(1e-3, &x, &mut y); // warm
    let calls_before = alloc::alloc_calls();
    let start = Instant::now();
    for r in 0..reps {
        let alpha = if r % 2 == 0 { 1e-3 } else { -1e-3 };
        vec_ops::axpy(alpha, &x, &mut y);
    }
    let axpy_ns = start.elapsed().as_nanos() as f64 / reps as f64;
    let mut acc = vec_ops::dot(&x, &y); // warm
    let start = Instant::now();
    for _ in 0..reps {
        acc += vec_ops::dot(&x, &y);
    }
    let dot_ns = start.elapsed().as_nanos() as f64 / reps as f64;
    let vec_allocs = alloc::alloc_calls() - calls_before;
    assert_eq!(vec_allocs, 0, "axpy/dot must not allocate");
    assert!(acc.is_finite(), "dot accumulator must stay finite");

    // Tolerance parity at parallelism 2: a converging single-RHS solve
    // in both precisions from one engine must land on (numerically) the
    // same solution — the refined-f32 path meets the f64 tolerance
    // contract — and the warm mixed solve must not allocate.
    let tol = 1e-9;
    let mut rb_engine = fixture.engine(SweepSchedule::RedBlack { threads: 2 });
    let time_solve = |engine: &mut TierEngine, mixed: bool, v_out: &mut Vec<f64>| -> (f64, usize) {
        let run = |engine: &mut TierEngine, v: &mut [f64]| {
            if mixed {
                engine
                    .solve_mixed(&fixture.injection, v, tol, 200_000)
                    .expect("mixed solve converges");
            } else {
                engine
                    .solve(&fixture.injection, v, tol, 200_000)
                    .expect("f64 solve converges");
            }
        };
        let mut v = fixture.v0.clone();
        run(engine, &mut v); // warm
        let mut v = fixture.v0.clone();
        let calls_before = alloc::alloc_calls();
        let start = Instant::now();
        run(engine, &mut v);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        *v_out = v;
        (ms, alloc::alloc_calls() - calls_before)
    };
    let mut v_f64 = Vec::new();
    let (solve_f64_ms, _) = time_solve(&mut rb_engine, false, &mut v_f64);
    let mut v_mixed = Vec::new();
    let (solve_mixed_ms, mixed_solve_allocs) = time_solve(&mut rb_engine, true, &mut v_mixed);
    assert_eq!(
        mixed_solve_allocs, 0,
        "warm mixed solve must make zero allocator calls"
    );
    let parity_dv = max_abs_diff(&v_f64, &v_mixed);
    assert!(
        parity_dv <= 1e-7,
        "mixed solve deviates {parity_dv} V from the f64 solve at tolerance {tol}"
    );

    format!(
        "{{\n    \"grid\": \"{edge}x{edge}\",\n    \"batch\": {k},\n    \
         \"sweeps_timed\": {sweeps},\n    \"batch_sweeps_timed\": {batch_sweeps},\n    \
         \"free_nodes\": {n_free},\n    \
         \"batch_sweep_f64_ns_per_sweep\": {},\n    \
         \"batch_sweep_f64_gbps\": {},\n    \
         \"batch_sweep_mixed_ns_per_sweep\": {},\n    \
         \"mixed_over_f64_sweep_throughput\": {},\n    \
         \"redblack2_ns_per_sweep\": {},\n    \"redblack2_gbps\": {},\n    \
         \"vec_len\": {vec_len},\n    \"axpy_gbps\": {},\n    \"dot_gbps\": {},\n    \
         \"solve_f64_warm_ms_parallelism2\": {},\n    \
         \"solve_mixed_warm_ms_parallelism2\": {},\n    \
         \"max_abs_dv_mixed_vs_f64\": {},\n    \
         \"warm_alloc_calls_f64_batch\": {f64_allocs},\n    \
         \"warm_alloc_calls_mixed_batch\": {mixed_allocs},\n    \
         \"warm_alloc_calls_mixed_solve\": {mixed_solve_allocs}\n  }}",
        json_f64(f64_ns_per_sweep),
        json_f64(batch_sweep_bytes / f64_ns_per_sweep),
        json_f64(mixed_ns_per_sweep),
        json_f64(f64_ns_per_sweep / mixed_ns_per_sweep),
        json_f64(rb2_ns),
        json_f64(rb_sweep_bytes / rb2_ns),
        json_f64(24.0 * vec_len as f64 / axpy_ns),
        json_f64(16.0 * vec_len as f64 / dot_ns),
        json_f64(solve_f64_ms),
        json_f64(solve_mixed_ms),
        json_f64(parity_dv),
    )
}

/// The row-band sharding experiment: band-scaling throughput of the
/// sharded engine on a tier footprint that exceeds one shard's cache,
/// against the unsharded red-black pool path at the same thread count
/// (both sides pay the atomic-image copy, so the ratio isolates the
/// halo-exchange and barrier overhead). Fixed sweep budgets from the
/// same start vector must leave **bitwise identical** states — the
/// `BuildParams::shards` determinism contract, asserted here on the
/// bench geometry and pinned across backends by `tests/sharding.rs` —
/// and every warm sharded pass must make **zero allocator calls**.
///
/// The session half re-asserts both contracts at the `Session` layer:
/// warm single, batch, and true-transient requests on a `shards = 2`
/// session (0 allocs, bitwise equal to the unsharded session, zero
/// mid-loop re-prefactors).
#[allow(clippy::too_many_arguments)] // one committed experiment, two geometries
fn sharding_block(
    edge: usize,
    shard_counts: &[usize],
    sweeps: usize,
    passes: usize,
    w: usize,
    h: usize,
    tiers: usize,
    k: usize,
    transient_steps: usize,
) -> String {
    eprintln!("row-band sharding {edge}x{edge} ({sweeps} sweeps, shards {shard_counts:?})...");
    let fixture = TierFixture::new(edge);
    let threads = 2usize;
    let footprint_mb = (fixture.v0.len() * 8) as f64 / (1024.0 * 1024.0);

    // One engine per configuration: the unsharded red-black pool path
    // first (the reference), then each shard count through the sharded
    // constructor (shards = 1 builds no halo machinery and is asserted
    // to cost nothing). All configurations are timed through the same
    // loop with interleaved passes, keeping each one's fastest — the
    // scheduler-drift guard the pool block uses, applied across the
    // whole comparison so no side gets a quieter slice of the host.
    let mut engines = vec![fixture.engine(SweepSchedule::RedBlack { threads })];
    for &shards in shard_counts {
        engines.push(
            TierEngine::new_sharded(
                fixture.edge,
                fixture.edge,
                50.0,
                50.0,
                Arc::from(&fixture.fixed[..]),
                None,
                SweepSchedule::RedBlack { threads },
                shards,
            )
            .expect("fixture tier is well-formed"),
        );
    }
    // Warm every engine (pool workers, halo images, page faults) and
    // capture its fixed-budget final state for the bitwise assertion.
    let mut v = fixture.v0.clone();
    let mut finals: Vec<Vec<f64>> = Vec::with_capacity(engines.len());
    for engine in engines.iter_mut() {
        v.copy_from_slice(&fixture.v0);
        let _ = engine.solve(&fixture.injection, &mut v, 0.0, sweeps);
        finals.push(v.clone());
    }
    for (i, &shards) in shard_counts.iter().enumerate() {
        assert!(
            finals[i + 1]
                .iter()
                .zip(&finals[0])
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "shards {shards}: fixed-budget sharded state must be bitwise \
             identical to the unsharded red-black state"
        );
    }
    // Short 4-sweep chunks, many interleaved passes, and a rotated
    // visit order per pass: min-of-many needs each configuration to
    // see at least one quiet slice of the host, and the rotation keeps
    // a periodic noise source from always landing on the same engine.
    let mut best = vec![f64::INFINITY; engines.len()];
    let mut allocs = vec![0usize; engines.len()];
    let chunk = 4usize;
    for pass in 0..passes {
        for idx in 0..engines.len() {
            let i = (idx + pass) % engines.len();
            v.copy_from_slice(&fixture.v0);
            let calls_before = alloc::alloc_calls();
            let start = Instant::now();
            let _ = engines[i].solve(&fixture.injection, &mut v, 0.0, chunk);
            best[i] = best[i].min(start.elapsed().as_nanos() as f64 / chunk as f64);
            allocs[i] += alloc::alloc_calls() - calls_before;
        }
    }
    let timed_sweeps = chunk * passes;
    let unsharded_ns = best[0];
    let mut band_lines = Vec::new();
    let mut shards2_ratio = f64::NAN;
    for (i, &shards) in shard_counts.iter().enumerate() {
        let (ns, config_allocs) = (best[i + 1], allocs[i + 1]);
        assert_eq!(
            config_allocs, 0,
            "shards {shards}: warm sharded sweeps must make zero allocator calls"
        );
        let ratio = unsharded_ns / ns;
        if shards == 2 {
            shards2_ratio = ratio;
        }
        band_lines.push(format!(
            "      {{ \"shards\": {shards}, \"ns_per_sweep\": {}, \
             \"warm_alloc_calls\": {config_allocs}, \"throughput_vs_unsharded\": {} }}",
            json_f64(ns),
            json_f64(ratio),
        ));
    }

    // Session layer: a shards = 2 session must serve warm single, batch,
    // and transient requests with zero allocator calls and reproduce the
    // unsharded session bitwise.
    eprintln!("sharded session {w}x{h}x{tiers} (batch {k}, transient {transient_steps})...");
    let stack = Stack3d::builder(w, h, tiers)
        .uniform_load(2e-4)
        .build()
        .expect("valid stack");
    let loads = sweep_loads(&stack, k);
    let mut base =
        Session::build(&stack, VpConfig::new().parallelism(threads)).expect("session builds");
    let mut sharded = Session::build(&stack, VpConfig::new().parallelism(threads).shards(2))
        .expect("sharded session builds");
    let case = LoadCase::new(&stack);
    let set = LoadSet::new(&stack, &loads);

    let base_v = base
        .solve(&case)
        .expect("unsharded solve")
        .voltages()
        .to_vec();
    sharded.solve(&case).expect("warm sharded solve");
    let calls_before = alloc::alloc_calls();
    let start = Instant::now();
    let view = sharded.solve(&case).expect("timed sharded solve");
    let single_ms = start.elapsed().as_secs_f64() * 1e3;
    let single_allocs = alloc::alloc_calls() - calls_before;
    assert_eq!(
        single_allocs, 0,
        "warm sharded session solve must not allocate"
    );
    assert!(
        view.voltages()
            .iter()
            .zip(&base_v)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "sharded session solve must be bitwise identical to the unsharded session"
    );

    let base_batch: Vec<Vec<f64>> = {
        let view = base.solve_batch(&set).expect("unsharded batch");
        (0..k)
            .map(|j| view.lane_voltages(j).expect("lane in range").to_vec())
            .collect()
    };
    sharded.solve_batch(&set).expect("warm sharded batch");
    let calls_before = alloc::alloc_calls();
    let start = Instant::now();
    let view = sharded.solve_batch(&set).expect("timed sharded batch");
    let batch_ms = start.elapsed().as_secs_f64() * 1e3;
    let batch_allocs = alloc::alloc_calls() - calls_before;
    assert_eq!(
        batch_allocs, 0,
        "warm sharded session batch must not allocate"
    );
    for (j, base_lane) in base_batch.iter().enumerate() {
        assert!(
            view.lane_voltages(j)
                .expect("lane in range")
                .iter()
                .zip(base_lane)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "sharded batch lane {j} must be bitwise identical to the unsharded session"
        );
    }

    // True transient on a decap stack: the sharded companion engines must
    // reuse their prefactors (zero mid-loop refactors), stay warm-clean,
    // and trace bitwise with the unsharded run.
    let tstack = Stack3d::builder(w / 2, h / 2, 2)
        .uniform_load(1e-4)
        .grid_capacitance(2e-13)
        .decap(0, w / 6, h / 6, 2e-10)
        .build()
        .expect("valid transient stack");
    let tnn = tstack.num_nodes();
    let frames = sweep_loads(&tstack, transient_steps);
    let run_transient = |session: &mut Session, sink: &mut TraceSink| -> TransientReport {
        let mut wave = FnWaveform::new(transient_steps, |s, _t, loads: &mut [f64]| {
            loads.copy_from_slice(&frames[s * tnn..(s + 1) * tnn]);
        });
        sink.clear();
        session
            .transient_dynamic(&mut wave, sink, &TransientParams::new(&tstack, 2e-11))
            .expect("transient run")
    };
    let mut tbase =
        Session::build(&tstack, VpConfig::new().parallelism(threads)).expect("session builds");
    let mut tsharded = Session::build(&tstack, VpConfig::new().parallelism(threads).shards(2))
        .expect("sharded session builds");
    let mut base_sink = TraceSink::with_capacity(transient_steps, tnn);
    run_transient(&mut tbase, &mut base_sink);
    let mut sink = TraceSink::with_capacity(transient_steps, tnn);
    run_transient(&mut tsharded, &mut sink); // cold: factors the companion system
    let calls_before = alloc::alloc_calls();
    let report = run_transient(&mut tsharded, &mut sink);
    let transient_allocs = alloc::alloc_calls() - calls_before;
    assert_eq!(
        transient_allocs, 0,
        "warm sharded transient step loop must not allocate"
    );
    assert_eq!(
        report.refactors, 0,
        "warm sharded step loop must reuse the prefactored companion system"
    );
    assert!(
        sink.values()
            .iter()
            .zip(base_sink.values())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "sharded transient trace must be bitwise identical to the unsharded session"
    );

    format!(
        "{{\n    \"tier_grid\": \"{edge}x{edge}\",\n    \"tier_footprint_mb\": {},\n    \
         \"sweeps_timed\": {timed_sweeps},\n    \"threads\": {threads},\n    \
         \"unsharded_redblack_ns_per_sweep\": {},\n    \
         \"bands\": [\n{}\n    ],\n    \
         \"throughput_shards2_vs_unsharded\": {},\n    \
         \"bitwise_identical_vs_unsharded\": {},\n    \
         \"session_grid\": \"{w}x{h}x{tiers}\",\n    \"session_shards\": 2,\n    \
         \"session_single_warm_ms\": {},\n    \
         \"session_batch_warm_ms\": {},\n    \
         \"session_single_warm_alloc_calls\": {single_allocs},\n    \
         \"session_batch_warm_alloc_calls\": {batch_allocs},\n    \
         \"transient_steps\": {transient_steps},\n    \
         \"transient_warm_alloc_calls\": {transient_allocs},\n    \
         \"session_bitwise_vs_unsharded\": {}\n  }}",
        json_f64(footprint_mb),
        json_f64(unsharded_ns),
        band_lines.join(",\n"),
        json_f64(shards2_ratio),
        json_bool(true),
        json_f64(single_ms),
        json_f64(batch_ms),
        json_bool(true),
    )
}

fn repo_root() -> PathBuf {
    // crates/bench → workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = match args.iter().position(|a| a == "--out") {
        Some(i) => match args.get(i + 1) {
            Some(path) => PathBuf::from(path),
            None => {
                eprintln!("error: --out requires a path argument");
                std::process::exit(2);
            }
        },
        None => repo_root().join("BENCH_rowbased.json"),
    };
    let batch_sizes: Vec<usize> = match args.iter().position(|a| a == "--batch") {
        Some(i) => match args.get(i + 1).map(|s| {
            s.split(',')
                .map(str::parse)
                .collect::<Result<Vec<usize>, _>>()
        }) {
            Some(Ok(sizes)) if !sizes.is_empty() && sizes.iter().all(|&k| k > 0) => sizes,
            _ => {
                eprintln!("error: --batch requires a comma-separated list of positive sizes");
                std::process::exit(2);
            }
        },
        None if quick => vec![1, 8],
        None => vec![1, 8, 64],
    };

    // (edge, sweeps) for row-sweep micro-benchmarks.
    let sweep_cases: Vec<(usize, usize)> = if quick {
        vec![(64, 40)]
    } else {
        vec![(256, 60), (512, 24)]
    };
    // (w, h, tiers) for full-solver runs.
    let vp_cases: Vec<(usize, usize, usize)> = if quick {
        vec![(64, 64, 3)]
    } else {
        vec![(256, 256, 4), (512, 512, 2)]
    };

    let row_blocks: Vec<String> = sweep_cases
        .iter()
        .map(|&(edge, sweeps)| row_sweep_block(edge, sweeps))
        .collect();

    let mut vp_blocks = Vec::new();
    for &(w, h, tiers) in &vp_cases {
        let v_seq = vp_voltages(w, h, tiers, 1);
        for parallelism in [1usize, 4] {
            let dv = if parallelism == 1 {
                0.0
            } else {
                max_abs_diff(&v_seq, &vp_voltages(w, h, tiers, parallelism))
            };
            vp_blocks.push(vp_block(w, h, tiers, parallelism, dv));
        }
    }

    // Batched multi-load experiment (the quick grid keeps CI smoke fast).
    let batch_cases: Vec<(usize, usize, usize)> = if quick {
        vec![(64, 64, 3)]
    } else {
        vec![(256, 256, 4)]
    };
    let batch_blocks: Vec<String> = batch_cases
        .iter()
        .map(|&(w, h, tiers)| batch_block(w, h, tiers, &batch_sizes))
        .collect();

    // Worker-pool dispatch latency (small grids: the hand-off overhead
    // the pool removes dominates there) and active-lane compaction.
    let pool_threads: Vec<usize> = if quick { vec![2] } else { vec![2, 4] };
    let (pool_solves, pool_sweeps) = if quick { (60, 8) } else { (200, 8) };
    let pool_blocks = [pool_block(64, &pool_threads, pool_solves, pool_sweeps)];
    // Two grids in full runs: 64×64 stays cache-resident, 128×128 shows
    // the memory-bound regime (the strided straggler reads spill L2).
    let compaction_blocks = if quick {
        vec![compaction_block(64, 64, &[1, 8, 32], 40)]
    } else {
        vec![
            compaction_block(64, 64, &[1, 8, 32], 60),
            compaction_block(128, 64, &[1, 8, 32], 60),
        ]
    };

    // The session lifecycle experiment: batch-64 and a 24-step transient
    // on one prefactored session, zero warm allocations, bitwise equal to
    // the deprecated entry points (the acceptance contract of the
    // `Session` API redesign).
    let session_blocks = if quick {
        vec![session_block(64, 64, 3, 64, 24)]
    } else {
        vec![session_block(128, 128, 3, 64, 24)]
    };

    // The true-transient trajectory: warm steps/s of the companion-model
    // stepper per backend on one prefactored `G + C/h` system (zero warm
    // allocations, zero re-prefactors) and the committed factor-reuse
    // speedup over re-prefactoring every step.
    let transient_blocks = if quick {
        vec![transient_block(48, 48, 2, 120)]
    } else {
        vec![transient_block(64, 64, 3, 1000)]
    };

    // The PCG reference backend: warm single + batch-8 on the session's
    // prefactored engine, zero warm allocations, agreement within the
    // paper's budget — the committed voltprop-vs-reference speedup.
    let pcg_blocks = if quick {
        vec![pcg_block(64, 64, 3, 8)]
    } else {
        vec![pcg_block(128, 128, 3, 8)]
    };

    // The shared-session concurrency trajectory: requests/s and p50/p99
    // at 1/4/16 simulated clients on one SharedSession at parallelism 2,
    // plus the asserted zero-allocation hot path. The quick run is the
    // CI smoke for both contracts.
    let concurrency_blocks = if quick {
        vec![concurrency_block(64, 64, 3, 2, 4, &[1, 4, 16], 6)]
    } else {
        vec![concurrency_block(128, 128, 3, 2, 4, &[1, 4, 16], 16)]
    };

    // The overload/admission trajectory: bounded-wait shed decision
    // latency, post-release admission, and cooperative-deadline shed
    // accuracy on a saturated one-slot pool — the serving robustness
    // contract, measured at the session layer it rests on.
    let overload_blocks = if quick {
        vec![overload_block(64, 64, 3, 25, 60)]
    } else {
        vec![overload_block(128, 128, 3, 25, 120)]
    };

    // The row-band sharding trajectory: band-scaling throughput on a
    // tier footprint that exceeds one shard's cache, bitwise-asserted
    // against the unsharded red-black path, plus the zero-allocation
    // sharded-session contract (single / batch / transient). The quick
    // run is the CI smoke for both contracts.
    let sharding_blocks = if quick {
        vec![sharding_block(1024, &[1, 2, 4], 12, 8, 96, 96, 4, 8, 40)]
    } else {
        vec![sharding_block(
            2048,
            &[1, 2, 4, 8],
            10,
            40,
            256,
            256,
            8,
            8,
            200,
        )]
    };

    // The vectorized-kernel bandwidth trajectory: effective GB/s of the
    // batched sweep / red-black sweep / axpy-dot kernels plus the
    // f64-vs-mixed precision comparison. The quick run is the CI smoke
    // that asserts the zero-allocation and refined-f32 tolerance-parity
    // contracts at parallelism 2.
    let kernel_blocks = if quick {
        vec![kernels_block(64, 16, 40, 1 << 16)]
    } else {
        vec![kernels_block(256, 64, 24, 1 << 20)]
    };

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let hardware_threads = hardware_threads();
    let entry = format!(
        "{{\n  \"unix_time\": {unix_time},\n  \"quick\": {quick},\n  \
         \"hardware_threads\": {hardware_threads},\n  \
         \"row_sweeps\": [\n  {}\n  ],\n  \"vp_solver\": [\n  {}\n  ],\n  \
         \"vp_batch\": [\n  {}\n  ],\n  \"pool_latency\": [\n  {}\n  ],\n  \
         \"batch_compaction\": [\n  {}\n  ],\n  \"session\": [\n  {}\n  ],\n  \
         \"transient\": [\n  {}\n  ],\n  \
         \"pcg\": [\n  {}\n  ],\n  \"concurrency\": [\n  {}\n  ],\n  \
         \"overload\": [\n  {}\n  ],\n  \"sharding\": [\n  {}\n  ],\n  \
         \"kernels\": [\n  {}\n  ]\n}}",
        row_blocks.join(",\n  "),
        vp_blocks.join(",\n  "),
        batch_blocks.join(",\n  "),
        pool_blocks.join(",\n  "),
        compaction_blocks.join(",\n  "),
        session_blocks.join(",\n  "),
        transient_blocks.join(",\n  "),
        pcg_blocks.join(",\n  "),
        concurrency_blocks.join(",\n  "),
        overload_blocks.join(",\n  "),
        sharding_blocks.join(",\n  "),
        kernel_blocks.join(",\n  "),
    );
    if let Err(e) = append_run(&out, &entry) {
        eprintln!("error: could not append to {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("appended run to {}", out.display());
    println!("{entry}");
}
