//! `perfsuite` — the row-sweep / solver performance suite.
//!
//! Measures, on synthetic stacks:
//!
//! * the row-sweep kernels: the seed's re-eliminating sequential
//!   [`RowBased`] baseline vs the prefactored [`TierEngine`] under the
//!   sequential and red-black schedules (1, 2, and 4 threads);
//! * numerical agreement between the schedules (max |ΔV| of the
//!   converged solutions, required ≤ 1e-9);
//! * full [`VpSolver`] solves at `parallelism` 1 and 4;
//! * the zero-allocation warm path: allocator calls/bytes across a warm
//!   [`VpSolver::solve_with`] on a reused [`VpScratch`] (expected 0 at
//!   `parallelism = 1`; the parallel path pays per-solve thread spawns).
//!
//! Each invocation appends one JSON entry to `BENCH_rowbased.json` at the
//! repository root (see [`voltprop_bench::trajectory`]), building the
//! performance history future PRs extend.
//!
//! Usage: `cargo run --release -p voltprop-bench --bin perfsuite`
//! (`--quick` shrinks the grids for a smoke run; `--out PATH` redirects
//! the trajectory file).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use voltprop_bench::alloc::{self, CountingAllocator};
use voltprop_bench::trajectory::{append_run, json_f64};
use voltprop_core::{VpConfig, VpScratch, VpSolver};
use voltprop_grid::{NetKind, Stack3d};
use voltprop_solvers::rowbased::{RbWorkspace, RowBased, TierProblem};
use voltprop_solvers::{SweepSchedule, TierEngine};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// A VP-regime tier fixture: every other node pinned (the paper's TSV
/// density), uniform loads on the free nodes.
struct TierFixture {
    edge: usize,
    fixed: Vec<bool>,
    injection: Vec<f64>,
    v0: Vec<f64>,
}

impl TierFixture {
    fn new(edge: usize) -> Self {
        let n = edge * edge;
        let mut fixed = vec![false; n];
        for y in (0..edge).step_by(2) {
            for x in (0..edge).step_by(2) {
                fixed[y * edge + x] = true;
            }
        }
        let injection = (0..n).map(|i| if fixed[i] { 0.0 } else { -5e-4 }).collect();
        TierFixture {
            edge,
            fixed,
            injection,
            v0: vec![1.8; n],
        }
    }

    fn problem<'a>(&'a self, zeros: &'a [f64]) -> TierProblem<'a> {
        TierProblem {
            width: self.edge,
            height: self.edge,
            g_h: 50.0,
            g_v: 50.0,
            fixed: &self.fixed,
            extra_diag: zeros,
            injection: &self.injection,
        }
    }

    fn engine(&self, schedule: SweepSchedule) -> TierEngine {
        TierEngine::new(
            self.edge,
            self.edge,
            50.0,
            50.0,
            Arc::from(&self.fixed[..]),
            None,
            schedule,
        )
        .expect("fixture tier is well-formed")
    }
}

/// Times `sweeps` fixed-budget engine sweeps, returning ns/sweep.
fn time_engine_sweeps(fixture: &TierFixture, schedule: SweepSchedule, sweeps: usize) -> f64 {
    let mut engine = fixture.engine(schedule);
    let mut v = fixture.v0.clone();
    // Warm-up (first touch, page faults, branch history).
    let _ = engine.solve(&fixture.injection, &mut v, 0.0, sweeps.min(8));
    let mut v = fixture.v0.clone();
    let start = Instant::now();
    // tolerance 0 never triggers, so exactly `sweeps` sweeps run.
    let _ = engine.solve(&fixture.injection, &mut v, 0.0, sweeps);
    start.elapsed().as_nanos() as f64 / sweeps as f64
}

/// Times the seed's re-eliminating sequential kernel, returning ns/sweep.
fn time_baseline_sweeps(fixture: &TierFixture, sweeps: usize) -> f64 {
    let zeros = vec![0.0; fixture.edge * fixture.edge];
    let problem = fixture.problem(&zeros);
    let rb = RowBased::default();
    let mut ws = RbWorkspace::new(fixture.edge);
    let mut v = fixture.v0.clone();
    for i in 0..sweeps.min(8) {
        let _ = rb.sweep_once(&problem, &mut v, &mut ws, i % 2 == 0);
    }
    let mut v = fixture.v0.clone();
    let start = Instant::now();
    for i in 0..sweeps {
        let _ = rb.sweep_once(&problem, &mut v, &mut ws, i % 2 == 0);
    }
    start.elapsed().as_nanos() as f64 / sweeps as f64
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
}

/// One row-sweep comparison block on an `edge × edge` tier.
fn row_sweep_block(edge: usize, sweeps: usize) -> String {
    eprintln!("row sweeps {edge}x{edge} ({sweeps} sweeps per kernel)...");
    let fixture = TierFixture::new(edge);
    let baseline = time_baseline_sweeps(&fixture, sweeps);
    let engine_seq = time_engine_sweeps(&fixture, SweepSchedule::Sequential, sweeps);
    let mut rb_lines = Vec::new();
    let mut rb4 = f64::NAN;
    for threads in [1usize, 2, 4] {
        let ns = time_engine_sweeps(&fixture, SweepSchedule::RedBlack { threads }, sweeps);
        if threads == 4 {
            rb4 = ns;
        }
        rb_lines.push(format!(
            "      {{ \"threads\": {threads}, \"ns_per_sweep\": {} }}",
            json_f64(ns)
        ));
    }

    // Converged-solution agreement: sequential vs 4-thread red-black.
    let mut v_seq = fixture.v0.clone();
    fixture
        .engine(SweepSchedule::Sequential)
        .solve(&fixture.injection, &mut v_seq, 1e-12, 200_000)
        .expect("sequential converges");
    let mut v_rb = fixture.v0.clone();
    fixture
        .engine(SweepSchedule::RedBlack { threads: 4 })
        .solve(&fixture.injection, &mut v_rb, 1e-12, 200_000)
        .expect("red-black converges");
    let agreement = max_abs_diff(&v_seq, &v_rb);
    assert!(
        agreement <= 1e-9,
        "red-black and sequential disagree by {agreement} V"
    );

    format!(
        "{{\n    \"grid\": \"{edge}x{edge}\",\n    \"sweeps_timed\": {sweeps},\n    \
         \"baseline_rowbased_seq_ns_per_sweep\": {},\n    \
         \"engine_seq_ns_per_sweep\": {},\n    \
         \"engine_redblack\": [\n{}\n    ],\n    \
         \"speedup_redblack4_vs_seed_baseline\": {},\n    \
         \"speedup_redblack4_vs_engine_seq\": {},\n    \
         \"max_abs_dv_redblack_vs_seq\": {}\n  }}",
        json_f64(baseline),
        json_f64(engine_seq),
        rb_lines.join(",\n"),
        json_f64(baseline / rb4),
        json_f64(engine_seq / rb4),
        json_f64(agreement),
    )
}

/// One full-solver block: VpSolver at a given parallelism on a stack,
/// timed warm (scratch prebuilt, second solve measured), with allocator
/// deltas across the measured solve.
fn vp_block(w: usize, h: usize, tiers: usize, parallelism: usize, dv_vs_seq: f64) -> String {
    eprintln!("VpSolver {w}x{h}x{tiers} parallelism={parallelism}...");
    let stack = Stack3d::builder(w, h, tiers)
        .uniform_load(2e-4)
        .build()
        .expect("valid stack");
    let solver = VpSolver::new(VpConfig::new().parallelism(parallelism));
    let mut scratch = VpScratch::new(&stack, &solver.config).expect("scratch");
    // Warm solve: faults pages, fills the scratch.
    solver
        .solve_with(&stack, NetKind::Power, &mut scratch)
        .expect("warm solve converges");
    let calls_before = alloc::alloc_calls();
    let bytes_before = alloc::reset_peak();
    let start = Instant::now();
    let report = solver
        .solve_with(&stack, NetKind::Power, &mut scratch)
        .expect("timed solve converges");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let alloc_calls = alloc::alloc_calls() - calls_before;
    let alloc_peak_bytes = alloc::peak_bytes().saturating_sub(bytes_before);
    format!(
        "{{\n    \"grid\": \"{w}x{h}x{tiers}\",\n    \"parallelism\": {parallelism},\n    \
         \"warm_solve_ms\": {},\n    \"outer_iterations\": {},\n    \
         \"inner_sweeps\": {},\n    \"pad_mismatch_v\": {},\n    \
         \"warm_alloc_calls\": {alloc_calls},\n    \"warm_alloc_peak_bytes\": {alloc_peak_bytes},\n    \
         \"max_abs_dv_vs_parallelism1\": {}\n  }}",
        json_f64(ms),
        report.outer_iterations,
        report.inner_sweeps,
        json_f64(report.pad_mismatch),
        json_f64(dv_vs_seq),
    )
}

/// Solves a stack at the given parallelism and returns the voltages (for
/// cross-parallelism agreement).
fn vp_voltages(w: usize, h: usize, tiers: usize, parallelism: usize) -> Vec<f64> {
    let stack = Stack3d::builder(w, h, tiers)
        .uniform_load(2e-4)
        .build()
        .expect("valid stack");
    VpSolver::new(VpConfig::new().parallelism(parallelism))
        .solve(&stack, NetKind::Power)
        .expect("solve converges")
        .voltages
}

fn repo_root() -> PathBuf {
    // crates/bench → workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = match args.iter().position(|a| a == "--out") {
        Some(i) => match args.get(i + 1) {
            Some(path) => PathBuf::from(path),
            None => {
                eprintln!("error: --out requires a path argument");
                std::process::exit(2);
            }
        },
        None => repo_root().join("BENCH_rowbased.json"),
    };

    // (edge, sweeps) for row-sweep micro-benchmarks.
    let sweep_cases: Vec<(usize, usize)> = if quick {
        vec![(64, 40)]
    } else {
        vec![(256, 60), (512, 24)]
    };
    // (w, h, tiers) for full-solver runs.
    let vp_cases: Vec<(usize, usize, usize)> = if quick {
        vec![(64, 64, 3)]
    } else {
        vec![(256, 256, 4), (512, 512, 2)]
    };

    let row_blocks: Vec<String> = sweep_cases
        .iter()
        .map(|&(edge, sweeps)| row_sweep_block(edge, sweeps))
        .collect();

    let mut vp_blocks = Vec::new();
    for &(w, h, tiers) in &vp_cases {
        let v_seq = vp_voltages(w, h, tiers, 1);
        for parallelism in [1usize, 4] {
            let dv = if parallelism == 1 {
                0.0
            } else {
                max_abs_diff(&v_seq, &vp_voltages(w, h, tiers, parallelism))
            };
            vp_blocks.push(vp_block(w, h, tiers, parallelism, dv));
        }
    }

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let entry = format!(
        "{{\n  \"unix_time\": {unix_time},\n  \"quick\": {quick},\n  \
         \"hardware_threads\": {hardware_threads},\n  \
         \"row_sweeps\": [\n  {}\n  ],\n  \"vp_solver\": [\n  {}\n  ]\n}}",
        row_blocks.join(",\n  "),
        vp_blocks.join(",\n  "),
    );
    if let Err(e) = append_run(&out, &entry) {
        eprintln!("error: could not append to {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("appended run to {}", out.display());
    println!("{entry}");
}
