//! `repro` — regenerates the paper's quantitative artifacts.
//!
//! ```sh
//! cargo run --release -p voltprop-bench --bin repro -- table1 [--full]
//! cargo run --release -p voltprop-bench --bin repro -- all
//! ```

use voltprop_bench::alloc::CountingAllocator;
use voltprop_bench::experiments;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const HELP: &str = "\
repro - regenerate the DATE 2012 voltage propagation paper's results

USAGE:
    repro <experiment> [flags]

EXPERIMENTS:
    table1 [--full]   T1: Table I (memory/runtime, VP vs PCG vs direct).
                      Default sizes C0-C2; --full extends to C3-C5.
    accuracy [edge]   E1: max error vs the direct reference (default edge 40).
    scaling [--full]  E2: PCG-over-VP speedup trend with circuit size.
    rw-trap           E3: random-walk TSV trap statistics.
    rb-vs-vp          E4: naive 3-D row-based degradation vs VP.
    tsv-patterns      E5: TSV distribution obliviousness.
    tiers             E6: tier-count scaling.
    selfcheck         verify the counting allocator measures this binary.
    all [--full]      run every experiment in order.
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let full = args.iter().any(|a| a == "--full");
    let code = match run(cmd, &args, full) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("repro {cmd}: {e}");
            1
        }
    };
    std::process::exit(code);
}

fn run(cmd: &str, args: &[String], full: bool) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        "table1" => print(experiments::table1(full)?),
        "accuracy" => {
            let edge = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .map(|a| a.parse())
                .transpose()?
                .unwrap_or(40);
            print(experiments::accuracy(edge)?)
        }
        "scaling" => {
            let edges: &[usize] = if full {
                &[40, 80, 120, 173, 277, 577]
            } else {
                &[40, 80, 120, 173]
            };
            print(experiments::scaling(edges)?)
        }
        "rw-trap" => print(experiments::rw_trap()?),
        "rb-vs-vp" => print(experiments::rb_vs_vp()?),
        "tsv-patterns" => print(experiments::tsv_patterns()?),
        "tiers" => print(experiments::tiers()?),
        "selfcheck" => selfcheck(),
        "all" => {
            print(experiments::table1(full)?);
            print(experiments::accuracy(40)?);
            let edges: &[usize] = if full {
                &[40, 80, 120, 173, 277]
            } else {
                &[40, 80, 120, 173]
            };
            print(experiments::scaling(edges)?);
            print(experiments::rw_trap()?);
            print(experiments::rb_vs_vp()?);
            print(experiments::tsv_patterns()?);
            print(experiments::tiers()?);
        }
        "help" | "--help" | "-h" => println!("{HELP}"),
        other => {
            eprintln!("unknown experiment `{other}`\n\n{HELP}");
            std::process::exit(2);
        }
    }
    Ok(())
}

fn print(report: String) {
    println!("{report}");
    println!("{}", "=".repeat(78));
}

/// Confirms the counting allocator actually tracks this process.
fn selfcheck() {
    let (v, peak) = voltprop_bench::alloc::measure_peak(|| vec![0u8; 8 * 1024 * 1024]);
    assert_eq!(v.len(), 8 * 1024 * 1024);
    assert!(
        peak >= 8 * 1024 * 1024,
        "allocator not installed? peak {peak}"
    );
    println!("counting allocator OK: measured {peak} bytes for an 8 MiB allocation");
}
