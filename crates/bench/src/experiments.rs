//! The reproduction experiments: one function per artifact (T1, E1–E7 of
//! DESIGN.md). Shared between the `repro` binary and the Criterion
//! benches.

use crate::harness::{run_stack_solver, MeasuredRun};
use crate::paper;
use crate::table::{mib, secs, Table};
use std::error::Error;
use voltprop_core::{LoadCase, Session, VpConfig, VpSolver};
use voltprop_grid::{LoadProfile, NetKind, Stack3d, SynthConfig, TableCircuit, TsvPattern};
use voltprop_solvers::{DirectCholesky, Pcg, PrecondKind, RandomWalkSolver, Rb3d, StackSolver};

/// Benchmark seed shared by all experiments (deterministic workloads).
pub const SEED: u64 = 2012;

type Report = Result<String, Box<dyn Error>>;

/// **T1 — Table I**: memory and runtime of VP vs PCG vs the direct
/// ("SPICE") solver on the paper's benchmark sizes.
///
/// By default runs C0–C2 with the direct solver on C0–C1 (the paper's
/// SPICE died past 230 K nodes; our direct solver hits the same fill-in
/// wall). `full` extends to C3–C5 and runs the direct solver on C2.
///
/// # Errors
///
/// Propagates solver failures.
pub fn table1(full: bool) -> Report {
    let mut out = String::new();
    out.push_str("T1 / Table I: VP vs PCG vs direct (SPICE stand-in)\n\n");
    let circuits: &[TableCircuit] = if full {
        &TableCircuit::ALL
    } else {
        &[TableCircuit::C0, TableCircuit::C1, TableCircuit::C2]
    };
    let mut t = Table::new(vec![
        "circuit",
        "nodes",
        "solver",
        "iters",
        "time",
        "mem (MiB)",
        "err (mV)",
        "paper time",
        "paper mem",
    ]);
    let mut speedups: Vec<(TableCircuit, f64, f64)> = Vec::new();
    for &c in circuits {
        let stack = c.build(SEED)?;
        let paper_row = paper::row_for(c);
        // Direct reference where feasible (memory wall mirrors the paper).
        let direct_limit = if full { 230_000 } else { 100_000 };
        let reference: Option<(MeasuredRun, Vec<f64>)> = if c.num_nodes() <= direct_limit {
            Some(run_stack_solver(
                &DirectCholesky::new(),
                &stack,
                NetKind::Power,
                None,
            )?)
        } else {
            None
        };
        let ref_v = reference.as_ref().map(|(_, v)| v.as_slice());

        let (vp, _) = run_stack_solver(&VpSolver::default(), &stack, NetKind::Power, ref_v)?;
        let (pcg, _) = run_stack_solver(&Pcg::default(), &stack, NetKind::Power, ref_v)?;

        let fmt_err = |e: Option<f64>| {
            e.map(|v| format!("{:.4}", v * 1e3))
                .unwrap_or_else(|| "-".into())
        };
        t.add_row(vec![
            c.label().into(),
            stack.num_nodes().to_string(),
            "VP".into(),
            vp.iterations.to_string(),
            secs(vp.seconds),
            mib(vp.memory_bytes()),
            fmt_err(vp.max_error),
            format!("{} s", paper_row.vp_time_s),
            format!("{} MB", paper_row.vp_memory_mb),
        ]);
        t.add_row(vec![
            "".into(),
            "".into(),
            "PCG".into(),
            pcg.iterations.to_string(),
            secs(pcg.seconds),
            mib(pcg.memory_bytes()),
            fmt_err(pcg.max_error),
            format!("{} s", paper_row.pcg_time_s),
            format!("{} MB", paper_row.pcg_memory_mb),
        ]);
        if let Some((direct, _)) = &reference {
            t.add_row(vec![
                "".into(),
                "".into(),
                "direct".into(),
                "1".into(),
                secs(direct.seconds),
                mib(direct.memory_bytes()),
                "0.0000".into(),
                paper_row
                    .spice_time_s
                    .map(|s| format!("{s} s"))
                    .unwrap_or_else(|| "OOM".into()),
                paper_row
                    .spice_memory_mb
                    .map(|m| format!("{m} MB"))
                    .unwrap_or_else(|| "OOM".into()),
            ]);
        } else {
            t.add_row(vec![
                "".into(),
                "".into(),
                "direct".into(),
                "-".into(),
                "skipped".into(),
                "(fill-in wall)".into(),
                "-".into(),
                paper_row
                    .spice_time_s
                    .map(|s| format!("{s} s"))
                    .unwrap_or_else(|| "OOM".into()),
                paper_row
                    .spice_memory_mb
                    .map(|m| format!("{m} MB"))
                    .unwrap_or_else(|| "OOM".into()),
            ]);
        }
        speedups.push((
            c,
            pcg.seconds / vp.seconds,
            pcg.memory_bytes() as f64 / vp.memory_bytes() as f64,
        ));
    }
    out.push_str(&t.to_string());
    out.push_str("\nshape checks (paper: speedup 10-20x growing with size; memory ratio ~3x):\n");
    for (c, s, m) in &speedups {
        let paper_row = paper::row_for(*c);
        out.push_str(&format!(
            "  {c}: measured speedup {s:.1}x (paper {:.1}x), memory ratio {m:.1}x (paper {:.1}x)\n",
            paper_row.speedup(),
            paper_row.memory_ratio(),
        ));
    }
    Ok(out)
}

/// **E1 — accuracy**: max node-voltage error of every iterative solver
/// against the direct reference (paper budget: 0.5 mV; RW quoted at 5 mV).
///
/// # Errors
///
/// Propagates solver failures.
pub fn accuracy(edge: usize) -> Report {
    let stack = SynthConfig::new(edge, edge, 3).seed(SEED).build()?;
    let (_, ref_v) = run_stack_solver(&DirectCholesky::new(), &stack, NetKind::Power, None)?;
    let mut t = Table::new(vec!["solver", "iters", "time", "max err (mV)", "budget"]);
    let solvers: Vec<Box<dyn StackSolver>> = vec![
        Box::new(VpSolver::default()),
        Box::new(Pcg::with_preconditioner(PrecondKind::Ic0)),
        Box::new(Pcg::with_preconditioner(PrecondKind::Amg)),
        Box::new(Pcg::with_preconditioner(PrecondKind::Jacobi)),
        Box::new(Rb3d::default()),
    ];
    let mut all_within = true;
    for s in &solvers {
        let (run, _) = run_stack_solver(s.as_ref(), &stack, NetKind::Power, Some(&ref_v))?;
        let err = run.max_error.expect("reference supplied");
        all_within &= err < paper::MAX_ERROR_VOLTS;
        t.add_row(vec![
            run.name.into(),
            run.iterations.to_string(),
            secs(run.seconds),
            format!("{:.4}", err * 1e3),
            "0.5 mV".into(),
        ]);
    }
    // Random walks on the center node only (full-grid RW is the paper's
    // scalability complaint) — the paper quotes a 5 mV error margin.
    let rw = RandomWalkSolver::new(5000, SEED);
    let est = rw.estimate_node(&stack, NetKind::Power, 0, edge / 2, edge / 2)?;
    let truth = ref_v[stack.node_index(0, edge / 2, edge / 2)];
    t.add_row(vec![
        "random-walk (1 node)".into(),
        "5000 walks".into(),
        "-".into(),
        format!("{:.4}", (est.volts - truth).abs() * 1e3),
        "5 mV [4]".into(),
    ]);
    let mut out = String::from("E1 / accuracy vs direct reference\n\n");
    out.push_str(&t.to_string());
    out.push_str(&format!(
        "\nall deterministic solvers within the paper's 0.5 mV budget: {}\n",
        if all_within { "YES" } else { "NO" }
    ));
    Ok(out)
}

/// **E2 — scaling**: the PCG-over-VP speedup trend with circuit size
/// (paper: 10× at 30 K nodes growing to 20× at 12 M).
///
/// # Errors
///
/// Propagates solver failures.
pub fn scaling(edges: &[usize]) -> Report {
    let mut t = Table::new(vec![
        "nodes", "VP time", "PCG time", "speedup", "VP mem", "PCG mem", "ratio",
    ]);
    for &edge in edges {
        let stack = SynthConfig::new(edge, edge, 3).seed(SEED).build()?;
        let (vp, _) = run_stack_solver(&VpSolver::default(), &stack, NetKind::Power, None)?;
        let (pcg, _) = run_stack_solver(&Pcg::default(), &stack, NetKind::Power, None)?;
        t.add_row(vec![
            stack.num_nodes().to_string(),
            secs(vp.seconds),
            secs(pcg.seconds),
            format!("{:.1}x", pcg.seconds / vp.seconds),
            mib(vp.memory_bytes()),
            mib(pcg.memory_bytes()),
            format!(
                "{:.1}x",
                pcg.memory_bytes() as f64 / vp.memory_bytes() as f64
            ),
        ]);
    }
    let mut out =
        String::from("E2 / speedup scaling (paper: 10x at 30K nodes -> 20x at 12M nodes)\n\n");
    out.push_str(&t.to_string());
    Ok(out)
}

/// **E3 — random-walk trap**: mean walk length and trap counts on planar
/// vs 3-D grids as TSV strength grows (paper §I–II: walks get "trapped in
/// the TSVs").
///
/// # Errors
///
/// Propagates solver failures.
pub fn rw_trap() -> Report {
    let mut t = Table::new(vec![
        "grid",
        "r_tsv",
        "mean steps",
        "vs planar",
        "walks for 5 mV",
        "walks for 0.5 mV",
    ]);
    let walks = 400;
    let rw = RandomWalkSolver::new(walks, SEED);
    let planar = Stack3d::builder(10, 10, 1).uniform_load(5e-4).build()?;
    let base = rw.estimate_node(&planar, NetKind::Power, 0, 5, 5)?;
    let walks_for = |std_err: f64, target: f64| {
        // stderr ~ sigma / sqrt(walks) → walks for target error.
        let sigma = std_err * (walks as f64).sqrt();
        ((sigma / target) * (sigma / target)).ceil() as usize
    };
    t.add_row(vec![
        "10x10x1".into(),
        "-".into(),
        format!("{:.1}", base.mean_steps),
        "1.0x".into(),
        walks_for(base.std_error, 5e-3).to_string(),
        walks_for(base.std_error, 5e-4).to_string(),
    ]);
    for r_tsv in [0.5, 0.05, 0.005] {
        let stacked = Stack3d::builder(10, 10, 3)
            .tsv_resistance(r_tsv)
            .uniform_load(5e-4)
            .build()?;
        let est = rw.estimate_node(&stacked, NetKind::Power, 0, 5, 5)?;
        t.add_row(vec![
            "10x10x3".into(),
            format!("{r_tsv}"),
            format!("{:.1}", est.mean_steps),
            format!("{:.1}x", est.mean_steps / base.mean_steps),
            walks_for(est.std_error, 5e-3).to_string(),
            walks_for(est.std_error, 5e-4).to_string(),
        ]);
    }
    let mut out = String::from(
        "E3 / random-walk TSV trap (paper: walks shuttle through low-R TSVs;\n\
         thousands of walks needed even for a 5 mV margin)\n\n",
    );
    out.push_str(&t.to_string());
    Ok(out)
}

/// **E4 — naive RB degradation vs VP**: sweep R_TSV on (a) the paper
/// topology (pads above every pillar) and (b) a sparse-pad topology where
/// the §III-A diagonal-dominance pathology bites.
///
/// # Errors
///
/// Propagates solver failures.
pub fn rb_vs_vp() -> Report {
    let mut out = String::from("E4 / naive 3-D row-based vs voltage propagation\n");
    out.push_str("\n(a) benchmark topology (package bumps on a 10-node lattice)\n\n");
    let mut t = Table::new(vec![
        "r_tsv",
        "rb3d sweeps",
        "rb3d time",
        "VP outer",
        "VP row sweeps",
        "VP time",
    ]);
    for r_tsv in [1.0, 0.1, 0.05, 0.01] {
        let stack = SynthConfig::new(24, 24, 3)
            .tsv_resistance(r_tsv)
            .seed(SEED)
            .build()?;
        let (rb, _) = run_stack_solver(&Rb3d::default(), &stack, NetKind::Power, None)?;
        let t0 = std::time::Instant::now();
        let mut session = Session::build(&stack, VpConfig::default())?;
        let vp = session.solve(&LoadCase::new(&stack))?;
        let vp_secs = t0.elapsed().as_secs_f64();
        t.add_row(vec![
            format!("{r_tsv}"),
            rb.iterations.to_string(),
            secs(rb.seconds),
            vp.report().outer_iterations.to_string(),
            vp.report().inner_sweeps.to_string(),
            secs(vp_secs),
        ]);
    }
    out.push_str(&t.to_string());

    out.push_str(
        "\n(b) very sparse pads (every 6th node): the SIII-A pathology\n\
         isolated - naive RB sweeps explode as TSVs strengthen, because\n\
         error shuttles between the free terminals of the barely-dominant\n\
         TSV rows:\n\n",
    );
    let mut t = Table::new(vec!["r_tsv", "rb3d sweeps", "rb3d time"]);
    for r_tsv in [1.0, 0.05, 0.01, 0.005] {
        let mut sites = vec![];
        for y in (0..24).step_by(6) {
            for x in (0..24).step_by(6) {
                sites.push((x, y));
            }
        }
        let stack = Stack3d::builder(24, 24, 3)
            .wire_resistance(1.0)
            .tsv_resistance(r_tsv)
            .pad_sites(sites)
            .load_profile(
                LoadProfile::UniformRandom {
                    min: 1e-4,
                    max: 2e-3,
                },
                SEED,
            )
            .build()?;
        let (rb, _) = run_stack_solver(&Rb3d::default(), &stack, NetKind::Power, None)?;
        t.add_row(vec![
            format!("{r_tsv}"),
            rb.iterations.to_string(),
            secs(rb.seconds),
        ]);
    }
    out.push_str(&t.to_string());
    Ok(out)
}

/// **E5 — TSV distribution obliviousness** (§III-B-2): VP behaviour under
/// uniform, random, and clustered pillar placements at equal pillar count.
///
/// # Errors
///
/// Propagates solver failures.
pub fn tsv_patterns() -> Report {
    let (w, h) = (32usize, 32usize);
    let count = (w / 4) * (h / 4); // match the pitch-4 pillar budget
    let patterns: Vec<(&str, TsvPattern)> = vec![
        ("uniform pitch 4", TsvPattern::Uniform { pitch: 4 }),
        ("random", TsvPattern::Random { count, seed: 7 }),
        (
            "clustered (2 blocks)",
            TsvPattern::Clustered {
                centers: vec![(8, 8), (24, 24)],
                radius: 3,
            },
        ),
    ];
    let mut t = Table::new(vec![
        "pattern",
        "pillars",
        "VP outer",
        "row sweeps",
        "max err (mV)",
        "worst drop (mV)",
    ]);
    for (label, pattern) in patterns {
        let stack = Stack3d::builder(w, h, 3)
            .tsv_pattern(pattern.clone())
            .load_profile(
                LoadProfile::UniformRandom {
                    min: 1e-4,
                    max: 1e-3,
                },
                SEED,
            )
            .build()?;
        let (_, ref_v) = run_stack_solver(&DirectCholesky::new(), &stack, NetKind::Power, None)?;
        // Irregular patterns use the diagonal VDA fallback, which resolves
        // to ~2e-4 V (inside the 0.5 mV budget) but not to arbitrary ε;
        // escalate ε within the budget and let the error column keep the
        // result honest.
        let mut vp = None;
        let mut session = Session::build(&stack, VpConfig::default())?;
        for eps in [1e-4, 3e-4, 4.5e-4] {
            let case = LoadCase::new(&stack).params(voltprop_core::SolveParams::new().epsilon(eps));
            match session.solve(&case) {
                Ok(view) => {
                    vp = Some((view.voltages().to_vec(), *view.report()));
                    break;
                }
                Err(voltprop_core::SessionError::Solver(
                    voltprop_solvers::SolverError::DidNotConverge { .. },
                )) => continue,
                Err(e) => return Err(e.into()),
            }
        }
        let Some((voltages, report)) = vp else {
            t.add_row(vec![label.into(), "did not converge within 0.45 mV".into()]);
            continue;
        };
        let err = voltprop_solvers::residual::max_abs_error(&ref_v, &voltages);
        let worst = voltages.iter().fold(0.0f64, |m, &v| m.max(stack.vdd() - v));
        t.add_row(vec![
            label.into(),
            stack.tsv_sites().len().to_string(),
            report.outer_iterations.to_string(),
            report.inner_sweeps.to_string(),
            format!("{:.4}", err * 1e3),
            format!("{:.2}", worst * 1e3),
        ]);
    }
    let mut out = String::from(
        "E5 / TSV distribution obliviousness (paper SIII-B-2: the method is\n\
         oblivious to the TSV distribution)\n\n",
    );
    out.push_str(&t.to_string());
    Ok(out)
}

/// **E6 — tier count**: VP vs PCG as the stack deepens (conclusion claim:
/// "more tiers … are expected to benefit more").
///
/// # Errors
///
/// Propagates solver failures.
pub fn tiers() -> Report {
    let mut t = Table::new(vec![
        "tiers", "nodes", "VP time", "PCG time", "speedup", "VP outer",
    ]);
    for tiers in [2usize, 3, 4, 6] {
        let stack = SynthConfig::new(40, 40, tiers).seed(SEED).build()?;
        let t0 = std::time::Instant::now();
        let mut session = Session::build(&stack, VpConfig::default())?;
        let vp = session.solve(&LoadCase::new(&stack))?;
        let vp_secs = t0.elapsed().as_secs_f64();
        let (pcg, _) = run_stack_solver(&Pcg::default(), &stack, NetKind::Power, None)?;
        t.add_row(vec![
            tiers.to_string(),
            stack.num_nodes().to_string(),
            secs(vp_secs),
            secs(pcg.seconds),
            format!("{:.1}x", pcg.seconds / vp_secs),
            vp.report().outer_iterations.to_string(),
        ]);
    }
    let mut out =
        String::from("E6 / tier-count scaling (conclusion: deeper stacks benefit more)\n\n");
    out.push_str(&t.to_string());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_experiments_produce_reports() {
        // Smoke-test the cheap experiments end to end.
        let acc = accuracy(12).unwrap();
        assert!(acc.contains("voltage-propagation"));
        let trap = rw_trap().unwrap();
        assert!(trap.contains("10x10x3"));
        let pat = tsv_patterns().unwrap();
        assert!(pat.contains("uniform"));
    }

    #[test]
    fn scaling_report_contains_speedups() {
        let rep = scaling(&[16]).unwrap();
        assert!(rep.contains("speedup"));
        assert!(rep.contains("x"));
    }
}
