//! Reproduction harness for the DATE 2012 voltage propagation paper.
//!
//! This crate regenerates every quantitative artifact of the paper's
//! evaluation:
//!
//! * [`alloc`] — a counting global allocator so the `repro` binary can
//!   report *peak memory* per solver, the paper's Table-I memory column.
//! * [`harness`] — timed, memory-metered solver runs with accuracy checks
//!   against the direct reference.
//! * [`paper`] — the numbers the paper reports, for side-by-side output.
//! * [`table`] — fixed-width table rendering for terminal reports.
//! * [`experiments`] — one function per experiment (T1, E1–E7 of
//!   DESIGN.md), shared between the `repro` binary and the Criterion
//!   benches.
//!
//! Run `cargo run --release -p voltprop-bench --bin repro -- help` for the
//! experiment menu.

#![warn(missing_docs)]

pub mod alloc;
pub mod experiments;
pub mod harness;
pub mod paper;
pub mod table;
pub mod trajectory;
