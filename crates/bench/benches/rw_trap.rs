//! E3 bench: random-walk cost on planar vs TSV-coupled grids — the walk
//! lengthening that motivates §II-A.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use voltprop_grid::{NetKind, Stack3d};
use voltprop_solvers::RandomWalkSolver;

fn bench_rw(c: &mut Criterion) {
    let mut group = c.benchmark_group("rw_trap");
    let rw = RandomWalkSolver::new(200, 7);

    let planar = Stack3d::builder(10, 10, 1).uniform_load(5e-4).build().unwrap();
    group.bench_function(BenchmarkId::new("estimate", "planar"), |b| {
        b.iter(|| rw.estimate_node(&planar, NetKind::Power, 0, 5, 5).unwrap())
    });
    for r_tsv in [0.5f64, 0.05] {
        let stacked = Stack3d::builder(10, 10, 3)
            .tsv_resistance(r_tsv)
            .uniform_load(5e-4)
            .build()
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("estimate", format!("3d-rtsv-{r_tsv}")),
            &stacked,
            |b, s| b.iter(|| rw.estimate_node(s, NetKind::Power, 0, 5, 5).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_rw
}
criterion_main!(benches);
