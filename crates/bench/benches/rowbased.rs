//! Row-based sweep kernel: cost per sweep and SOR-factor ablation
//! (the paper's §II-B / ref [11] discussion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use voltprop_solvers::{RowBased, TierProblem};

fn tier_fixture(edge: usize) -> (Vec<bool>, Vec<f64>, Vec<f64>) {
    let n = edge * edge;
    let mut fixed = vec![false; n];
    for y in (0..edge).step_by(2) {
        for x in (0..edge).step_by(2) {
            fixed[y * edge + x] = true;
        }
    }
    let injection: Vec<f64> = (0..n)
        .map(|i| if fixed[i] { 0.0 } else { -5e-4 })
        .collect();
    (fixed, vec![0.0; n], injection)
}

fn bench_rowbased(c: &mut Criterion) {
    let mut group = c.benchmark_group("rowbased");
    for edge in [64usize, 128] {
        let (fixed, extra, injection) = tier_fixture(edge);
        let problem = TierProblem {
            width: edge,
            height: edge,
            g_h: 1.0,
            g_v: 1.0,
            fixed: &fixed,
            extra_diag: &extra,
            injection: &injection,
        };
        group.bench_with_input(
            BenchmarkId::new("solve-tier-dense-pins", edge * edge),
            &problem,
            |b, p| {
                b.iter(|| {
                    let mut v = vec![1.8; p.width * p.height];
                    RowBased::default().solve_tier(p, &mut v).unwrap()
                })
            },
        );
    }

    // SOR ablation on a sparse-pin tier, where omega matters.
    let edge = 48;
    let n = edge * edge;
    let mut fixed = vec![false; n];
    fixed[0] = true;
    fixed[n - 1] = true;
    let extra = vec![0.0; n];
    let injection = vec![-1e-5; n];
    let problem = TierProblem {
        width: edge,
        height: edge,
        g_h: 1.0,
        g_v: 1.0,
        fixed: &fixed,
        extra_diag: &extra,
        injection: &injection,
    };
    for omega in [1.0f64, 1.5, 1.9] {
        group.bench_with_input(
            BenchmarkId::new("sor-omega", format!("{omega}")),
            &problem,
            |b, p| {
                b.iter(|| {
                    let mut v = vec![0.0; n];
                    v[0] = 1.8;
                    v[n - 1] = 1.8;
                    RowBased::with_omega(omega).solve_tier(p, &mut v).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_rowbased
}
criterion_main!(benches);
