//! E1 bench: solve cost as the accuracy target tightens — VP's epsilon
//! and PCG's residual tolerance swept across the 0.5 mV budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use voltprop_core::{VpConfig, VpSolver};
use voltprop_grid::{NetKind, SynthConfig};
use voltprop_solvers::{Pcg, StackSolver};

fn bench_accuracy(c: &mut Criterion) {
    let stack = SynthConfig::new(30, 30, 3).seed(2012).build().unwrap();
    let mut group = c.benchmark_group("accuracy");
    for eps in [1e-3f64, 1e-4, 1e-5] {
        let solver = VpSolver::new(VpConfig::new().epsilon(eps));
        group.bench_with_input(
            BenchmarkId::new("vp-eps", format!("{eps:.0e}")),
            &stack,
            |b, s| b.iter(|| solver.solve_stack(s, NetKind::Power).unwrap()),
        );
    }
    for tol in [1e-6f64, 1e-8, 1e-10] {
        let solver = Pcg::default().tolerance(tol);
        group.bench_with_input(
            BenchmarkId::new("pcg-tol", format!("{tol:.0e}")),
            &stack,
            |b, s| b.iter(|| solver.solve_stack(s, NetKind::Power).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_accuracy
}
criterion_main!(benches);
