//! T1 (Table I) bench: VP vs PCG vs direct on a scaled-down benchmark
//! (criterion wants many repetitions, so the grid is smaller than C0; the
//! full-size run lives in `repro table1`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use voltprop_core::VpSolver;
use voltprop_grid::{NetKind, SynthConfig};
use voltprop_solvers::{DirectCholesky, Pcg, StackSolver};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    for edge in [30usize, 60] {
        let stack = SynthConfig::new(edge, edge, 3).seed(2012).build().unwrap();
        let nodes = stack.num_nodes();
        group.bench_with_input(BenchmarkId::new("vp", nodes), &stack, |b, s| {
            b.iter(|| VpSolver::default().solve_stack(s, NetKind::Power).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pcg-ic0", nodes), &stack, |b, s| {
            b.iter(|| Pcg::default().solve_stack(s, NetKind::Power).unwrap())
        });
        if edge <= 30 {
            group.bench_with_input(BenchmarkId::new("direct", nodes), &stack, |b, s| {
                b.iter(|| {
                    DirectCholesky::new()
                        .solve_stack(s, NetKind::Power)
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_table1
}
criterion_main!(benches);
