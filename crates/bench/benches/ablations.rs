//! Ablations of the design choices DESIGN.md calls out:
//!
//! * VDA damping — fixed small gain vs the adaptive controller;
//! * SOR factor in the VP inner sweeps;
//! * preconditioner choice inside the PCG comparator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use voltprop_core::{VpConfig, VpSolver};
use voltprop_grid::{NetKind, SynthConfig};
use voltprop_solvers::{Pcg, PrecondKind, StackSolver};

fn bench_ablations(c: &mut Criterion) {
    let stack = SynthConfig::new(30, 30, 3).seed(2012).build().unwrap();

    let mut group = c.benchmark_group("ablations");
    // VDA damping: beta = 1 with adaptation (default) vs conservative
    // fixed gains.
    for beta in [1.0f64, 0.5, 0.25] {
        let solver = VpSolver::new(VpConfig::new().damping(beta));
        group.bench_with_input(
            BenchmarkId::new("vda-beta", format!("{beta}")),
            &stack,
            |b, s| b.iter(|| solver.solve_stack(s, NetKind::Power).unwrap()),
        );
    }
    // Inner SOR factor.
    for omega in [1.0f64, 1.2, 1.5] {
        let solver = VpSolver::new(VpConfig::new().sor_omega(omega));
        group.bench_with_input(
            BenchmarkId::new("vp-sor-omega", format!("{omega}")),
            &stack,
            |b, s| b.iter(|| solver.solve_stack(s, NetKind::Power).unwrap()),
        );
    }
    // PCG preconditioners.
    for kind in [
        PrecondKind::Jacobi,
        PrecondKind::Ic0,
        PrecondKind::Ssor(1.3),
        PrecondKind::Amg,
    ] {
        let solver = Pcg::with_preconditioner(kind);
        group.bench_with_input(
            BenchmarkId::new("pcg-precond", kind.name()),
            &stack,
            |b, s| b.iter(|| solver.solve_stack(s, NetKind::Power).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_ablations
}
criterion_main!(benches);
