//! E4 bench: naive 3-D row-based vs voltage propagation across TSV
//! strengths (paper §III-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use voltprop_core::VpSolver;
use voltprop_grid::{NetKind, SynthConfig};
use voltprop_solvers::{Rb3d, StackSolver};

fn bench_rb_vs_vp(c: &mut Criterion) {
    let mut group = c.benchmark_group("rb_vs_vp");
    for r_tsv in [1.0f64, 0.05, 0.01] {
        let stack = SynthConfig::new(20, 20, 3)
            .tsv_resistance(r_tsv)
            .seed(2012)
            .build()
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("vp", format!("rtsv-{r_tsv}")),
            &stack,
            |b, s| b.iter(|| VpSolver::default().solve_stack(s, NetKind::Power).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("rb3d", format!("rtsv-{r_tsv}")),
            &stack,
            |b, s| b.iter(|| Rb3d::default().solve_stack(s, NetKind::Power).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_rb_vs_vp
}
criterion_main!(benches);
