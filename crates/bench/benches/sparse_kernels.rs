//! Substrate kernels: SpMV, Cholesky factorization, IC(0) setup, and the
//! Thomas row solve the row-based method leans on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use voltprop_grid::{NetKind, SynthConfig};
use voltprop_sparse::tridiag::TridiagWorkspace;
use voltprop_sparse::{Cholesky, IncompleteCholesky};

fn bench_kernels(c: &mut Criterion) {
    let stack = SynthConfig::new(60, 60, 3).seed(1).build().unwrap();
    let sys = stack.stamp(NetKind::Power).unwrap();
    let a = sys.matrix();
    let n = a.nrows();
    let x = vec![1.0; n];
    let mut y = vec![0.0; n];

    let mut group = c.benchmark_group("sparse");
    group.bench_function(BenchmarkId::new("spmv", n), |b| {
        b.iter(|| a.spmv(&x, &mut y))
    });
    group.bench_function(BenchmarkId::new("ic0-setup", n), |b| {
        b.iter(|| IncompleteCholesky::new(a).unwrap())
    });
    let small = SynthConfig::new(24, 24, 3).seed(1).build().unwrap();
    let small_sys = small.stamp(NetKind::Power).unwrap();
    group.bench_function(
        BenchmarkId::new("cholesky-factor", small_sys.dim()),
        |b| b.iter(|| Cholesky::factor(small_sys.matrix()).unwrap()),
    );

    // The 5N-4 multiplication row kernel.
    let width = 1000;
    let off = vec![-1.0; width - 1];
    let diag = vec![4.0; width];
    let rhs = vec![0.5; width];
    let mut out = vec![0.0; width];
    let mut ws = TridiagWorkspace::new(width);
    group.bench_function(BenchmarkId::new("thomas-row", width), |b| {
        b.iter(|| ws.solve(&off, &diag, &off, &rhs, &mut out).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_kernels
}
criterion_main!(benches);
