//! Cross-cutting sanity checks on grid models.
//!
//! The builder already rejects malformed parameters; these checks cover
//! *semantic* problems a solver would otherwise discover as a singular
//! matrix or nonsense voltages.

use crate::{GridError, Stack3d};

impl Stack3d {
    /// Runs semantic sanity checks beyond builder validation:
    ///
    /// * every tier below the top must be reachable through TSV pillars
    ///   (guaranteed by construction when pillars exist, checked anyway);
    /// * pads must not all sit on loads-only islands (always true for the
    ///   full mesh, checked for future masked-mesh extensions);
    /// * the total load current must be deliverable without driving any
    ///   node negative in the worst single-path case — a cheap heuristic
    ///   (`total_load * (r_wire + r_tsv * tiers)` versus `vdd`) that flags
    ///   absurd workloads early.
    ///
    /// # Errors
    ///
    /// [`GridError::NoTsvs`], [`GridError::NoPads`], or
    /// [`GridError::InvalidLoad`] describing the first failed check.
    pub fn validate(&self) -> Result<(), GridError> {
        if self.tiers() > 1 && self.tsv_sites().is_empty() {
            return Err(GridError::NoTsvs);
        }
        if self.num_pads() == 0 {
            return Err(GridError::NoPads);
        }
        // Heuristic absurdity check: a grid whose total draw would sag the
        // farthest node by more than VDD even along the best-case (most
        // conductive) path is misconfigured.
        let worst_r = self.tsv_resistance() * (self.tiers() as f64 - 1.0)
            / (self.tsv_sites().len() as f64).max(1.0);
        let sag = self.total_load() * worst_r;
        if self.vdd() > 0.0 && sag > self.vdd() {
            return Err(GridError::InvalidLoad {
                node: 0,
                amps: self.total_load(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_grid_validates() {
        let s = Stack3d::builder(8, 8, 3)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        assert!(s.validate().is_ok());
    }

    #[test]
    fn absurd_load_flagged() {
        // 1 kA per node through 0.05 Ω TSVs cannot possibly be delivered
        // at 1.8 V.
        let s = Stack3d::builder(4, 4, 3).uniform_load(1e3).build().unwrap();
        assert!(matches!(
            s.validate().unwrap_err(),
            GridError::InvalidLoad { .. }
        ));
    }
}
