//! Synthetic 3-D benchmark generation.
//!
//! The paper builds its 3-D circuits by replicating IBM TAU 2011 planar
//! grids thrice and joining them with uniformly distributed TSVs (one TSV
//! node per four nodes, R_TSV = 0.05 Ω). The IBM netlists are no longer
//! distributable, so this module synthesizes grids with the same topology,
//! electrical regime, and node counts; [`TableCircuit`] enumerates the
//! paper's C0–C5 sizes.

use crate::{GridError, LoadProfile, Stack3d, TsvPattern};

/// The benchmark circuits of the paper's Table I.
///
/// Node counts are total across the default three tiers; per-tier footprints
/// are the nearest square.
///
/// | circuit | paper nodes | footprint | total nodes |
/// |---------|------------:|-----------|------------:|
/// | C0      | 30 K        | 100×100   | 30 000      |
/// | C1      | 90 K        | 173×173   | 89 787      |
/// | C2      | 230 K       | 277×277   | 230 187     |
/// | C3      | 1 M         | 577×577   | 998 787     |
/// | C4      | 3 M         | 1000×1000 | 3 000 000   |
/// | C5      | 12 M        | 2000×2000 | 12 000 000  |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableCircuit {
    /// 30 K nodes.
    C0,
    /// 90 K nodes.
    C1,
    /// 230 K nodes.
    C2,
    /// 1 M nodes.
    C3,
    /// 3 M nodes.
    C4,
    /// 12 M nodes.
    C5,
}

impl TableCircuit {
    /// All six circuits in size order.
    pub const ALL: [TableCircuit; 6] = [
        TableCircuit::C0,
        TableCircuit::C1,
        TableCircuit::C2,
        TableCircuit::C3,
        TableCircuit::C4,
        TableCircuit::C5,
    ];

    /// The per-tier square footprint edge length.
    pub fn footprint(self) -> usize {
        match self {
            TableCircuit::C0 => 100,
            TableCircuit::C1 => 173,
            TableCircuit::C2 => 277,
            TableCircuit::C3 => 577,
            TableCircuit::C4 => 1000,
            TableCircuit::C5 => 2000,
        }
    }

    /// Total node count over three tiers.
    pub fn num_nodes(self) -> usize {
        3 * self.footprint() * self.footprint()
    }

    /// The paper's label for this circuit.
    pub fn label(self) -> &'static str {
        match self {
            TableCircuit::C0 => "C0",
            TableCircuit::C1 => "C1",
            TableCircuit::C2 => "C2",
            TableCircuit::C3 => "C3",
            TableCircuit::C4 => "C4",
            TableCircuit::C5 => "C5",
        }
    }

    /// Builds the benchmark with the default [`SynthConfig`].
    ///
    /// # Errors
    ///
    /// Propagates builder validation errors (none occur for the built-in
    /// presets).
    pub fn build(self, seed: u64) -> Result<Stack3d, GridError> {
        SynthConfig::table_circuit(self).seed(seed).build()
    }
}

impl std::fmt::Display for TableCircuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration for synthesizing a 3-D benchmark grid.
///
/// Defaults reproduce the paper's setup: 3 tiers, TSV pitch 2 (one TSV node
/// per four nodes), R_TSV = 0.05 Ω, wire segments of 1 Ω (IBM-like, and
/// 20× the TSV resistance — the paper's §III-A regime), VDD = 1.8 V, and
/// uniformly random per-device currents chosen so the worst-case IR drop
/// lands in the few-percent-of-VDD regime typical of the IBM benchmarks.
///
/// # Example
///
/// ```
/// use voltprop_grid::SynthConfig;
///
/// # fn main() -> Result<(), voltprop_grid::GridError> {
/// let stack = SynthConfig::new(20, 20, 3).seed(7).build()?;
/// assert_eq!(stack.num_nodes(), 1200);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SynthConfig {
    width: usize,
    height: usize,
    tiers: usize,
    wire_resistance: f64,
    tsv_resistance: f64,
    tsv_pattern: TsvPattern,
    pad_resistance: f64,
    pad_pitch: Option<usize>,
    vdd: f64,
    load: LoadProfile,
    seed: u64,
}

impl SynthConfig {
    /// Starts from the paper-default parameters with an explicit footprint.
    pub fn new(width: usize, height: usize, tiers: usize) -> Self {
        SynthConfig {
            width,
            height,
            tiers,
            wire_resistance: 1.0,
            tsv_resistance: 0.05,
            tsv_pattern: TsvPattern::Uniform { pitch: 2 },
            pad_resistance: 0.0,
            // Package bumps on a 10-node lattice: like the IBM grids, only
            // a fraction of the pillars is fed directly by the package.
            pad_pitch: Some(10),
            vdd: 1.8,
            // ~0.1–2 mA per device keeps worst-case drop at a few percent
            // of VDD for these wire values, mirroring the IBM benchmarks.
            load: LoadProfile::UniformRandom {
                min: 1e-4,
                max: 2e-3,
            },
            seed: 0,
        }
    }

    /// The configuration for one of the paper's Table I circuits.
    pub fn table_circuit(c: TableCircuit) -> Self {
        let edge = c.footprint();
        SynthConfig::new(edge, edge, 3)
    }

    /// Overrides the wire segment resistance (Ω).
    pub fn wire_resistance(mut self, ohms: f64) -> Self {
        self.wire_resistance = ohms;
        self
    }

    /// Overrides the TSV segment resistance (Ω).
    pub fn tsv_resistance(mut self, ohms: f64) -> Self {
        self.tsv_resistance = ohms;
        self
    }

    /// Overrides the TSV placement pattern.
    pub fn tsv_pattern(mut self, pattern: TsvPattern) -> Self {
        self.tsv_pattern = pattern;
        self
    }

    /// Overrides the pad resistance (Ω; 0 = ideal pads).
    pub fn pad_resistance(mut self, ohms: f64) -> Self {
        self.pad_resistance = ohms;
        self
    }

    /// Sets the pad-bump lattice pitch; `None` puts a pad above every
    /// pillar (the fully-fed topology).
    pub fn pad_pitch(mut self, pitch: Option<usize>) -> Self {
        self.pad_pitch = pitch;
        self
    }

    /// Overrides the supply voltage (V).
    pub fn vdd(mut self, volts: f64) -> Self {
        self.vdd = volts;
        self
    }

    /// Overrides the load profile.
    pub fn load(mut self, profile: LoadProfile) -> Self {
        self.load = profile;
        self
    }

    /// Sets the RNG seed for load generation (and random TSV patterns).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the stack.
    ///
    /// # Errors
    ///
    /// Propagates [`Stack3d`] builder validation errors.
    pub fn build(self) -> Result<Stack3d, GridError> {
        let mut b = Stack3d::builder(self.width, self.height, self.tiers)
            .wire_resistance(self.wire_resistance)
            .tsv_resistance(self.tsv_resistance)
            .tsv_pattern(self.tsv_pattern)
            .pad_resistance(self.pad_resistance)
            .vdd(self.vdd)
            .load_profile(self.load, self.seed);
        if let Some(pitch) = self.pad_pitch {
            b = b.pad_lattice(pitch);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_sizes_match_paper_within_rounding() {
        let paper_nodes = [30_000, 90_000, 230_000, 1_000_000, 3_000_000, 12_000_000];
        for (c, paper) in TableCircuit::ALL.into_iter().zip(paper_nodes) {
            let n = c.num_nodes() as f64;
            let rel = (n - paper as f64).abs() / paper as f64;
            assert!(rel < 0.01, "{c}: {n} vs paper {paper}");
        }
    }

    #[test]
    fn c0_builds_with_paper_parameters() {
        let s = TableCircuit::C0.build(1).unwrap();
        assert_eq!(s.num_nodes(), 30_000);
        assert_eq!(s.tiers(), 3);
        assert_eq!(s.tsv_resistance(), 0.05);
        // One TSV node per four nodes.
        let ratio = s.nodes_per_tier() as f64 / s.tsv_sites().len() as f64;
        assert!((ratio - 4.0).abs() < 0.1, "TSV density ratio {ratio}");
    }

    #[test]
    fn synth_is_deterministic_per_seed() {
        let a = SynthConfig::new(10, 10, 3).seed(3).build().unwrap();
        let b = SynthConfig::new(10, 10, 3).seed(3).build().unwrap();
        let c = SynthConfig::new(10, 10, 3).seed(4).build().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn overrides_apply() {
        let s = SynthConfig::new(8, 8, 2)
            .wire_resistance(0.5)
            .tsv_resistance(0.01)
            .pad_resistance(0.2)
            .vdd(1.0)
            .load(LoadProfile::Constant(1e-5))
            .build()
            .unwrap();
        assert_eq!(s.r_horizontal(0), 0.5);
        assert_eq!(s.tsv_resistance(), 0.01);
        assert_eq!(s.pad_resistance(), 0.2);
        assert_eq!(s.vdd(), 1.0);
    }

    #[test]
    fn display_labels() {
        assert_eq!(TableCircuit::C3.to_string(), "C3");
        assert_eq!(TableCircuit::C3.label(), "C3");
    }
}
