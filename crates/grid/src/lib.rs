//! 3-D power distribution network modeling.
//!
//! This crate provides the circuit substrate for the voltage propagation
//! paper (Zhang, Pavlidis, De Micheli, DATE 2012):
//!
//! * [`Stack3d`] — a TSV-based 3-D power grid: a stack of tier meshes joined
//!   by resistive TSV pillars, package pads on the topmost tier, and device
//!   loads modeled as DC current sources (the network of the paper's Fig. 1).
//! * [`stamp`] — modified nodal analysis: assembles the conductance matrix
//!   `G` and right-hand side of `G x = I`, folding ideal pads (Dirichlet
//!   nodes) into the RHS so the system stays symmetric positive definite.
//! * [`netlist`] — reader and writer for the SPICE subset used by the IBM
//!   power grid benchmarks (`R`/`I`/`V` cards, `.op`, `.end`).
//! * [`synth`] — synthetic benchmark generation, including presets `C0`–`C5`
//!   that match the node counts of the paper's Table I.
//! * [`loads`] — workload (current source) generators: uniform random and
//!   hotspot profiles, seeded for reproducibility.
//!
//! # Example
//!
//! Build a small 3-tier grid and assemble its MNA system:
//!
//! ```
//! use voltprop_grid::{Stack3d, TsvPattern, NetKind};
//!
//! # fn main() -> Result<(), voltprop_grid::GridError> {
//! let stack = Stack3d::builder(8, 8, 3)
//!     .wire_resistance(0.02)
//!     .tsv_resistance(0.05)
//!     .tsv_pattern(TsvPattern::Uniform { pitch: 2 })
//!     .uniform_load(1e-4)
//!     .vdd(1.8)
//!     .build()?;
//!
//! let sys = stack.stamp(NetKind::Power)?;
//! assert!(sys.matrix().is_symmetric(1e-12));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod loads;
pub mod netlist;
pub mod rng;
pub mod shard;
mod stack;
pub mod stamp;
pub mod stats;
pub mod synth;
mod validate;

pub use error::GridError;
pub use loads::LoadProfile;
pub use netlist::{Netlist, NetlistCircuit};
pub use shard::{ShardBand, ShardPlan};
pub use stack::{NetKind, Stack3d, StackBuilder, TsvPattern};
pub use stamp::StampedSystem;
pub use synth::{SynthConfig, TableCircuit};
