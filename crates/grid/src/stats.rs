//! Summary statistics of a power grid model.

use crate::Stack3d;
use std::fmt;

/// Structural and electrical summary of a [`Stack3d`], for logs and reports.
///
/// # Example
///
/// ```
/// use voltprop_grid::Stack3d;
/// use voltprop_grid::stats::GridStats;
///
/// # fn main() -> Result<(), voltprop_grid::GridError> {
/// let stack = Stack3d::builder(10, 10, 3).uniform_load(1e-4).build()?;
/// let stats = GridStats::of(&stack);
/// assert_eq!(stats.nodes, 300);
/// assert_eq!(stats.tsv_pillars, 25);
/// println!("{stats}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GridStats {
    /// Total node count.
    pub nodes: usize,
    /// In-plane wire segment count.
    pub wire_segments: usize,
    /// TSV pillar count (each spans `tiers - 1` segments).
    pub tsv_pillars: usize,
    /// TSV segment count.
    pub tsv_segments: usize,
    /// Pad count on the topmost tier.
    pub pads: usize,
    /// Number of nodes with a nonzero load.
    pub loaded_nodes: usize,
    /// Total load current (A).
    pub total_load: f64,
    /// Supply voltage (V).
    pub vdd: f64,
}

impl GridStats {
    /// Computes statistics for a stack.
    pub fn of(stack: &Stack3d) -> Self {
        let (w, h, t) = (stack.width(), stack.height(), stack.tiers());
        GridStats {
            nodes: stack.num_nodes(),
            wire_segments: t * ((w - 1) * h + w * (h - 1)),
            tsv_pillars: stack.tsv_sites().len(),
            tsv_segments: stack.tsv_sites().len() * (t - 1),
            pads: stack.num_pads(),
            loaded_nodes: stack.loads().iter().filter(|&&a| a > 0.0).count(),
            total_load: stack.total_load(),
            vdd: stack.vdd(),
        }
    }
}

impl fmt::Display for GridStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "nodes:         {}", self.nodes)?;
        writeln!(f, "wire segments: {}", self.wire_segments)?;
        writeln!(
            f,
            "TSV pillars:   {} ({} segments)",
            self.tsv_pillars, self.tsv_segments
        )?;
        writeln!(f, "pads:          {}", self.pads)?;
        writeln!(f, "loaded nodes:  {}", self.loaded_nodes)?;
        writeln!(f, "total load:    {:.4} A", self.total_load)?;
        write!(f, "VDD:           {:.3} V", self.vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_consistent() {
        let s = Stack3d::builder(5, 4, 3)
            .uniform_load(2e-4)
            .build()
            .unwrap();
        let st = GridStats::of(&s);
        assert_eq!(st.nodes, 60);
        // 5x4 tier: 4*4 horizontal + 5*3 vertical = 31 per tier.
        assert_eq!(st.wire_segments, 3 * 31);
        // Pitch-2 TSVs on 5x4: x ∈ {0,2,4}, y ∈ {0,2} → 6 pillars.
        assert_eq!(st.tsv_pillars, 6);
        assert_eq!(st.tsv_segments, 12);
        assert_eq!(st.pads, 6);
        assert_eq!(st.loaded_nodes, 60 - 3 * 6);
        assert!((st.total_load - (60 - 18) as f64 * 2e-4).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_fields() {
        let s = Stack3d::builder(4, 4, 2).build().unwrap();
        let text = GridStats::of(&s).to_string();
        for needle in ["nodes", "TSV", "pads", "VDD"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
