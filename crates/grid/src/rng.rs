//! Deterministic pseudo-random generation (re-exported).
//!
//! The generator itself lives in the base crate so every layer — sparse
//! test sweeps, load synthesis, solver property tests — shares one
//! implementation; see [`voltprop_sparse::rng`].

pub use voltprop_sparse::rng::SmallRng;
