use std::error::Error;
use std::fmt;

/// Errors produced while building, parsing, or stamping power grids.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GridError {
    /// A grid dimension (width, height, or tier count) was zero or otherwise
    /// unusable.
    InvalidDimension {
        /// Name of the offending dimension.
        what: &'static str,
        /// The rejected value.
        value: usize,
    },
    /// A resistance value was zero, negative, or non-finite.
    InvalidResistance {
        /// Which resistance (wire, TSV, pad …).
        what: &'static str,
        /// The rejected value in ohms.
        ohms: f64,
    },
    /// A load current was negative or non-finite.
    InvalidLoad {
        /// Flat node index of the offending load.
        node: usize,
        /// The rejected value in amperes.
        amps: f64,
    },
    /// A capacitance value was negative or non-finite.
    InvalidCapacitance {
        /// Which capacitance (grid, tier, decap, pad, node …).
        what: &'static str,
        /// The rejected value in farads.
        farads: f64,
    },
    /// The grid has no TSV pillars, so the lower tiers cannot be powered.
    NoTsvs,
    /// The grid has no pads, so the network has no voltage reference.
    NoPads,
    /// A coordinate lies outside the grid.
    CoordOutOfBounds {
        /// The rejected (x, y).
        coord: (usize, usize),
        /// Grid extent (width, height).
        extent: (usize, usize),
    },
    /// A netlist line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The netlist references a voltage source between two non-ground nodes,
    /// which the MNA stamping here does not support (power grid benchmarks
    /// only use grounded sources).
    UngroundedVoltageSource {
        /// Name of the offending element.
        name: String,
    },
    /// Conflicting voltage sources drive the same node to different values.
    ConflictingVoltageSource {
        /// Name of the node.
        node: String,
    },
    /// Some nodes have no resistive path to any pad, leaving the system
    /// singular.
    DisconnectedNodes {
        /// Number of unreachable nodes.
        count: usize,
        /// An example unreachable node (flat index or name).
        example: String,
    },
    /// A netlist could not be interpreted as a structured 3-D stack.
    NotAStack {
        /// What went wrong.
        message: String,
    },
    /// The circuit is empty (no elements or no nodes).
    EmptyCircuit,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::InvalidDimension { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            GridError::InvalidResistance { what, ohms } => {
                write!(f, "invalid {what} resistance: {ohms} ohm")
            }
            GridError::InvalidLoad { node, amps } => {
                write!(f, "invalid load current {amps} A at node {node}")
            }
            GridError::InvalidCapacitance { what, farads } => {
                write!(f, "invalid {what} capacitance: {farads} F")
            }
            GridError::NoTsvs => write!(f, "grid has no TSV pillars"),
            GridError::NoPads => write!(f, "grid has no power pads"),
            GridError::CoordOutOfBounds { coord, extent } => write!(
                f,
                "coordinate ({}, {}) outside {}x{} grid",
                coord.0, coord.1, extent.0, extent.1
            ),
            GridError::Parse { line, message } => {
                write!(f, "netlist parse error at line {line}: {message}")
            }
            GridError::UngroundedVoltageSource { name } => {
                write!(f, "voltage source {name} is not connected to ground")
            }
            GridError::ConflictingVoltageSource { node } => {
                write!(f, "node {node} is driven to conflicting voltages")
            }
            GridError::DisconnectedNodes { count, example } => {
                write!(f, "{count} node(s) have no path to a pad (e.g. {example})")
            }
            GridError::NotAStack { message } => {
                write!(f, "netlist is not a structured 3-D stack: {message}")
            }
            GridError::EmptyCircuit => write!(f, "circuit has no elements"),
        }
    }
}

impl Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(GridError, &str)> = vec![
            (
                GridError::InvalidDimension {
                    what: "width",
                    value: 0,
                },
                "width",
            ),
            (
                GridError::InvalidResistance {
                    what: "TSV",
                    ohms: -1.0,
                },
                "TSV",
            ),
            (GridError::NoTsvs, "TSV"),
            (GridError::NoPads, "pads"),
            (
                GridError::Parse {
                    line: 3,
                    message: "bad card".into(),
                },
                "line 3",
            ),
            (GridError::EmptyCircuit, "no elements"),
        ];
        for (e, needle) in cases {
            assert!(
                e.to_string().contains(needle),
                "{e} should mention {needle}"
            );
        }
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<GridError>();
    }
}
