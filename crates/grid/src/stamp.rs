//! Modified nodal analysis: assembling `G x = J` from a power grid.
//!
//! Ideal pads are Dirichlet nodes: they are *folded out* of the linear
//! system (their conductance contributions move to the right-hand side),
//! which keeps the assembled matrix symmetric positive definite — a
//! requirement of both Cholesky and conjugate gradients.

use crate::{GridError, NetKind, Stack3d};
use voltprop_sparse::{CsrMatrix, TripletMatrix};

/// Sentinel for "this node is Dirichlet, not in the system".
const FIXED: u32 = u32::MAX;

/// An assembled MNA system `G x = J` plus the bookkeeping to map between
/// full circuit nodes and the reduced (pad-folded) unknown vector.
///
/// # Example
///
/// ```
/// use voltprop_grid::{Stack3d, NetKind};
/// use voltprop_sparse::Cholesky;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stack = Stack3d::builder(6, 6, 3).uniform_load(1e-4).build()?;
/// let sys = stack.stamp(NetKind::Power)?;
/// let x = Cholesky::factor(sys.matrix())?.solve(sys.rhs());
/// let v = sys.expand(&x); // full per-node voltages, pads included
/// assert_eq!(v.len(), stack.num_nodes());
/// // Pads sit exactly at VDD; everything else sags below it.
/// assert!(v.iter().all(|&vi| vi <= 1.8 + 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StampedSystem {
    matrix: CsrMatrix,
    rhs: Vec<f64>,
    /// Per circuit node: reduced index, or `FIXED`.
    sys_index: Vec<u32>,
    /// Fixed voltage per circuit node (meaningful where `sys_index == FIXED`).
    fixed_voltage: Vec<f64>,
    num_nodes: usize,
}

impl StampedSystem {
    /// Assembles a system from parts. Used by the stack and netlist
    /// stampers; exposed for custom circuit sources.
    ///
    /// `edges` are two-terminal conductances between circuit nodes,
    /// `injections` are per-node current injections (A, positive into the
    /// node), and `fixed` maps Dirichlet nodes to their voltages.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::EmptyCircuit`] if there are no free nodes.
    pub fn assemble(
        num_nodes: usize,
        edges: impl Iterator<Item = (usize, usize, f64)>,
        injections: &[f64],
        fixed: &[(usize, f64)],
    ) -> Result<Self, GridError> {
        Self::assemble_with_ground(num_nodes, edges, &[], injections, fixed)
    }

    /// [`StampedSystem::assemble`] with an additional per-node conductance
    /// to the 0 V reference: `ground[node]` is added to the diagonal of the
    /// node's row (no right-hand-side contribution). This is how transient
    /// companion models fold `C/h` into the conductance system — each
    /// grounded capacitor becomes a grounded conductance whose companion
    /// current rides on the per-step right-hand side instead.
    ///
    /// `ground` may be shorter than `num_nodes` (missing entries are zero);
    /// entries on Dirichlet nodes are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::EmptyCircuit`] if there are no free nodes.
    pub fn assemble_with_ground(
        num_nodes: usize,
        edges: impl Iterator<Item = (usize, usize, f64)>,
        ground: &[f64],
        injections: &[f64],
        fixed: &[(usize, f64)],
    ) -> Result<Self, GridError> {
        let mut sys_index = vec![0u32; num_nodes];
        let mut fixed_voltage = vec![0.0; num_nodes];
        for &(node, volts) in fixed {
            sys_index[node] = FIXED;
            fixed_voltage[node] = volts;
        }
        let mut dim = 0u32;
        for s in sys_index.iter_mut() {
            if *s != FIXED {
                *s = dim;
                dim += 1;
            }
        }
        if dim == 0 {
            return Err(GridError::EmptyCircuit);
        }

        let mut trip = TripletMatrix::new(dim as usize, dim as usize);
        let mut rhs = vec![0.0; dim as usize];
        for (node, &inj) in injections.iter().enumerate() {
            if inj != 0.0 && sys_index[node] != FIXED {
                rhs[sys_index[node] as usize] += inj;
            }
        }
        for (a, b, g) in edges {
            match (sys_index[a], sys_index[b]) {
                (FIXED, FIXED) => {}
                (ia, FIXED) => {
                    trip.stamp_to_ground(ia as usize, g);
                    rhs[ia as usize] += g * fixed_voltage[b];
                }
                (FIXED, ib) => {
                    trip.stamp_to_ground(ib as usize, g);
                    rhs[ib as usize] += g * fixed_voltage[a];
                }
                (ia, ib) => trip.stamp_conductance(ia as usize, ib as usize, g),
            }
        }
        for (node, &g) in ground.iter().enumerate() {
            if g != 0.0 && sys_index[node] != FIXED {
                trip.stamp_to_ground(sys_index[node] as usize, g);
            }
        }
        Ok(StampedSystem {
            matrix: trip.to_csr(),
            rhs,
            sys_index,
            fixed_voltage,
            num_nodes,
        })
    }

    /// The reduced conductance matrix `G` (free nodes only).
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// The reduced right-hand side `J`.
    pub fn rhs(&self) -> &[f64] {
        &self.rhs
    }

    /// Number of unknowns (free nodes).
    pub fn dim(&self) -> usize {
        self.rhs.len()
    }

    /// Number of circuit nodes, including folded Dirichlet nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The reduced index of a circuit node, or `None` if it is a Dirichlet
    /// node.
    pub fn reduced_index(&self, node: usize) -> Option<usize> {
        let s = self.sys_index[node];
        (s != FIXED).then_some(s as usize)
    }

    /// Expands a reduced solution vector to full per-node voltages,
    /// inserting the fixed voltages at Dirichlet nodes.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn expand(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "solution length mismatch");
        (0..self.num_nodes)
            .map(|n| {
                let s = self.sys_index[n];
                if s == FIXED {
                    self.fixed_voltage[n]
                } else {
                    x[s as usize]
                }
            })
            .collect()
    }

    /// Allocation-free variant of [`StampedSystem::expand`]: writes the
    /// leading `v.len()` circuit nodes' voltages into `v`, substituting
    /// `rail` at Dirichlet nodes instead of the voltages recorded at
    /// stamp time (every Dirichlet node of a power grid sits at the
    /// net's rail, so callers serving both nets from one stamped matrix
    /// pass the rail of the net the solve ran on). Passing a `v` of
    /// `stack.num_nodes()` entries skips the virtual rail node a
    /// resistive-pad stamp appends past the grid.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()` or `v.len() > self.num_nodes()`.
    pub fn expand_into(&self, x: &[f64], rail: f64, v: &mut [f64]) {
        assert_eq!(x.len(), self.dim(), "solution length mismatch");
        assert!(v.len() <= self.num_nodes, "voltage vector too long");
        for (n, out) in v.iter_mut().enumerate() {
            let s = self.sys_index[n];
            *out = if s == FIXED { rail } else { x[s as usize] };
        }
    }

    /// Restricts full per-node voltages to the reduced unknown vector
    /// (inverse of [`StampedSystem::expand`] on free nodes).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.num_nodes()`.
    pub fn restrict(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.num_nodes, "voltage vector length mismatch");
        let mut x = vec![0.0; self.dim()];
        for n in 0..self.num_nodes {
            let s = self.sys_index[n];
            if s != FIXED {
                x[s as usize] = v[n];
            }
        }
        x
    }

    /// Estimated heap footprint in bytes (matrix + rhs + index maps).
    pub fn memory_bytes(&self) -> usize {
        self.matrix.memory_bytes()
            + self.rhs.len() * 8
            + self.sys_index.len() * 4
            + self.fixed_voltage.len() * 8
    }
}

impl Stack3d {
    /// Assembles the MNA system for one supply net of this stack.
    ///
    /// For [`NetKind::Power`], ideal pads are folded at `vdd` and each load
    /// current is *drawn out* of its node; for [`NetKind::Ground`], pads are
    /// folded at 0 V and load currents are *injected*. With nonzero pad
    /// resistance the pad nodes stay in the system, connected to the rail by
    /// `1 / r_pad`.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::EmptyCircuit`] if folding leaves no unknowns
    /// (e.g. a 1×1×1 grid whose only node is a pad).
    pub fn stamp(&self, net: NetKind) -> Result<StampedSystem, GridError> {
        self.stamp_dynamic(net, 0.0)
    }

    /// Assembles the transient companion system `G + α·diag(C)` for one
    /// supply net: [`Stack3d::stamp`] plus each node's capacitance scaled
    /// by `alpha` added to the diagonal of its row.
    ///
    /// `alpha` is the companion coefficient of the integration rule —
    /// `1/h` for backward Euler, `2/h` for the trapezoidal rule — so the
    /// returned matrix is the one a transient stepper factors once and
    /// reuses across every step of a fixed-`h` waveform. The companion
    /// *currents* (`α·C·v_n` plus, for trapezoidal, the capacitor-current
    /// state) are per-step right-hand-side terms and are **not** stamped
    /// here; `alpha = 0.0` (or a stack without capacitance) degenerates to
    /// the static stamp.
    ///
    /// # Errors
    ///
    /// [`GridError::InvalidCapacitance`] for a negative or non-finite
    /// `alpha`; otherwise as [`Stack3d::stamp`].
    pub fn stamp_dynamic(&self, net: NetKind, alpha: f64) -> Result<StampedSystem, GridError> {
        if !(alpha.is_finite() && alpha >= 0.0) {
            return Err(GridError::InvalidCapacitance {
                what: "companion coefficient (alpha, 1/s)",
                farads: alpha,
            });
        }
        let n = self.num_nodes();
        let (w, h, t) = (self.width(), self.height(), self.tiers());
        let top = t - 1;
        let rail = match net {
            NetKind::Power => self.vdd(),
            NetKind::Ground => 0.0,
        };
        let load_sign = match net {
            NetKind::Power => -1.0,
            NetKind::Ground => 1.0,
        };

        let mut injections = vec![0.0; n];
        for (i, &l) in self.loads().iter().enumerate() {
            injections[i] = load_sign * l;
        }

        let ideal_pads = self.pad_resistance() == 0.0;
        let mut fixed = Vec::new();
        if ideal_pads {
            for (x, y) in self.pad_sites() {
                fixed.push((self.node_index(top, x as usize, y as usize), rail));
            }
        } else {
            let g_pad = 1.0 / self.pad_resistance();
            for (x, y) in self.pad_sites() {
                let node = self.node_index(top, x as usize, y as usize);
                injections[node] += g_pad * rail;
                // The diagonal pad conductance is stamped via a synthetic
                // edge to a Dirichlet rail below (handled as extra edge).
            }
        }

        // Edge iterator: in-plane wires, TSV segments, and (for resistive
        // pads) pad conductances expressed as diagonal stamps via a virtual
        // fixed node appended at index n.
        let g_pad = if ideal_pads {
            0.0
        } else {
            1.0 / self.pad_resistance()
        };
        let mut edges: Vec<(usize, usize, f64)> = Vec::new();
        for tier in 0..t {
            let gh = 1.0 / self.r_horizontal(tier);
            let gv = 1.0 / self.r_vertical(tier);
            for y in 0..h {
                for x in 0..w {
                    let a = self.node_index(tier, x, y);
                    if x + 1 < w {
                        edges.push((a, self.node_index(tier, x + 1, y), gh));
                    }
                    if y + 1 < h {
                        edges.push((a, self.node_index(tier, x, y + 1), gv));
                    }
                }
            }
        }
        let g_tsv = 1.0 / self.tsv_resistance();
        for &(x, y) in self.tsv_sites() {
            for tier in 0..t.saturating_sub(1) {
                edges.push((
                    self.node_index(tier, x as usize, y as usize),
                    self.node_index(tier + 1, x as usize, y as usize),
                    g_tsv,
                ));
            }
        }
        let (num_total, injections, fixed) = if ideal_pads {
            (n, injections, fixed)
        } else {
            // Virtual rail node n, fixed at `rail`, connected to each pad.
            let mut inj = injections;
            inj.push(0.0);
            for (x, y) in self.pad_sites() {
                let node = self.node_index(top, x as usize, y as usize);
                // Remove the direct injection added above; model as edge.
                inj[node] -= g_pad * rail;
                edges.push((node, n, g_pad));
            }
            (n + 1, inj, vec![(n, rail)])
        };

        let ground: Vec<f64> = match (alpha != 0.0, self.capacitances()) {
            (true, Some(caps)) => caps.iter().map(|&c| alpha * c).collect(),
            _ => Vec::new(),
        };
        StampedSystem::assemble_with_ground(
            num_total,
            edges.into_iter(),
            &ground,
            &injections,
            &fixed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltprop_sparse::Cholesky;

    fn solve(sys: &StampedSystem) -> Vec<f64> {
        let x = Cholesky::factor(sys.matrix()).unwrap().solve(sys.rhs());
        sys.expand(&x)
    }

    #[test]
    fn zero_load_gives_flat_vdd() {
        let s = Stack3d::builder(4, 4, 3).build().unwrap();
        let sys = s.stamp(NetKind::Power).unwrap();
        let v = solve(&sys);
        for &vi in &v {
            assert!((vi - 1.8).abs() < 1e-12);
        }
    }

    #[test]
    fn loads_pull_voltage_below_vdd() {
        let s = Stack3d::builder(6, 6, 3)
            .uniform_load(1e-3)
            .build()
            .unwrap();
        let sys = s.stamp(NetKind::Power).unwrap();
        let v = solve(&sys);
        let top_pad = s.node_index(2, 0, 0);
        assert!((v[top_pad] - 1.8).abs() < 1e-12, "pad stays at VDD");
        // Bottom-tier center sags the most.
        let bottom_center = s.node_index(0, 3, 3);
        assert!(v[bottom_center] < 1.8 - 1e-5);
        assert!(v.iter().all(|&vi| vi <= 1.8 + 1e-12 && vi > 0.0));
    }

    #[test]
    fn ground_net_mirrors_power_net() {
        let s = Stack3d::builder(5, 5, 2)
            .uniform_load(1e-3)
            .build()
            .unwrap();
        let vp = solve(&s.stamp(NetKind::Power).unwrap());
        let vg = solve(&s.stamp(NetKind::Ground).unwrap());
        for (p, g) in vp.iter().zip(&vg) {
            // V_gnd bounce equals VDD sag by symmetry of the two nets.
            assert!((1.8 - p - g).abs() < 1e-10);
        }
    }

    #[test]
    fn kcl_total_current_balances() {
        // Sum of pad currents must equal total load current.
        let s = Stack3d::builder(6, 4, 3)
            .load_profile(
                crate::LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 1e-3,
                },
                9,
            )
            .build()
            .unwrap();
        let sys = s.stamp(NetKind::Power).unwrap();
        let v = solve(&sys);
        // Pad current = sum over pad neighbors of (VDD - V_neighbor) * g.
        let top = s.tiers() - 1;
        let mut pad_current = 0.0;
        for (x, y) in s.pad_sites() {
            let (x, y) = (x as usize, y as usize);
            let vp = 1.8;
            let gh = 1.0 / s.r_horizontal(top);
            let gv = 1.0 / s.r_vertical(top);
            if x > 0 {
                pad_current += (vp - v[s.node_index(top, x - 1, y)]) * gh;
            }
            if x + 1 < s.width() {
                pad_current += (vp - v[s.node_index(top, x + 1, y)]) * gh;
            }
            if y > 0 {
                pad_current += (vp - v[s.node_index(top, x, y - 1)]) * gv;
            }
            if y + 1 < s.height() {
                pad_current += (vp - v[s.node_index(top, x, y + 1)]) * gv;
            }
            // TSV below the pad.
            let g_tsv = 1.0 / s.tsv_resistance();
            pad_current += (vp - v[s.node_index(top - 1, x, y)]) * g_tsv;
        }
        assert!(
            (pad_current - s.total_load()).abs() < 1e-9 * s.total_load().max(1.0),
            "pad current {pad_current} != total load {}",
            s.total_load()
        );
    }

    #[test]
    fn resistive_pads_sag_at_the_pad() {
        let s = Stack3d::builder(4, 4, 2)
            .uniform_load(1e-3)
            .pad_resistance(0.5)
            .build()
            .unwrap();
        let sys = s.stamp(NetKind::Power).unwrap();
        let v = solve(&sys);
        let pad = s.node_index(1, 0, 0);
        // With pad resistance the pad node itself drops below VDD.
        assert!(v[pad] < 1.8 - 1e-6);
        // The system includes every grid node plus the virtual rail.
        assert_eq!(sys.num_nodes(), s.num_nodes() + 1);
    }

    #[test]
    fn reduced_index_skips_pads() {
        let s = Stack3d::builder(4, 4, 2).build().unwrap();
        let sys = s.stamp(NetKind::Power).unwrap();
        let top_pad = s.node_index(1, 0, 0);
        assert_eq!(sys.reduced_index(top_pad), None);
        let bottom = s.node_index(0, 0, 0);
        assert!(sys.reduced_index(bottom).is_some());
        assert_eq!(sys.dim(), s.num_nodes() - s.num_pads());
    }

    #[test]
    fn expand_restrict_roundtrip() {
        let s = Stack3d::builder(3, 3, 2)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let sys = s.stamp(NetKind::Power).unwrap();
        let x: Vec<f64> = (0..sys.dim()).map(|i| i as f64 * 0.01).collect();
        let v = sys.expand(&x);
        assert_eq!(sys.restrict(&v), x);
    }

    #[test]
    fn matrix_is_spd_shaped() {
        let s = Stack3d::builder(5, 4, 3)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let sys = s.stamp(NetKind::Power).unwrap();
        let m = sys.matrix();
        assert!(m.is_symmetric(1e-12));
        assert!(m.diagonal_dominance() >= 1.0);
        // Rows adjacent to folded pads are strictly dominant.
        assert!(Cholesky::factor(m).is_ok());
    }

    #[test]
    fn single_node_all_pad_is_empty_circuit() {
        let s = Stack3d::builder(1, 1, 1)
            .pad_sites(vec![(0, 0)])
            .build()
            .unwrap();
        assert!(matches!(
            s.stamp(NetKind::Power),
            Err(GridError::EmptyCircuit)
        ));
    }

    #[test]
    fn companion_stamp_adds_alpha_c_to_diagonal_only() {
        let s = Stack3d::builder(4, 4, 2)
            .uniform_load(1e-4)
            .grid_capacitance(2e-12)
            .decap(0, 1, 1, 1e-10)
            .build()
            .unwrap();
        let base = s.stamp(NetKind::Power).unwrap();
        let alpha = 1.0 / 1e-9; // h = 1 ns
        let companion = s.stamp_dynamic(NetKind::Power, alpha).unwrap();
        assert_eq!(base.dim(), companion.dim());
        assert_eq!(base.rhs(), companion.rhs(), "companion rhs is per-step");
        let caps = s.capacitances().unwrap();
        for node in 0..s.num_nodes() {
            let (Some(i), Some(j)) = (base.reduced_index(node), companion.reduced_index(node))
            else {
                continue;
            };
            assert_eq!(i, j);
            let expect = base.matrix().get(i, i) + alpha * caps[node];
            assert!(
                (companion.matrix().get(i, i) - expect).abs() < 1e-9 * expect.abs(),
                "diagonal of node {node} off"
            );
            let (cols, vals) = base.matrix().row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                if c as usize != i {
                    assert_eq!(companion.matrix().get(i, c as usize), v);
                }
            }
        }
        assert!(companion.matrix().is_symmetric(1e-12));
        assert!(Cholesky::factor(companion.matrix()).is_ok());
    }

    #[test]
    fn companion_stamp_without_caps_matches_static() {
        let s = Stack3d::builder(4, 4, 2)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let base = s.stamp(NetKind::Power).unwrap();
        let dynamic = s.stamp_dynamic(NetKind::Power, 1e9).unwrap();
        assert_eq!(base.matrix().values(), dynamic.matrix().values());
        assert_eq!(base.rhs(), dynamic.rhs());
        assert!(matches!(
            s.stamp_dynamic(NetKind::Power, -1.0),
            Err(GridError::InvalidCapacitance { .. })
        ));
    }

    #[test]
    fn tsv_dominates_matrix_rows() {
        // The §III-A observation: TSV conductance (20 S) dwarfs wire
        // conductance (50 S? no — 1/0.02 = 50). Use a slower wire to match
        // the paper's regime where g_tsv >> g_wire.
        let s = Stack3d::builder(4, 4, 3)
            .wire_resistance(1.0)
            .tsv_resistance(0.05)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let sys = s.stamp(NetKind::Power).unwrap();
        // Minimum dominance ratio collapses toward 1 because of TSV rows.
        let dom = sys.matrix().diagonal_dominance();
        assert!(dom < 1.2, "TSV rows should be barely dominant, got {dom}");
    }
}
