//! Row-band shard partitioning of a tier footprint.
//!
//! The row-based sweeps are row-local except across the red/black color
//! boundary: a row couples only to the rows directly above and below it.
//! That locality lets a large footprint split into `N` contiguous
//! **row bands** along the y-axis, each extended by a 1-row halo image of
//! its neighbours' boundary rows. A shard sweeps its own rows reading
//! neighbour rows from the halo; between the red and black half-sweeps
//! only the halo rows of the freshly-updated color need exchanging.
//!
//! A [`ShardPlan`] is the pure partition descriptor: which rows each
//! shard **owns** (every row — and therefore every load and pad site —
//! belongs to exactly one shard) and which halo rows it mirrors. The
//! solver crates build their execution state (halo buffers, per-band
//! segment lists) on top of it.

/// One contiguous row band of a [`ShardPlan`].
///
/// The band owns rows `y0 .. y1` exclusively: their nodes, loads, and
/// pads belong to this shard and no other. When a neighbouring band
/// exists, the band additionally mirrors that neighbour's boundary row
/// as a read-only halo (`lo .. y0` and `y1 .. hi`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBand {
    y0: usize,
    y1: usize,
    halo_above: bool,
    halo_below: bool,
}

impl ShardBand {
    /// First owned row.
    pub fn y0(&self) -> usize {
        self.y0
    }

    /// One past the last owned row.
    pub fn y1(&self) -> usize {
        self.y1
    }

    /// Number of owned rows (always at least 1).
    pub fn rows(&self) -> usize {
        self.y1 - self.y0
    }

    /// Whether the band mirrors the row above (`y0 > 0`).
    pub fn halo_above(&self) -> bool {
        self.halo_above
    }

    /// Whether the band mirrors the row below (`y1 < height`).
    pub fn halo_below(&self) -> bool {
        self.halo_below
    }

    /// First halo-extended row (`y0 - 1` with a halo above, else `y0`).
    pub fn lo(&self) -> usize {
        self.y0 - usize::from(self.halo_above)
    }

    /// One past the last halo-extended row (`y1 + 1` with a halo below,
    /// else `y1`).
    pub fn hi(&self) -> usize {
        self.y1 + usize::from(self.halo_below)
    }

    /// Number of halo-extended rows (`hi - lo`).
    pub fn span(&self) -> usize {
        self.hi() - self.lo()
    }
}

/// A row-band partition of a `height`-row tier footprint into `N`
/// contiguous shards with 1-row halos.
///
/// Bands are near-equal: with `height = q·N + r`, the first `r` bands
/// carry `q + 1` rows and the rest `q`. The requested shard count is
/// clamped to `[1, height]` so every band owns at least one row.
///
/// # Example
///
/// ```
/// use voltprop_grid::ShardPlan;
///
/// let plan = ShardPlan::new(10, 4);
/// assert_eq!(plan.num_shards(), 4);
/// let rows: Vec<usize> = plan.bands().iter().map(|b| b.rows()).collect();
/// assert_eq!(rows, [3, 3, 2, 2]);
/// assert_eq!(plan.owner_of_row(0), 0);
/// assert_eq!(plan.owner_of_row(9), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    height: usize,
    bands: Vec<ShardBand>,
}

impl ShardPlan {
    /// Partitions `height` rows into `shards` near-equal contiguous
    /// bands (clamped to `[1, height]`). A zero `height` yields an empty
    /// plan with no bands.
    pub fn new(height: usize, shards: usize) -> ShardPlan {
        let mut bands = Vec::new();
        if height > 0 {
            let s = shards.clamp(1, height);
            let base = height / s;
            let rem = height % s;
            let mut y0 = 0usize;
            for i in 0..s {
                let rows = base + usize::from(i < rem);
                let y1 = y0 + rows;
                bands.push(ShardBand {
                    y0,
                    y1,
                    halo_above: y0 > 0,
                    halo_below: y1 < height,
                });
                y0 = y1;
            }
        }
        ShardPlan { height, bands }
    }

    /// Number of bands in the plan.
    pub fn num_shards(&self) -> usize {
        self.bands.len()
    }

    /// Total row count the plan partitions.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The bands, in ascending row order.
    pub fn bands(&self) -> &[ShardBand] {
        &self.bands
    }

    /// The index of the band owning row `y` — the unique shard a row's
    /// nodes, loads, and pads belong to. O(1).
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    pub fn owner_of_row(&self, y: usize) -> usize {
        assert!(y < self.height, "row {y} outside {} rows", self.height);
        let s = self.bands.len();
        let base = self.height / s;
        let rem = self.height % s;
        let split = rem * (base + 1);
        if y < split {
            y / (base + 1)
        } else {
            rem + (y - split) / base
        }
    }

    /// Estimated heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bands.capacity() * std::mem::size_of::<ShardBand>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_cover_every_row_exactly_once() {
        for height in [1usize, 2, 3, 7, 16, 33] {
            for shards in [1usize, 2, 3, 4, 9, 64] {
                let plan = ShardPlan::new(height, shards);
                assert_eq!(plan.num_shards(), shards.clamp(1, height));
                let mut y = 0usize;
                for (s, band) in plan.bands().iter().enumerate() {
                    assert_eq!(band.y0(), y, "h={height} s={shards}");
                    assert!(band.rows() >= 1);
                    for row in band.y0()..band.y1() {
                        assert_eq!(plan.owner_of_row(row), s);
                    }
                    y = band.y1();
                }
                assert_eq!(y, height);
            }
        }
    }

    #[test]
    fn bands_are_near_equal() {
        let plan = ShardPlan::new(100, 8);
        let rows: Vec<usize> = plan.bands().iter().map(ShardBand::rows).collect();
        assert_eq!(rows.iter().sum::<usize>(), 100);
        let (min, max) = (rows.iter().min().unwrap(), rows.iter().max().unwrap());
        assert!(max - min <= 1, "rows {rows:?}");
    }

    #[test]
    fn halos_exist_exactly_at_interior_boundaries() {
        let plan = ShardPlan::new(9, 3);
        let b = plan.bands();
        assert!(!b[0].halo_above() && b[0].halo_below());
        assert!(b[1].halo_above() && b[1].halo_below());
        assert!(b[2].halo_above() && !b[2].halo_below());
        assert_eq!((b[0].lo(), b[0].hi()), (0, 4));
        assert_eq!((b[1].lo(), b[1].hi()), (2, 7));
        assert_eq!((b[2].lo(), b[2].hi()), (5, 9));
        assert_eq!(b[1].span(), 5);
    }

    #[test]
    fn single_shard_has_no_halo() {
        let plan = ShardPlan::new(5, 1);
        let b = plan.bands()[0];
        assert_eq!((b.lo(), b.hi()), (0, 5));
        assert!(!b.halo_above() && !b.halo_below());
    }

    #[test]
    fn shard_count_clamps_to_height() {
        let plan = ShardPlan::new(3, 10);
        assert_eq!(plan.num_shards(), 3);
        assert!(plan.bands().iter().all(|b| b.rows() == 1));
        assert_eq!(ShardPlan::new(4, 0).num_shards(), 1);
    }

    #[test]
    fn empty_height_yields_empty_plan() {
        let plan = ShardPlan::new(0, 4);
        assert_eq!(plan.num_shards(), 0);
        assert_eq!(plan.height(), 0);
    }
}
