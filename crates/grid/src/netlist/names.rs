//! The `n<tier>_<x>_<y>` node naming convention used when exporting
//! structured stacks to netlists (modeled on the IBM power grid benchmark
//! names).

/// Formats the canonical name for a grid node.
///
/// # Example
///
/// ```
/// assert_eq!(voltprop_grid::netlist::names::node_name(2, 17, 3), "n2_17_3");
/// ```
pub fn node_name(tier: usize, x: usize, y: usize) -> String {
    format!("n{tier}_{x}_{y}")
}

/// Parses a canonical node name back into `(tier, x, y)`.
///
/// Returns `None` for names that do not follow the convention.
///
/// # Example
///
/// ```
/// use voltprop_grid::netlist::names::parse_node_name;
/// assert_eq!(parse_node_name("n2_17_3"), Some((2, 17, 3)));
/// assert_eq!(parse_node_name("vdd_rail"), None);
/// ```
pub fn parse_node_name(name: &str) -> Option<(usize, usize, usize)> {
    let rest = name.strip_prefix('n')?;
    let mut parts = rest.split('_');
    let tier = parts.next()?.parse().ok()?;
    let x = parts.next()?.parse().ok()?;
    let y = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((tier, x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for (t, x, y) in [(0, 0, 0), (2, 17, 3), (15, 1999, 1999)] {
            assert_eq!(parse_node_name(&node_name(t, x, y)), Some((t, x, y)));
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "n", "n1", "n1_2", "n1_2_3_4", "m1_2_3", "n1_2_x", "n-1_2_3", "n1.5_2_3",
        ] {
            assert_eq!(parse_node_name(bad), None, "{bad:?} should not parse");
        }
    }
}
