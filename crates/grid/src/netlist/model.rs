use crate::{GridError, StampedSystem};
use std::collections::HashMap;

/// One netlist card.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// `Rname a b ohms`
    Resistor {
        /// Card name (starts with `R`).
        name: String,
        /// First terminal node.
        a: String,
        /// Second terminal node.
        b: String,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// `Iname from to amps` — conventional current flows `from → to`
    /// through the source (drawn out of `from`, injected into `to`).
    CurrentSource {
        /// Card name (starts with `I`).
        name: String,
        /// Positive terminal (current is drawn from this node).
        from: String,
        /// Negative terminal.
        to: String,
        /// Source current in amperes.
        amps: f64,
    },
    /// `Vname pos neg volts` — ideal DC source.
    VoltageSource {
        /// Card name (starts with `V`).
        name: String,
        /// Positive terminal.
        pos: String,
        /// Negative terminal.
        neg: String,
        /// Source voltage in volts.
        volts: f64,
    },
}

impl Element {
    /// The card name.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::CurrentSource { name, .. }
            | Element::VoltageSource { name, .. } => name,
        }
    }
}

/// A parsed netlist: an ordered list of cards plus an optional title
/// comment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    pub(crate) title: Option<String>,
    pub(crate) elements: Vec<Element>,
}

impl Netlist {
    /// Creates an empty netlist with an optional title.
    pub fn new(title: Option<String>) -> Self {
        Netlist {
            title,
            elements: Vec::new(),
        }
    }

    /// The title comment, if any.
    pub fn title(&self) -> Option<&str> {
        self.title.as_deref()
    }

    /// The parsed cards in file order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Appends a card.
    pub fn push(&mut self, e: Element) {
        self.elements.push(e);
    }

    /// Number of cards.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the netlist has no cards.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }
}

/// Whether a node token denotes the ground reference.
pub(crate) fn is_ground(token: &str) -> bool {
    token == "0" || token.eq_ignore_ascii_case("gnd")
}

/// An elaborated circuit: node names interned to indices, elements resolved,
/// Dirichlet (voltage-source) nodes identified.
///
/// The ground reference is *not* an interned node; it appears as a synthetic
/// extra node only during stamping.
#[derive(Debug, Clone)]
pub struct NetlistCircuit {
    names: Vec<String>,
    index: HashMap<String, u32>,
    /// Resistive edges `(a, b, conductance)`; `u32::MAX` encodes ground.
    edges: Vec<(u32, u32, f64)>,
    /// Per-node current injection (positive into the node).
    injections: Vec<f64>,
    /// Dirichlet nodes from grounded voltage sources: `(node, volts)`.
    fixed: Vec<(u32, f64)>,
}

const GROUND: u32 = u32::MAX;

impl NetlistCircuit {
    /// Resolves node names and element semantics from a parsed netlist.
    ///
    /// # Errors
    ///
    /// * [`GridError::InvalidResistance`] for non-positive resistor values.
    /// * [`GridError::UngroundedVoltageSource`] if a `V` card touches no
    ///   ground terminal (PDN benchmarks only use grounded sources).
    /// * [`GridError::ConflictingVoltageSource`] if two sources pin one node
    ///   to different voltages.
    /// * [`GridError::EmptyCircuit`] if the netlist has no cards.
    pub fn elaborate(netlist: &Netlist) -> Result<Self, GridError> {
        if netlist.is_empty() {
            return Err(GridError::EmptyCircuit);
        }
        let mut c = NetlistCircuit {
            names: Vec::new(),
            index: HashMap::new(),
            edges: Vec::new(),
            injections: Vec::new(),
            fixed: Vec::new(),
        };
        let mut fixed_map: HashMap<u32, f64> = HashMap::new();
        for e in &netlist.elements {
            match e {
                Element::Resistor {
                    name: _,
                    a,
                    b,
                    ohms,
                } => {
                    if !(ohms.is_finite() && *ohms > 0.0) {
                        return Err(GridError::InvalidResistance {
                            what: "resistor",
                            ohms: *ohms,
                        });
                    }
                    let ia = c.intern(a);
                    let ib = c.intern(b);
                    c.edges.push((ia, ib, 1.0 / ohms));
                }
                Element::CurrentSource {
                    name: _,
                    from,
                    to,
                    amps,
                } => {
                    let ifrom = c.intern(from);
                    let ito = c.intern(to);
                    if ifrom != GROUND {
                        c.injections[ifrom as usize] -= amps;
                    }
                    if ito != GROUND {
                        c.injections[ito as usize] += amps;
                    }
                }
                Element::VoltageSource {
                    name,
                    pos,
                    neg,
                    volts,
                } => {
                    let (node, value) = if is_ground(neg) {
                        (c.intern(pos), *volts)
                    } else if is_ground(pos) {
                        (c.intern(neg), -*volts)
                    } else {
                        return Err(GridError::UngroundedVoltageSource { name: name.clone() });
                    };
                    if node == GROUND {
                        // V between ground and ground: only valid if 0 V.
                        if *volts != 0.0 {
                            return Err(GridError::ConflictingVoltageSource { node: "0".into() });
                        }
                        continue;
                    }
                    match fixed_map.get(&node) {
                        Some(&existing) if existing != value => {
                            return Err(GridError::ConflictingVoltageSource {
                                node: c.names[node as usize].clone(),
                            });
                        }
                        Some(_) => {}
                        None => {
                            fixed_map.insert(node, value);
                        }
                    }
                }
            }
        }
        let mut fixed: Vec<(u32, f64)> = fixed_map.into_iter().collect();
        fixed.sort_unstable_by_key(|&(n, _)| n);
        c.fixed = fixed;
        Ok(c)
    }

    fn intern(&mut self, token: &str) -> u32 {
        if is_ground(token) {
            return GROUND;
        }
        if let Some(&i) = self.index.get(token) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(token.to_string());
        self.index.insert(token.to_string(), i);
        self.injections.push(0.0);
        i
    }

    /// Number of named (non-ground) nodes.
    pub fn num_nodes(&self) -> usize {
        self.names.len()
    }

    /// All node names in interning order.
    pub fn node_names(&self) -> &[String] {
        &self.names
    }

    /// The index of a named node.
    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).map(|&i| i as usize)
    }

    /// Looks up a node's voltage in a full solution vector (as returned by
    /// [`NetlistCircuit::solve_dense`] or
    /// [`StampedSystem::expand`](crate::StampedSystem::expand) on this
    /// circuit's system).
    pub fn voltage_of(&self, full: &[f64], name: &str) -> Option<f64> {
        self.node_index(name).map(|i| full[i])
    }

    /// Verifies that every node has a resistive path to a voltage reference
    /// (ground or a voltage-source node).
    ///
    /// # Errors
    ///
    /// Returns [`GridError::DisconnectedNodes`] listing how many nodes are
    /// floating.
    pub fn check_connectivity(&self) -> Result<(), GridError> {
        let n = self.num_nodes();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut grounded: Vec<u32> = Vec::new();
        for &(a, b, _) in &self.edges {
            match (a, b) {
                (GROUND, GROUND) => {}
                (GROUND, x) | (x, GROUND) => grounded.push(x),
                (x, y) => {
                    adj[x as usize].push(y);
                    adj[y as usize].push(x);
                }
            }
        }
        let mut seen = vec![false; n];
        let mut queue: Vec<u32> = Vec::new();
        for &(node, _) in &self.fixed {
            if !seen[node as usize] {
                seen[node as usize] = true;
                queue.push(node);
            }
        }
        for &node in &grounded {
            if !seen[node as usize] {
                seen[node as usize] = true;
                queue.push(node);
            }
        }
        while let Some(v) = queue.pop() {
            for &u in &adj[v as usize] {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push(u);
                }
            }
        }
        let unreachable: Vec<usize> = (0..n).filter(|&i| !seen[i]).collect();
        if unreachable.is_empty() {
            Ok(())
        } else {
            Err(GridError::DisconnectedNodes {
                count: unreachable.len(),
                example: self.names[unreachable[0]].clone(),
            })
        }
    }

    /// Assembles the MNA system for this circuit (ground folded at 0 V,
    /// voltage-source nodes folded at their source values).
    ///
    /// # Errors
    ///
    /// * [`GridError::DisconnectedNodes`] if some node floats (the system
    ///   would be singular).
    /// * [`GridError::EmptyCircuit`] if folding leaves no unknowns.
    pub fn stamp(&self) -> Result<StampedSystem, GridError> {
        self.check_connectivity()?;
        let n = self.num_nodes();
        // Synthetic ground node at index n.
        let ground = n;
        let edges = self.edges.iter().map(move |&(a, b, g)| {
            let a = if a == GROUND { ground } else { a as usize };
            let b = if b == GROUND { ground } else { b as usize };
            (a, b, g)
        });
        let mut injections = self.injections.clone();
        injections.push(0.0);
        let mut fixed: Vec<(usize, f64)> =
            self.fixed.iter().map(|&(i, v)| (i as usize, v)).collect();
        fixed.push((ground, 0.0));
        StampedSystem::assemble(n + 1, edges, &injections, &fixed)
    }

    /// Convenience: stamp, factor with sparse Cholesky, and return the full
    /// per-node voltage vector (index-aligned with
    /// [`NetlistCircuit::node_names`]).
    ///
    /// Intended for examples and tests on small circuits; large grids should
    /// go through `voltprop-solvers`.
    ///
    /// # Errors
    ///
    /// Propagates stamping errors; returns
    /// [`GridError::DisconnectedNodes`] if the factorization reports a
    /// singular system despite connectivity (pathological values).
    pub fn solve_dense(&self) -> Result<Vec<f64>, GridError> {
        let sys = self.stamp()?;
        let chol = voltprop_sparse::Cholesky::factor(sys.matrix()).map_err(|_| {
            GridError::DisconnectedNodes {
                count: 0,
                example: "(singular system)".into(),
            }
        })?;
        let x = chol.solve(sys.rhs());
        let full = sys.expand(&x);
        Ok(full[..self.num_nodes()].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn divider() -> Netlist {
        let mut n = Netlist::new(Some("divider".into()));
        n.push(Element::VoltageSource {
            name: "V1".into(),
            pos: "vdd".into(),
            neg: "0".into(),
            volts: 2.0,
        });
        n.push(Element::Resistor {
            name: "R1".into(),
            a: "vdd".into(),
            b: "mid".into(),
            ohms: 1.0,
        });
        n.push(Element::Resistor {
            name: "R2".into(),
            a: "mid".into(),
            b: "0".into(),
            ohms: 3.0,
        });
        n
    }

    #[test]
    fn divider_solves_correctly() {
        let c = NetlistCircuit::elaborate(&divider()).unwrap();
        let v = c.solve_dense().unwrap();
        assert!((c.voltage_of(&v, "mid").unwrap() - 1.5).abs() < 1e-12);
        assert!((c.voltage_of(&v, "vdd").unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn current_source_superposition() {
        // 1 Ω to ground, 1 A injected → 1 V.
        let mut n = Netlist::new(None);
        n.push(Element::Resistor {
            name: "R1".into(),
            a: "a".into(),
            b: "0".into(),
            ohms: 1.0,
        });
        n.push(Element::CurrentSource {
            name: "I1".into(),
            from: "0".into(),
            to: "a".into(),
            amps: 1.0,
        });
        let c = NetlistCircuit::elaborate(&n).unwrap();
        let v = c.solve_dense().unwrap();
        assert!((c.voltage_of(&v, "a").unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn load_draws_voltage_down() {
        // PDN-style card: current source from node to ground draws current.
        let mut n = divider();
        n.push(Element::CurrentSource {
            name: "I1".into(),
            from: "mid".into(),
            to: "0".into(),
            amps: 0.5,
        });
        let c = NetlistCircuit::elaborate(&n).unwrap();
        let v = c.solve_dense().unwrap();
        // Superposition: 1.5 V - 0.5 A * (1 || 3 = 0.75 Ω) = 1.125 V.
        assert!((c.voltage_of(&v, "mid").unwrap() - 1.125).abs() < 1e-12);
    }

    #[test]
    fn reversed_voltage_source_negates() {
        let mut n = Netlist::new(None);
        n.push(Element::VoltageSource {
            name: "V1".into(),
            pos: "0".into(),
            neg: "x".into(),
            volts: 1.8,
        });
        n.push(Element::Resistor {
            name: "R1".into(),
            a: "x".into(),
            b: "mid".into(),
            ohms: 1.0,
        });
        n.push(Element::Resistor {
            name: "R2".into(),
            a: "mid".into(),
            b: "0".into(),
            ohms: 1.0,
        });
        let c = NetlistCircuit::elaborate(&n).unwrap();
        let v = c.solve_dense().unwrap();
        assert!((c.voltage_of(&v, "x").unwrap() + 1.8).abs() < 1e-12);
        assert!((c.voltage_of(&v, "mid").unwrap() + 0.9).abs() < 1e-12);
    }

    #[test]
    fn ungrounded_voltage_source_rejected() {
        let mut n = Netlist::new(None);
        n.push(Element::VoltageSource {
            name: "V9".into(),
            pos: "a".into(),
            neg: "b".into(),
            volts: 1.0,
        });
        assert!(matches!(
            NetlistCircuit::elaborate(&n).unwrap_err(),
            GridError::UngroundedVoltageSource { .. }
        ));
    }

    #[test]
    fn conflicting_sources_rejected() {
        let mut n = Netlist::new(None);
        for (name, volts) in [("V1", 1.0), ("V2", 2.0)] {
            n.push(Element::VoltageSource {
                name: name.into(),
                pos: "x".into(),
                neg: "0".into(),
                volts,
            });
        }
        assert!(matches!(
            NetlistCircuit::elaborate(&n).unwrap_err(),
            GridError::ConflictingVoltageSource { .. }
        ));
    }

    #[test]
    fn duplicate_identical_sources_allowed() {
        let mut n = divider();
        n.push(Element::VoltageSource {
            name: "V2".into(),
            pos: "vdd".into(),
            neg: "0".into(),
            volts: 2.0,
        });
        assert!(NetlistCircuit::elaborate(&n).is_ok());
    }

    #[test]
    fn zero_resistance_rejected() {
        let mut n = Netlist::new(None);
        n.push(Element::Resistor {
            name: "R1".into(),
            a: "a".into(),
            b: "0".into(),
            ohms: 0.0,
        });
        assert!(matches!(
            NetlistCircuit::elaborate(&n).unwrap_err(),
            GridError::InvalidResistance { .. }
        ));
    }

    #[test]
    fn floating_node_detected() {
        let mut n = divider();
        // Two nodes connected to each other but to nothing else.
        n.push(Element::Resistor {
            name: "R9".into(),
            a: "island1".into(),
            b: "island2".into(),
            ohms: 1.0,
        });
        let c = NetlistCircuit::elaborate(&n).unwrap();
        let err = c.stamp().unwrap_err();
        assert!(matches!(err, GridError::DisconnectedNodes { count: 2, .. }));
    }

    #[test]
    fn empty_netlist_rejected() {
        assert_eq!(
            NetlistCircuit::elaborate(&Netlist::new(None)).unwrap_err(),
            GridError::EmptyCircuit
        );
    }

    #[test]
    fn gnd_alias_is_ground() {
        let mut n = Netlist::new(None);
        n.push(Element::Resistor {
            name: "R1".into(),
            a: "a".into(),
            b: "GND".into(),
            ohms: 2.0,
        });
        n.push(Element::CurrentSource {
            name: "I1".into(),
            from: "gnd".into(),
            to: "a".into(),
            amps: 0.5,
        });
        let c = NetlistCircuit::elaborate(&n).unwrap();
        let v = c.solve_dense().unwrap();
        assert!((c.voltage_of(&v, "a").unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(c.num_nodes(), 1);
    }
}
