//! SPICE-subset netlist support (the IBM power grid benchmark dialect).
//!
//! The IBM TAU 2011 power grid benchmarks describe resistive PDNs with three
//! card types — resistors, DC current sources, DC voltage sources — plus
//! `.op`/`.end` directives and `*` comments. This module provides:
//!
//! * [`Netlist`] — the parsed card list ([`parse`](Netlist::parse) /
//!   [`to_spice`](Netlist::to_spice)).
//! * [`NetlistCircuit`] — an elaborated circuit graph with interned node
//!   names, ready to [`stamp`](NetlistCircuit::stamp) into a
//!   [`StampedSystem`](crate::StampedSystem).
//! * Conversions to and from [`Stack3d`](crate::Stack3d) using the
//!   `n<tier>_<x>_<y>` node naming convention.
//!
//! # Example
//!
//! ```
//! use voltprop_grid::{Netlist, NetlistCircuit};
//!
//! # fn main() -> Result<(), voltprop_grid::GridError> {
//! let src = "\
//! * tiny two-node divider
//! R1 vdd_rail n1 1.0
//! R2 n1 0 1.0
//! V1 vdd_rail 0 1.8
//! .op
//! .end
//! ";
//! let netlist = Netlist::parse(src)?;
//! let circuit = NetlistCircuit::elaborate(&netlist)?;
//! let v = circuit.solve_dense()?; // small helper for examples/tests
//! assert!((circuit.voltage_of(&v, "n1").unwrap() - 0.9).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod model;
pub mod names;
mod parser;
mod writer;

pub use model::{Element, Netlist, NetlistCircuit};
