use super::model::{Element, Netlist};
use crate::GridError;

impl Netlist {
    /// Parses SPICE-subset source text.
    ///
    /// Supported syntax:
    ///
    /// * `*` comments (a leading comment becomes the [title](Netlist::title));
    /// * `R<id> a b ohms`, `I<id> from to amps`, `V<id> pos neg volts`
    ///   (case-insensitive first letter);
    /// * numeric values with SPICE engineering suffixes
    ///   (`f p n u m k meg g t`, e.g. `0.05`, `50m`, `1.2K`, `3MEG`);
    /// * `.op`, `.end`, `.title`, `.option` directives (accepted, ignored).
    ///
    /// # Errors
    ///
    /// Returns [`GridError::Parse`] with the 1-based line number for
    /// malformed cards, unknown element types, or unparsable values.
    ///
    /// # Example
    ///
    /// ```
    /// use voltprop_grid::Netlist;
    ///
    /// # fn main() -> Result<(), voltprop_grid::GridError> {
    /// let n = Netlist::parse("* t\nR1 a 0 50m\n.end\n")?;
    /// assert_eq!(n.len(), 1);
    /// assert_eq!(n.title(), Some("t"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse(source: &str) -> Result<Netlist, GridError> {
        let mut netlist = Netlist::new(None);
        for (lineno, raw) in source.lines().enumerate() {
            let line = raw.trim();
            let lineno = lineno + 1;
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('*') {
                if netlist.title.is_none() && netlist.is_empty() {
                    let t = comment.trim();
                    if !t.is_empty() {
                        netlist.title = Some(t.to_string());
                    }
                }
                continue;
            }
            if line.starts_with('.') {
                let directive = line
                    .split_whitespace()
                    .next()
                    .unwrap_or(".")
                    .to_ascii_lowercase();
                match directive.as_str() {
                    ".op" | ".end" | ".title" | ".option" | ".options" => continue,
                    other => {
                        return Err(GridError::Parse {
                            line: lineno,
                            message: format!("unsupported directive {other}"),
                        })
                    }
                }
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            if tokens.len() != 4 {
                return Err(GridError::Parse {
                    line: lineno,
                    message: format!(
                        "expected `NAME node node value`, found {} token(s)",
                        tokens.len()
                    ),
                });
            }
            let name = tokens[0].to_string();
            let a = tokens[1].to_string();
            let b = tokens[2].to_string();
            let value = parse_value(tokens[3]).ok_or_else(|| GridError::Parse {
                line: lineno,
                message: format!("cannot parse value `{}`", tokens[3]),
            })?;
            let kind = name.chars().next().unwrap_or(' ').to_ascii_uppercase();
            let element = match kind {
                'R' => Element::Resistor {
                    name,
                    a,
                    b,
                    ohms: value,
                },
                'I' => Element::CurrentSource {
                    name,
                    from: a,
                    to: b,
                    amps: value,
                },
                'V' => Element::VoltageSource {
                    name,
                    pos: a,
                    neg: b,
                    volts: value,
                },
                other => {
                    return Err(GridError::Parse {
                        line: lineno,
                        message: format!("unknown element type `{other}`"),
                    })
                }
            };
            netlist.push(element);
        }
        Ok(netlist)
    }
}

/// Parses a SPICE number: a float with an optional engineering suffix.
pub(crate) fn parse_value(token: &str) -> Option<f64> {
    let lower = token.to_ascii_lowercase();
    // Longest suffix first so `meg` isn't read as milli + "eg".
    const SUFFIXES: &[(&str, f64)] = &[
        ("meg", 1e6),
        ("f", 1e-15),
        ("p", 1e-12),
        ("n", 1e-9),
        ("u", 1e-6),
        ("m", 1e-3),
        ("k", 1e3),
        ("g", 1e9),
        ("t", 1e12),
    ];
    for (suffix, scale) in SUFFIXES {
        if let Some(stem) = lower.strip_suffix(suffix) {
            if let Ok(v) = stem.parse::<f64>() {
                return Some(v * scale);
            }
        }
    }
    lower.parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_card_types() {
        let src = "\
* IBM-style fragment
R1 n0_1_2 n0_1_3 0.05
i7 n0_1_2 0 3.5m
Vdd n2_0_0 0 1.8
.op
.end
";
        let n = Netlist::parse(src).unwrap();
        assert_eq!(n.len(), 3);
        assert_eq!(n.title(), Some("IBM-style fragment"));
        match &n.elements()[0] {
            Element::Resistor { ohms, .. } => assert_eq!(*ohms, 0.05),
            other => panic!("expected resistor, got {other:?}"),
        }
        match &n.elements()[1] {
            Element::CurrentSource { amps, .. } => assert!((amps - 3.5e-3).abs() < 1e-15),
            other => panic!("expected current source, got {other:?}"),
        }
        match &n.elements()[2] {
            Element::VoltageSource { volts, .. } => assert_eq!(*volts, 1.8),
            other => panic!("expected voltage source, got {other:?}"),
        }
    }

    #[test]
    fn engineering_suffixes() {
        assert_eq!(parse_value("50m"), Some(0.05));
        assert_eq!(parse_value("1.2K"), Some(1200.0));
        assert_eq!(parse_value("3MEG"), Some(3e6));
        assert_eq!(parse_value("2u"), Some(2e-6));
        assert_eq!(parse_value("4n"), Some(4e-9));
        assert_eq!(parse_value("7p"), Some(7e-12));
        assert_eq!(parse_value("1f"), Some(1e-15));
        assert_eq!(parse_value("2g"), Some(2e9));
        assert_eq!(parse_value("1t"), Some(1e12));
        assert_eq!(parse_value("-0.5"), Some(-0.5));
        assert_eq!(parse_value("1e-3"), Some(1e-3));
        assert_eq!(parse_value("bogus"), None);
        assert_eq!(parse_value(""), None);
    }

    #[test]
    fn bad_token_count_reports_line() {
        let err = Netlist::parse("R1 a 0\n").unwrap_err();
        match err {
            GridError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_element_rejected() {
        let err = Netlist::parse("C1 a 0 1p\n").unwrap_err();
        assert!(matches!(err, GridError::Parse { line: 1, .. }));
        assert!(err.to_string().contains('C'));
    }

    #[test]
    fn unknown_directive_rejected() {
        let err = Netlist::parse(".tran 1n 1u\n").unwrap_err();
        assert!(matches!(err, GridError::Parse { .. }));
    }

    #[test]
    fn bad_value_rejected() {
        let err = Netlist::parse("R1 a 0 fifty\n").unwrap_err();
        assert!(err.to_string().contains("fifty"));
    }

    #[test]
    fn empty_and_comment_only_source() {
        let n = Netlist::parse("\n\n* only a comment\n\n").unwrap();
        assert!(n.is_empty());
        assert_eq!(n.title(), Some("only a comment"));
    }

    #[test]
    fn later_comments_do_not_override_title() {
        let n = Netlist::parse("* first\nR1 a 0 1\n* second\n").unwrap();
        assert_eq!(n.title(), Some("first"));
    }
}
