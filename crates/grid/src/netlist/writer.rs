use super::model::{Element, Netlist};
use super::names::{node_name, parse_node_name};
use crate::{GridError, NetKind, Stack3d, TsvPattern};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

impl Netlist {
    /// Serializes the netlist back to SPICE text (parsable by
    /// [`Netlist::parse`]).
    pub fn to_spice(&self) -> String {
        let mut out = String::new();
        if let Some(t) = self.title() {
            let _ = writeln!(out, "* {t}");
        }
        for e in self.elements() {
            match e {
                Element::Resistor { name, a, b, ohms } => {
                    let _ = writeln!(out, "{name} {a} {b} {ohms}");
                }
                Element::CurrentSource {
                    name,
                    from,
                    to,
                    amps,
                } => {
                    let _ = writeln!(out, "{name} {from} {to} {amps}");
                }
                Element::VoltageSource {
                    name,
                    pos,
                    neg,
                    volts,
                } => {
                    let _ = writeln!(out, "{name} {pos} {neg} {volts}");
                }
            }
        }
        out.push_str(".op\n.end\n");
        out
    }
}

impl Stack3d {
    /// Exports one supply net of this stack as an IBM-style netlist.
    ///
    /// Node names follow the `n<tier>_<x>_<y>` convention; pads become
    /// grounded voltage sources (via an intermediate rail node when the pad
    /// resistance is nonzero); each nonzero load becomes a current source to
    /// ground.
    pub fn to_netlist(&self, net: NetKind) -> Netlist {
        let rail = match net {
            NetKind::Power => self.vdd(),
            NetKind::Ground => 0.0,
        };
        let mut n = Netlist::new(Some(format!(
            "voltprop 3-D power grid: {}x{}x{} nodes, {} TSVs, {} pads, {:?} net",
            self.width(),
            self.height(),
            self.tiers(),
            self.tsv_sites().len(),
            self.num_pads(),
            net,
        )));
        let mut r = 0usize;
        let mut push_r = |n: &mut Netlist, a: String, b: String, ohms: f64| {
            n.push(Element::Resistor {
                name: format!("R{r}"),
                a,
                b,
                ohms,
            });
            r += 1;
        };
        for tier in 0..self.tiers() {
            let rh = self.r_horizontal(tier);
            let rv = self.r_vertical(tier);
            for y in 0..self.height() {
                for x in 0..self.width() {
                    if x + 1 < self.width() {
                        push_r(&mut n, node_name(tier, x, y), node_name(tier, x + 1, y), rh);
                    }
                    if y + 1 < self.height() {
                        push_r(&mut n, node_name(tier, x, y), node_name(tier, x, y + 1), rv);
                    }
                }
            }
        }
        for &(x, y) in self.tsv_sites() {
            for tier in 0..self.tiers() - 1 {
                push_r(
                    &mut n,
                    node_name(tier, x as usize, y as usize),
                    node_name(tier + 1, x as usize, y as usize),
                    self.tsv_resistance(),
                );
            }
        }
        let top = self.tiers() - 1;
        for (i, (x, y)) in self.pad_sites().into_iter().enumerate() {
            let grid_node = node_name(top, x as usize, y as usize);
            if self.pad_resistance() == 0.0 {
                n.push(Element::VoltageSource {
                    name: format!("V{i}"),
                    pos: grid_node,
                    neg: "0".into(),
                    volts: rail,
                });
            } else {
                let rail_node = format!("_X_pad_{i}");
                n.push(Element::VoltageSource {
                    name: format!("V{i}"),
                    pos: rail_node.clone(),
                    neg: "0".into(),
                    volts: rail,
                });
                push_r(&mut n, grid_node, rail_node, self.pad_resistance());
            }
        }
        let mut i = 0usize;
        for tier in 0..self.tiers() {
            for y in 0..self.height() {
                for x in 0..self.width() {
                    let amps = self.load(tier, x, y);
                    if amps != 0.0 {
                        let (from, to) = match net {
                            NetKind::Power => (node_name(tier, x, y), "0".to_string()),
                            NetKind::Ground => ("0".to_string(), node_name(tier, x, y)),
                        };
                        n.push(Element::CurrentSource {
                            name: format!("I{i}"),
                            from,
                            to,
                            amps,
                        });
                        i += 1;
                    }
                }
            }
        }
        n
    }

    /// Reconstructs a structured stack from a netlist that follows the
    /// `n<tier>_<x>_<y>` naming convention (e.g. one written by
    /// [`Stack3d::to_netlist`], or an IBM-style benchmark renamed to the
    /// convention).
    ///
    /// Requirements checked: full rectangular mesh per tier with uniform
    /// per-tier wire resistances, full-height TSV pillars with one shared
    /// resistance, pads only on the topmost tier at a single rail voltage
    /// and (optional) single pad resistance, loads only as sources to
    /// ground.
    ///
    /// # Errors
    ///
    /// [`GridError::NotAStack`] describing the first violated requirement,
    /// or the usual builder errors for degenerate values.
    pub fn from_netlist(netlist: &Netlist) -> Result<Stack3d, GridError> {
        fn not_a_stack(msg: impl Into<String>) -> GridError {
            GridError::NotAStack {
                message: msg.into(),
            }
        }
        let rel_eq = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs());

        // Pass 1: extent.
        let (mut tiers, mut w, mut h) = (0usize, 0usize, 0usize);
        let mut saw_grid_node = false;
        let grid_or_other = |name: &str| -> Option<(usize, usize, usize)> { parse_node_name(name) };
        for e in netlist.elements() {
            let nodes: [&str; 2] = match e {
                Element::Resistor { a, b, .. } => [a, b],
                Element::CurrentSource { from, to, .. } => [from, to],
                Element::VoltageSource { pos, neg, .. } => [pos, neg],
            };
            for node in nodes {
                if let Some((t, x, y)) = grid_or_other(node) {
                    saw_grid_node = true;
                    tiers = tiers.max(t + 1);
                    w = w.max(x + 1);
                    h = h.max(y + 1);
                }
            }
        }
        if !saw_grid_node {
            return Err(not_a_stack("no n<tier>_<x>_<y> nodes found"));
        }

        let mut r_h: Vec<Option<f64>> = vec![None; tiers];
        let mut r_v: Vec<Option<f64>> = vec![None; tiers];
        let mut r_tsv: Option<f64> = None;
        let mut wire_edges: HashSet<(usize, usize)> = HashSet::new();
        let mut wire_count = vec![0usize; tiers];
        let mut tsv_per_interface: Vec<HashSet<(usize, usize)>> =
            vec![HashSet::new(); tiers.saturating_sub(1)];
        let mut pad_rail_nodes: HashMap<String, f64> = HashMap::new();
        let mut pad_resistors: Vec<(String, (usize, usize, usize), f64)> = Vec::new();
        let mut ideal_pads: Vec<((usize, usize, usize), f64)> = Vec::new();
        let mut loads: HashMap<(usize, usize, usize), f64> = HashMap::new();

        let flat = |t: usize, x: usize, y: usize| (t * h + y) * w + x;

        // Pass 2: classify elements. Voltage sources first so pad rails are
        // known before their series resistors are seen.
        for e in netlist.elements() {
            if let Element::VoltageSource {
                name,
                pos,
                neg,
                volts,
            } = e
            {
                let (node, value) = if super::model::is_ground(neg) {
                    (pos.as_str(), *volts)
                } else if super::model::is_ground(pos) {
                    (neg.as_str(), -*volts)
                } else {
                    return Err(GridError::UngroundedVoltageSource { name: name.clone() });
                };
                if let Some(coords) = parse_node_name(node) {
                    ideal_pads.push((coords, value));
                } else {
                    pad_rail_nodes.insert(node.to_string(), value);
                }
            }
        }
        for e in netlist.elements() {
            match e {
                Element::Resistor { a, b, ohms, .. } => {
                    match (parse_node_name(a), parse_node_name(b)) {
                        (Some(pa), Some(pb)) => {
                            let ((t1, x1, y1), (t2, x2, y2)) =
                                if pa <= pb { (pa, pb) } else { (pb, pa) };
                            if t1 == t2 && y1 == y2 && x2 == x1 + 1 {
                                match r_h[t1] {
                                    None => r_h[t1] = Some(*ohms),
                                    Some(r) if rel_eq(r, *ohms) => {}
                                    Some(r) => {
                                        return Err(not_a_stack(format!(
                                            "non-uniform horizontal resistance on tier {t1}: {r} vs {ohms}"
                                        )))
                                    }
                                }
                                if !wire_edges.insert((flat(t1, x1, y1), flat(t2, x2, y2))) {
                                    return Err(not_a_stack("duplicate wire segment"));
                                }
                                wire_count[t1] += 1;
                            } else if t1 == t2 && x1 == x2 && y2 == y1 + 1 {
                                match r_v[t1] {
                                    None => r_v[t1] = Some(*ohms),
                                    Some(r) if rel_eq(r, *ohms) => {}
                                    Some(r) => {
                                        return Err(not_a_stack(format!(
                                            "non-uniform vertical resistance on tier {t1}: {r} vs {ohms}"
                                        )))
                                    }
                                }
                                if !wire_edges.insert((flat(t1, x1, y1), flat(t2, x2, y2))) {
                                    return Err(not_a_stack("duplicate wire segment"));
                                }
                                wire_count[t1] += 1;
                            } else if x1 == x2 && y1 == y2 && t2 == t1 + 1 {
                                match r_tsv {
                                    None => r_tsv = Some(*ohms),
                                    Some(r) if rel_eq(r, *ohms) => {}
                                    Some(r) => {
                                        return Err(not_a_stack(format!(
                                            "non-uniform TSV resistance: {r} vs {ohms}"
                                        )))
                                    }
                                }
                                if !tsv_per_interface[t1].insert((x1, y1)) {
                                    return Err(not_a_stack("duplicate TSV segment"));
                                }
                            } else {
                                return Err(not_a_stack(format!(
                                    "resistor between non-adjacent nodes {a} and {b}"
                                )));
                            }
                        }
                        (Some(p), None) | (None, Some(p)) => {
                            let other = if parse_node_name(a).is_some() { b } else { a };
                            if super::model::is_ground(other) {
                                return Err(not_a_stack(format!(
                                    "unexpected resistor to ground at {}",
                                    node_name(p.0, p.1, p.2)
                                )));
                            }
                            pad_resistors.push((other.clone(), p, *ohms));
                        }
                        (None, None) => {
                            return Err(not_a_stack(format!(
                                "resistor {a}-{b} touches no grid node"
                            )))
                        }
                    }
                }
                Element::CurrentSource {
                    name,
                    from,
                    to,
                    amps,
                } => {
                    let (coords, amps) = match (parse_node_name(from), parse_node_name(to)) {
                        (Some(p), None) if super::model::is_ground(to) => (p, *amps),
                        (None, Some(p)) if super::model::is_ground(from) => (p, -*amps),
                        _ => {
                            return Err(not_a_stack(format!(
                                "current source {name} must connect a grid node and ground"
                            )))
                        }
                    };
                    *loads.entry(coords).or_insert(0.0) += amps;
                }
                Element::VoltageSource { .. } => {} // handled in the first pass
            }
        }

        // Mesh completeness.
        for t in 0..tiers {
            let expected = (w - 1) * h + w * (h - 1);
            if wire_count[t] != expected {
                return Err(not_a_stack(format!(
                    "tier {t} mesh incomplete: {} of {expected} wire segments",
                    wire_count[t]
                )));
            }
        }
        // TSV pillars must span every interface with the same footprint.
        let tsv_sites: Vec<(usize, usize)> = if tiers > 1 {
            let first = &tsv_per_interface[0];
            for (i, set) in tsv_per_interface.iter().enumerate().skip(1) {
                if set != first {
                    return Err(not_a_stack(format!(
                        "TSV footprint differs between interface 0 and {i}"
                    )));
                }
            }
            let mut v: Vec<(usize, usize)> = first.iter().copied().collect();
            v.sort_unstable();
            v
        } else {
            Vec::new()
        };

        // Pads.
        let top = tiers - 1;
        let mut pad_sites: Vec<(usize, usize)> = Vec::new();
        let mut rail_voltage: Option<f64> = None;
        let mut r_pad: Option<f64> = None;
        let note_rail = |rail_voltage: &mut Option<f64>, v: f64| -> Result<(), GridError> {
            match rail_voltage {
                None => {
                    *rail_voltage = Some(v);
                    Ok(())
                }
                Some(existing) if rel_eq(*existing, v) => Ok(()),
                Some(existing) => Err(not_a_stack(format!(
                    "pads at different rail voltages: {existing} vs {v}"
                ))),
            }
        };
        for &((t, x, y), v) in &ideal_pads {
            if t != top {
                return Err(not_a_stack(format!(
                    "pad at tier {t}, expected topmost tier {top}"
                )));
            }
            note_rail(&mut rail_voltage, v)?;
            pad_sites.push((x, y));
            match r_pad {
                None => r_pad = Some(0.0),
                Some(0.0) => {}
                Some(_) => return Err(not_a_stack("mix of ideal and resistive pads")),
            }
        }
        for (rail_node, (t, x, y), ohms) in &pad_resistors {
            let Some(&v) = pad_rail_nodes.get(rail_node) else {
                return Err(not_a_stack(format!(
                    "resistor to unknown non-grid node {rail_node}"
                )));
            };
            if *t != top {
                return Err(not_a_stack(format!(
                    "pad at tier {t}, expected topmost tier {top}"
                )));
            }
            note_rail(&mut rail_voltage, v)?;
            pad_sites.push((*x, *y));
            match r_pad {
                None => r_pad = Some(*ohms),
                Some(r) if rel_eq(r, *ohms) => {}
                Some(0.0) => return Err(not_a_stack("mix of ideal and resistive pads")),
                Some(r) => {
                    return Err(not_a_stack(format!(
                        "non-uniform pad resistance: {r} vs {ohms}"
                    )))
                }
            }
        }
        if pad_sites.is_empty() {
            return Err(GridError::NoPads);
        }

        // Loads (ground-net exports carry negative injections; normalize).
        let mut load_vec = vec![0.0; w * h * tiers];
        let mut negative = 0usize;
        for (&(t, x, y), &amps) in &loads {
            let a = if amps < 0.0 {
                negative += 1;
                -amps
            } else {
                amps
            };
            load_vec[flat(t, x, y)] = a;
        }
        if negative > 0 && negative != loads.len() {
            return Err(not_a_stack(
                "mixed-sign load currents (not a single supply net)",
            ));
        }

        let mut builder = Stack3d::builder(w, h, tiers)
            .tsv_pattern(TsvPattern::Explicit(tsv_sites))
            .pad_sites(pad_sites)
            .pad_resistance(r_pad.unwrap_or(0.0))
            .loads(load_vec)
            .vdd(rail_voltage.unwrap_or(0.0).max(0.0));
        for t in 0..tiers {
            let rh =
                r_h[t].ok_or_else(|| not_a_stack(format!("tier {t} has no horizontal wires")))?;
            let rv =
                r_v[t].ok_or_else(|| not_a_stack(format!("tier {t} has no vertical wires")))?;
            builder = builder.tier_resistance(t, rh, rv);
        }
        if let Some(r) = r_tsv {
            builder = builder.tsv_resistance(r);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoadProfile;

    fn sample_stack() -> Stack3d {
        Stack3d::builder(4, 3, 3)
            .wire_resistance(0.02)
            .tier_resistance(1, 0.03, 0.04)
            .tsv_resistance(0.05)
            .load_profile(
                LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 1e-3,
                },
                11,
            )
            .vdd(1.8)
            .build()
            .unwrap()
    }

    #[test]
    fn netlist_roundtrip_preserves_stack() {
        let s = sample_stack();
        let text = s.to_netlist(NetKind::Power).to_spice();
        let parsed = Netlist::parse(&text).unwrap();
        let s2 = Stack3d::from_netlist(&parsed).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn ground_net_roundtrip_preserves_topology() {
        let s = sample_stack();
        let text = s.to_netlist(NetKind::Ground).to_spice();
        let s2 = Stack3d::from_netlist(&Netlist::parse(&text).unwrap()).unwrap();
        assert_eq!(s2.num_nodes(), s.num_nodes());
        assert_eq!(s2.tsv_sites(), s.tsv_sites());
        assert_eq!(s2.loads(), s.loads());
        assert_eq!(s2.vdd(), 0.0); // ground net rail
    }

    #[test]
    fn resistive_pads_roundtrip() {
        let s = Stack3d::builder(4, 4, 2)
            .pad_resistance(0.25)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let text = s.to_netlist(NetKind::Power).to_spice();
        let s2 = Stack3d::from_netlist(&Netlist::parse(&text).unwrap()).unwrap();
        assert_eq!(s2.pad_resistance(), 0.25);
        assert_eq!(s, s2);
    }

    #[test]
    fn spice_text_parses_back_identically() {
        let s = sample_stack();
        let n1 = s.to_netlist(NetKind::Power);
        let n2 = Netlist::parse(&n1.to_spice()).unwrap();
        assert_eq!(n1.elements(), n2.elements());
    }

    #[test]
    fn incomplete_mesh_rejected() {
        let s = Stack3d::builder(3, 3, 2).build().unwrap();
        let mut n = s.to_netlist(NetKind::Power);
        // Drop one wire resistor.
        let pos = n
            .elements()
            .iter()
            .position(|e| matches!(e, Element::Resistor { ohms, .. } if *ohms == 1.0))
            .unwrap();
        n.elements.remove(pos);
        let err = Stack3d::from_netlist(&n).unwrap_err();
        assert!(matches!(err, GridError::NotAStack { .. }));
        assert!(err.to_string().contains("mesh incomplete"));
    }

    #[test]
    fn non_uniform_wire_rejected() {
        let s = Stack3d::builder(3, 3, 2).build().unwrap();
        let mut n = s.to_netlist(NetKind::Power);
        for e in n.elements.iter_mut() {
            if let Element::Resistor { ohms, .. } = e {
                if *ohms == 1.0 {
                    *ohms = 0.09;
                    break;
                }
            }
        }
        let err = Stack3d::from_netlist(&n).unwrap_err();
        assert!(err.to_string().contains("non-uniform"));
    }

    #[test]
    fn pads_below_top_tier_rejected() {
        let s = Stack3d::builder(3, 3, 2).build().unwrap();
        let mut n = s.to_netlist(NetKind::Power);
        n.push(Element::VoltageSource {
            name: "Vbad".into(),
            pos: "n0_1_1".into(),
            neg: "0".into(),
            volts: 1.8,
        });
        let err = Stack3d::from_netlist(&n).unwrap_err();
        assert!(err.to_string().contains("topmost"));
    }

    #[test]
    fn arbitrary_netlist_is_not_a_stack() {
        let n = Netlist::parse("R1 a b 1.0\nV1 a 0 1.0\n").unwrap();
        assert!(matches!(
            Stack3d::from_netlist(&n).unwrap_err(),
            GridError::NotAStack { .. }
        ));
    }

    #[test]
    fn diagonal_resistor_rejected() {
        let s = Stack3d::builder(3, 3, 1).build().unwrap();
        let mut n = s.to_netlist(NetKind::Power);
        n.push(Element::Resistor {
            name: "Rdiag".into(),
            a: "n0_0_0".into(),
            b: "n0_1_1".into(),
            ohms: 0.02,
        });
        let err = Stack3d::from_netlist(&n).unwrap_err();
        assert!(err.to_string().contains("non-adjacent"));
    }
}
