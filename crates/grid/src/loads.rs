//! Workload generation: per-node DC current loads.
//!
//! The paper attaches "an independent current source … to simulate a device
//! or a group of devices" to every non-TSV node (TSV sites have keep-out
//! zones). These profiles generate such load vectors deterministically from
//! a seed.

use crate::rng::SmallRng;

/// A recipe for per-node load currents.
///
/// Generated loads are always zero at TSV sites (keep-out zones, §III-B-2 of
/// the paper).
///
/// # Example
///
/// ```
/// use voltprop_grid::LoadProfile;
///
/// let mask = vec![false; 4]; // no TSVs on a 2x2 footprint
/// let loads = LoadProfile::UniformRandom { min: 1e-5, max: 1e-4 }
///     .generate(2, 2, 1, &mask, 7);
/// assert_eq!(loads.len(), 4);
/// assert!(loads.iter().all(|&a| (1e-5..=1e-4).contains(&a)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LoadProfile {
    /// The same current at every non-TSV node.
    Constant(f64),
    /// Independent uniform random draw per node, `min..=max` amperes.
    UniformRandom {
        /// Smallest load current (A).
        min: f64,
        /// Largest load current (A).
        max: f64,
    },
    /// A quiet background plus circular high-activity regions — models
    /// hotspot blocks (e.g. a core cluster) drawing heavy current.
    Hotspot {
        /// Background current for nodes outside every hotspot (A).
        background: f64,
        /// Current for nodes inside a hotspot (A).
        peak: f64,
        /// Hotspot centers `(tier, x, y)`.
        centers: Vec<(usize, usize, usize)>,
        /// Hotspot radius in nodes (Euclidean, within the tier).
        radius: f64,
    },
}

impl LoadProfile {
    /// Generates the flat tier-major load vector for a
    /// `width`×`height`×`tiers` stack, forcing zero at TSV sites given by
    /// `tsv_mask` (length `width*height`).
    ///
    /// # Panics
    ///
    /// Panics if `tsv_mask.len() != width * height`.
    pub fn generate(
        &self,
        width: usize,
        height: usize,
        tiers: usize,
        tsv_mask: &[bool],
        seed: u64,
    ) -> Vec<f64> {
        assert_eq!(tsv_mask.len(), width * height, "TSV mask length mismatch");
        let mut rng = SmallRng::new(seed);
        let mut loads = vec![0.0; width * height * tiers];
        for tier in 0..tiers {
            for y in 0..height {
                for x in 0..width {
                    if tsv_mask[y * width + x] {
                        continue;
                    }
                    let idx = (tier * height + y) * width + x;
                    loads[idx] = match self {
                        LoadProfile::Constant(a) => *a,
                        LoadProfile::UniformRandom { min, max } => {
                            if max > min {
                                rng.f64_in(*min, *max)
                            } else {
                                *min
                            }
                        }
                        LoadProfile::Hotspot {
                            background,
                            peak,
                            centers,
                            radius,
                        } => {
                            let hot = centers.iter().any(|&(ct, cx, cy)| {
                                ct == tier && {
                                    let dx = x as f64 - cx as f64;
                                    let dy = y as f64 - cy as f64;
                                    (dx * dx + dy * dy).sqrt() <= *radius
                                }
                            });
                            if hot {
                                *peak
                            } else {
                                *background
                            }
                        }
                    };
                }
            }
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_with_tsv_at(width: usize, height: usize, sites: &[(usize, usize)]) -> Vec<bool> {
        let mut m = vec![false; width * height];
        for &(x, y) in sites {
            m[y * width + x] = true;
        }
        m
    }

    #[test]
    fn constant_profile_fills_non_tsv() {
        let mask = mask_with_tsv_at(2, 2, &[(0, 0)]);
        let l = LoadProfile::Constant(2e-3).generate(2, 2, 2, &mask, 0);
        assert_eq!(l.len(), 8);
        assert_eq!(l[0], 0.0); // TSV at (0,0) tier 0
        assert_eq!(l[4], 0.0); // TSV at (0,0) tier 1
        assert_eq!(l[1], 2e-3);
        assert_eq!(l[5], 2e-3);
    }

    #[test]
    fn uniform_random_is_seeded() {
        let mask = vec![false; 9];
        let a = LoadProfile::UniformRandom {
            min: 1e-6,
            max: 1e-3,
        }
        .generate(3, 3, 1, &mask, 5);
        let b = LoadProfile::UniformRandom {
            min: 1e-6,
            max: 1e-3,
        }
        .generate(3, 3, 1, &mask, 5);
        let c = LoadProfile::UniformRandom {
            min: 1e-6,
            max: 1e-3,
        }
        .generate(3, 3, 1, &mask, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&v| (1e-6..=1e-3).contains(&v)));
    }

    #[test]
    fn degenerate_random_range_collapses_to_min() {
        let mask = vec![false; 4];
        let l = LoadProfile::UniformRandom {
            min: 5e-4,
            max: 5e-4,
        }
        .generate(2, 2, 1, &mask, 1);
        assert!(l.iter().all(|&v| v == 5e-4));
    }

    #[test]
    fn hotspot_profile_elevates_disk() {
        let mask = vec![false; 25];
        let l = LoadProfile::Hotspot {
            background: 1e-5,
            peak: 1e-2,
            centers: vec![(0, 2, 2)],
            radius: 1.0,
        }
        .generate(5, 5, 1, &mask, 0);
        assert_eq!(l[2 * 5 + 2], 1e-2); // center
        assert_eq!(l[2 * 5 + 3], 1e-2); // distance 1
        assert_eq!(l[0], 1e-5); // far corner
    }

    #[test]
    #[allow(clippy::identity_op, clippy::erasing_op)] // spelled-out index arithmetic documents the layout
    fn hotspot_is_per_tier() {
        let mask = vec![false; 9];
        let l = LoadProfile::Hotspot {
            background: 0.0,
            peak: 1.0,
            centers: vec![(1, 1, 1)],
            radius: 0.0,
        }
        .generate(3, 3, 2, &mask, 0);
        assert_eq!(l[(0 * 3 + 1) * 3 + 1], 0.0); // tier 0 untouched
        assert_eq!(l[(1 * 3 + 1) * 3 + 1], 1.0); // tier 1 center hot
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn wrong_mask_length_panics() {
        LoadProfile::Constant(1.0).generate(2, 2, 1, &[false; 3], 0);
    }
}
