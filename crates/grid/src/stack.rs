use crate::{GridError, LoadProfile};

/// Which supply net of the power delivery network is being analyzed.
///
/// A resistive-only PDN decouples into two independent linear systems; the
/// ground net is the mirror image of the power net (pads at 0 V, device
/// currents injected *into* the net).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetKind {
    /// The VDD net: pads at `vdd`, devices draw current out of the net.
    #[default]
    Power,
    /// The ground net: pads at 0 V, devices push current into the net.
    Ground,
}

/// Where TSV pillars are placed on the tier footprint.
#[derive(Debug, Clone, PartialEq)]
pub enum TsvPattern {
    /// A TSV at every node whose x and y are both multiples of `pitch`.
    ///
    /// `pitch: 2` gives the paper's "one TSV node for every four nodes".
    Uniform {
        /// Spacing between TSV sites in nodes; must be ≥ 1.
        pitch: usize,
    },
    /// `count` TSVs at uniformly random distinct sites (seeded).
    Random {
        /// Number of pillars.
        count: usize,
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// TSVs packed into square clusters around given centers.
    Clustered {
        /// Cluster centers `(x, y)`.
        centers: Vec<(usize, usize)>,
        /// Half-width of each square cluster in nodes.
        radius: usize,
    },
    /// Explicit list of TSV sites.
    Explicit(Vec<(usize, usize)>),
}

/// A TSV-based 3-D power grid: `tiers` stacked `width`×`height` resistive
/// meshes, joined by vertical TSV pillars at selected `(x, y)` sites, with
/// package pads on the *topmost* tier and per-node DC current loads.
///
/// Tier 0 is the **bottommost** tier — the one farthest from the package —
/// matching the paper's convention that voltage propagation starts at
/// layer 0 and walks toward the pads.
///
/// Nodes are indexed flat, tier-major: `(tier * height + y) * width + x`.
///
/// # Example
///
/// ```
/// use voltprop_grid::{Stack3d, TsvPattern};
///
/// # fn main() -> Result<(), voltprop_grid::GridError> {
/// let stack = Stack3d::builder(4, 4, 3)
///     .wire_resistance(0.02)
///     .tsv_resistance(0.05)
///     .tsv_pattern(TsvPattern::Uniform { pitch: 2 })
///     .uniform_load(1e-4)
///     .build()?;
/// assert_eq!(stack.num_nodes(), 48);
/// assert_eq!(stack.tsv_sites().len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Stack3d {
    width: usize,
    height: usize,
    tiers: usize,
    /// Horizontal (along-x) segment resistance per tier, ohms.
    r_h: Vec<f64>,
    /// Vertical (along-y) segment resistance per tier, ohms.
    r_v: Vec<f64>,
    /// TSV segment resistance between adjacent tiers, ohms.
    r_tsv: f64,
    /// Pad resistance (0 = ideal Dirichlet pad), ohms.
    r_pad: f64,
    /// `width*height` mask of pillar sites; pillars span every interface.
    tsv_mask: Vec<bool>,
    /// Cached ordered list of pillar sites.
    tsv_sites: Vec<(u32, u32)>,
    /// `width*height` mask of pad sites on the top tier.
    pad_mask: Vec<bool>,
    /// Per-node load current (A), flat tier-major; ≥ 0.
    loads: Vec<f64>,
    /// Per-node capacitance to ground (F), flat tier-major; empty for a
    /// resistive-only stack (the pre-transient model, and the default).
    caps: Vec<f64>,
    /// Supply voltage (V).
    vdd: f64,
}

impl Stack3d {
    /// Starts building a stack with the given footprint and tier count.
    pub fn builder(width: usize, height: usize, tiers: usize) -> StackBuilder {
        StackBuilder::new(width, height, tiers)
    }

    /// Footprint width in nodes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Footprint height in nodes.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of stacked tiers.
    pub fn tiers(&self) -> usize {
        self.tiers
    }

    /// Total node count `width * height * tiers`.
    pub fn num_nodes(&self) -> usize {
        self.width * self.height * self.tiers
    }

    /// Nodes per tier.
    pub fn nodes_per_tier(&self) -> usize {
        self.width * self.height
    }

    /// Supply voltage.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// TSV segment resistance (Ω) between adjacent tiers.
    pub fn tsv_resistance(&self) -> f64 {
        self.r_tsv
    }

    /// Pad resistance (Ω); `0.0` means ideal pads.
    pub fn pad_resistance(&self) -> f64 {
        self.r_pad
    }

    /// Horizontal segment resistance of `tier` (Ω).
    ///
    /// # Panics
    ///
    /// Panics if `tier >= self.tiers()`.
    pub fn r_horizontal(&self, tier: usize) -> f64 {
        self.r_h[tier]
    }

    /// Vertical segment resistance of `tier` (Ω).
    ///
    /// # Panics
    ///
    /// Panics if `tier >= self.tiers()`.
    pub fn r_vertical(&self, tier: usize) -> f64 {
        self.r_v[tier]
    }

    /// Flat node index of `(tier, x, y)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the coordinate is out of range.
    #[inline]
    pub fn node_index(&self, tier: usize, x: usize, y: usize) -> usize {
        debug_assert!(tier < self.tiers && x < self.width && y < self.height);
        (tier * self.height + y) * self.width + x
    }

    /// Inverse of [`Stack3d::node_index`].
    pub fn node_coords(&self, index: usize) -> (usize, usize, usize) {
        let per_tier = self.nodes_per_tier();
        let tier = index / per_tier;
        let rem = index % per_tier;
        (tier, rem % self.width, rem / self.width)
    }

    /// Whether a TSV pillar passes through footprint site `(x, y)`.
    #[inline]
    pub fn is_tsv(&self, x: usize, y: usize) -> bool {
        self.tsv_mask[y * self.width + x]
    }

    /// Whether the top tier has a pad at `(x, y)`.
    #[inline]
    pub fn is_pad(&self, x: usize, y: usize) -> bool {
        self.pad_mask[y * self.width + x]
    }

    /// Ordered list of pillar sites.
    pub fn tsv_sites(&self) -> &[(u32, u32)] {
        &self.tsv_sites
    }

    /// Ordered list of pad sites on the top tier.
    pub fn pad_sites(&self) -> Vec<(u32, u32)> {
        let mut v = Vec::new();
        for y in 0..self.height {
            for x in 0..self.width {
                if self.pad_mask[y * self.width + x] {
                    v.push((x as u32, y as u32));
                }
            }
        }
        v
    }

    /// Number of pads.
    pub fn num_pads(&self) -> usize {
        self.pad_mask.iter().filter(|&&p| p).count()
    }

    /// The load current drawn at `(tier, x, y)` in amperes.
    pub fn load(&self, tier: usize, x: usize, y: usize) -> f64 {
        self.loads[self.node_index(tier, x, y)]
    }

    /// All load currents, flat tier-major.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Replaces the load vector.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::InvalidLoad`] if any entry is negative or
    /// non-finite, and [`GridError::InvalidDimension`] if the length is not
    /// `num_nodes()`.
    pub fn set_loads(&mut self, loads: Vec<f64>) -> Result<(), GridError> {
        if loads.len() != self.num_nodes() {
            return Err(GridError::InvalidDimension {
                what: "load vector length",
                value: loads.len(),
            });
        }
        for (node, &a) in loads.iter().enumerate() {
            if !a.is_finite() || a < 0.0 {
                return Err(GridError::InvalidLoad { node, amps: a });
            }
        }
        self.loads = loads;
        Ok(())
    }

    /// Total current drawn by all loads (A).
    pub fn total_load(&self) -> f64 {
        self.loads.iter().sum()
    }

    /// Whether the stack carries any capacitance — i.e. whether transient
    /// analysis sees real grid dynamics. A resistive-only stack (the
    /// default) has none; every node then responds instantaneously.
    pub fn has_dynamics(&self) -> bool {
        !self.caps.is_empty()
    }

    /// Per-node capacitance to ground (F), flat tier-major, or `None` for
    /// a resistive-only stack. Includes grid capacitance, decap cells, and
    /// package/pad capacitance, summed per node at build time.
    pub fn capacitances(&self) -> Option<&[f64]> {
        (!self.caps.is_empty()).then_some(&self.caps[..])
    }

    /// The capacitance to ground at `(tier, x, y)` in farads (`0.0` for a
    /// resistive-only stack).
    pub fn capacitance(&self, tier: usize, x: usize, y: usize) -> f64 {
        if self.caps.is_empty() {
            0.0
        } else {
            self.caps[self.node_index(tier, x, y)]
        }
    }

    /// Total capacitance hanging on the net (F).
    pub fn total_capacitance(&self) -> f64 {
        self.caps.iter().sum()
    }

    /// Estimated heap footprint of the model itself in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.loads.len() * 8
            + self.caps.len() * 8
            + self.tsv_mask.len()
            + self.pad_mask.len()
            + self.tsv_sites.len() * 8
            + (self.r_h.len() + self.r_v.len()) * 8
    }
}

/// Builder for [`Stack3d`] (see [`Stack3d::builder`]).
///
/// Defaults: wire segment resistance 1 Ω (typical of the IBM benchmark
/// grids, and 20× the TSV resistance — the paper's premise that TSVs are
/// far more conductive than wires), TSV resistance 0.05 Ω (the paper's
/// value), ideal pads at every TSV site, uniform TSVs at pitch 2 (one TSV
/// node per four nodes, as in the paper's benchmarks), zero loads,
/// VDD = 1.8 V.
#[derive(Debug, Clone)]
pub struct StackBuilder {
    width: usize,
    height: usize,
    tiers: usize,
    r_h: Vec<f64>,
    r_v: Vec<f64>,
    r_tsv: f64,
    r_pad: f64,
    tsv_pattern: TsvPattern,
    pad_sites: Option<Vec<(usize, usize)>>,
    pad_lattice: Option<usize>,
    loads: Option<Vec<f64>>,
    load_profile: Option<(LoadProfile, u64)>,
    c_grid: f64,
    c_tier: Vec<Option<f64>>,
    c_pad: f64,
    decaps: Vec<(usize, usize, usize, f64)>,
    caps: Option<Vec<f64>>,
    vdd: f64,
}

impl StackBuilder {
    fn new(width: usize, height: usize, tiers: usize) -> Self {
        StackBuilder {
            width,
            height,
            tiers,
            r_h: vec![1.0; tiers],
            r_v: vec![1.0; tiers],
            r_tsv: 0.05,
            r_pad: 0.0,
            tsv_pattern: TsvPattern::Uniform { pitch: 2 },
            pad_sites: None,
            pad_lattice: None,
            loads: None,
            load_profile: None,
            c_grid: 0.0,
            c_tier: vec![None; tiers],
            c_pad: 0.0,
            decaps: Vec::new(),
            caps: None,
            vdd: 1.8,
        }
    }

    /// Sets both horizontal and vertical wire segment resistance for all
    /// tiers.
    pub fn wire_resistance(mut self, ohms: f64) -> Self {
        self.r_h = vec![ohms; self.tiers];
        self.r_v = vec![ohms; self.tiers];
        self
    }

    /// Sets the wire resistances of one tier (anisotropic meshes, or tiers
    /// fabricated in different metal stacks).
    ///
    /// # Panics
    ///
    /// Panics if `tier` is out of range.
    pub fn tier_resistance(mut self, tier: usize, r_h: f64, r_v: f64) -> Self {
        self.r_h[tier] = r_h;
        self.r_v[tier] = r_v;
        self
    }

    /// Sets the TSV segment resistance (Ω).
    pub fn tsv_resistance(mut self, ohms: f64) -> Self {
        self.r_tsv = ohms;
        self
    }

    /// Sets the pad resistance (Ω); `0.0` (the default) models ideal pads.
    pub fn pad_resistance(mut self, ohms: f64) -> Self {
        self.r_pad = ohms;
        self
    }

    /// Chooses where TSV pillars are placed.
    pub fn tsv_pattern(mut self, pattern: TsvPattern) -> Self {
        self.tsv_pattern = pattern;
        self
    }

    /// Places pads at an explicit list of top-tier sites instead of the
    /// default (a pad above every TSV pillar).
    pub fn pad_sites(mut self, sites: Vec<(usize, usize)>) -> Self {
        self.pad_sites = Some(sites);
        self.pad_lattice = None;
        self
    }

    /// Places pads only at TSV sites on a coarse `pitch × pitch` lattice —
    /// the sparse C4-bump layout of package-fed grids. Overridden by
    /// [`StackBuilder::pad_sites`].
    pub fn pad_lattice(mut self, pitch: usize) -> Self {
        self.pad_lattice = Some(pitch);
        self.pad_sites = None;
        self
    }

    /// Attaches the same load current (A) to every non-TSV node.
    pub fn uniform_load(mut self, amps: f64) -> Self {
        self.load_profile = Some((LoadProfile::Constant(amps), 0));
        self.loads = None;
        self
    }

    /// Generates loads from a [`LoadProfile`] with the given seed.
    pub fn load_profile(mut self, profile: LoadProfile, seed: u64) -> Self {
        self.load_profile = Some((profile, seed));
        self.loads = None;
        self
    }

    /// Supplies an explicit per-node load vector (flat tier-major,
    /// `width*height*tiers` entries).
    pub fn loads(mut self, loads: Vec<f64>) -> Self {
        self.loads = Some(loads);
        self.load_profile = None;
        self
    }

    /// Attaches the same capacitance to ground (F) to every node of every
    /// tier — the distributed on-die grid capacitance (device + wire).
    /// Zero (the default) keeps the stack resistive-only.
    pub fn grid_capacitance(mut self, farads: f64) -> Self {
        self.c_grid = farads;
        self
    }

    /// Overrides the per-node grid capacitance of one tier (tiers
    /// fabricated in different processes, or an interposer tier).
    ///
    /// # Panics
    ///
    /// Panics if `tier` is out of range.
    pub fn tier_capacitance(mut self, tier: usize, farads: f64) -> Self {
        self.c_tier[tier] = Some(farads);
        self
    }

    /// Adds an explicit decap cell (F) at `(tier, x, y)`, on top of the
    /// grid capacitance. Repeated calls on the same node accumulate.
    pub fn decap(mut self, tier: usize, x: usize, y: usize, farads: f64) -> Self {
        self.decaps.push((tier, x, y, farads));
        self
    }

    /// Adds package/pad capacitance (F) at every pad site on the top tier.
    ///
    /// Only meaningful with resistive pads (a positive
    /// [`StackBuilder::pad_resistance`]): an ideal pad is a Dirichlet node
    /// pinned to the rail, so any capacitance hanging on it carries no
    /// dynamics.
    pub fn pad_capacitance(mut self, farads: f64) -> Self {
        self.c_pad = farads;
        self
    }

    /// Supplies an explicit per-node capacitance vector (flat tier-major,
    /// `width*height*tiers` entries), replacing the grid/tier uniform base.
    /// Decap cells and pad capacitance still add on top.
    pub fn node_capacitances(mut self, farads: Vec<f64>) -> Self {
        self.caps = Some(farads);
        self
    }

    /// Sets the supply voltage (V).
    pub fn vdd(mut self, volts: f64) -> Self {
        self.vdd = volts;
        self
    }

    /// Validates the configuration and builds the stack.
    ///
    /// # Errors
    ///
    /// * [`GridError::InvalidDimension`] for zero width/height/tiers.
    /// * [`GridError::InvalidResistance`] for non-positive or non-finite
    ///   resistances (pad resistance may be zero).
    /// * [`GridError::NoTsvs`] if the pattern yields no pillar (for stacks
    ///   with more than one tier).
    /// * [`GridError::NoPads`] if no pad site is valid.
    /// * [`GridError::CoordOutOfBounds`] for explicit sites off the grid.
    /// * [`GridError::InvalidLoad`] for negative/non-finite load entries.
    pub fn build(self) -> Result<Stack3d, GridError> {
        if self.width == 0 {
            return Err(GridError::InvalidDimension {
                what: "width",
                value: 0,
            });
        }
        if self.height == 0 {
            return Err(GridError::InvalidDimension {
                what: "height",
                value: 0,
            });
        }
        if self.tiers == 0 {
            return Err(GridError::InvalidDimension {
                what: "tiers",
                value: 0,
            });
        }
        for (what, r) in [("horizontal wire", &self.r_h), ("vertical wire", &self.r_v)] {
            for &ohms in r {
                if !(ohms.is_finite() && ohms > 0.0) {
                    return Err(GridError::InvalidResistance { what, ohms });
                }
            }
        }
        if !(self.r_tsv.is_finite() && self.r_tsv > 0.0) {
            return Err(GridError::InvalidResistance {
                what: "TSV",
                ohms: self.r_tsv,
            });
        }
        if !(self.r_pad.is_finite() && self.r_pad >= 0.0) {
            return Err(GridError::InvalidResistance {
                what: "pad",
                ohms: self.r_pad,
            });
        }
        if !(self.vdd.is_finite()) {
            return Err(GridError::InvalidResistance {
                what: "vdd (volts, reported as resistance field)",
                ohms: self.vdd,
            });
        }

        let (w, h) = (self.width, self.height);
        let mut tsv_mask = vec![false; w * h];
        match &self.tsv_pattern {
            TsvPattern::Uniform { pitch } => {
                if *pitch == 0 {
                    return Err(GridError::InvalidDimension {
                        what: "TSV pitch",
                        value: 0,
                    });
                }
                for y in (0..h).step_by(*pitch) {
                    for x in (0..w).step_by(*pitch) {
                        tsv_mask[y * w + x] = true;
                    }
                }
            }
            TsvPattern::Random { count, seed } => {
                let mut rng = crate::rng::SmallRng::new(*seed);
                let mut all: Vec<usize> = (0..w * h).collect();
                rng.shuffle(&mut all);
                for &site in all.iter().take(*count) {
                    tsv_mask[site] = true;
                }
            }
            TsvPattern::Clustered { centers, radius } => {
                for &(cx, cy) in centers {
                    if cx >= w || cy >= h {
                        return Err(GridError::CoordOutOfBounds {
                            coord: (cx, cy),
                            extent: (w, h),
                        });
                    }
                    let r = *radius;
                    for y in cy.saturating_sub(r)..=(cy + r).min(h - 1) {
                        for x in cx.saturating_sub(r)..=(cx + r).min(w - 1) {
                            tsv_mask[y * w + x] = true;
                        }
                    }
                }
            }
            TsvPattern::Explicit(sites) => {
                for &(x, y) in sites {
                    if x >= w || y >= h {
                        return Err(GridError::CoordOutOfBounds {
                            coord: (x, y),
                            extent: (w, h),
                        });
                    }
                    tsv_mask[y * w + x] = true;
                }
            }
        }
        let tsv_sites: Vec<(u32, u32)> = (0..h)
            .flat_map(|y| (0..w).map(move |x| (x, y)))
            .filter(|&(x, y)| tsv_mask[y * w + x])
            .map(|(x, y)| (x as u32, y as u32))
            .collect();
        if tsv_sites.is_empty() && self.tiers > 1 {
            return Err(GridError::NoTsvs);
        }

        let mut pad_mask = vec![false; w * h];
        match (&self.pad_sites, self.pad_lattice) {
            (None, Some(pitch)) => {
                if pitch == 0 {
                    return Err(GridError::InvalidDimension {
                        what: "pad lattice pitch",
                        value: 0,
                    });
                }
                for &(x, y) in &tsv_sites {
                    if x as usize % pitch == 0 && y as usize % pitch == 0 {
                        pad_mask[y as usize * w + x as usize] = true;
                    }
                }
            }
            (None, None) => {
                // Default: a pad above every pillar; for single-tier stacks
                // with no TSVs, a pad at every pitch-2 site.
                if tsv_sites.is_empty() {
                    for y in (0..h).step_by(2) {
                        for x in (0..w).step_by(2) {
                            pad_mask[y * w + x] = true;
                        }
                    }
                } else {
                    for &(x, y) in &tsv_sites {
                        pad_mask[y as usize * w + x as usize] = true;
                    }
                }
            }
            (Some(sites), _) => {
                for &(x, y) in sites {
                    if x >= w || y >= h {
                        return Err(GridError::CoordOutOfBounds {
                            coord: (x, y),
                            extent: (w, h),
                        });
                    }
                    pad_mask[y * w + x] = true;
                }
            }
        }
        if !pad_mask.iter().any(|&p| p) {
            return Err(GridError::NoPads);
        }

        let n = w * h * self.tiers;
        let loads = match (self.loads, self.load_profile) {
            (Some(l), _) => {
                if l.len() != n {
                    return Err(GridError::InvalidDimension {
                        what: "load vector length",
                        value: l.len(),
                    });
                }
                l
            }
            (None, Some((profile, seed))) => profile.generate(w, h, self.tiers, &tsv_mask, seed),
            (None, None) => vec![0.0; n],
        };
        for (node, &a) in loads.iter().enumerate() {
            if !a.is_finite() || a < 0.0 {
                return Err(GridError::InvalidLoad { node, amps: a });
            }
        }

        for (what, c) in [("grid", self.c_grid), ("pad", self.c_pad)] {
            if !(c.is_finite() && c >= 0.0) {
                return Err(GridError::InvalidCapacitance { what, farads: c });
            }
        }
        for c in self.c_tier.iter().flatten() {
            if !(c.is_finite() && *c >= 0.0) {
                return Err(GridError::InvalidCapacitance {
                    what: "tier",
                    farads: *c,
                });
            }
        }
        let has_caps = self.caps.is_some()
            || self.c_grid != 0.0
            || self.c_pad != 0.0
            || self.c_tier.iter().any(Option::is_some)
            || !self.decaps.is_empty();
        let caps = if has_caps {
            let mut caps = match self.caps {
                Some(c) => {
                    if c.len() != n {
                        return Err(GridError::InvalidDimension {
                            what: "capacitance vector length",
                            value: c.len(),
                        });
                    }
                    c
                }
                None => {
                    let mut c = Vec::with_capacity(n);
                    for tier in 0..self.tiers {
                        let per_node = self.c_tier[tier].unwrap_or(self.c_grid);
                        c.extend(std::iter::repeat_n(per_node, w * h));
                    }
                    c
                }
            };
            for &(tier, x, y, farads) in &self.decaps {
                if tier >= self.tiers {
                    return Err(GridError::InvalidDimension {
                        what: "decap tier",
                        value: tier,
                    });
                }
                if x >= w || y >= h {
                    return Err(GridError::CoordOutOfBounds {
                        coord: (x, y),
                        extent: (w, h),
                    });
                }
                if !(farads.is_finite() && farads >= 0.0) {
                    return Err(GridError::InvalidCapacitance {
                        what: "decap",
                        farads,
                    });
                }
                caps[(tier * h + y) * w + x] += farads;
            }
            if self.c_pad != 0.0 {
                let top = self.tiers - 1;
                for y in 0..h {
                    for x in 0..w {
                        if pad_mask[y * w + x] {
                            caps[(top * h + y) * w + x] += self.c_pad;
                        }
                    }
                }
            }
            for &c in &caps {
                if !(c.is_finite() && c >= 0.0) {
                    return Err(GridError::InvalidCapacitance {
                        what: "node",
                        farads: c,
                    });
                }
            }
            caps
        } else {
            Vec::new()
        };

        Ok(Stack3d {
            width: w,
            height: h,
            tiers: self.tiers,
            r_h: self.r_h,
            r_v: self.r_v,
            r_tsv: self.r_tsv,
            r_pad: self.r_pad,
            tsv_mask,
            tsv_sites,
            pad_mask,
            loads,
            caps,
            vdd: self.vdd,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper() {
        let s = Stack3d::builder(4, 4, 3).build().unwrap();
        assert_eq!(s.tsv_resistance(), 0.05);
        assert_eq!(s.vdd(), 1.8);
        assert_eq!(s.pad_resistance(), 0.0);
        // pitch 2 on 4x4 → TSVs at (0,0),(2,0),(0,2),(2,2).
        assert_eq!(s.tsv_sites().len(), 4);
        // One TSV node per four nodes, as the paper specifies.
        assert_eq!(s.nodes_per_tier() / s.tsv_sites().len(), 4);
    }

    #[test]
    fn node_index_roundtrip() {
        let s = Stack3d::builder(5, 7, 3).build().unwrap();
        for tier in 0..3 {
            for y in 0..7 {
                for x in 0..5 {
                    let i = s.node_index(tier, x, y);
                    assert_eq!(s.node_coords(i), (tier, x, y));
                }
            }
        }
        assert_eq!(s.num_nodes(), 105);
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(matches!(
            Stack3d::builder(0, 4, 3).build().unwrap_err(),
            GridError::InvalidDimension { what: "width", .. }
        ));
        assert!(matches!(
            Stack3d::builder(4, 0, 3).build().unwrap_err(),
            GridError::InvalidDimension { what: "height", .. }
        ));
        assert!(matches!(
            Stack3d::builder(4, 4, 0).build().unwrap_err(),
            GridError::InvalidDimension { what: "tiers", .. }
        ));
    }

    #[test]
    fn bad_resistances_rejected() {
        assert!(matches!(
            Stack3d::builder(4, 4, 3).wire_resistance(0.0).build(),
            Err(GridError::InvalidResistance { .. })
        ));
        assert!(matches!(
            Stack3d::builder(4, 4, 3).tsv_resistance(-0.05).build(),
            Err(GridError::InvalidResistance { .. })
        ));
        assert!(matches!(
            Stack3d::builder(4, 4, 3).pad_resistance(f64::NAN).build(),
            Err(GridError::InvalidResistance { .. })
        ));
        // Zero pad resistance is explicitly allowed (ideal pads).
        assert!(Stack3d::builder(4, 4, 3)
            .pad_resistance(0.0)
            .build()
            .is_ok());
    }

    #[test]
    fn explicit_tsvs_and_pads() {
        let s = Stack3d::builder(4, 4, 2)
            .tsv_pattern(TsvPattern::Explicit(vec![(1, 1), (3, 2)]))
            .pad_sites(vec![(1, 1)])
            .build()
            .unwrap();
        assert!(s.is_tsv(1, 1));
        assert!(s.is_tsv(3, 2));
        assert!(!s.is_tsv(0, 0));
        assert!(s.is_pad(1, 1));
        assert!(!s.is_pad(3, 2));
        assert_eq!(s.num_pads(), 1);
    }

    #[test]
    fn explicit_out_of_bounds_rejected() {
        assert!(matches!(
            Stack3d::builder(4, 4, 2)
                .tsv_pattern(TsvPattern::Explicit(vec![(9, 0)]))
                .build(),
            Err(GridError::CoordOutOfBounds { .. })
        ));
        assert!(matches!(
            Stack3d::builder(4, 4, 2).pad_sites(vec![(0, 9)]).build(),
            Err(GridError::CoordOutOfBounds { .. })
        ));
    }

    #[test]
    fn random_pattern_is_seeded_and_counted() {
        let a = Stack3d::builder(10, 10, 2)
            .tsv_pattern(TsvPattern::Random {
                count: 13,
                seed: 42,
            })
            .build()
            .unwrap();
        let b = Stack3d::builder(10, 10, 2)
            .tsv_pattern(TsvPattern::Random {
                count: 13,
                seed: 42,
            })
            .build()
            .unwrap();
        assert_eq!(a.tsv_sites(), b.tsv_sites());
        assert_eq!(a.tsv_sites().len(), 13);
        let c = Stack3d::builder(10, 10, 2)
            .tsv_pattern(TsvPattern::Random {
                count: 13,
                seed: 43,
            })
            .build()
            .unwrap();
        assert_ne!(a.tsv_sites(), c.tsv_sites());
    }

    #[test]
    fn clustered_pattern_clips_to_grid() {
        let s = Stack3d::builder(6, 6, 2)
            .tsv_pattern(TsvPattern::Clustered {
                centers: vec![(0, 0)],
                radius: 1,
            })
            .build()
            .unwrap();
        assert_eq!(s.tsv_sites().len(), 4); // 2x2 corner
    }

    #[test]
    fn no_tsvs_rejected_for_multi_tier() {
        let err = Stack3d::builder(4, 4, 3)
            .tsv_pattern(TsvPattern::Explicit(vec![]))
            .build()
            .unwrap_err();
        assert_eq!(err, GridError::NoTsvs);
    }

    #[test]
    fn single_tier_without_tsvs_allowed() {
        let s = Stack3d::builder(4, 4, 1)
            .tsv_pattern(TsvPattern::Explicit(vec![]))
            .build()
            .unwrap();
        assert_eq!(s.tiers(), 1);
        assert!(s.num_pads() > 0);
    }

    #[test]
    fn pad_lattice_selects_coarse_bumps() {
        let s = Stack3d::builder(12, 12, 3)
            .tsv_pattern(TsvPattern::Uniform { pitch: 2 })
            .pad_lattice(4)
            .build()
            .unwrap();
        // Pads only at TSV sites with both coordinates on the 4-lattice.
        assert_eq!(s.num_pads(), 9); // x,y ∈ {0,4,8}
        assert!(s.is_pad(0, 0));
        assert!(s.is_pad(4, 8));
        assert!(!s.is_pad(2, 0), "pillar without a bump");
        // All pads are pillars.
        for (x, y) in s.pad_sites() {
            assert!(s.is_tsv(x as usize, y as usize));
        }
    }

    #[test]
    fn pad_lattice_zero_pitch_rejected() {
        assert!(matches!(
            Stack3d::builder(8, 8, 2).pad_lattice(0).build(),
            Err(GridError::InvalidDimension { .. })
        ));
    }

    #[test]
    fn pad_lattice_missing_pillars_yields_no_pads() {
        // A lattice that misses every pillar (odd pitch on even pillar
        // coordinates away from zero is fine — (0,0) always matches), so
        // use explicit pillars away from the lattice.
        let err = Stack3d::builder(8, 8, 2)
            .tsv_pattern(TsvPattern::Explicit(vec![(1, 1), (3, 3)]))
            .pad_lattice(2)
            .build()
            .unwrap_err();
        assert_eq!(err, GridError::NoPads);
    }

    #[test]
    fn loads_validated() {
        let err = Stack3d::builder(2, 2, 1)
            .loads(vec![0.1, -0.2, 0.0, 0.0])
            .build()
            .unwrap_err();
        assert!(matches!(err, GridError::InvalidLoad { node: 1, .. }));

        let err = Stack3d::builder(2, 2, 1)
            .loads(vec![0.1])
            .build()
            .unwrap_err();
        assert!(matches!(err, GridError::InvalidDimension { .. }));
    }

    #[test]
    fn set_loads_replaces() {
        let mut s = Stack3d::builder(2, 2, 1).build().unwrap();
        s.set_loads(vec![0.0, 1e-3, 2e-3, 0.0]).unwrap();
        assert_eq!(s.load(0, 1, 0), 1e-3);
        assert!((s.total_load() - 3e-3).abs() < 1e-15);
        assert!(s.set_loads(vec![f64::NAN; 4]).is_err());
    }

    #[test]
    fn uniform_load_skips_tsv_nodes() {
        let s = Stack3d::builder(4, 4, 2)
            .uniform_load(1e-3)
            .build()
            .unwrap();
        for tier in 0..2 {
            for y in 0..4 {
                for x in 0..4 {
                    let l = s.load(tier, x, y);
                    if s.is_tsv(x, y) {
                        assert_eq!(l, 0.0, "TSV keep-out violated at ({x},{y})");
                    } else {
                        assert_eq!(l, 1e-3);
                    }
                }
            }
        }
    }

    #[test]
    fn tier_resistance_override() {
        let s = Stack3d::builder(3, 3, 2)
            .wire_resistance(0.02)
            .tier_resistance(1, 0.04, 0.05)
            .build()
            .unwrap();
        assert_eq!(s.r_horizontal(0), 0.02);
        assert_eq!(s.r_horizontal(1), 0.04);
        assert_eq!(s.r_vertical(1), 0.05);
    }

    #[test]
    fn memory_bytes_nonzero() {
        let s = Stack3d::builder(3, 3, 2).build().unwrap();
        assert!(s.memory_bytes() > 0);
    }

    #[test]
    fn default_stack_has_no_dynamics() {
        let s = Stack3d::builder(4, 4, 2).build().unwrap();
        assert!(!s.has_dynamics());
        assert_eq!(s.capacitances(), None);
        assert_eq!(s.capacitance(0, 1, 1), 0.0);
        assert_eq!(s.total_capacitance(), 0.0);
    }

    #[test]
    fn capacitance_layers_compose() {
        let s = Stack3d::builder(4, 4, 2)
            .grid_capacitance(1e-12)
            .tier_capacitance(1, 2e-12)
            .decap(0, 1, 1, 5e-12)
            .decap(0, 1, 1, 5e-12) // accumulates
            .pad_resistance(0.1)
            .pad_capacitance(1e-9)
            .build()
            .unwrap();
        assert!(s.has_dynamics());
        assert_eq!(s.capacitance(0, 0, 0), 1e-12);
        assert_eq!(s.capacitance(1, 1, 0), 2e-12);
        assert!((s.capacitance(0, 1, 1) - 1.1e-11).abs() < 1e-24);
        // Pads sit on the top tier at TSV sites.
        assert!((s.capacitance(1, 0, 0) - (2e-12 + 1e-9)).abs() < 1e-22);
        let caps = s.capacitances().unwrap();
        assert_eq!(caps.len(), s.num_nodes());
        assert!((s.total_capacitance() - caps.iter().sum::<f64>()).abs() < 1e-20);
    }

    #[test]
    fn explicit_capacitance_vector_replaces_base() {
        let n = 2 * 2;
        let s = Stack3d::builder(2, 2, 1)
            .grid_capacitance(1e-12) // replaced by the explicit vector
            .node_capacitances(vec![1e-15; n])
            .decap(0, 1, 1, 3e-15)
            .build()
            .unwrap();
        assert_eq!(s.capacitance(0, 0, 1), 1e-15);
        assert!((s.capacitance(0, 1, 1) - 4e-15).abs() < 1e-28);
    }

    #[test]
    fn bad_capacitances_rejected() {
        assert!(matches!(
            Stack3d::builder(4, 4, 2).grid_capacitance(-1e-12).build(),
            Err(GridError::InvalidCapacitance { what: "grid", .. })
        ));
        assert!(matches!(
            Stack3d::builder(4, 4, 2)
                .tier_capacitance(0, f64::NAN)
                .build(),
            Err(GridError::InvalidCapacitance { what: "tier", .. })
        ));
        assert!(matches!(
            Stack3d::builder(4, 4, 2).decap(0, 1, 1, -1e-15).build(),
            Err(GridError::InvalidCapacitance { what: "decap", .. })
        ));
        assert!(matches!(
            Stack3d::builder(4, 4, 2).decap(5, 1, 1, 1e-15).build(),
            Err(GridError::InvalidDimension {
                what: "decap tier",
                ..
            })
        ));
        assert!(matches!(
            Stack3d::builder(4, 4, 2).decap(0, 9, 1, 1e-15).build(),
            Err(GridError::CoordOutOfBounds { .. })
        ));
        assert!(matches!(
            Stack3d::builder(4, 4, 2)
                .node_capacitances(vec![0.0; 3])
                .build(),
            Err(GridError::InvalidDimension { .. })
        ));
        assert!(matches!(
            Stack3d::builder(4, 4, 2)
                .node_capacitances(vec![f64::INFINITY; 32])
                .build(),
            Err(GridError::InvalidCapacitance { what: "node", .. })
        ));
    }
}
