//! Property-based tests for the grid substrate.
//!
//! Each property runs across a deterministic sweep of generated stacks
//! (the workspace builds offline without the `proptest` crate).

use voltprop_grid::netlist::names::{node_name, parse_node_name};
use voltprop_grid::rng::SmallRng;
use voltprop_grid::{LoadProfile, NetKind, Netlist, Stack3d, TsvPattern};
use voltprop_sparse::Cholesky;

/// A randomized small stack driven by one seed.
fn small_stack(case: u64) -> Stack3d {
    let mut g = SmallRng::new(case);
    let w = 2 + g.usize_below(5);
    let h = 2 + g.usize_below(5);
    let t = 1 + g.usize_below(3);
    let resistive_pads = g.next_u64() % 2 == 0;
    Stack3d::builder(w, h, t)
        .wire_resistance(0.02)
        .tsv_resistance(0.05)
        .tsv_pattern(TsvPattern::Uniform { pitch: 2 })
        .pad_resistance(if resistive_pads { 0.1 } else { 0.0 })
        .load_profile(
            LoadProfile::UniformRandom {
                min: 1e-5,
                max: 1e-3,
            },
            g.next_u64() % 1000,
        )
        .build()
        .expect("valid parameters")
}

#[test]
fn node_name_roundtrip() {
    let mut g = SmallRng::new(11);
    for _ in 0..64 {
        let (t, x, y) = (g.usize_below(100), g.usize_below(5000), g.usize_below(5000));
        assert_eq!(parse_node_name(&node_name(t, x, y)), Some((t, x, y)));
    }
}

#[test]
fn stamped_matrix_is_spd_and_solvable() {
    for case in 0..64u64 {
        let stack = small_stack(case);
        let sys = stack.stamp(NetKind::Power).unwrap();
        assert!(sys.matrix().is_symmetric(1e-12), "case {case}");
        let chol = Cholesky::factor(sys.matrix());
        assert!(chol.is_ok(), "case {case}: stamped system must be SPD");
        let v = sys.expand(&chol.unwrap().solve(sys.rhs()));
        // All voltages in (0, VDD].
        for &vi in &v[..stack.num_nodes()] {
            assert!(
                vi > 0.0 && vi <= stack.vdd() + 1e-9,
                "case {case}: voltage {vi}"
            );
        }
    }
}

#[test]
fn voltage_monotone_in_load() {
    for case in 0..64u64 {
        // Doubling every load weakly deepens the IR drop at every node.
        let stack = small_stack(100 + case);
        let sys1 = stack.stamp(NetKind::Power).unwrap();
        let v1 = sys1.expand(&Cholesky::factor(sys1.matrix()).unwrap().solve(sys1.rhs()));
        let mut stack2 = stack.clone();
        stack2
            .set_loads(stack.loads().iter().map(|l| l * 2.0).collect())
            .unwrap();
        let sys2 = stack2.stamp(NetKind::Power).unwrap();
        let v2 = sys2.expand(&Cholesky::factor(sys2.matrix()).unwrap().solve(sys2.rhs()));
        for (a, b) in v1.iter().zip(&v2) {
            assert!(b <= &(a + 1e-12), "case {case}");
        }
    }
}

#[test]
fn netlist_roundtrip_any_stack() {
    for case in 0..64u64 {
        let stack = small_stack(200 + case);
        let text = stack.to_netlist(NetKind::Power).to_spice();
        let back = Stack3d::from_netlist(&Netlist::parse(&text).unwrap()).unwrap();
        if stack.tiers() > 1 {
            assert_eq!(stack, back, "case {case}");
        } else {
            // Single-tier stacks emit no TSV segments, so pillar sites are
            // unobservable from the netlist; compare the electrical content.
            assert_eq!(stack.loads(), back.loads(), "case {case}");
            assert_eq!(stack.pad_sites(), back.pad_sites(), "case {case}");
            assert_eq!(stack.num_nodes(), back.num_nodes(), "case {case}");
            assert_eq!(stack.vdd(), back.vdd(), "case {case}");
        }
    }
}

#[test]
fn power_plus_ground_is_total_drop() {
    for case in 0..64u64 {
        // For identical topologies the two nets superpose: the total
        // effective rail collapse seen by a device is (VDD - Vp) + Vg, and
        // Vg mirrors the power-net drop exactly.
        let stack = small_stack(300 + case);
        let sp = stack.stamp(NetKind::Power).unwrap();
        let vp = sp.expand(&Cholesky::factor(sp.matrix()).unwrap().solve(sp.rhs()));
        let sg = stack.stamp(NetKind::Ground).unwrap();
        let vg = sg.expand(&Cholesky::factor(sg.matrix()).unwrap().solve(sg.rhs()));
        for i in 0..stack.num_nodes() {
            let drop_p = stack.vdd() - vp[i];
            assert!((drop_p - vg[i]).abs() < 1e-9, "case {case} node {i}");
        }
    }
}

#[test]
fn loads_generate_zero_on_tsv() {
    let mut g = SmallRng::new(17);
    for case in 0..64u64 {
        let w = 2 + g.usize_below(6);
        let h = 2 + g.usize_below(6);
        let stack = Stack3d::builder(w, h, 2)
            .load_profile(
                LoadProfile::UniformRandom {
                    min: 1e-6,
                    max: 1e-3,
                },
                g.next_u64() % 100,
            )
            .build()
            .unwrap();
        for y in 0..h {
            for x in 0..w {
                if stack.is_tsv(x, y) {
                    for t in 0..2 {
                        assert_eq!(stack.load(t, x, y), 0.0, "case {case}");
                    }
                }
            }
        }
    }
}
