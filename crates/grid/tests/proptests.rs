//! Property-based tests for the grid substrate.

use proptest::prelude::*;
use voltprop_grid::netlist::names::{node_name, parse_node_name};
use voltprop_grid::{LoadProfile, NetKind, Netlist, Stack3d, TsvPattern};
use voltprop_sparse::Cholesky;

fn small_stack() -> impl Strategy<Value = Stack3d> {
    (2usize..7, 2usize..7, 1usize..4, 0u64..1000, prop::bool::ANY).prop_map(
        |(w, h, t, seed, resistive_pads)| {
            Stack3d::builder(w, h, t)
                .wire_resistance(0.02)
                .tsv_resistance(0.05)
                .tsv_pattern(TsvPattern::Uniform { pitch: 2 })
                .pad_resistance(if resistive_pads { 0.1 } else { 0.0 })
                .load_profile(LoadProfile::UniformRandom { min: 1e-5, max: 1e-3 }, seed)
                .build()
                .expect("valid parameters")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn node_name_roundtrip(t in 0usize..100, x in 0usize..5000, y in 0usize..5000) {
        prop_assert_eq!(parse_node_name(&node_name(t, x, y)), Some((t, x, y)));
    }

    #[test]
    fn stamped_matrix_is_spd_and_solvable(stack in small_stack()) {
        let sys = stack.stamp(NetKind::Power).unwrap();
        prop_assert!(sys.matrix().is_symmetric(1e-12));
        let chol = Cholesky::factor(sys.matrix());
        prop_assert!(chol.is_ok(), "stamped system must be SPD");
        let v = sys.expand(&chol.unwrap().solve(sys.rhs()));
        // All voltages in (0, VDD].
        for &vi in &v[..stack.num_nodes()] {
            prop_assert!(vi > 0.0 && vi <= stack.vdd() + 1e-9, "voltage {vi}");
        }
    }

    #[test]
    fn voltage_monotone_in_load(stack in small_stack()) {
        // Doubling every load weakly deepens the IR drop at every node.
        let sys1 = stack.stamp(NetKind::Power).unwrap();
        let v1 = sys1.expand(&Cholesky::factor(sys1.matrix()).unwrap().solve(sys1.rhs()));
        let mut stack2 = stack.clone();
        stack2.set_loads(stack.loads().iter().map(|l| l * 2.0).collect()).unwrap();
        let sys2 = stack2.stamp(NetKind::Power).unwrap();
        let v2 = sys2.expand(&Cholesky::factor(sys2.matrix()).unwrap().solve(sys2.rhs()));
        for (a, b) in v1.iter().zip(&v2) {
            prop_assert!(b <= &(a + 1e-12));
        }
    }

    #[test]
    fn netlist_roundtrip_any_stack(stack in small_stack()) {
        let text = stack.to_netlist(NetKind::Power).to_spice();
        let back = Stack3d::from_netlist(&Netlist::parse(&text).unwrap()).unwrap();
        if stack.tiers() > 1 {
            prop_assert_eq!(stack, back);
        } else {
            // Single-tier stacks emit no TSV segments, so pillar sites are
            // unobservable from the netlist; compare the electrical content.
            prop_assert_eq!(stack.loads(), back.loads());
            prop_assert_eq!(stack.pad_sites(), back.pad_sites());
            prop_assert_eq!(stack.num_nodes(), back.num_nodes());
            prop_assert_eq!(stack.vdd(), back.vdd());
        }
    }

    #[test]
    fn power_plus_ground_is_total_drop(stack in small_stack()) {
        // For identical topologies the two nets superpose: the total
        // effective rail collapse seen by a device is (VDD - Vp) + Vg, and
        // Vg mirrors the power-net drop exactly.
        let sp = stack.stamp(NetKind::Power).unwrap();
        let vp = sp.expand(&Cholesky::factor(sp.matrix()).unwrap().solve(sp.rhs()));
        let sg = stack.stamp(NetKind::Ground).unwrap();
        let vg = sg.expand(&Cholesky::factor(sg.matrix()).unwrap().solve(sg.rhs()));
        for i in 0..stack.num_nodes() {
            let drop_p = stack.vdd() - vp[i];
            prop_assert!((drop_p - vg[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn loads_generate_zero_on_tsv(w in 2usize..8, h in 2usize..8, seed in 0u64..100) {
        let stack = Stack3d::builder(w, h, 2)
            .load_profile(LoadProfile::UniformRandom { min: 1e-6, max: 1e-3 }, seed)
            .build()
            .unwrap();
        for y in 0..h {
            for x in 0..w {
                if stack.is_tsv(x, y) {
                    for t in 0..2 {
                        prop_assert_eq!(stack.load(t, x, y), 0.0);
                    }
                }
            }
        }
    }
}
