//! `voltprop` — voltage propagation IR-drop analysis for TSV-based 3-D
//! power grids.
//!
//! This facade crate re-exports the full public API of the workspace that
//! reproduces *"Voltage Propagation Method for 3-D Power Grid Analysis"*
//! (Zhang, Pavlidis, De Micheli, DATE 2012):
//!
//! * [`core`] — the [`Session`] handle and the voltage propagation
//!   solver itself;
//! * [`grid`] — power grid modeling, netlists, benchmark synthesis;
//! * [`solvers`] — the baseline solvers (direct Cholesky, PCG, row-based,
//!   random walks) the paper compares against;
//! * [`sparse`] — the sparse linear algebra substrate.
//!
//! The most common items are re-exported at the crate root. The primary
//! entry point is [`Session`]: build the prefactored solve state once,
//! then serve single solves, batched what-if sweeps, quasi-static step
//! sequences ([`Session::solve_steps`]), and true capacitive transients
//! ([`Session::transient_dynamic`]: backward-Euler/trapezoidal companion
//! models on a prefactored companion system, streaming [`Waveform`] in
//! and [`TransientSink`] out) from it — across backends — with zero warm
//! allocations.
//! [`SharedSession`] serves the same factorization to N threads
//! concurrently through a bounded scratch checkout pool (and the
//! `voltprop-serve` daemon builds a JSON-over-TCP service on top of it).
//!
//! # Quickstart
//!
//! ```
//! use voltprop::{LoadCase, Session, Stack3d, VpConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 3-tier 16x16 grid with the paper's TSV layout and random loads.
//! let stack = Stack3d::builder(16, 16, 3)
//!     .load_profile(voltprop::LoadProfile::UniformRandom {
//!         min: 1e-4, max: 2e-3,
//!     }, 42)
//!     .build()?;
//!
//! // Factor once; every request after this reuses the tier factors.
//! let mut session = Session::build(&stack, VpConfig::default())?;
//! let view = session.solve(&LoadCase::new(&stack))?;
//! assert!(view.converged());
//! println!("worst IR drop: {:.2} mV", view.worst_drop(stack.vdd()) * 1e3);
//!
//! // Batched what-if sweep on the same prefactored state: two DVFS
//! // corners as lanes of one solve.
//! let mut loads = stack.loads().to_vec();
//! loads.extend(stack.loads().iter().map(|l| 1.25 * l));
//! let sweep = session.solve_batch(&voltprop::LoadSet::new(&stack, &loads))?;
//! assert_eq!(sweep.lanes(), 2);
//! # Ok(())
//! # }
//! ```
//!
//! Migrating from the old `VpSolver::solve{,_with,_batch}` entry points
//! (removed in this release)? See `MIGRATION.md` at the repository root
//! for a one-page map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use voltprop_core as core;
pub use voltprop_grid as grid;
pub use voltprop_solvers as solvers;
pub use voltprop_sparse as sparse;

pub use voltprop_core::{
    Backend, BuildError, BuildParams, Deadline, FnWaveform, Integrator, LoadCase, LoadSet,
    Precision, PwlWaveform, ScaledWaveform, Session, SessionCore, SessionError, SharedSession,
    SharedSolution, SolutionView, SolveParams, SolveScratch, TraceSink, TransientParams,
    TransientReport, TransientSink, TryCheckout, VpConfig, VpReport, VpSolver, Waveform,
};
pub use voltprop_grid::{
    GridError, LoadProfile, NetKind, Netlist, NetlistCircuit, ShardBand, ShardPlan, Stack3d,
    StampedSystem, SynthConfig, TableCircuit, TsvPattern,
};
pub use voltprop_solvers::{
    ConjugateGradient, DirectCholesky, LaneReport, LinearSolver, Pcg, PcgEngine, PrecondKind,
    RandomWalkSolver, Rb3d, Rb3dEngine, SolveReport, SolverError, StackSolution, StackSolver,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        // Touch a few re-exports so refactors that drop them fail here.
        let _ = crate::VpConfig::default();
        let _ = crate::DirectCholesky::new();
        let _ = crate::PrecondKind::Ic0;
        let _ = crate::Backend::VoltProp;
        let _ = crate::SolveParams::new();
    }
}
