//! `voltprop` — voltage propagation IR-drop analysis for TSV-based 3-D
//! power grids.
//!
//! This facade crate re-exports the full public API of the workspace that
//! reproduces *"Voltage Propagation Method for 3-D Power Grid Analysis"*
//! (Zhang, Pavlidis, De Micheli, DATE 2012):
//!
//! * [`core`] — the [`VpSolver`](core::VpSolver) itself;
//! * [`grid`] — power grid modeling, netlists, benchmark synthesis;
//! * [`solvers`] — the baseline solvers (direct Cholesky, PCG, row-based,
//!   random walks) the paper compares against;
//! * [`sparse`] — the sparse linear algebra substrate.
//!
//! The most common items are re-exported at the crate root.
//!
//! # Quickstart
//!
//! ```
//! use voltprop::{Stack3d, NetKind, VpSolver, StackSolver};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 3-tier 16x16 grid with the paper's TSV layout and random loads.
//! let stack = Stack3d::builder(16, 16, 3)
//!     .load_profile(voltprop::LoadProfile::UniformRandom {
//!         min: 1e-4, max: 2e-3,
//!     }, 42)
//!     .build()?;
//!
//! let solution = VpSolver::default().solve_stack(&stack, NetKind::Power)?;
//! println!("worst IR drop: {:.2} mV", solution.worst_drop(stack.vdd()) * 1e3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use voltprop_core as core;
pub use voltprop_grid as grid;
pub use voltprop_solvers as solvers;
pub use voltprop_sparse as sparse;

pub use voltprop_core::{VpConfig, VpReport, VpScratch, VpSolution, VpSolver};
pub use voltprop_grid::{
    GridError, LoadProfile, NetKind, Netlist, NetlistCircuit, Stack3d, StampedSystem, SynthConfig,
    TableCircuit, TsvPattern,
};
pub use voltprop_solvers::{
    ConjugateGradient, DirectCholesky, LaneReport, LinearSolver, Pcg, PrecondKind,
    RandomWalkSolver, Rb3d, SolveReport, SolverError, StackSolution, StackSolver,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        // Touch a few re-exports so refactors that drop them fail here.
        let _ = crate::VpConfig::default();
        let _ = crate::DirectCholesky::new();
        let _ = crate::PrecondKind::Ic0;
    }
}
