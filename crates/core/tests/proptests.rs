//! Property-based tests: voltage propagation vs. the direct solver on
//! randomized stacks.

use proptest::prelude::*;
use voltprop_core::VpSolver;
use voltprop_grid::{LoadProfile, NetKind, Stack3d, TsvPattern};
use voltprop_solvers::{residual, DirectCholesky, StackSolver};

fn arbitrary_stack() -> impl Strategy<Value = Stack3d> {
    // Pillar pitch 2 is the paper's density (one TSV node per four nodes);
    // the generator varies footprint, tier count, wire resistance, load
    // seed, and — importantly — pad sparsity (dense pad-per-pillar vs the
    // IBM-like coarse bump lattice).
    (
        4usize..12,
        4usize..12,
        1usize..5,
        0u64..10_000,
        prop::sample::select(vec![0.5f64, 1.0, 2.0]),
        prop::bool::ANY,
    )
        .prop_map(|(w, h, tiers, seed, r_wire, sparse_pads)| {
            let mut b = Stack3d::builder(w, h, tiers)
                .wire_resistance(r_wire)
                .tsv_resistance(0.05)
                .tsv_pattern(TsvPattern::Uniform { pitch: 2 })
                .load_profile(LoadProfile::UniformRandom { min: 1e-5, max: 2e-3 }, seed);
            if sparse_pads {
                b = b.pad_lattice(4);
            }
            b.build().expect("valid parameters")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline accuracy property: VP lands within the paper's 0.5 mV
    /// budget of the exact solution on every randomized stack.
    #[test]
    fn vp_matches_direct_within_half_millivolt(stack in arbitrary_stack()) {
        let exact = DirectCholesky::new().solve_stack(&stack, NetKind::Power).unwrap();
        let vp = VpSolver::default().solve(&stack, NetKind::Power).unwrap();
        let err = residual::max_abs_error(&exact.voltages, &vp.voltages);
        prop_assert!(err < 5e-4, "max error {err} V on {}x{}x{}",
                     stack.width(), stack.height(), stack.tiers());
    }

    /// Voltages never exceed the rail (power net) beyond the convergence
    /// epsilon, and the worst drop is physically bounded by total load
    /// times worst-case path resistance.
    #[test]
    fn vp_voltages_physically_sensible(stack in arbitrary_stack()) {
        let vp = VpSolver::default().solve(&stack, NetKind::Power).unwrap();
        let eps = 2e-4;
        for &v in &vp.voltages {
            prop_assert!(v <= stack.vdd() + eps, "voltage {v} above rail");
            prop_assert!(v > 0.0, "voltage {v} not positive");
        }
    }

    /// Pillar currents balance the total load (current conservation
    /// through the package).
    #[test]
    fn vp_pillar_currents_conserve(stack in arbitrary_stack()) {
        prop_assume!(stack.tiers() > 1);
        let vp = VpSolver::default().solve(&stack, NetKind::Power).unwrap();
        let delivered: f64 = vp.pillar_currents.iter().sum();
        let total = stack.total_load();
        prop_assert!((delivered - total).abs() <= 0.02 * total.max(1e-12),
                     "delivered {delivered} vs load {total}");
    }

    /// Power and ground nets mirror each other through VP exactly as they
    /// do through the direct solver.
    #[test]
    fn vp_ground_mirrors_power(stack in arbitrary_stack()) {
        let p = VpSolver::default().solve(&stack, NetKind::Power).unwrap();
        let g = VpSolver::default().solve(&stack, NetKind::Ground).unwrap();
        for (vp, vg) in p.voltages.iter().zip(&g.voltages) {
            let drop_p = stack.vdd() - vp;
            prop_assert!((drop_p - vg).abs() < 1e-3,
                         "power drop {drop_p} vs ground bounce {vg}");
        }
    }
}
