//! Property-based tests: voltage propagation vs. the direct solver on
//! randomized stacks.
//!
//! Each property runs across a deterministic sweep of generated stacks
//! (the workspace builds offline without the `proptest` crate).

use voltprop_core::{LoadCase, Session, VpConfig};
use voltprop_grid::rng::SmallRng;
use voltprop_grid::{LoadProfile, NetKind, Stack3d, TsvPattern};
use voltprop_solvers::{residual, DirectCholesky, StackSolver};

/// A randomized stack driven by one seed.
///
/// Pillar pitch 2 is the paper's density (one TSV node per four nodes);
/// the generator varies footprint, tier count, wire resistance, load
/// seed, and — importantly — pad sparsity (dense pad-per-pillar vs the
/// IBM-like coarse bump lattice).
fn arbitrary_stack(case: u64) -> Stack3d {
    let mut g = SmallRng::new(case);
    let w = 4 + g.usize_below(8);
    let h = 4 + g.usize_below(8);
    let tiers = 1 + g.usize_below(4);
    let r_wire = [0.5f64, 1.0, 2.0][g.usize_below(3)];
    let sparse_pads = g.next_u64() % 2 == 0;
    let mut b = Stack3d::builder(w, h, tiers)
        .wire_resistance(r_wire)
        .tsv_resistance(0.05)
        .tsv_pattern(TsvPattern::Uniform { pitch: 2 })
        .load_profile(
            LoadProfile::UniformRandom {
                min: 1e-5,
                max: 2e-3,
            },
            g.next_u64() % 10_000,
        );
    if sparse_pads {
        b = b.pad_lattice(4);
    }
    b.build().expect("valid parameters")
}

/// The headline accuracy property: VP lands within the paper's 0.5 mV
/// budget of the exact solution on every randomized stack.
#[test]
fn vp_matches_direct_within_half_millivolt() {
    for case in 0..48u64 {
        let stack = arbitrary_stack(case);
        let exact = DirectCholesky::new()
            .solve_stack(&stack, NetKind::Power)
            .unwrap();
        let mut session = Session::build(&stack, VpConfig::default()).unwrap();
        let vp = session.solve(&LoadCase::new(&stack)).unwrap();
        let err = residual::max_abs_error(&exact.voltages, vp.voltages());
        assert!(
            err < 5e-4,
            "case {case}: max error {err} V on {}x{}x{}",
            stack.width(),
            stack.height(),
            stack.tiers()
        );
    }
}

/// Voltages never exceed the rail (power net) beyond the convergence
/// epsilon, and stay positive.
#[test]
fn vp_voltages_physically_sensible() {
    for case in 0..48u64 {
        let stack = arbitrary_stack(100 + case);
        let mut session = Session::build(&stack, VpConfig::default()).unwrap();
        let vp = session.solve(&LoadCase::new(&stack)).unwrap();
        let eps = 2e-4;
        for &v in vp.voltages() {
            assert!(
                v <= stack.vdd() + eps,
                "case {case}: voltage {v} above rail"
            );
            assert!(v > 0.0, "case {case}: voltage {v} not positive");
        }
    }
}

/// Pillar currents balance the total load (current conservation through
/// the package).
#[test]
fn vp_pillar_currents_conserve() {
    for case in 0..48u64 {
        let stack = arbitrary_stack(200 + case);
        if stack.tiers() <= 1 {
            continue;
        }
        let mut session = Session::build(&stack, VpConfig::default()).unwrap();
        let vp = session.solve(&LoadCase::new(&stack)).unwrap();
        let delivered: f64 = vp.pillar_currents().iter().sum();
        let total = stack.total_load();
        assert!(
            (delivered - total).abs() <= 0.02 * total.max(1e-12),
            "case {case}: delivered {delivered} vs load {total}"
        );
    }
}

/// Power and ground nets mirror each other through VP exactly as they do
/// through the direct solver.
#[test]
fn vp_ground_mirrors_power() {
    for case in 0..48u64 {
        let stack = arbitrary_stack(300 + case);
        // One session serves both nets (the mirror property is also a
        // mixed-net session exercise).
        let mut session = Session::build(&stack, VpConfig::default()).unwrap();
        let p = session
            .solve(&LoadCase::new(&stack))
            .unwrap()
            .voltages()
            .to_vec();
        let g = session
            .solve(&LoadCase::new(&stack).net(NetKind::Ground))
            .unwrap();
        for (vp, vg) in p.iter().zip(g.voltages()) {
            let drop_p = stack.vdd() - vp;
            assert!(
                (drop_p - vg).abs() < 1e-3,
                "case {case}: power drop {drop_p} vs ground bounce {vg}"
            );
        }
    }
}

/// The `Backend::Pcg` prefactor contract: on seeded random stacks the
/// IC(0) preconditioner is **SPD-applied** — its application is symmetric
/// (`u·M⁻¹v == v·M⁻¹u`) and positive (`r·M⁻¹r > 0`) — and therefore
/// preconditioned CG on the stamped system descends the energy norm
/// `f(x) = ½·xᵀAx − bᵀx` monotonically, iteration by iteration. A broken
/// (non-SPD) preconditioner shows up here as an energy increase long
/// before it corrupts voltages.
#[test]
fn ic0_preconditioner_is_spd_applied_energy_decreases_monotonically() {
    use voltprop_sparse::{vec_ops, IncompleteCholesky};

    for case in 0..16u64 {
        let stack = arbitrary_stack(400 + case);
        let sys = stack.stamp(NetKind::Power).unwrap();
        let a = sys.matrix();
        let b = sys.rhs();
        let n = sys.dim();
        let ic = IncompleteCholesky::new(a).unwrap();

        // SPD application: symmetric and positive on seeded vectors.
        let mut g = SmallRng::new(900 + case);
        let u: Vec<f64> = (0..n).map(|_| g.f64() - 0.5).collect();
        let w: Vec<f64> = (0..n).map(|_| g.f64() - 0.5).collect();
        let mu = ic.solve(&u);
        let mw = ic.solve(&w);
        let uw = vec_ops::dot(&u, &mw);
        let wu = vec_ops::dot(&w, &mu);
        assert!(
            (uw - wu).abs() <= 1e-9 * uw.abs().max(wu.abs()).max(1.0),
            "case {case}: IC(0) application is asymmetric ({uw} vs {wu})"
        );
        assert!(
            vec_ops::dot(&u, &mu) > 0.0,
            "case {case}: IC(0) application is not positive definite"
        );

        // The PCG recurrence with that preconditioner: energy must be
        // non-increasing every iteration (CG minimizes f over the
        // growing Krylov space; an SPD M preserves that).
        let energy = |x: &[f64]| {
            let ax = a.mul_vec(x);
            0.5 * vec_ops::dot(x, &ax) - vec_ops::dot(b, x)
        };
        let mut x = vec![0.0; n];
        let mut r = b.to_vec();
        let mut z = ic.solve(&r);
        let mut p = z.clone();
        let mut ap = vec![0.0; n];
        let mut rz = vec_ops::dot(&r, &z);
        let bnorm = vec_ops::norm2(b);
        let mut prev = energy(&x);
        for iter in 0..40 {
            if vec_ops::norm2(&r) <= 1e-10 * bnorm {
                break;
            }
            assert!(rz > 0.0, "case {case} iter {iter}: rᵀM⁻¹r = {rz}");
            a.spmv(&p, &mut ap);
            let pap = vec_ops::dot(&p, &ap);
            assert!(pap > 0.0, "case {case} iter {iter}: pᵀAp = {pap}");
            let alpha = rz / pap;
            vec_ops::axpy(alpha, &p, &mut x);
            vec_ops::axpy(-alpha, &ap, &mut r);
            ic.solve_into(&r, &mut z);
            let rz_new = vec_ops::dot(&r, &z);
            vec_ops::xpby(&z, rz_new / rz, &mut p);
            rz = rz_new;
            let e = energy(&x);
            assert!(
                e <= prev + 1e-12 * prev.abs().max(1e-30),
                "case {case} iter {iter}: energy rose {prev} -> {e}"
            );
            prev = e;
        }
    }
}
