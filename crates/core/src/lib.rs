//! The 3-D Voltage Propagation (VP) method — the contribution of
//! *"Voltage Propagation Method for 3-D Power Grid Analysis"*
//! (Zhang, Pavlidis, De Micheli, DATE 2012).
//!
//! # The algorithm
//!
//! A 3-D power grid stacks tier meshes joined by low-resistance TSV
//! pillars, with package pads above the pillars on the topmost tier.
//! Directly iterating on the assembled system stalls because TSV
//! conductances dwarf wire conductances; VP instead treats each pillar as
//! a one-dimensional boundary object and sweeps the stack *away from* the
//! pads:
//!
//! 1. **Intra-plane voltage calculation** — guess the pillar voltages on
//!    the bottommost tier (layer 0), pin them, and solve the rest of the
//!    tier with the row-based method (exact tridiagonal row solves).
//! 2. **TSV current computation** — Kirchhoff's current law at each pinned
//!    node yields the current its pillar must inject.
//! 3. **Voltage propagation** — the pillar current times R_TSV gives the
//!    voltage of the next tier's pillar terminal; pin, solve that tier,
//!    accumulate the pillar current, and repeat to the top.
//! 4. **Voltage difference adjustment (VDA)** — at the top, the propagated
//!    pad voltages are compared with VDD; the (damped) mismatch feeds back
//!    into the layer-0 guesses until the worst mismatch drops below ε.
//!
//! Because device loads are fixed current sources, pillar currents barely
//! depend on the guessed voltages, so the outer loop converges in a
//! handful of iterations; and because every tier solve sees pinned nodes
//! at one quarter of its sites, the inner row-based sweeps converge in a
//! handful of passes. The solver never assembles the global matrix, which
//! is where the paper's ~3× memory advantage over PCG comes from.
//!
//! # Performance: prefactored engines, parallelism, zero-allocation solves
//!
//! Each tier's row segments are factored once into a prefactored engine
//! ([`voltprop_solvers::TierEngine`]) shared across all outer iterations;
//! sweeps are substitution-only. Two knobs build on that:
//!
//! * **[`VpConfig::parallelism`]** — with more than one thread the tier
//!   sweeps switch to the red-black row coloring
//!   ([`voltprop_solvers::SweepSchedule::RedBlack`]): same-color rows are
//!   solved concurrently, deterministically in the thread count, and the
//!   answer stays within the solver tolerance of the sequential
//!   schedule. `1` (the default) keeps the paper's sequential order.
//!   Parallel sweeps run on the process-wide persistent
//!   [`voltprop_solvers::WorkerPool`]: threads spawn once and park
//!   between solves, so warm parallel solves are allocation-free too.
//! * **[`VpScratch`]** — the reusable solve arena. [`VpSolver::solve`]
//!   builds one internally; callers that solve many load patterns on one
//!   grid should build a [`VpScratch`] once and call
//!   [`VpSolver::solve_with`], which runs the entire outer loop without
//!   heap allocation (measured by `perfsuite`: zero allocator calls on a
//!   warm solve — at `parallelism = 1` and, once the pool is warm, at
//!   any thread count).
//!
//! # Batched load sweeps
//!
//! The tier matrices never change between load patterns, so what-if load
//! sweeps and transient stepping should not solve one right-hand side at
//! a time: [`VpSolver::solve_batch`] takes `k` complete load vectors
//! (lane-major: lane `j`'s `num_nodes` currents contiguous at
//! `j * num_nodes`) and sweeps all of them together through the shared
//! prefactored segments. Internally the voltages and injections are held
//! **node-major / lane-minor** (lane `j` of flat node `i` at
//! `i * k + j`), so the substitution inner loops run unit-stride over the
//! lanes while each Thomas coefficient is loaded once per row — this
//! amortizes the factor traffic *and* breaks the recurrence's serial
//! latency chain across independent lanes (`perfsuite` measures the
//! 256×256×4 stack at batch 64 around 3.4× the batch-1 per-RHS
//! throughput, with zero warm allocator calls).
//!
//! Each lane runs the exact outer loop of [`VpSolver::solve_with`] in
//! lockstep and freezes the moment it converges, so every converged
//! lane's voltages ([`VpScratch::batch_voltages`]) are **bitwise
//! identical** to the corresponding sequential solve; a lane that
//! exhausts a budget reports `converged = false` with its true residual
//! instead of discarding the batch. For a *single* load vector
//! [`VpSolver::solve_with`] remains the faster entry point (the batch
//! kernel's per-lane bookkeeping only pays for itself from a few lanes
//! up); see `examples/load_sweep.rs` for a complete what-if sweep.
//!
//! # Example
//!
//! ```
//! use voltprop_core::VpSolver;
//! use voltprop_grid::{Stack3d, NetKind};
//! use voltprop_solvers::StackSolver;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stack = Stack3d::builder(16, 16, 3).uniform_load(3e-4).build()?;
//! let solution = VpSolver::default().solve_stack(&stack, NetKind::Power)?;
//! println!("worst IR drop: {:.2} mV", solution.worst_drop(1.8) * 1e3);
//! assert!(solution.report.converged);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anderson;
mod config;
mod lattice;
mod report;
mod solver;
mod tier_cache;
mod vda;

pub use config::VpConfig;
pub use report::VpReport;
pub use solver::{VpScratch, VpSolution, VpSolver};
pub use vda::VdaController;
