//! The 3-D Voltage Propagation (VP) method — the contribution of
//! *"Voltage Propagation Method for 3-D Power Grid Analysis"*
//! (Zhang, Pavlidis, De Micheli, DATE 2012).
//!
//! # The algorithm
//!
//! A 3-D power grid stacks tier meshes joined by low-resistance TSV
//! pillars, with package pads above the pillars on the topmost tier.
//! Directly iterating on the assembled system stalls because TSV
//! conductances dwarf wire conductances; VP instead treats each pillar as
//! a one-dimensional boundary object and sweeps the stack *away from* the
//! pads:
//!
//! 1. **Intra-plane voltage calculation** — guess the pillar voltages on
//!    the bottommost tier (layer 0), pin them, and solve the rest of the
//!    tier with the row-based method (exact tridiagonal row solves).
//! 2. **TSV current computation** — Kirchhoff's current law at each pinned
//!    node yields the current its pillar must inject.
//! 3. **Voltage propagation** — the pillar current times R_TSV gives the
//!    voltage of the next tier's pillar terminal; pin, solve that tier,
//!    accumulate the pillar current, and repeat to the top.
//! 4. **Voltage difference adjustment (VDA)** — at the top, the propagated
//!    pad voltages are compared with VDD; the (damped) mismatch feeds back
//!    into the layer-0 guesses until the worst mismatch drops below ε.
//!
//! Because device loads are fixed current sources, pillar currents barely
//! depend on the guessed voltages, so the outer loop converges in a
//! handful of iterations; and because every tier solve sees pinned nodes
//! at one quarter of its sites, the inner row-based sweeps converge in a
//! handful of passes. The solver never assembles the global matrix, which
//! is where the paper's ~3× memory advantage over PCG comes from.
//!
//! # The `Session` handle — the primary entry point
//!
//! The method's asset is *reuse*: tier factorizations and the pillar
//! lattice are built once and amortized across every load pattern. The
//! API mirrors that through [`Session`]: [`Session::build`] performs all
//! allocation and factorization up front, and every request — a single
//! [`LoadCase`], a batched [`LoadSet`], a [`Session::solve_steps`]
//! sequence, or a [`Session::transient_dynamic`] waveform (see below) —
//! flows through the same prefactored state and returns a
//! borrowed [`SolutionView`]. Geometry is a build-time contract
//! (mismatches surface as [`SessionError::GeometryChanged`], never a
//! silent rebuild), while loads, nets, tolerances ([`SolveParams`]) and
//! the [`Backend`] routing may change per request — [`Backend::Rb3d`]
//! and [`Backend::Pcg`] run the paper's baselines on the same
//! prefactored state. (The deprecated `VpSolver::solve{,_with,_batch}`
//! shims and panicking scratch accessors were removed in this release;
//! see `MIGRATION.md` at the repository root.)
//!
//! # Performance: prefactored engines, parallelism, zero-allocation solves
//!
//! Each tier's row segments are factored once into a prefactored engine
//! ([`voltprop_solvers::TierEngine`]) shared across all outer iterations;
//! sweeps are substitution-only. Two properties build on that:
//!
//! * **[`VpConfig::parallelism`]** — with more than one thread the tier
//!   sweeps switch to the red-black row coloring
//!   ([`voltprop_solvers::SweepSchedule::RedBlack`]): same-color rows are
//!   solved concurrently, deterministically in the thread count, and the
//!   answer stays within the solver tolerance of the sequential
//!   schedule. `1` (the default) keeps the paper's sequential order.
//!   Parallel sweeps run on the process-wide persistent
//!   [`voltprop_solvers::WorkerPool`]: threads spawn once and park
//!   between solves, so warm parallel solves are allocation-free too.
//! * **Zero-allocation warm solves** — a [`Session`] owns every solve
//!   buffer (the internal scratch arena absorbed at build), so warm
//!   requests run the entire outer loop — tier sweeps, pillar-current
//!   accumulation, VDA distribution, Anderson mixing — without touching
//!   the heap (measured by `perfsuite`: zero allocator calls across
//!   warm single, batch-64, and 24-step transient requests, at
//!   `parallelism = 1` and, once the pool is warm, at any thread
//!   count).
//!
//! # Batched load sweeps and transients
//!
//! The tier matrices never change between load patterns, so what-if load
//! sweeps and transient stepping should not solve one right-hand side at
//! a time: [`Session::solve_batch`] takes `k` complete load vectors
//! (lane-major: lane `j`'s `num_nodes` currents contiguous at
//! `j * num_nodes`) and sweeps all of them together through the shared
//! prefactored segments. Internally the voltages and injections are held
//! **node-major / lane-minor** (lane `j` of flat node `i` at
//! `i * k + j`), so the substitution inner loops run unit-stride over the
//! lanes while each Thomas coefficient is loaded once per row — this
//! amortizes the factor traffic *and* breaks the recurrence's serial
//! latency chain across independent lanes (`perfsuite` measures the
//! 256×256×4 stack at batch 64 around 3.4× the batch-1 per-RHS
//! throughput, with zero warm allocator calls).
//!
//! Each lane runs the exact outer loop of the single-case solve in
//! lockstep and freezes the moment it converges, so every converged
//! lane's voltages ([`SolutionView::lane_voltages`]) are **bitwise
//! identical** to the corresponding [`Session::solve`]; a lane that
//! exhausts a budget reports `converged = false` with its true residual
//! instead of discarding the batch. For a *single* load vector
//! [`Session::solve`] remains the faster entry point (the batch
//! kernel's per-lane bookkeeping only pays for itself from a few lanes
//! up); see `examples/load_sweep.rs` for a complete what-if sweep.
//!
//! # True transients: companion models on a prefactored system
//!
//! Quasi-static stepping ([`Session::solve_steps`], formerly
//! `Session::transient`) treats every time step as an independent DC
//! solve. The true transient engine ([`Session::transient_dynamic`])
//! integrates `G v + C v̇ = b(t)`: per-node grid/decap/pad capacitances
//! (stamped by [`voltprop_grid::StackBuilder`]) are folded into the
//! conductance system as a backward-Euler or trapezoidal companion model
//! `G + α·diag(C)`, prefactored **once** and reused across the whole
//! waveform — only a step-size, integrator, or capacitance change
//! re-prefactors. Waveform I/O streams: a [`Waveform`] produces one
//! step's loads at a time and a [`TransientSink`] consumes one step's
//! voltages at a time, so a million-step run never materializes a
//! million-lane arena, and warm steps perform zero heap allocations
//! (measured by `perfsuite`). All three [`Backend`]s serve the companion
//! system from the session's state; see `examples/transient.rs` for an
//! RC step response against the closed-form exponential.
//!
//! # Example
//!
//! ```
//! use voltprop_core::{LoadCase, Session, VpConfig};
//! use voltprop_grid::{Stack3d, NetKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stack = Stack3d::builder(16, 16, 3).uniform_load(3e-4).build()?;
//! let mut session = Session::build(&stack, VpConfig::default())?;
//! let view = session.solve(&LoadCase::new(&stack).net(NetKind::Power))?;
//! println!("worst IR drop: {:.2} mV", view.worst_drop(stack.vdd()) * 1e3);
//! assert!(view.converged());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anderson;
mod config;
mod deadline;
mod lattice;
mod report;
mod session;
mod shared;
mod solver;
mod tier_cache;
pub mod transient;
mod vda;

pub use config::{BuildParams, Precision, SolveParams, VpConfig};
pub use deadline::Deadline;
pub use report::VpReport;
pub use session::{
    Backend, BuildError, LoadCase, LoadSet, Session, SessionCore, SessionError, SolutionView,
    SolveScratch,
};
pub use shared::{SharedSession, SharedSolution, TryCheckout};
pub use solver::VpSolver;
pub use transient::{
    FnWaveform, Integrator, PwlWaveform, ScaledWaveform, TraceSink, TransientParams,
    TransientReport, TransientSink, Waveform,
};
pub use vda::VdaController;
