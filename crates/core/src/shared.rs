//! Concurrent solves against one factorization: [`SharedSession`].
//!
//! A [`Session`](crate::Session) is the single-owner handle — `solve`
//! takes `&mut self`, one caller at a time — even though the expensive
//! state (tier factors, pillar lattice, stamped PCG system) is read-only
//! after build. `SharedSession` exposes the same factorization through
//! `&self`: the frozen [`SessionCore`] sits behind an `Arc`, and a
//! bounded pool of [`SolveScratch`]es supplies the per-request mutable
//! half. N threads solve concurrently against one set of factors; when
//! requests outnumber scratch slots, admission control either blocks
//! ([`SharedSession::solve`]) or reports [`TryCheckout::Busy`]
//! ([`SharedSession::try_solve`]).
//!
//! Results come back as a [`SharedSolution`] guard that owns its scratch
//! until dropped — views borrow the guard, and dropping it returns the
//! scratch to the pool. A solve that returns `Err` gives its scratch
//! back in a reusable state (every solve re-initializes the buffers it
//! reads); a solve that *panics* quarantines the slot instead, and the
//! pool rebuilds a replacement on demand — a failed request never leaks
//! a slot.

use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use voltprop_grid::Stack3d;

use crate::session::{
    Backend, BuildError, LoadCase, LoadSet, SessionCore, SessionError, SolutionView, SolveScratch,
};
use crate::VpConfig;

/// Recovers the guard from a poisoned pool mutex. The critical sections
/// below only move scratches in and out of a `Vec` and adjust a counter
/// — no invariant can be left half-updated by a panic inside them — so
/// continuing with the recovered state is sound (the same policy as the
/// solver `WorkerPool`).
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The scratch pool's bookkeeping: parked ready scratches plus the count
/// currently checked out. `ready.len() + live <= slots` always; the
/// difference is the number of quarantined slots awaiting a rebuilt
/// scratch.
#[derive(Debug)]
struct PoolState {
    /// Scratches parked between requests. Reserved to `slots` capacity
    /// at build, so a warm give-back never allocates.
    ready: Vec<SolveScratch>,
    /// Scratches currently out with callers.
    live: usize,
}

/// Outcome of a non-blocking admission attempt
/// ([`SharedSession::try_solve`] / [`SharedSession::try_solve_batch`]).
#[derive(Debug)]
pub enum TryCheckout<T> {
    /// A scratch slot was free and the request ran.
    Ready(T),
    /// Every scratch slot is checked out; the request was not admitted.
    /// Retry later or use the blocking [`SharedSession::solve`].
    Busy,
}

/// A prefactored session shareable across threads: one frozen
/// [`SessionCore`] plus a bounded checkout pool of [`SolveScratch`]es.
///
/// Every solve takes `&self`: a request checks a scratch out of the
/// pool, runs against the shared factors, and hands the scratch back
/// when its [`SharedSolution`] guard drops. Requests on different
/// scratches run genuinely concurrently (the factors are only read);
/// the inner tier sweeps additionally share the process-wide
/// `WorkerPool` when built with `parallelism > 1`, exactly as
/// [`Session`](crate::Session) solves do.
///
/// Admission control: with all `slots` scratches checked out,
/// [`SharedSession::solve`] blocks until one returns while
/// [`SharedSession::try_solve`] reports [`TryCheckout::Busy`]. Results
/// are **bitwise identical** to the same requests served sequentially by
/// a plain [`Session`](crate::Session) on the same build config — every
/// solve re-initializes its per-request state, so which scratch serves a
/// request can never influence the answer.
///
/// Warm requests perform zero heap allocations end to end (checkout →
/// solve → give-back), measured by `perfsuite`'s `concurrency` section.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use voltprop_core::{LoadCase, SharedSession, VpConfig};
/// use voltprop_grid::Stack3d;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stack = Stack3d::builder(12, 12, 3).uniform_load(2e-4).build()?;
/// let shared = Arc::new(SharedSession::build(&stack, VpConfig::default(), 4)?);
/// std::thread::scope(|scope| {
///     for _ in 0..4 {
///         let shared = &shared;
///         let stack = &stack;
///         scope.spawn(move || {
///             let sol = shared.solve(&LoadCase::new(stack)).unwrap();
///             assert!(sol.view().converged());
///         });
///     }
/// });
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SharedSession {
    core: Arc<SessionCore>,
    slots: usize,
    /// Heap footprint (core + all slot scratches), computed once at
    /// build. Quarantined slots are rebuilt like-for-like, so the figure
    /// never drifts — registries can budget against it without locking.
    bytes: usize,
    state: Mutex<PoolState>,
    available: Condvar,
}

impl SharedSession {
    /// Builds the factorization once and a pool of `slots` scratches
    /// (clamped to at least 1) to serve it. All allocation happens here;
    /// warm requests are allocation-free.
    ///
    /// # Errors
    ///
    /// See [`SessionCore::build`].
    pub fn build(
        stack: &Stack3d,
        config: VpConfig,
        slots: usize,
    ) -> Result<SharedSession, BuildError> {
        Ok(SharedSession::from_core(
            Arc::new(SessionCore::build(stack, config)?),
            slots,
        ))
    }

    /// A shared session serving an existing core (nothing is rebuilt;
    /// the `slots` scratches are forked from it here).
    pub fn from_core(core: Arc<SessionCore>, slots: usize) -> SharedSession {
        let slots = slots.max(1);
        let mut ready = Vec::with_capacity(slots);
        for _ in 0..slots {
            ready.push(core.new_scratch());
        }
        let bytes =
            core.memory_bytes() + ready.iter().map(SolveScratch::memory_bytes).sum::<usize>();
        SharedSession {
            core,
            slots,
            bytes,
            state: Mutex::new(PoolState { ready, live: 0 }),
            available: Condvar::new(),
        }
    }

    /// The frozen core this pool solves against.
    pub fn core(&self) -> &Arc<SessionCore> {
        &self.core
    }

    /// The pool's scratch slot count (the admission limit).
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Slots not currently checked out. Quarantined slots count as
    /// available — their replacement scratch is rebuilt on demand at the
    /// next checkout.
    pub fn available(&self) -> usize {
        let state = lock_recover(&self.state);
        self.slots - state.live
    }

    /// Scratches currently checked out with callers. A session with
    /// `in_flight() > 0` is actively serving requests — registries must
    /// not evict it.
    pub fn in_flight(&self) -> usize {
        lock_recover(&self.state).live
    }

    /// Estimated heap footprint of the whole pool: the prefactored core
    /// plus every slot's scratch. Computed once at build and stable
    /// thereafter (quarantine rebuilds are like-for-like), so eviction
    /// byte budgets can rely on it without re-measuring.
    pub fn memory_bytes(&self) -> usize {
        self.bytes
    }

    /// Whether the stack's geometry matches what this pool's core was
    /// built for (loads are ignored).
    pub fn serves(&self, stack: &Stack3d) -> bool {
        self.core.serves(stack)
    }

    /// Serves one load pattern, blocking while all scratch slots are
    /// checked out. The returned [`SharedSolution`] holds its slot until
    /// dropped — read the results through [`SharedSolution::view`], then
    /// drop the guard promptly to free the slot.
    ///
    /// # Errors
    ///
    /// See [`Session::solve`](crate::Session::solve). On error the
    /// scratch is returned to the pool in a reusable state (no slot is
    /// leaked).
    pub fn solve<'s>(&'s self, case: &LoadCase<'_>) -> Result<SharedSolution<'s>, SessionError> {
        let scratch = self.checkout();
        self.run_single(scratch, case)
    }

    /// Non-blocking [`SharedSession::solve`]: [`TryCheckout::Busy`] if
    /// every scratch slot is checked out, otherwise the solve runs
    /// immediately.
    ///
    /// # Errors
    ///
    /// See [`SharedSession::solve`].
    pub fn try_solve<'s>(
        &'s self,
        case: &LoadCase<'_>,
    ) -> Result<TryCheckout<SharedSolution<'s>>, SessionError> {
        match self.try_checkout() {
            Some(scratch) => self.run_single(scratch, case).map(TryCheckout::Ready),
            None => Ok(TryCheckout::Busy),
        }
    }

    /// Serves `k` load patterns as one batched request, blocking while
    /// all scratch slots are checked out. See
    /// [`Session::solve_batch`](crate::Session::solve_batch) for the
    /// batching semantics (identical — the same core runs both).
    ///
    /// # Errors
    ///
    /// See [`Session::solve_batch`](crate::Session::solve_batch).
    pub fn solve_batch<'s>(
        &'s self,
        set: &LoadSet<'_>,
    ) -> Result<SharedSolution<'s>, SessionError> {
        let scratch = self.checkout();
        self.run_batch(scratch, set)
    }

    /// Non-blocking [`SharedSession::solve_batch`].
    ///
    /// # Errors
    ///
    /// See [`SharedSession::solve_batch`].
    pub fn try_solve_batch<'s>(
        &'s self,
        set: &LoadSet<'_>,
    ) -> Result<TryCheckout<SharedSolution<'s>>, SessionError> {
        match self.try_checkout() {
            Some(scratch) => self.run_batch(scratch, set).map(TryCheckout::Ready),
            None => Ok(TryCheckout::Busy),
        }
    }

    /// Bounded-wait [`SharedSession::solve`]: waits up to `wait` for a
    /// scratch slot, then reports [`TryCheckout::Busy`] instead of
    /// blocking indefinitely. This is the admission-control primitive
    /// for servers: a hard bound on head-of-line queueing, after which
    /// the caller sheds the request with a typed overload error.
    ///
    /// # Errors
    ///
    /// See [`SharedSession::solve`].
    pub fn try_solve_for<'s>(
        &'s self,
        case: &LoadCase<'_>,
        wait: Duration,
    ) -> Result<TryCheckout<SharedSolution<'s>>, SessionError> {
        match self.checkout_for(wait) {
            Some(scratch) => self.run_single(scratch, case).map(TryCheckout::Ready),
            None => Ok(TryCheckout::Busy),
        }
    }

    /// Bounded-wait [`SharedSession::solve_batch`]; the batched twin of
    /// [`SharedSession::try_solve_for`].
    ///
    /// # Errors
    ///
    /// See [`SharedSession::solve_batch`].
    pub fn try_solve_batch_for<'s>(
        &'s self,
        set: &LoadSet<'_>,
        wait: Duration,
    ) -> Result<TryCheckout<SharedSolution<'s>>, SessionError> {
        match self.checkout_for(wait) {
            Some(scratch) => self.run_batch(scratch, set).map(TryCheckout::Ready),
            None => Ok(TryCheckout::Busy),
        }
    }

    /// Runs a checked-out scratch through one [`LoadCase`]. The guard is
    /// armed *before* the solve so that an engine panic unwinds through
    /// its `Drop` (quarantining the slot) and an `Err` drops it normally
    /// (returning the scratch reusable) — either way the slot is
    /// accounted for.
    fn run_single<'s>(
        &'s self,
        scratch: SolveScratch,
        case: &LoadCase<'_>,
    ) -> Result<SharedSolution<'s>, SessionError> {
        let mut guard = SharedSolution {
            pool: self,
            scratch: Some(scratch),
            backend: case.backend,
            batched: false,
        };
        let scratch = guard.scratch.as_mut().expect("scratch present until drop");
        self.core.solve_on(scratch, case)?;
        Ok(guard)
    }

    /// Batched twin of [`SharedSession::run_single`].
    fn run_batch<'s>(
        &'s self,
        scratch: SolveScratch,
        set: &LoadSet<'_>,
    ) -> Result<SharedSolution<'s>, SessionError> {
        let mut guard = SharedSolution {
            pool: self,
            scratch: Some(scratch),
            backend: set.backend,
            batched: true,
        };
        let scratch = guard.scratch.as_mut().expect("scratch present until drop");
        self.core.batch_on(
            scratch,
            set.stack,
            set.net,
            set.backend,
            set.params,
            set.loads,
            set.deadline,
        )?;
        Ok(guard)
    }

    /// Blocks until a scratch slot frees up. Warm path: a `Vec::pop`
    /// under the mutex — no allocation. If a quarantined slot left a
    /// vacancy, a replacement scratch is rebuilt (outside the lock; this
    /// is a cold, allocating path).
    fn checkout(&self) -> SolveScratch {
        let mut state = lock_recover(&self.state);
        loop {
            if let Some(scratch) = state.ready.pop() {
                state.live += 1;
                return scratch;
            }
            if state.live < self.slots {
                // A quarantined slot's vacancy: claim it, then rebuild
                // its scratch without holding the lock.
                state.live += 1;
                drop(state);
                return self.core.new_scratch();
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Bounded-wait [`SharedSession::checkout`]: waits on the condvar
    /// against an absolute deadline (immune to spurious wakeups), `None`
    /// once `wait` has elapsed with every slot still out.
    fn checkout_for(&self, wait: Duration) -> Option<SolveScratch> {
        let until = Instant::now() + wait;
        let mut state = lock_recover(&self.state);
        loop {
            if let Some(scratch) = state.ready.pop() {
                state.live += 1;
                return Some(scratch);
            }
            if state.live < self.slots {
                state.live += 1;
                drop(state);
                return Some(self.core.new_scratch());
            }
            let left = until.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            state = self
                .available
                .wait_timeout(state, left)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Non-blocking [`SharedSession::checkout`]: `None` when every slot
    /// is out.
    fn try_checkout(&self) -> Option<SolveScratch> {
        let mut state = lock_recover(&self.state);
        if let Some(scratch) = state.ready.pop() {
            state.live += 1;
            return Some(scratch);
        }
        if state.live < self.slots {
            state.live += 1;
            drop(state);
            return Some(self.core.new_scratch());
        }
        None
    }

    /// Returns a scratch to the pool and wakes one waiter. `ready` was
    /// reserved to `slots` capacity at build and never exceeds it, so
    /// the push cannot allocate.
    fn give_back(&self, scratch: SolveScratch) {
        let mut state = lock_recover(&self.state);
        debug_assert!(state.ready.len() < self.slots, "pool overfull");
        state.live -= 1;
        state.ready.push(scratch);
        drop(state);
        self.available.notify_one();
    }

    /// Retires a checked-out scratch without returning it (its slot's
    /// replacement is rebuilt at the next checkout) and wakes one waiter
    /// — the vacancy is immediately claimable.
    fn quarantine(&self) {
        let mut state = lock_recover(&self.state);
        state.live -= 1;
        drop(state);
        self.available.notify_one();
    }
}

/// A completed solve holding its [`SolveScratch`] checked out of the
/// pool: the results live in the scratch's arenas, borrowed through
/// [`SharedSolution::view`], and the slot is released when this guard
/// drops.
///
/// Drop semantics make the pool poison-safe:
///
/// * a normal drop (including after the solve returned `Err` — the
///   guard never escapes then, but it is still dropped inside the solve
///   call) returns the scratch to the pool **reusable**: every solve
///   re-initializes the buffers it reads, so no request can observe a
///   previous request's state;
/// * a drop during a panic unwind quarantines the slot instead — the
///   scratch is discarded and a replacement is rebuilt on demand — so a
///   panicking solve can neither leak a slot nor donate a
///   possibly-inconsistent scratch to the next caller.
#[derive(Debug)]
pub struct SharedSolution<'s> {
    pool: &'s SharedSession,
    /// `Some` until `Drop` takes it back.
    scratch: Option<SolveScratch>,
    backend: Backend,
    batched: bool,
}

impl SharedSolution<'_> {
    /// The view over this solve's results (one lane for
    /// [`SharedSession::solve`], `k` lanes for
    /// [`SharedSession::solve_batch`]).
    pub fn view(&self) -> SolutionView<'_> {
        let scratch = self.scratch.as_ref().expect("scratch present until drop");
        if self.batched {
            self.pool.core.batch_view(scratch, self.backend)
        } else {
            self.pool.core.single_view(scratch, self.backend)
        }
    }
}

impl Drop for SharedSolution<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            if std::thread::panicking() {
                drop(scratch);
                self.pool.quarantine();
            } else {
                self.pool.give_back(scratch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveParams;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use voltprop_grid::LoadProfile;

    fn stack() -> Stack3d {
        Stack3d::builder(10, 10, 3)
            .load_profile(
                LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 1e-3,
                },
                7,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn shared_solve_matches_plain_session() {
        let s = stack();
        let shared = SharedSession::build(&s, VpConfig::default(), 2).unwrap();
        let mut session = crate::Session::build(&s, VpConfig::default()).unwrap();
        let expect = session
            .solve(&LoadCase::new(&s))
            .unwrap()
            .voltages()
            .to_vec();
        let sol = shared.solve(&LoadCase::new(&s)).unwrap();
        assert_eq!(sol.view().voltages(), &expect[..], "bitwise-identical");
        assert_eq!(shared.available(), 1, "slot held while the guard lives");
        drop(sol);
        assert_eq!(shared.available(), 2);
    }

    #[test]
    fn busy_pool_reports_try_checkout_busy() {
        let s = stack();
        let shared = SharedSession::build(&s, VpConfig::default(), 1).unwrap();
        assert_eq!(shared.slots(), 1);
        let held = shared.solve(&LoadCase::new(&s)).unwrap();
        match shared.try_solve(&LoadCase::new(&s)) {
            Ok(TryCheckout::Busy) => {}
            other => panic!("expected Busy, got {other:?}"),
        }
        drop(held);
        match shared.try_solve(&LoadCase::new(&s)) {
            Ok(TryCheckout::Ready(sol)) => assert!(sol.view().converged()),
            other => panic!("expected Ready, got {other:?}"),
        };
    }

    #[test]
    fn err_returns_scratch_reusable() {
        let s = stack();
        let shared = SharedSession::build(&s, VpConfig::default(), 1).unwrap();
        // Starve the outer budget: multi-tier VP with one outer iteration
        // at an unreachable epsilon must error out...
        let starved = SolveParams::new().epsilon(1e-300).max_outer_iterations(1);
        let err = shared
            .solve(&LoadCase::new(&s).params(starved))
            .unwrap_err();
        assert!(matches!(err, SessionError::Solver(_)));
        // ...and the slot must come back reusable, not leak.
        assert_eq!(shared.available(), 1);
        let sol = shared.solve(&LoadCase::new(&s)).unwrap();
        assert!(sol.view().converged());
    }

    #[test]
    fn panic_while_holding_a_solution_quarantines_not_leaks() {
        let s = stack();
        let shared = SharedSession::build(&s, VpConfig::default(), 2).unwrap();
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            let _held = shared.solve(&LoadCase::new(&s)).unwrap();
            panic!("caller panics while holding a solution");
        }));
        assert!(unwound.is_err());
        // The quarantined slot is a vacancy, not a leak: both slots
        // remain available and the next solves (one rebuilt cold) work.
        assert_eq!(shared.available(), 2);
        let a = shared.solve(&LoadCase::new(&s)).unwrap();
        let b = shared.solve(&LoadCase::new(&s)).unwrap();
        assert!(a.view().converged() && b.view().converged());
        assert_eq!(a.view().voltages(), b.view().voltages());
    }

    #[test]
    fn bounded_wait_sheds_after_the_timeout_and_admits_after_release() {
        let s = stack();
        let shared = SharedSession::build(&s, VpConfig::default(), 1).unwrap();
        let held = shared.solve(&LoadCase::new(&s)).unwrap();
        assert_eq!(shared.in_flight(), 1);
        // Full pool + expired budget: shed, don't block.
        match shared.try_solve_for(&LoadCase::new(&s), Duration::from_millis(5)) {
            Ok(TryCheckout::Busy) => {}
            other => panic!("expected Busy, got {other:?}"),
        }
        // A waiter inside its budget is admitted when the slot frees.
        std::thread::scope(|scope| {
            let waiter =
                scope.spawn(|| shared.try_solve_for(&LoadCase::new(&s), Duration::from_secs(30)));
            std::thread::sleep(Duration::from_millis(20));
            drop(held);
            match waiter.join().unwrap() {
                Ok(TryCheckout::Ready(sol)) => assert!(sol.view().converged()),
                other => panic!("expected Ready, got {other:?}"),
            }
        });
        assert_eq!(shared.in_flight(), 0);
    }

    #[test]
    fn memory_bytes_is_stable_and_accounts_core_plus_slots() {
        let s = stack();
        let shared = SharedSession::build(&s, VpConfig::default(), 2).unwrap();
        let bytes = shared.memory_bytes();
        let core_bytes = shared.core().memory_bytes();
        assert!(
            bytes > core_bytes,
            "pool bytes ({bytes}) must include the slot scratches on top of the core ({core_bytes})"
        );
        // Stable across solves and across a quarantine rebuild.
        let sol = shared.solve(&LoadCase::new(&s)).unwrap();
        drop(sol);
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            let _held = shared.solve(&LoadCase::new(&s)).unwrap();
            panic!("quarantine the slot");
        }));
        assert!(unwound.is_err());
        let _rebuilt = shared.solve(&LoadCase::new(&s)).unwrap();
        assert_eq!(
            shared.memory_bytes(),
            bytes,
            "byte accounting must not drift"
        );
    }

    #[test]
    fn blocking_solve_waits_for_a_slot() {
        let s = stack();
        let shared = SharedSession::build(&s, VpConfig::default(), 1).unwrap();
        let held = shared.solve(&LoadCase::new(&s)).unwrap();
        let expect = held.view().voltages().to_vec();
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                // Blocks until the main thread drops `held`.
                let sol = shared.solve(&LoadCase::new(&s)).unwrap();
                sol.view().voltages().to_vec()
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(held);
            let got = waiter.join().unwrap();
            assert_eq!(got, expect);
        });
    }
}
