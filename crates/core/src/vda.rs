//! Voltage Difference Adjustment: the outer-loop feedback controller.
//!
//! After one propagation pass, every pad reports the mismatch between its
//! propagated voltage and the rail. VDA feeds a damped copy of that
//! mismatch back into the layer-0 pillar guesses. The paper's only
//! requirement is monotone contraction — "the voltage difference of the
//! new state should be smaller than the previous iteration" — so the
//! controller adapts its gain β: halve it when the mismatch grows,
//! recover it gently while the iteration contracts.

/// Adaptive gain controller for the VDA feedback loop.
///
/// The gain only ever *decreases*: any observed growth of the worst
/// mismatch halves β. (An earlier design also let β recover while the
/// iteration contracted, but on sparse-pad grids the recovery re-excites
/// the oscillatory mode it just damped and the loop live-locks above ε —
/// the benchmark `ablations/vda-beta` documents the effect.)
///
/// # Example
///
/// ```
/// use voltprop_core::VdaController;
///
/// let mut vda = VdaController::new(1.0);
/// let mut guess = vec![1.8f64; 2];
/// // Propagation reported the pads 3 mV and 1 mV short of VDD:
/// vda.apply(&mut guess, &[3e-3, 1e-3]);
/// assert!((guess[0] - 1.803).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VdaController {
    beta: f64,
    previous_mismatch: Option<f64>,
}

impl VdaController {
    /// Creates a controller with initial gain `beta`.
    pub fn new(beta: f64) -> Self {
        VdaController {
            beta,
            previous_mismatch: None,
        }
    }

    /// Current gain β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Applies one damped correction: `guess[j] += β · mismatch[j]`.
    ///
    /// Before applying, compares the worst |mismatch| with the previous
    /// iteration's: growth beyond a 2% noise margin halves β (enforcing
    /// the paper's contraction principle). Returns the worst absolute
    /// mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn apply(&mut self, guess: &mut [f64], mismatch: &[f64]) -> f64 {
        assert_eq!(guess.len(), mismatch.len(), "VDA length mismatch");
        let worst = mismatch.iter().fold(0.0f64, |m, d| m.max(d.abs()));
        if let Some(prev) = self.previous_mismatch {
            if worst > prev * 1.02 {
                self.beta = (self.beta * 0.5).max(1e-3);
            }
        }
        self.previous_mismatch = Some(worst);
        for (g, d) in guess.iter_mut().zip(mismatch) {
            *g += self.beta * d;
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applies_full_gain_initially() {
        let mut vda = VdaController::new(1.0);
        let mut g = vec![0.0, 0.0];
        let worst = vda.apply(&mut g, &[0.5, -0.25]);
        assert_eq!(g, vec![0.5, -0.25]);
        assert_eq!(worst, 0.5);
        assert_eq!(vda.beta(), 1.0);
    }

    #[test]
    fn growth_halves_gain() {
        let mut vda = VdaController::new(1.0);
        let mut g = vec![0.0];
        vda.apply(&mut g, &[0.1]);
        vda.apply(&mut g, &[0.2]); // mismatch grew
        assert_eq!(vda.beta(), 0.5);
        // Third application applies the halved gain.
        let before = g[0];
        vda.apply(&mut g, &[0.1]);
        assert!((g[0] - before - 0.05).abs() < 1e-12); // 0.5 * 0.1
    }

    #[test]
    fn contraction_never_raises_gain() {
        let mut vda = VdaController::new(1.0);
        let mut g = vec![0.0];
        vda.apply(&mut g, &[1.0]);
        vda.apply(&mut g, &[2.0]); // halve → 0.5
        for k in 0..20 {
            vda.apply(&mut g, &[1.0 / (k + 2) as f64]); // steady contraction
        }
        assert_eq!(vda.beta(), 0.5, "gain is monotone non-increasing");
    }

    #[test]
    fn small_noise_does_not_halve() {
        let mut vda = VdaController::new(1.0);
        let mut g = vec![0.0];
        vda.apply(&mut g, &[0.100]);
        vda.apply(&mut g, &[0.101]); // within the 2% noise margin
        assert_eq!(vda.beta(), 1.0);
    }

    #[test]
    fn gain_never_collapses_to_zero() {
        let mut vda = VdaController::new(1.0);
        let mut g = vec![0.0];
        for k in 0..60 {
            vda.apply(&mut g, &[(k + 1) as f64]); // perpetually growing
        }
        assert!(vda.beta() >= 1e-3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut vda = VdaController::new(1.0);
        let mut g = vec![0.0];
        vda.apply(&mut g, &[1.0, 2.0]);
    }
}
