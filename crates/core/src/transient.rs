//! The true transient engine: companion models, a prefactored waveform
//! stepper, and streaming waveform I/O.
//!
//! The static [`Session`] already embodies the paper's central asset —
//! factor the structure once, reuse it for every right-hand side. A
//! transient solve has exactly the same shape: discretizing
//! `G v + C v̇ = b(t)` with backward Euler or the trapezoidal rule turns
//! every step into a *static* solve of the companion system
//! `(G + α·diag(C)) v_{n+1} = b(t_{n+1}) + i_eq(v_n)` with a **fixed**
//! matrix (`α = 1/h` for BE, `2/h` for trapezoidal). The engine therefore
//! prefactors the companion system once per step size — companion-
//! augmented tier factors for [`Backend::VoltProp`], a companion
//! [`Rb3dEngine`] for [`Backend::Rb3d`], a companion-stamped system with
//! its IC(0) factor for [`Backend::Pcg`] — and reuses it across the whole
//! waveform; only a step-size (or integrator) change re-prefactors.
//!
//! Waveform I/O streams: a [`Waveform`] produces each step's load vector
//! into a session-owned staging buffer, and a [`TransientSink`] receives
//! each step's observed voltages as they are produced, so a million-step
//! run never materializes a million-lane load or voltage arena. Warm
//! steps perform **zero heap allocations** (measured by `perfsuite`).
//!
//! The integration state (`v_n`, and for the trapezoidal rule the
//! capacitor currents `i_c,n`) is reset at the start of every
//! [`Session::transient_dynamic`] call: each run starts from the
//! unloaded steady state (every node at the net's rail, capacitor
//! currents zero), which makes runs deterministic and reproducible —
//! rerunning the same waveform with the same step size is bitwise
//! identical.

use voltprop_grid::{NetKind, Stack3d};
use voltprop_solvers::{PcgEngine, Rb3dEngine, SolverError};

use crate::session::{Backend, Session, SessionError};
use crate::solver::{run_single_dynamic, CompanionRef};
use crate::tier_cache::CachedTier;
use crate::{Deadline, SolveParams};

/// The implicit integration rule of a transient run — both fold the
/// capacitance into the prefactored companion matrix; they differ in the
/// companion coefficient `α` and the per-step history currents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Integrator {
    /// Backward Euler: `α = 1/h`, `i_eq = (C/h)·v_n`. First-order,
    /// L-stable (numerically damped) — the robust default.
    #[default]
    BackwardEuler,
    /// Trapezoidal rule in the capacitor-current companion form:
    /// `α = 2/h`, `i_eq = (2C/h)·v_n + i_c,n`, with the post-solve state
    /// update `i_c,n+1 = (2C/h)·(v_{n+1} − v_n) − i_c,n`. Second-order
    /// accurate; the standard SPICE default.
    Trapezoidal,
}

impl Integrator {
    /// The companion coefficient `α` (1/s) this rule folds into the
    /// conductance system for step size `h`.
    pub fn alpha(self, h: f64) -> f64 {
        match self {
            Integrator::BackwardEuler => 1.0 / h,
            Integrator::Trapezoidal => 2.0 / h,
        }
    }
}

/// A streaming source of per-step load vectors. The stepper calls
/// [`Waveform::sample`] once per step, in step order, with a preallocated
/// `num_nodes`-sized buffer to overwrite — the waveform never has to
/// materialize more than one step's loads.
///
/// Implementations must write finite, non-negative currents (amperes,
/// flat tier-major); the stepper validates each sample and rejects the
/// run otherwise.
pub trait Waveform {
    /// Number of steps this waveform spans.
    fn steps(&self) -> usize;

    /// Writes the load vector at `time` (the *end* of step `step`, i.e.
    /// `t_{n+1} = (step + 1)·h`) into `loads`. The buffer holds the
    /// previous step's sample (or zeros on the first step) — overwrite
    /// every entry.
    fn sample(&mut self, step: usize, time: f64, loads: &mut [f64]);
}

/// A closure-backed [`Waveform`]: `f(step, time, loads)` fills each
/// step's load vector.
///
/// ```
/// use voltprop_core::{FnWaveform, Waveform};
/// let mut w = FnWaveform::new(4, |_step, time, loads: &mut [f64]| {
///     loads.fill(if time > 1e-9 { 2e-4 } else { 1e-4 });
/// });
/// assert_eq!(w.steps(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct FnWaveform<F> {
    steps: usize,
    f: F,
}

impl<F: FnMut(usize, f64, &mut [f64])> FnWaveform<F> {
    /// A waveform of `steps` samples produced by `f(step, time, loads)`.
    pub fn new(steps: usize, f: F) -> Self {
        FnWaveform { steps, f }
    }
}

impl<F: FnMut(usize, f64, &mut [f64])> Waveform for FnWaveform<F> {
    fn steps(&self) -> usize {
        self.steps
    }

    fn sample(&mut self, step: usize, time: f64, loads: &mut [f64]) {
        (self.f)(step, time, loads);
    }
}

/// An iterator-backed [`Waveform`]: a fixed spatial load pattern scaled
/// by one factor per step (the common "activity waveform" shape —
/// where the currents flow is fixed by the floorplan, how hard they draw
/// follows the workload).
#[derive(Debug, Clone)]
pub struct ScaledWaveform {
    base: Vec<f64>,
    scales: Vec<f64>,
}

impl ScaledWaveform {
    /// A waveform whose step-`n` loads are `base · scales[n]`; the scale
    /// iterator's length is the step count.
    pub fn new(base: Vec<f64>, scales: impl IntoIterator<Item = f64>) -> Self {
        ScaledWaveform {
            base,
            scales: scales.into_iter().collect(),
        }
    }
}

impl Waveform for ScaledWaveform {
    fn steps(&self) -> usize {
        self.scales.len()
    }

    fn sample(&mut self, step: usize, _time: f64, loads: &mut [f64]) {
        let s = self.scales[step];
        for (l, b) in loads.iter_mut().zip(&self.base) {
            *l = s * b;
        }
    }
}

/// A piecewise-linear ramp [`Waveform`]: a fixed spatial load pattern
/// scaled by a PWL envelope over time — `(time, scale)` breakpoints with
/// linear interpolation between them, clamped to the first/last scale
/// outside them (a SPICE `PWL` source driving every load at once).
///
/// ```
/// use voltprop_core::{PwlWaveform, Waveform};
/// // 0 → full load over the first nanosecond, hold for nine more.
/// let mut w = PwlWaveform::new(vec![1e-4; 64], 100, 1e-10)
///     .breakpoint(0.0, 0.0)
///     .breakpoint(1e-9, 1.0);
/// assert_eq!(w.steps(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct PwlWaveform {
    base: Vec<f64>,
    steps: usize,
    points: Vec<(f64, f64)>,
}

impl PwlWaveform {
    /// A `steps`-step ramp over the spatial pattern `base`. `_h` is
    /// unused (sampling receives absolute times) and kept for
    /// self-documenting call sites. With no breakpoints the scale is 1.
    pub fn new(base: Vec<f64>, steps: usize, _h: f64) -> Self {
        PwlWaveform {
            base,
            steps,
            points: Vec::new(),
        }
    }

    /// Appends a `(time, scale)` breakpoint.
    ///
    /// # Panics
    ///
    /// If `time` is below the previous breakpoint's time (breakpoints
    /// must be added in non-decreasing time order).
    pub fn breakpoint(mut self, time: f64, scale: f64) -> Self {
        if let Some(&(prev, _)) = self.points.last() {
            assert!(
                time >= prev,
                "PWL breakpoints must be in non-decreasing time order ({time} < {prev})"
            );
        }
        self.points.push((time, scale));
        self
    }

    fn scale_at(&self, t: f64) -> f64 {
        match self.points.as_slice() {
            [] => 1.0,
            [(t0, s0), ..] if t <= *t0 => *s0,
            points => {
                let (tn, sn) = points[points.len() - 1];
                if t >= tn {
                    return sn;
                }
                let i = points.partition_point(|&(tp, _)| tp <= t);
                let (ta, sa) = points[i - 1];
                let (tb, sb) = points[i];
                if tb == ta {
                    sb
                } else {
                    sa + (sb - sa) * (t - ta) / (tb - ta)
                }
            }
        }
    }
}

impl Waveform for PwlWaveform {
    fn steps(&self) -> usize {
        self.steps
    }

    fn sample(&mut self, _step: usize, time: f64, loads: &mut [f64]) {
        let s = self.scale_at(time);
        for (l, b) in loads.iter_mut().zip(&self.base) {
            *l = s * b;
        }
    }
}

/// A streaming consumer of per-step results: [`TransientSink::record`]
/// is called once per step, in step order, with the observed voltages
/// (the [`TransientParams::observe`] nodes, or every node when no
/// observation set was given). The slice is only valid for the duration
/// of the call — copy what must outlive it.
///
/// Any `FnMut(usize, f64, &[f64])` closure is a sink.
pub trait TransientSink {
    /// Consumes step `step`'s solution at `time` (`(step + 1)·h`).
    fn record(&mut self, step: usize, time: f64, observed: &[f64]);
}

impl<F: FnMut(usize, f64, &[f64])> TransientSink for F {
    fn record(&mut self, step: usize, time: f64, observed: &[f64]) {
        self(step, time, observed);
    }
}

/// A preallocating in-memory [`TransientSink`]: records every step's
/// time and observed voltages into buffers sized up front, so recording
/// inside a warm step loop performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    times: Vec<f64>,
    values: Vec<f64>,
    width: usize,
}

impl TraceSink {
    /// A sink with room for `steps` records of `width` observed nodes
    /// each (allocate before the run; recording then never reallocates
    /// as long as the capacity holds).
    pub fn with_capacity(steps: usize, width: usize) -> Self {
        TraceSink {
            times: Vec::with_capacity(steps),
            values: Vec::with_capacity(steps * width),
            width,
        }
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The recorded step times, in step order.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Step `step`'s recorded observed voltages.
    ///
    /// # Panics
    ///
    /// If `step >= self.len()`.
    pub fn step_values(&self, step: usize) -> &[f64] {
        &self.values[step * self.width..(step + 1) * self.width]
    }

    /// All recorded values, step-major (`len · width`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Forgets all records, keeping the allocations.
    pub fn clear(&mut self) {
        self.times.clear();
        self.values.clear();
    }
}

impl TransientSink for TraceSink {
    fn record(&mut self, _step: usize, time: f64, observed: &[f64]) {
        debug_assert!(self.width == 0 || observed.len() == self.width);
        self.times.push(time);
        self.values.extend_from_slice(observed);
    }
}

/// The per-run request of [`Session::transient_dynamic`]: the stack
/// (geometry + capacitances), the step size, and the knobs that may vary
/// between runs on one session.
#[derive(Debug, Clone, Copy)]
pub struct TransientParams<'a> {
    pub(crate) stack: &'a Stack3d,
    pub(crate) h: f64,
    pub(crate) integrator: Integrator,
    pub(crate) net: NetKind,
    pub(crate) backend: Backend,
    pub(crate) params: Option<SolveParams>,
    pub(crate) deadline: Deadline,
    pub(crate) observe: Option<&'a [usize]>,
    pub(crate) refactor_each_step: bool,
}

impl<'a> TransientParams<'a> {
    /// A power-net backward-Euler run at step size `h` (seconds) on the
    /// session's default backend and parameters, observing every node,
    /// with no deadline.
    pub fn new(stack: &'a Stack3d, h: f64) -> Self {
        TransientParams {
            stack,
            h,
            integrator: Integrator::BackwardEuler,
            net: NetKind::Power,
            backend: Backend::VoltProp,
            params: None,
            deadline: Deadline::NONE,
            observe: None,
            refactor_each_step: false,
        }
    }

    /// Selects the integration rule.
    pub fn integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Selects the net to analyse.
    pub fn net(mut self, net: NetKind) -> Self {
        self.net = net;
        self
    }

    /// Routes the run through a specific [`Backend`].
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the session's default per-solve parameters for this run.
    pub fn params(mut self, params: SolveParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Attaches a wall-clock [`Deadline`]: checked before every step, and
    /// exceeded mid-waveform it aborts the run with
    /// [`SolverError::DeadlineExceeded`] whose `iterations` field carries
    /// the step index the run stopped at.
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Restricts what the sink receives to these flat node indices (in
    /// the given order). Without this, every step streams all
    /// `num_nodes` voltages.
    pub fn observe(mut self, nodes: &'a [usize]) -> Self {
        self.observe = Some(nodes);
        self
    }

    /// Benchmark knob: tear down and rebuild the companion prefactor on
    /// **every** step instead of reusing it, to measure what the
    /// factor-reuse contract is worth (`perfsuite` reports the ratio).
    /// Results are identical; only the cost changes.
    pub fn refactor_each_step(mut self, on: bool) -> Self {
        self.refactor_each_step = on;
        self
    }

    /// The step size `h` (seconds).
    pub fn step_size(&self) -> f64 {
        self.h
    }

    /// The stack this run reads geometry, capacitances, and (for
    /// waveforms that don't override them) loads from.
    pub fn stack(&self) -> &'a Stack3d {
        self.stack
    }
}

/// What a [`Session::transient_dynamic`] run did: how many steps ran,
/// how often the companion system was (re)prefactored, and the summed
/// solver effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct TransientReport {
    /// Steps completed (the waveform's step count on success).
    pub steps: usize,
    /// Companion prefactor builds performed during this call: 0 on a
    /// warm run at an unchanged step size/integrator/backend, 1 after a
    /// step-size change (or on the backend's first run), `steps` with
    /// [`TransientParams::refactor_each_step`].
    pub refactors: usize,
    /// Summed solver iterations across all steps (inner sweeps for
    /// [`Backend::VoltProp`]/[`Backend::Rb3d`], CG iterations for
    /// [`Backend::Pcg`]).
    pub solver_iterations: usize,
    /// Estimated heap footprint of the transient state (companion
    /// factors plus integration buffers).
    pub workspace_bytes: usize,
}

/// The session-cached transient state: the companion prefactors for the
/// current `(α, capacitances)` and the integration buffers. Built on the
/// first [`Session::transient_dynamic`] call, rebuilt only when the step
/// size, integrator, or capacitance map changes — warm runs at an
/// unchanged step size reuse everything and allocate nothing.
#[derive(Debug)]
pub(crate) struct TransientState {
    alpha: f64,
    /// Snapshot of the capacitance map the prefactors were built for
    /// (empty for a purely resistive stack).
    caps: Vec<f64>,
    /// `α·C` per node — the companion conductances (siemens).
    alpha_c: Vec<f64>,
    /// Companion tier factors for the VoltProp route (lazily built).
    vp_tiers: Option<Vec<CachedTier>>,
    /// Companion Rb3d engine (lazily built).
    rb: Option<Rb3dEngine>,
    /// Companion PCG engine (lazily built).
    pcg: Option<PcgEngine>,
    /// The integration state `v_n` (reset to the rail each run).
    v: Vec<f64>,
    /// `v_{n-1}` staging for the trapezoidal current update.
    v_prev: Vec<f64>,
    /// Trapezoidal capacitor currents `i_c,n` (zeros for BE).
    ic: Vec<f64>,
    /// Companion currents `i_eq` staged per step.
    source: Vec<f64>,
    /// Waveform staging buffer (one step's loads).
    loads: Vec<f64>,
    /// Observation staging buffer (`observe.len()` entries).
    observed: Vec<f64>,
}

impl TransientState {
    fn new(nn: usize) -> Self {
        TransientState {
            alpha: f64::NAN,
            caps: Vec::new(),
            alpha_c: vec![0.0; nn],
            vp_tiers: None,
            rb: None,
            pcg: None,
            v: vec![0.0; nn],
            v_prev: vec![0.0; nn],
            ic: vec![0.0; nn],
            source: vec![0.0; nn],
            loads: vec![0.0; nn],
            observed: Vec::new(),
        }
    }

    /// Whether the cached prefactors serve this `(α, capacitances)`.
    fn matches(&self, alpha: f64, caps: Option<&[f64]>) -> bool {
        self.alpha == alpha && caps.unwrap_or(&[]) == &self.caps[..]
    }

    /// Drops the prefactors and rebinds the companion diagonal to a new
    /// `(α, capacitances)`; engines rebuild lazily per backend.
    fn rebind(&mut self, alpha: f64, caps: Option<&[f64]>) {
        self.alpha = alpha;
        self.caps.clear();
        self.caps.extend_from_slice(caps.unwrap_or(&[]));
        if self.caps.is_empty() {
            self.alpha_c.fill(0.0);
        } else {
            for (ac, &c) in self.alpha_c.iter_mut().zip(&self.caps) {
                *ac = alpha * c;
            }
        }
        self.vp_tiers = None;
        self.rb = None;
        self.pcg = None;
    }

    fn memory_bytes(&self) -> usize {
        (self.caps.len()
            + self.alpha_c.len()
            + self.v.len()
            + self.v_prev.len()
            + self.ic.len()
            + self.source.len()
            + self.loads.len()
            + self.observed.len())
            * 8
            + self
                .vp_tiers
                .as_ref()
                .map_or(0, |ts| ts.iter().map(CachedTier::memory_bytes).sum())
            + self.rb.as_ref().map_or(0, Rb3dEngine::memory_bytes)
            + self.pcg.as_ref().map_or(0, PcgEngine::memory_bytes)
    }
}

impl Session {
    /// Runs a true transient analysis: `G v + C v̇ = b(t)` stepped with
    /// the request's [`Integrator`], the companion system
    /// `G + α·diag(C)` prefactored **once** and reused across the whole
    /// waveform (re-prefactored only when the step size, integrator, or
    /// capacitance map changes between calls — the [`TransientReport`]
    /// counts the rebuilds). Each step draws its loads from the
    /// [`Waveform`] and streams its observed voltages into the
    /// [`TransientSink`]; nothing step-count-sized is ever allocated, and
    /// warm steps perform zero heap allocations.
    ///
    /// The run starts from the unloaded steady state — every node at the
    /// net's rail, capacitor currents zero — so identical runs are
    /// bitwise reproducible. A stack without capacitance degenerates to
    /// quasi-static per-step solves (`α·C = 0`).
    ///
    /// # Errors
    ///
    /// * [`SessionError::GeometryChanged`] if the stack differs
    ///   geometrically from the build-time stack.
    /// * [`SessionError::BackendUnavailable`] /
    ///   [`SessionError::Solver`] as [`Session::solve`]; additionally
    ///   [`SolverError::Unsupported`] for a non-finite or non-positive
    ///   step size, an out-of-range observation index, or a waveform
    ///   sample with negative/non-finite currents, and
    ///   [`SolverError::DeadlineExceeded`] (carrying the step index) if
    ///   the request deadline passes mid-waveform.
    pub fn transient_dynamic<W, S>(
        &mut self,
        waveform: &mut W,
        sink: &mut S,
        request: &TransientParams<'_>,
    ) -> Result<TransientReport, SessionError>
    where
        W: Waveform + ?Sized,
        S: TransientSink + ?Sized,
    {
        let core = std::sync::Arc::clone(&self.core);
        let nn = core.num_nodes();
        core.check_geometry(request.stack)?;
        request.stack.validate().map_err(SolverError::from)?;
        if !(request.h.is_finite() && request.h > 0.0) {
            return Err(SolverError::Unsupported {
                what: format!(
                    "transient step size must be finite and positive (got {} s)",
                    request.h
                ),
            }
            .into());
        }
        if let Some(nodes) = request.observe {
            if let Some(&bad) = nodes.iter().find(|&&n| n >= nn) {
                return Err(SolverError::Unsupported {
                    what: format!("observation node {bad} out of range ({nn} nodes)"),
                }
                .into());
            }
        }

        let h = request.h;
        let alpha = request.integrator.alpha(h);
        let caps = request.stack.capacitances();
        let params = request.params.unwrap_or(core.defaults());
        let parallelism = core.build_params().parallelism.max(1);
        let shards = core.build_params().shards.max(1);
        let rail = match request.net {
            NetKind::Power => request.stack.vdd(),
            NetKind::Ground => 0.0,
        };

        if self.dynamic.is_none() {
            self.dynamic = Some(Box::new(TransientState::new(nn)));
        }
        let state = self.dynamic.as_mut().expect("just ensured");
        let mut refactors = 0usize;
        if !state.matches(alpha, caps) {
            state.rebind(alpha, caps);
        }

        // Initial condition: the unloaded steady state of the net.
        state.v.fill(rail);
        state.v_prev.fill(rail);
        state.ic.fill(0.0);
        state.source.fill(0.0);
        if let Some(nodes) = request.observe {
            state.observed.resize(nodes.len(), 0.0);
        }

        let trapezoidal = request.integrator == Integrator::Trapezoidal;
        let steps = waveform.steps();
        let mut solver_iterations = 0usize;
        for step in 0..steps {
            // The request deadline cancels mid-waveform; the typed error
            // carries the step index the run stopped at.
            request.deadline.check(step).map_err(remap_step(step))?;
            let time = (step as f64 + 1.0) * h;
            waveform.sample(step, time, &mut state.loads);
            validate_sample(step, &state.loads)?;

            if request.refactor_each_step {
                // Bench knob: pay the prefactor on every step.
                state.vp_tiers = None;
                state.rb = None;
                state.pcg = None;
            }

            if trapezoidal && step == 0 {
                // Self-starting startup: the trapezoidal rule assumes
                // `v̇` is continuous across the step, which a load
                // discontinuity at t = 0 (the usual step waveform)
                // violates — naive trap startup carries an O(h) error.
                // A backward-Euler step of size h/2 has companion
                // coefficient 1/(h/2) = 2/h — the *same* prefactored
                // matrix as the trapezoidal rule — so the first step is
                // taken as two L-stable BE half-steps on the shared
                // factor, and `i_c(h) = α·C·(v(h) − v(h/2))` seeds the
                // capacitor-current recursion. One extra solve, second
                // order preserved, no extra factorization.
                for i in 0..nn {
                    state.source[i] = state.alpha_c[i] * state.v[i];
                }
                solve_companion_step(
                    &mut self.scratch,
                    state,
                    request,
                    &params,
                    alpha,
                    parallelism,
                    shards,
                    &mut refactors,
                    &mut solver_iterations,
                )?;
                state.v_prev.copy_from_slice(&state.v);
                for i in 0..nn {
                    state.source[i] = state.alpha_c[i] * state.v[i];
                }
                solve_companion_step(
                    &mut self.scratch,
                    state,
                    request,
                    &params,
                    alpha,
                    parallelism,
                    shards,
                    &mut refactors,
                    &mut solver_iterations,
                )?;
                for i in 0..nn {
                    state.ic[i] = state.alpha_c[i] * (state.v[i] - state.v_prev[i]);
                }
            } else {
                // Companion currents from the previous state: i_eq =
                // α·C·v_n (+ i_c,n for trapezoidal), absolute sign.
                if trapezoidal {
                    for i in 0..nn {
                        state.source[i] = state.alpha_c[i] * state.v[i] + state.ic[i];
                    }
                    state.v_prev.copy_from_slice(&state.v);
                } else {
                    for i in 0..nn {
                        state.source[i] = state.alpha_c[i] * state.v[i];
                    }
                }
                solve_companion_step(
                    &mut self.scratch,
                    state,
                    request,
                    &params,
                    alpha,
                    parallelism,
                    shards,
                    &mut refactors,
                    &mut solver_iterations,
                )?;
                if trapezoidal {
                    // i_c,n+1 = α·C·(v_{n+1} − v_n) − i_c,n.
                    for i in 0..nn {
                        state.ic[i] =
                            state.alpha_c[i] * (state.v[i] - state.v_prev[i]) - state.ic[i];
                    }
                }
            }

            match request.observe {
                Some(nodes) => {
                    for (o, &n) in state.observed.iter_mut().zip(nodes) {
                        *o = state.v[n];
                    }
                    sink.record(step, time, &state.observed);
                }
                None => sink.record(step, time, &state.v),
            }
        }

        Ok(TransientReport {
            steps,
            refactors,
            solver_iterations,
            workspace_bytes: state.memory_bytes(),
        })
    }
}

/// One companion solve: `(G + α·diag(C)) v = b(loads) + source`, routed
/// through the request's backend, lazily building (and counting) that
/// backend's companion prefactor. Reads `state.loads`/`state.source`,
/// leaves the solution in `state.v`.
#[allow(clippy::too_many_arguments)] // internal fan-in of the step loop
fn solve_companion_step(
    scratch: &mut crate::session::SolveScratch,
    state: &mut TransientState,
    request: &TransientParams<'_>,
    params: &SolveParams,
    alpha: f64,
    parallelism: usize,
    shards: usize,
    refactors: &mut usize,
    solver_iterations: &mut usize,
) -> Result<(), SessionError> {
    match request.backend {
        Backend::VoltProp => {
            if state.vp_tiers.is_none() {
                state.vp_tiers = Some(scratch.vp.build_companion_tiers(
                    &state.alpha_c,
                    parallelism,
                    shards,
                )?);
                *refactors += 1;
            }
            let tiers = state.vp_tiers.as_mut().expect("just ensured");
            let report = run_single_dynamic(
                params,
                request.stack,
                request.net,
                &state.loads,
                &mut scratch.vp,
                Deadline::NONE,
                Some(CompanionRef {
                    tiers,
                    alpha_c: &state.alpha_c,
                    source: &state.source,
                }),
            )?;
            *solver_iterations += report.inner_sweeps;
            state.v.copy_from_slice(scratch.vp.voltages());
        }
        Backend::Rb3d => {
            if state.rb.is_none() {
                state.rb = Some(Rb3dEngine::build_companion_sharded(
                    request.stack,
                    parallelism,
                    alpha,
                    shards,
                )?);
                *refactors += 1;
            }
            let rb = state.rb.as_mut().expect("just ensured");
            // Warm-started from v_n — the natural transient guess.
            let rep = rb.solve_with_source(
                &state.loads,
                request.net,
                &state.source,
                params.sor_omega,
                params.inner_tolerance,
                params.max_inner_sweeps,
                &mut state.v,
            )?;
            *solver_iterations += rep.iterations;
        }
        Backend::Pcg => {
            if state.pcg.is_none() {
                state.pcg = Some(PcgEngine::build_companion(request.stack, alpha)?);
                *refactors += 1;
            }
            let pcg = state.pcg.as_mut().expect("just ensured");
            let rep = pcg.solve_with_source(
                &state.loads,
                request.net,
                &state.source,
                params.inner_tolerance,
                params.max_inner_sweeps,
                &mut state.v,
            )?;
            *solver_iterations += rep.iterations;
        }
    }
    Ok(())
}

/// Rewrites a [`SolverError::DeadlineExceeded`] surfaced at the top of a
/// step so its `iterations` field carries the *step index* (the
/// per-step loop is the transient route's cooperative cancellation
/// point).
fn remap_step(step: usize) -> impl FnOnce(SolverError) -> SessionError {
    move |e| match e {
        SolverError::DeadlineExceeded { .. } => {
            SessionError::Solver(SolverError::DeadlineExceeded { iterations: step })
        }
        other => SessionError::Solver(other),
    }
}

/// Rejects a waveform sample containing negative or non-finite currents.
fn validate_sample(step: usize, loads: &[f64]) -> Result<(), SessionError> {
    for (i, &a) in loads.iter().enumerate() {
        if !a.is_finite() || a < 0.0 {
            return Err(SolverError::Unsupported {
                what: format!(
                    "waveform step {step} produced load {a} A at node {i}; \
                     loads must be finite, non-negative currents"
                ),
            }
            .into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VpConfig;

    #[test]
    fn pwl_scale_interpolates_and_clamps() {
        let w = PwlWaveform::new(vec![1.0], 10, 1e-9)
            .breakpoint(1.0, 0.0)
            .breakpoint(3.0, 1.0)
            .breakpoint(5.0, 0.5);
        assert_eq!(w.scale_at(0.0), 0.0);
        assert_eq!(w.scale_at(2.0), 0.5);
        assert_eq!(w.scale_at(4.0), 0.75);
        assert_eq!(w.scale_at(9.0), 0.5);
        let empty = PwlWaveform::new(vec![1.0], 3, 1e-9);
        assert_eq!(empty.scale_at(42.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn pwl_rejects_unsorted_breakpoints() {
        let _ = PwlWaveform::new(vec![1.0], 3, 1e-9)
            .breakpoint(2.0, 1.0)
            .breakpoint(1.0, 0.0);
    }

    #[test]
    fn scaled_waveform_samples() {
        let mut w = ScaledWaveform::new(vec![2.0, 3.0], [0.5, 1.0]);
        assert_eq!(w.steps(), 2);
        let mut buf = [0.0; 2];
        w.sample(0, 1e-9, &mut buf);
        assert_eq!(buf, [1.0, 1.5]);
    }

    #[test]
    fn trace_sink_records_without_reallocating() {
        let mut sink = TraceSink::with_capacity(4, 2);
        let cap_t = sink.times.capacity();
        let cap_v = sink.values.capacity();
        for s in 0..4 {
            sink.record(s, (s + 1) as f64, &[1.0, 2.0]);
        }
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.step_values(3), &[1.0, 2.0]);
        assert_eq!(sink.times.capacity(), cap_t);
        assert_eq!(sink.values.capacity(), cap_v);
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.values.capacity(), cap_v);
    }

    #[test]
    fn bad_step_size_and_observation_are_typed_errors() {
        let stack = Stack3d::builder(8, 8, 2)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let mut session = Session::build(&stack, VpConfig::default()).unwrap();
        let mut w = FnWaveform::new(1, |_, _, l: &mut [f64]| l.fill(1e-4));
        let mut sink = |_: usize, _: f64, _: &[f64]| {};
        for bad in [0.0, -1e-9, f64::NAN] {
            let err = session
                .transient_dynamic(&mut w, &mut sink, &TransientParams::new(&stack, bad))
                .unwrap_err();
            assert!(matches!(
                err,
                SessionError::Solver(SolverError::Unsupported { .. })
            ));
        }
        let far = [stack.num_nodes()];
        let err = session
            .transient_dynamic(
                &mut w,
                &mut sink,
                &TransientParams::new(&stack, 1e-10).observe(&far),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SessionError::Solver(SolverError::Unsupported { .. })
        ));
    }
}
