//! The pillar-lattice view used by the VDA to distribute mismatches.
//!
//! After one propagation pass, padded pillars report a *voltage* gap at
//! the package and pad-less pillars report the *current* they wrongly ask
//! of it. Both must go to zero. The paper closes the loop by
//! "distributing the resulting voltage difference" over the layers; this
//! module implements that distribution as a solve on the coarse lattice
//! whose nodes are the pillars themselves: pad corrections enter as
//! Dirichlet values, excess currents as injections, and the resulting
//! correction field is fed back into the layer-0 guesses.
//!
//! For uniform TSV patterns the pillars form a complete coarse grid, and
//! the distribution is itself a (tiny) row-based solve — the same kernel
//! the tier solves use. Irregular patterns fall back to a diagonally
//! scaled correction, which converges more slowly but never fails.

use voltprop_grid::Stack3d;
use voltprop_solvers::rowbased::{RbWorkspace, RowBased, TierProblem};

#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one lattice per solve; Grid carries its scratch
pub(crate) enum PillarLattice {
    /// Pillars form a complete `cw × ch` grid.
    Grid {
        cw: usize,
        ch: usize,
        /// Effective pillar-to-pillar conductance along x (all tiers).
        c_x: f64,
        /// Effective pillar-to-pillar conductance along y (all tiers).
        c_y: f64,
        /// Coarse pad mask.
        fixed: Vec<bool>,
        any_interior: bool,
        /// Reusable coarse-solve scratch: injection vector, zero
        /// extra-diagonal, and row-sweep workspace. Hoisted here so
        /// [`PillarLattice::correction`] stays allocation-free inside the
        /// solver's outer loop.
        injection: Vec<f64>,
        zeros: Vec<f64>,
        ws: RbWorkspace,
    },
    /// Irregular pillar pattern: diagonal scaling only.
    Diagonal {
        is_pad: Vec<bool>,
        /// Local conductance scale per pillar.
        g_local: f64,
        /// Pessimistic sheet resistance from any pillar to the pads; a
        /// 2-D sheet's spreading resistance grows only logarithmically
        /// with extent, so `~1.5·ln(1+max extent)/Σc` bounds the voltage
        /// error a residual excess current can hide.
        r_bound: f64,
    },
}

impl PillarLattice {
    pub(crate) fn build(stack: &Stack3d, sites: &[(u32, u32)], is_pad_site: &[bool]) -> Self {
        let g_local: f64 = (0..stack.tiers())
            .map(|t| 2.0 / stack.r_horizontal(t) + 2.0 / stack.r_vertical(t))
            .sum();
        // Complete-grid detection: distinct sorted coordinates whose cross
        // product is exactly the site set (always true for Uniform
        // patterns).
        let mut xs: Vec<u32> = sites.iter().map(|&(x, _)| x).collect();
        let mut ys: Vec<u32> = sites.iter().map(|&(_, y)| y).collect();
        xs.sort_unstable();
        xs.dedup();
        ys.sort_unstable();
        ys.dedup();
        if xs.len() * ys.len() == sites.len() {
            // Sites are stored row-major, so site k maps to coarse cell
            // (k % cw, k / cw); verify once.
            let cw = xs.len();
            let consistent = sites
                .iter()
                .enumerate()
                .all(|(k, &(x, y))| xs[k % cw] == x && ys[k / cw] == y);
            if consistent {
                let c_x: f64 = (0..stack.tiers())
                    .map(|t| 1.0 / stack.r_horizontal(t))
                    .sum();
                let c_y: f64 = (0..stack.tiers()).map(|t| 1.0 / stack.r_vertical(t)).sum();
                let any_interior = is_pad_site.iter().any(|&p| !p);
                let n = sites.len();
                return PillarLattice::Grid {
                    cw,
                    ch: ys.len(),
                    c_x,
                    c_y,
                    fixed: is_pad_site.to_vec(),
                    any_interior,
                    injection: vec![0.0; n],
                    zeros: vec![0.0; n],
                    ws: RbWorkspace::new(cw),
                };
            }
        }
        let c_total: f64 = (0..stack.tiers())
            .map(|t| 1.0 / stack.r_horizontal(t) + 1.0 / stack.r_vertical(t))
            .sum();
        let extent = stack.width().max(stack.height()) as f64;
        PillarLattice::Diagonal {
            is_pad: is_pad_site.to_vec(),
            g_local,
            r_bound: 1.5 * (1.0 + extent).ln() / c_total,
        }
    }

    /// Turns the raw mismatch vector (volts at pads, amperes elsewhere)
    /// into a per-pillar voltage correction, returning the worst
    /// correction magnitude (the outer convergence measure). Performs no
    /// heap allocation (the coarse-solve scratch lives in the lattice).
    ///
    /// `out` must have the same length as `mismatch`.
    pub(crate) fn correction(&mut self, mismatch: &[f64], out: &mut [f64]) -> f64 {
        match self {
            PillarLattice::Grid {
                cw,
                ch,
                c_x,
                c_y,
                fixed,
                any_interior,
                injection,
                zeros,
                ws,
            } => {
                let n = *cw * *ch;
                debug_assert_eq!(mismatch.len(), n);
                // Dirichlet values at pads; interior driven by -excess.
                for k in 0..n {
                    if fixed[k] {
                        out[k] = mismatch[k];
                        injection[k] = 0.0;
                    } else {
                        out[k] = 0.0;
                        injection[k] = -mismatch[k];
                    }
                }
                if *any_interior {
                    let problem = TierProblem {
                        width: *cw,
                        height: *ch,
                        g_h: *c_x,
                        g_v: *c_y,
                        fixed,
                        extra_diag: zeros,
                        injection,
                    };
                    let rb = RowBased {
                        omega: 1.5,
                        tolerance: 1e-7,
                        max_sweeps: 100_000,
                        alternate: true,
                    };
                    // The coarse solve cannot fail structurally; treat a
                    // non-converged coarse sweep as a best-effort
                    // correction (the outer loop damps it).
                    let _ = rb.solve_tier_with(&problem, out, ws);
                }
                out.iter().fold(0.0f64, |m, v| m.max(v.abs()))
            }
            PillarLattice::Diagonal {
                is_pad,
                g_local,
                r_bound,
            } => {
                let mut worst = 0.0f64;
                for k in 0..mismatch.len() {
                    if is_pad[k] {
                        out[k] = mismatch[k];
                        worst = worst.max(out[k].abs());
                    } else {
                        out[k] = -mismatch[k] / *g_local;
                        // Convergence must be judged by the voltage error
                        // the excess current could still hide, not by the
                        // damped step size.
                        worst = worst.max((mismatch[k] * *r_bound).abs());
                    }
                }
                worst
            }
        }
    }

    /// Estimated heap footprint in bytes.
    pub(crate) fn memory_bytes(&self) -> usize {
        match self {
            PillarLattice::Grid {
                fixed,
                injection,
                zeros,
                ws,
                ..
            } => fixed.len() + (injection.len() + zeros.len()) * 8 + ws.memory_bytes(),
            PillarLattice::Diagonal { is_pad, .. } => is_pad.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltprop_grid::TsvPattern;

    fn stack(pattern: TsvPattern) -> Stack3d {
        Stack3d::builder(12, 12, 3)
            .tsv_pattern(pattern)
            .pad_lattice(4)
            .build()
            .unwrap()
    }

    fn pads_of(s: &Stack3d) -> Vec<bool> {
        s.tsv_sites()
            .iter()
            .map(|&(x, y)| s.is_pad(x as usize, y as usize))
            .collect()
    }

    #[test]
    fn uniform_pattern_builds_grid_lattice() {
        let s = stack(TsvPattern::Uniform { pitch: 2 });
        let pads = pads_of(&s);
        let lat = PillarLattice::build(&s, s.tsv_sites(), &pads);
        assert!(matches!(lat, PillarLattice::Grid { cw: 6, ch: 6, .. }));
    }

    #[test]
    fn random_pattern_falls_back_to_diagonal() {
        let s = Stack3d::builder(12, 12, 3)
            .tsv_pattern(TsvPattern::Random { count: 17, seed: 5 })
            .pad_sites(vec![])
            .build();
        // Random patterns rarely form complete grids; force pads on the
        // first pillar to keep the model valid.
        let s = match s {
            Ok(s) => s,
            Err(_) => {
                let base = Stack3d::builder(12, 12, 3)
                    .tsv_pattern(TsvPattern::Random { count: 17, seed: 5 })
                    .build()
                    .unwrap();
                let first = base.tsv_sites()[0];
                Stack3d::builder(12, 12, 3)
                    .tsv_pattern(TsvPattern::Random { count: 17, seed: 5 })
                    .pad_sites(vec![(first.0 as usize, first.1 as usize)])
                    .build()
                    .unwrap()
            }
        };
        let pads = pads_of(&s);
        let lat = PillarLattice::build(&s, s.tsv_sites(), &pads);
        assert!(matches!(lat, PillarLattice::Diagonal { .. }));
    }

    #[test]
    fn all_pad_mismatches_pass_through() {
        let s = Stack3d::builder(8, 8, 2).build().unwrap(); // pads everywhere
        let pads = pads_of(&s);
        assert!(pads.iter().all(|&p| p));
        let mut lat = PillarLattice::build(&s, s.tsv_sites(), &pads);
        let mismatch = vec![1e-3; pads.len()];
        let mut out = vec![0.0; pads.len()];
        let worst = lat.correction(&mismatch, &mut out);
        assert!((worst - 1e-3).abs() < 1e-15);
        assert!(out.iter().all(|&o| (o - 1e-3).abs() < 1e-15));
    }

    #[test]
    fn interior_excess_produces_negative_correction() {
        let s = stack(TsvPattern::Uniform { pitch: 2 });
        let pads = pads_of(&s);
        let mut lat = PillarLattice::build(&s, s.tsv_sites(), &pads);
        let n = pads.len();
        // One interior pillar asks 1 mA too much of the package.
        let mut mismatch = vec![0.0; n];
        let interior = pads.iter().position(|&p| !p).unwrap();
        mismatch[interior] = 1e-3;
        let mut out = vec![0.0; n];
        let worst = lat.correction(&mismatch, &mut out);
        assert!(out[interior] < 0.0, "guess must come down");
        assert!(worst > 0.0);
    }
}
