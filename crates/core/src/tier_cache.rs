//! A row-based tier solver with cached tridiagonal factorizations.
//!
//! Inside the VP loop every tier is solved dozens of times with the *same*
//! matrix — only the right-hand side (neighbour rows, VDA-adjusted pinned
//! values) changes. [`CachedTier`] wraps the prefactored
//! [`TierEngine`](voltprop_solvers::TierEngine): every row segment is
//! factored once at construction (the Thomas `c'` and `1/m` coefficients
//! are constant) and each sweep performs only forward/backward
//! substitution — roughly `3N` multiplies per row instead of `5N-4` —
//! with zero heap allocation.
//!
//! The engine also carries the solver's `parallelism` knob: with more
//! than one thread the tier sweeps switch from the sequential
//! alternating-direction schedule to red-black row coloring, whose
//! same-color rows are solved concurrently (and deterministically in the
//! thread count) on the persistent process-wide
//! [`voltprop_solvers::WorkerPool`] — every tier's engine dispatches to
//! the same parked workers, so a multi-tier solve pays no per-solve
//! thread spawns. Batched tier solves compact to the unfrozen lanes (see
//! [`TierEngine::solve_batch_masked`]), so lanes the VP outer loop has
//! masked out cost nothing in later inner solves. All tiers share one
//! pin-mask allocation (`Arc<[bool]>`) — the VP algorithm pins the same
//! pillar sites on every tier.

use std::sync::Arc;
use voltprop_solvers::{LaneReport, SolveReport, SolverError, SweepSchedule, TierEngine};

/// Per-tier cached structure: prefactored row segments plus the sweep
/// schedule.
#[derive(Debug)]
pub(crate) struct CachedTier {
    engine: TierEngine,
}

impl CachedTier {
    /// Builds the cache for a tier with the given (shared) pin mask,
    /// inner-sweep thread count, and row-band shard count (`shards >= 2`
    /// sweeps per band against halo-extended images; see
    /// [`TierEngine::new_sharded`]).
    ///
    /// # Errors
    ///
    /// See [`TierEngine::new`].
    pub(crate) fn new(
        width: usize,
        height: usize,
        g_h: f64,
        g_v: f64,
        fixed: Arc<[bool]>,
        parallelism: usize,
        shards: usize,
    ) -> Result<Self, SolverError> {
        Self::new_companion(width, height, g_h, g_v, fixed, None, parallelism, shards)
    }

    /// [`CachedTier::new`] with per-node grounded conductances added to
    /// the diagonal before factoring — the transient companion terms
    /// `α·C` (`extra_diag[site]`, siemens). The augmented tridiagonal
    /// factors are built once here and reused by every sweep, exactly
    /// like the static path; `None` (or all-zero) degenerates to
    /// [`CachedTier::new`].
    ///
    /// # Errors
    ///
    /// See [`TierEngine::new`].
    #[allow(clippy::too_many_arguments)] // mirrors the engine constructor
    pub(crate) fn new_companion(
        width: usize,
        height: usize,
        g_h: f64,
        g_v: f64,
        fixed: Arc<[bool]>,
        extra_diag: Option<&[f64]>,
        parallelism: usize,
        shards: usize,
    ) -> Result<Self, SolverError> {
        Ok(CachedTier {
            engine: TierEngine::new_sharded(
                width,
                height,
                g_h,
                g_v,
                fixed,
                extra_diag,
                SweepSchedule::from_parallelism(parallelism),
                shards,
            )?,
        })
    }

    /// Sweeps until the largest update falls below `tolerance`, starting
    /// from (and finishing in) `v`. Allocation-free.
    ///
    /// # Errors
    ///
    /// [`SolverError::DidNotConverge`] if `max_sweeps` runs out.
    pub(crate) fn solve(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
    ) -> Result<SolveReport, SolverError> {
        self.engine.solve(injection, v, tolerance, max_sweeps)
    }

    /// Like [`CachedTier::solve`] with an explicit SOR factor (the planar
    /// single-tier path honours `VpConfig::sor_omega`).
    ///
    /// # Errors
    ///
    /// See [`TierEngine::solve_with_omega`].
    pub(crate) fn solve_with_omega(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
    ) -> Result<SolveReport, SolverError> {
        self.engine
            .solve_with_omega(injection, v, tolerance, max_sweeps, omega)
    }

    /// Batched multi-right-hand-side solve: `lanes.len()` load vectors
    /// sweep together against the shared factors, node-major/lane-minor
    /// layout, each lane freezing independently at `tolerance`. `mask`
    /// marks lanes to leave untouched (the VP outer loop freezes whole
    /// lanes once they converge). See
    /// [`TierEngine::solve_batch_masked`].
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for malformed batch arrays; per-lane
    /// non-convergence is reported in `lanes`, not as an error.
    #[allow(clippy::too_many_arguments)] // mirrors the engine entry point
    pub(crate) fn solve_batch_masked(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
        mask: Option<&[bool]>,
        lanes: &mut [LaneReport],
    ) -> Result<SolveReport, SolverError> {
        self.engine
            .solve_batch_masked(injection, v, tolerance, max_sweeps, omega, mask, lanes)
    }

    /// Mixed-precision [`CachedTier::solve_with_omega`]: f32 correction
    /// sweeps with f64 residual accumulation and iterative refinement.
    /// See [`TierEngine::solve_mixed_with_omega`].
    ///
    /// # Errors
    ///
    /// See [`TierEngine::solve_mixed_with_omega`].
    pub(crate) fn solve_mixed_with_omega(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
    ) -> Result<SolveReport, SolverError> {
        self.engine
            .solve_mixed_with_omega(injection, v, tolerance, max_sweeps, omega)
    }

    /// Mixed-precision [`CachedTier::solve_batch_masked`]. See
    /// [`TierEngine::solve_batch_masked_mixed`].
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for malformed batch arrays; per-lane
    /// non-convergence is reported in `lanes`, not as an error.
    #[allow(clippy::too_many_arguments)] // mirrors the engine entry point
    pub(crate) fn solve_batch_masked_mixed(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
        mask: Option<&[bool]>,
        lanes: &mut [LaneReport],
    ) -> Result<SolveReport, SolverError> {
        self.engine
            .solve_batch_masked_mixed(injection, v, tolerance, max_sweeps, omega, mask, lanes)
    }

    /// A new cache sharing this one's frozen factors with fresh per-solve
    /// scratch. See [`TierEngine::fork`].
    #[must_use]
    pub(crate) fn fork(&self) -> CachedTier {
        CachedTier {
            engine: self.engine.fork(),
        }
    }

    /// Estimated heap footprint in bytes.
    pub(crate) fn memory_bytes(&self) -> usize {
        self.engine.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltprop_solvers::rowbased::{RowBased, TierProblem};

    fn fixture(w: usize, h: usize, seed: u64) -> (Vec<bool>, Vec<f64>, Vec<f64>) {
        let n = w * h;
        let mut s = seed.wrapping_add(3);
        let mut rnd = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64)
        };
        let mut fixed = vec![false; n];
        let mut v = vec![1.8; n];
        for i in 0..n {
            if rnd() < 0.25 {
                fixed[i] = true;
                v[i] = 1.7 + 0.2 * rnd();
            }
        }
        fixed[0] = true;
        let injection: Vec<f64> = (0..n)
            .map(|i| if fixed[i] { 0.0 } else { -1e-4 * rnd() })
            .collect();
        (fixed, v, injection)
    }

    #[test]
    fn matches_generic_rowbased() {
        for seed in [1u64, 9, 42] {
            let (w, h) = (13, 9);
            let (fixed, v_init, injection) = fixture(w, h, seed);
            let g_h = 1.25;
            let g_v = 0.8;

            let mut v_cached = v_init.clone();
            let mut cached = CachedTier::new(w, h, g_h, g_v, Arc::from(&fixed[..]), 1, 1).unwrap();
            cached
                .solve(&injection, &mut v_cached, 1e-10, 100_000)
                .unwrap();

            let mut v_ref = v_init.clone();
            let problem = TierProblem {
                width: w,
                height: h,
                g_h,
                g_v,
                fixed: &fixed,
                extra_diag: &vec![0.0; w * h],
                injection: &injection,
            };
            let rb = RowBased {
                tolerance: 1e-10,
                ..Default::default()
            };
            rb.solve_tier(&problem, &mut v_ref).unwrap();

            for i in 0..w * h {
                assert!(
                    (v_cached[i] - v_ref[i]).abs() < 1e-7,
                    "seed {seed} node {i}: cached {} vs generic {}",
                    v_cached[i],
                    v_ref[i]
                );
            }
        }
    }

    #[test]
    fn parallel_schedule_matches_sequential() {
        for seed in [2u64, 19] {
            let (w, h) = (16, 11);
            let (fixed, v_init, injection) = fixture(w, h, seed);
            let shared: Arc<[bool]> = Arc::from(&fixed[..]);
            let mut v_seq = v_init.clone();
            CachedTier::new(w, h, 2.0, 1.5, shared.clone(), 1, 1)
                .unwrap()
                .solve(&injection, &mut v_seq, 1e-12, 100_000)
                .unwrap();
            let mut v_par = v_init.clone();
            CachedTier::new(w, h, 2.0, 1.5, shared, 4, 1)
                .unwrap()
                .solve(&injection, &mut v_par, 1e-12, 100_000)
                .unwrap();
            for i in 0..w * h {
                assert!(
                    (v_seq[i] - v_par[i]).abs() < 1e-9,
                    "seed {seed} node {i}: seq {} vs par {}",
                    v_seq[i],
                    v_par[i]
                );
            }
        }
    }

    #[test]
    fn budget_exhaustion_is_error() {
        let (w, h) = (16, 16);
        let mut fixed = vec![false; w * h];
        fixed[0] = true;
        let mut v = vec![0.0; w * h];
        v[0] = 1.8;
        let injection = vec![0.0; w * h];
        let mut cached = CachedTier::new(w, h, 1.0, 1.0, Arc::from(fixed), 1, 1).unwrap();
        assert!(matches!(
            cached.solve(&injection, &mut v, 1e-15, 2),
            Err(SolverError::DidNotConverge { .. })
        ));
    }

    #[test]
    fn reports_positive_memory() {
        let cached = CachedTier::new(5, 3, 1.0, 1.0, Arc::from(vec![false; 15]), 1, 1).unwrap();
        assert!(cached.memory_bytes() > 0);
    }
}
