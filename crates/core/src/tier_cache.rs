//! A row-based tier solver with cached tridiagonal factorizations.
//!
//! Inside the VP loop every tier is solved dozens of times with the *same*
//! matrix — only the right-hand side (neighbour rows, VDA-adjusted pinned
//! values) changes. The generic [`RowBased`](voltprop_solvers::RowBased)
//! kernel re-eliminates each row every sweep; this solver factors every
//! row segment once (the Thomas `c'` and `1/m` coefficients are constant)
//! and then performs only forward/backward substitution per sweep —
//! roughly `3N` multiplies per row instead of `5N-4`.

use voltprop_solvers::{SolveReport, SolverError};

/// Per-tier cached structure: row segments between pinned nodes with
/// prefactored tridiagonal coefficients.
#[derive(Debug, Clone)]
pub(crate) struct CachedTier {
    width: usize,
    height: usize,
    g_h: f64,
    g_v: f64,
    /// Segment table: `(row, start_x, len, coeff_offset)`.
    segments: Vec<(u32, u32, u32, u32)>,
    /// Thomas `c'` per in-segment position.
    cp: Vec<f64>,
    /// `1/m` per in-segment position.
    inv_m: Vec<f64>,
    /// Pin mask (row-major).
    fixed: Vec<bool>,
    /// Scratch for the substitution sweep.
    dp: Vec<f64>,
}

impl CachedTier {
    /// Builds the cache for a tier with the given pin mask.
    pub(crate) fn new(
        width: usize,
        height: usize,
        g_h: f64,
        g_v: f64,
        fixed: Vec<bool>,
    ) -> Self {
        assert_eq!(fixed.len(), width * height);
        let mut segments = Vec::new();
        let mut cp = Vec::new();
        let mut inv_m = Vec::new();
        let mut max_seg = 0usize;
        for y in 0..height {
            let row0 = y * width;
            let mut x = 0usize;
            while x < width {
                if fixed[row0 + x] {
                    x += 1;
                    continue;
                }
                let start = x;
                while x < width && !fixed[row0 + x] {
                    x += 1;
                }
                let len = x - start;
                let offset = cp.len() as u32;
                // Factor the constant tridiagonal: diag d_i, off -g_h.
                let mut prev_cp = 0.0;
                for i in 0..len {
                    let gx = start + i;
                    let mut d = 0.0;
                    if gx > 0 {
                        d += g_h;
                    }
                    if gx + 1 < width {
                        d += g_h;
                    }
                    if y > 0 {
                        d += g_v;
                    }
                    if y + 1 < height {
                        d += g_v;
                    }
                    // Off-diagonals are -g_h, so m_i = d_i - (-g_h)·c'_{i-1}.
                    let m = if i == 0 { d } else { d + g_h * prev_cp };
                    let c = if i + 1 < len { -g_h / m } else { 0.0 };
                    cp.push(c);
                    inv_m.push(1.0 / m);
                    prev_cp = c;
                }
                segments.push((y as u32, start as u32, len as u32, offset));
                max_seg = max_seg.max(len);
            }
        }
        CachedTier {
            width,
            height,
            g_h,
            g_v,
            segments,
            cp,
            inv_m,
            fixed,
            dp: vec![0.0; max_seg],
        }
    }

    /// One Gauss–Seidel block sweep over the rows (ascending when
    /// `downward`), reading pinned values and the previous iterate from
    /// `v` and writing updated free values back. `injection` is the
    /// per-node current into the tier. Returns the largest update.
    fn sweep(&mut self, injection: &[f64], v: &mut [f64], downward: bool) -> f64 {
        let (w, h) = (self.width, self.height);
        let mut max_delta = 0.0f64;
        let nseg = self.segments.len();
        for si in 0..nseg {
            let (y, start, len, offset) = if downward {
                self.segments[si]
            } else {
                self.segments[nseg - 1 - si]
            };
            let (y, start, len, offset) =
                (y as usize, start as usize, len as usize, offset as usize);
            let row0 = y * w;
            // Forward substitution with cached coefficients.
            let mut prev_dp = 0.0;
            for i in 0..len {
                let gx = start + i;
                let node = row0 + gx;
                let mut b = injection[node];
                if gx > 0 && self.fixed[node - 1] {
                    b += self.g_h * v[node - 1];
                }
                if gx + 1 < w && self.fixed[node + 1] {
                    b += self.g_h * v[node + 1];
                }
                if y > 0 {
                    b += self.g_v * v[node - w];
                }
                if y + 1 < h {
                    b += self.g_v * v[node + w];
                }
                let dp = if i == 0 {
                    b * self.inv_m[offset]
                } else {
                    (b + self.g_h * prev_dp) * self.inv_m[offset + i]
                };
                self.dp[i] = dp;
                prev_dp = dp;
            }
            // Backward substitution, writing straight into `v`.
            let mut next_x = 0.0;
            for i in (0..len).rev() {
                let node = row0 + start + i;
                let xi = self.dp[i] - self.cp[offset + i] * next_x;
                let delta = (xi - v[node]).abs();
                if delta > max_delta {
                    max_delta = delta;
                }
                v[node] = xi;
                next_x = xi;
            }
        }
        max_delta
    }

    /// Sweeps until the largest update falls below `tolerance`, starting
    /// from (and finishing in) `v`.
    ///
    /// # Errors
    ///
    /// [`SolverError::DidNotConverge`] if `max_sweeps` runs out.
    pub(crate) fn solve(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
    ) -> Result<SolveReport, SolverError> {
        let mut sweeps = 0;
        let mut max_delta = f64::INFINITY;
        while sweeps < max_sweeps {
            max_delta = self.sweep(injection, v, sweeps % 2 == 0);
            sweeps += 1;
            if max_delta < tolerance {
                return Ok(SolveReport {
                    iterations: sweeps,
                    residual: max_delta,
                    converged: true,
                    workspace_bytes: self.memory_bytes(),
                });
            }
        }
        Err(SolverError::DidNotConverge {
            iterations: sweeps,
            residual: max_delta,
            tolerance,
        })
    }

    /// Estimated heap footprint in bytes.
    pub(crate) fn memory_bytes(&self) -> usize {
        self.segments.len() * 16
            + (self.cp.len() + self.inv_m.len() + self.dp.len()) * 8
            + self.fixed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltprop_solvers::rowbased::{RowBased, TierProblem};

    fn fixture(w: usize, h: usize, seed: u64) -> (Vec<bool>, Vec<f64>, Vec<f64>) {
        let n = w * h;
        let mut s = seed.wrapping_add(3);
        let mut rnd = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64)
        };
        let mut fixed = vec![false; n];
        let mut v = vec![1.8; n];
        for i in 0..n {
            if rnd() < 0.25 {
                fixed[i] = true;
                v[i] = 1.7 + 0.2 * rnd();
            }
        }
        fixed[0] = true;
        let injection: Vec<f64> = (0..n)
            .map(|i| if fixed[i] { 0.0 } else { -1e-4 * rnd() })
            .collect();
        (fixed, v, injection)
    }

    #[test]
    fn matches_generic_rowbased() {
        for seed in [1u64, 9, 42] {
            let (w, h) = (13, 9);
            let (fixed, v_init, injection) = fixture(w, h, seed);
            let g_h = 1.25;
            let g_v = 0.8;

            let mut v_cached = v_init.clone();
            let mut cached = CachedTier::new(w, h, g_h, g_v, fixed.clone());
            cached
                .solve(&injection, &mut v_cached, 1e-10, 100_000)
                .unwrap();

            let mut v_ref = v_init.clone();
            let problem = TierProblem {
                width: w,
                height: h,
                g_h,
                g_v,
                fixed: &fixed,
                extra_diag: &vec![0.0; w * h],
                injection: &injection,
            };
            let rb = RowBased {
                tolerance: 1e-10,
                ..Default::default()
            };
            rb.solve_tier(&problem, &mut v_ref).unwrap();

            for i in 0..w * h {
                assert!(
                    (v_cached[i] - v_ref[i]).abs() < 1e-7,
                    "seed {seed} node {i}: cached {} vs generic {}",
                    v_cached[i],
                    v_ref[i]
                );
            }
        }
    }

    #[test]
    fn budget_exhaustion_is_error() {
        let (w, h) = (16, 16);
        let mut fixed = vec![false; w * h];
        fixed[0] = true;
        let mut v = vec![0.0; w * h];
        v[0] = 1.8;
        let injection = vec![0.0; w * h];
        let mut cached = CachedTier::new(w, h, 1.0, 1.0, fixed);
        assert!(matches!(
            cached.solve(&injection, &mut v, 1e-15, 2),
            Err(SolverError::DidNotConverge { .. })
        ));
    }

    #[test]
    fn fully_free_tier_has_one_segment_per_row() {
        let cached = CachedTier::new(5, 3, 1.0, 1.0, vec![false; 15]);
        assert_eq!(cached.segments.len(), 3);
        assert!(cached.memory_bytes() > 0);
    }
}
