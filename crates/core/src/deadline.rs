//! Cooperative per-request deadlines: [`Deadline`].
//!
//! A [`Deadline`] rides on a request ([`LoadCase::deadline`] /
//! [`LoadSet::deadline`]) and is checked *between* iterations of the
//! engine outer loops — the solve is abandoned with
//! [`SolverError::DeadlineExceeded`] the first time a check runs past
//! the instant. Nothing is preempted mid-iteration, so the check
//! granularity is one outer iteration on the [`Backend::VoltProp`]
//! route and one lane on the engine-backed batch routes; a single
//! [`Backend::Rb3d`]/[`Backend::Pcg`] solve only checks on entry (its
//! iteration budget bounds the tail).
//!
//! [`LoadCase::deadline`]: crate::LoadCase::deadline
//! [`LoadSet::deadline`]: crate::LoadSet::deadline
//! [`Backend::VoltProp`]: crate::Backend::VoltProp
//! [`Backend::Rb3d`]: crate::Backend::Rb3d
//! [`Backend::Pcg`]: crate::Backend::Pcg

use std::time::{Duration, Instant};

use voltprop_solvers::SolverError;

/// A wall-clock budget for one request. The default ([`Deadline::NONE`])
/// never expires; [`Deadline::after`] starts the clock at construction.
///
/// ```
/// use std::time::Duration;
/// use voltprop_core::Deadline;
///
/// assert!(!Deadline::NONE.expired());
/// assert!(Deadline::after(Duration::ZERO).expired());
/// assert!(!Deadline::after(Duration::from_secs(3600)).expired());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// No deadline: checks always pass (the behavior of every request
    /// that does not set one).
    pub const NONE: Deadline = Deadline(None);

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Deadline {
        Deadline(Some(instant))
    }

    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline(Some(Instant::now() + budget))
    }

    /// The absolute instant, if a deadline is set.
    pub fn instant(&self) -> Option<Instant> {
        self.0
    }

    /// Whether the deadline has passed (`false` when none is set).
    pub fn expired(&self) -> bool {
        self.0.is_some_and(|at| Instant::now() >= at)
    }

    /// Time left until the deadline: `None` when no deadline is set,
    /// `Some(Duration::ZERO)` once it has passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.0
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// The cooperative cancellation hook the engine outer loops call
    /// between iterations: [`SolverError::DeadlineExceeded`] (carrying
    /// `iterations`) once the deadline has passed, `Ok` otherwise.
    ///
    /// # Errors
    ///
    /// [`SolverError::DeadlineExceeded`] when expired.
    pub fn check(&self, iterations: usize) -> Result<(), SolverError> {
        if self.expired() {
            Err(SolverError::DeadlineExceeded { iterations })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        assert!(!Deadline::NONE.expired());
        assert_eq!(Deadline::NONE.remaining(), None);
        assert!(Deadline::NONE.check(7).is_ok());
        assert_eq!(Deadline::default(), Deadline::NONE);
    }

    #[test]
    fn past_deadline_fails_the_check_with_iterations() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        match d.check(3) {
            Err(SolverError::DeadlineExceeded { iterations: 3 }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn future_deadline_passes() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.check(0).is_ok());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
        assert!(d.instant().is_some());
    }
}
