//! The serving-grade entry point: one prefactored [`Session`] handle for
//! single, batched, and transient solves, across solver backends.
//!
//! The paper's central asset is *reuse*: the tier factorizations and the
//! pillar lattice are built once and amortized across every load pattern
//! that follows. A [`Session`] makes that the shape of the API —
//! [`Session::build`] does all allocation and factorization up front,
//! and every request flows through one request/response surface:
//!
//! * [`Session::solve`] — one load pattern ([`LoadCase`]);
//! * [`Session::solve_batch`] — `k` load patterns swept together
//!   ([`LoadSet`], lanes share the tier factors);
//! * [`Session::solve_steps`] — a sequence of load vectors solved with
//!   the steps as batch lanes (the *quasi-static* stepping pattern; no
//!   grid dynamics);
//! * [`Session::transient_dynamic`] — the **true** transient engine:
//!   `G v + C v̇ = b(t)` stepped with backward-Euler/trapezoidal
//!   companion models on a prefactored companion system (see
//!   [`crate::transient`]).
//!
//! Results come back as borrowed [`SolutionView`]s whose lane accessors
//! return `Result` instead of panicking, per-solve knobs (tolerances,
//! net, SOR factor) ride on the request via [`SolveParams`], and a
//! [`Backend`] selector routes the same session through the voltage
//! propagation engine, the naive 3-D row-based baseline, or the
//! preconditioned-CG reference solver for apples-to-apples comparisons
//! on shared prefactored state.
//!
//! Geometry is a build-time contract: a session never silently rebuilds.
//! Presenting a stack whose geometry differs from the one the session
//! was built for surfaces [`SessionError::GeometryChanged`]; loads (and
//! per-solve parameters) are free to vary.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use voltprop_grid::{GridError, NetKind, Stack3d};
use voltprop_solvers::{PcgEngine, Rb3dEngine, SolverError};
use voltprop_sparse::SparseError;

use crate::solver::{run_batch, run_single, validate_loads, VpScratch};
use crate::{BuildParams, Deadline, SolveParams, VpConfig, VpReport};

/// The solver engine a request is routed through.
///
/// All backends share one [`Session`]'s prefactored state, so switching
/// backends between requests costs nothing — the tier factors for both
/// routes are built by [`Session::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Backend {
    /// The paper's voltage propagation method (the default): tier-by-tier
    /// propagation with VDA feedback, prefactored row solves, batching
    /// with per-lane convergence freezing.
    #[default]
    VoltProp,
    /// The naive 3-D row-based baseline (paper §III-A): one block
    /// Gauss–Seidel iteration over all tiers with TSVs as ordinary
    /// couplings. Useful for the cross-solver comparisons the paper
    /// makes; expect many more sweeps when TSVs are strong. Parameter
    /// mapping: [`SolveParams::sor_omega`] is the sweep over-relaxation
    /// factor, [`SolveParams::inner_tolerance`] the full-stack
    /// convergence threshold, [`SolveParams::max_inner_sweeps`] the
    /// iteration budget.
    Rb3d,
    /// Preconditioned conjugate gradients on the assembled 3-D system —
    /// the paper's general-purpose comparator (refs \[6\], \[12\]),
    /// served from the session's prefactored
    /// [`voltprop_solvers::PcgEngine`]: the full MNA system is stamped
    /// and the IC(0) preconditioner factored once at [`Session::build`]
    /// (falling back to Jacobi scaling on a non-positive pivot), so warm
    /// requests are allocation-free. Parameter mapping:
    /// [`SolveParams::inner_tolerance`] is the relative residual target
    /// `‖b − Ax‖₂ / ‖b‖₂`, [`SolveParams::max_inner_sweeps`] the CG
    /// iteration budget. If the build-time prefactor failed, requests
    /// return [`SessionError::BackendUnavailable`] carrying the reason.
    Pcg,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::VoltProp => write!(f, "voltage-propagation"),
            Backend::Rb3d => write!(f, "rb3d-naive"),
            Backend::Pcg => write!(f, "pcg"),
        }
    }
}

/// Errors from [`Session::build`]: the stack cannot be served at all
/// (solve-time errors are [`SessionError`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BuildError {
    /// The stack's shape is outside what the session's engines support
    /// (e.g. pads away from the pillars — see [`crate::VpSolver`]).
    Unsupported {
        /// Human-readable description.
        what: String,
    },
    /// The grid model failed validation.
    Grid(GridError),
    /// A tier factorization failed numerically.
    Sparse(SparseError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Unsupported { what } => write!(f, "cannot build session: {what}"),
            BuildError::Grid(e) => write!(f, "cannot build session: {e}"),
            BuildError::Sparse(e) => write!(f, "cannot build session: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Grid(e) => Some(e),
            BuildError::Sparse(e) => Some(e),
            BuildError::Unsupported { .. } => None,
        }
    }
}

impl From<SolverError> for BuildError {
    fn from(e: SolverError) -> Self {
        match e {
            SolverError::Grid(g) => BuildError::Grid(g),
            SolverError::Sparse(s) => BuildError::Sparse(s),
            SolverError::Unsupported { what } => BuildError::Unsupported { what },
            // Build never iterates (`DidNotConverge` cannot occur), and
            // `SolverError` is non-exhaustive; folding the rest into
            // `Unsupported` keeps `From` total.
            other => BuildError::Unsupported {
                what: other.to_string(),
            },
        }
    }
}

/// Errors from serving a request on a built [`Session`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SessionError {
    /// The presented stack's geometry (footprint, tiers, resistances,
    /// TSV or pad sites) differs from the one the session was built for.
    /// Sessions never rebuild silently — build a new session for the new
    /// geometry. Loads and per-solve parameters are free to change.
    GeometryChanged {
        /// What the session was built for vs what it was given.
        what: String,
    },
    /// The requested [`Backend`] exists but this session cannot serve it
    /// — its build-time prefactor failed (e.g. the PCG preconditioner
    /// could not be factored for this grid). The other backends remain
    /// usable; `reason` records what went wrong at build.
    BackendUnavailable {
        /// The backend that was requested.
        backend: Backend,
        /// Why the backend's prefactored state could not be built.
        reason: String,
    },
    /// A lane index beyond the solved lane count was requested from a
    /// [`SolutionView`].
    LaneOutOfRange {
        /// The requested lane.
        lane: usize,
        /// How many lanes the view holds.
        lanes: usize,
    },
    /// The underlying engine failed (convergence budget, malformed
    /// loads, …).
    Solver(SolverError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::GeometryChanged { what } => {
                write!(f, "stack geometry changed: {what}")
            }
            SessionError::BackendUnavailable { backend, reason } => {
                write!(f, "backend {backend} is unavailable: {reason}")
            }
            SessionError::LaneOutOfRange { lane, lanes } => {
                write!(f, "lane {lane} out of range ({lanes} lanes)")
            }
            SessionError::Solver(e) => write!(f, "{e}"),
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolverError> for SessionError {
    fn from(e: SolverError) -> Self {
        SessionError::Solver(e)
    }
}

/// One solve request: the stack carrying the loads, plus the per-solve
/// knobs that may differ between requests on one session — net, backend,
/// and optional [`SolveParams`] overriding the session defaults.
///
/// ```
/// use voltprop_core::{Backend, LoadCase, SolveParams};
/// use voltprop_grid::{NetKind, Stack3d};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stack = Stack3d::builder(8, 8, 2).uniform_load(1e-4).build()?;
/// let case = LoadCase::new(&stack)
///     .net(NetKind::Ground)
///     .backend(Backend::VoltProp)
///     .params(SolveParams::new().epsilon(1e-5));
/// # let _ = case;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LoadCase<'a> {
    pub(crate) stack: &'a Stack3d,
    pub(crate) net: NetKind,
    pub(crate) backend: Backend,
    pub(crate) params: Option<SolveParams>,
    pub(crate) deadline: Deadline,
}

impl<'a> LoadCase<'a> {
    /// A power-net request on the stack's own loads, using the session's
    /// default backend ([`Backend::VoltProp`]) and parameters, with no
    /// deadline.
    pub fn new(stack: &'a Stack3d) -> Self {
        LoadCase {
            stack,
            net: NetKind::Power,
            backend: Backend::VoltProp,
            params: None,
            deadline: Deadline::NONE,
        }
    }

    /// Selects the net to analyse.
    pub fn net(mut self, net: NetKind) -> Self {
        self.net = net;
        self
    }

    /// Routes this request through a specific [`Backend`].
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the session's default per-solve parameters for this
    /// request only.
    pub fn params(mut self, params: SolveParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Attaches a wall-clock [`Deadline`]: the engine outer loops check
    /// it between iterations and abandon the solve with
    /// [`SessionError::Solver`]`(`[`SolverError::DeadlineExceeded`]`)`
    /// once it passes (see [`Deadline`] for the check granularity).
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// The stack this request reads geometry and loads from.
    pub fn stack(&self) -> &'a Stack3d {
        self.stack
    }
}

/// A batched solve request: `k` complete load vectors served against one
/// stack's geometry, swept together through the shared tier factors.
///
/// `loads` is lane-major — lane `j`'s `stack.num_nodes()` currents are
/// contiguous at `j * num_nodes` — and replaces the stack's own loads.
/// Net, backend, and parameter overrides apply to every lane.
#[derive(Debug, Clone, Copy)]
pub struct LoadSet<'a> {
    pub(crate) stack: &'a Stack3d,
    pub(crate) loads: &'a [f64],
    pub(crate) net: NetKind,
    pub(crate) backend: Backend,
    pub(crate) params: Option<SolveParams>,
    pub(crate) deadline: Deadline,
}

impl<'a> LoadSet<'a> {
    /// A power-net batch over `loads` (lane-major, a whole number of
    /// `stack.num_nodes()`-sized vectors), with no deadline.
    pub fn new(stack: &'a Stack3d, loads: &'a [f64]) -> Self {
        LoadSet {
            stack,
            loads,
            net: NetKind::Power,
            backend: Backend::VoltProp,
            params: None,
            deadline: Deadline::NONE,
        }
    }

    /// Selects the net to analyse.
    pub fn net(mut self, net: NetKind) -> Self {
        self.net = net;
        self
    }

    /// Routes this batch through a specific [`Backend`].
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the session's default per-solve parameters for this
    /// batch only.
    pub fn params(mut self, params: SolveParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Attaches a wall-clock [`Deadline`] covering the whole batch: the
    /// lockstep outer loop (VoltProp) or per-lane loop (engine routes)
    /// checks it between iterations/lanes and abandons the batch with
    /// [`SessionError::Solver`]`(`[`SolverError::DeadlineExceeded`]`)`
    /// once it passes.
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// The stack this batch reads geometry from.
    pub fn stack(&self) -> &'a Stack3d {
        self.stack
    }

    /// The lane-major load buffer.
    pub fn loads(&self) -> &'a [f64] {
        self.loads
    }
}

/// A borrowed view of the most recent solve's results: per-lane voltages,
/// pillar currents, and convergence reports, living in the session's
/// arenas (nothing is copied out).
///
/// Lane accessors return [`SessionError::LaneOutOfRange`] instead of
/// panicking — these replace the deprecated panicking
/// `VpScratch::batch_voltages` / `batch_pillar_currents`. A single
/// [`Session::solve`] produces a one-lane view, so the lane-0
/// conveniences ([`SolutionView::voltages`], [`SolutionView::report`])
/// are always valid.
#[derive(Debug, Clone, Copy)]
pub struct SolutionView<'a> {
    /// Lane-major voltages, `lanes * nodes`.
    voltages: &'a [f64],
    /// Lane-major pillar currents, `lanes * sites` (empty for
    /// single-tier stacks and for backends that don't compute them).
    pillar_currents: &'a [f64],
    reports: &'a [VpReport],
    lanes: usize,
    nodes: usize,
    sites: usize,
}

impl<'a> SolutionView<'a> {
    /// Number of solved lanes (1 for [`Session::solve`], `k` for a
    /// batch, the step count for a transient).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Nodes per lane (the stack's `num_nodes`).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Whether **every** lane converged.
    pub fn converged(&self) -> bool {
        self.reports.iter().all(|r| r.converged)
    }

    /// Lane 0's per-node voltages (flat tier-major) — the whole solution
    /// of a single solve.
    pub fn voltages(&self) -> &'a [f64] {
        &self.voltages[..self.nodes]
    }

    /// Lane 0's per-pillar package currents (aligned with
    /// [`Stack3d::tsv_sites`]; empty for single-tier stacks and for the
    /// [`Backend::Rb3d`] and [`Backend::Pcg`] routes, which don't
    /// compute them).
    pub fn pillar_currents(&self) -> &'a [f64] {
        &self.pillar_currents[..self.sites.min(self.pillar_currents.len())]
    }

    /// Lane 0's convergence report.
    pub fn report(&self) -> &'a VpReport {
        &self.reports[0]
    }

    /// All per-lane convergence reports, in lane order.
    pub fn reports(&self) -> &'a [VpReport] {
        self.reports
    }

    fn check_lane(&self, lane: usize) -> Result<(), SessionError> {
        if lane < self.lanes {
            Ok(())
        } else {
            Err(SessionError::LaneOutOfRange {
                lane,
                lanes: self.lanes,
            })
        }
    }

    /// Lane `lane`'s per-node voltages (flat tier-major).
    ///
    /// # Errors
    ///
    /// [`SessionError::LaneOutOfRange`] if `lane >= self.lanes()`.
    pub fn lane_voltages(&self, lane: usize) -> Result<&'a [f64], SessionError> {
        self.check_lane(lane)?;
        Ok(&self.voltages[lane * self.nodes..(lane + 1) * self.nodes])
    }

    /// Lane `lane`'s per-pillar package currents (empty for single-tier
    /// stacks and the [`Backend::Rb3d`]/[`Backend::Pcg`] routes).
    ///
    /// # Errors
    ///
    /// [`SessionError::LaneOutOfRange`] if `lane >= self.lanes()`.
    pub fn lane_pillar_currents(&self, lane: usize) -> Result<&'a [f64], SessionError> {
        self.check_lane(lane)?;
        if self.pillar_currents.is_empty() {
            return Ok(&[]);
        }
        Ok(&self.pillar_currents[lane * self.sites..(lane + 1) * self.sites])
    }

    /// Lane `lane`'s convergence report.
    ///
    /// # Errors
    ///
    /// [`SessionError::LaneOutOfRange`] if `lane >= self.lanes()`.
    pub fn lane_report(&self, lane: usize) -> Result<&'a VpReport, SessionError> {
        self.check_lane(lane)?;
        Ok(&self.reports[lane])
    }

    /// Lane 0's worst IR drop below `rail` (V).
    pub fn worst_drop(&self, rail: f64) -> f64 {
        self.voltages().iter().fold(0.0f64, |m, &v| m.max(rail - v))
    }

    /// Lane `lane`'s worst IR drop below `rail` (V).
    ///
    /// # Errors
    ///
    /// [`SessionError::LaneOutOfRange`] if `lane >= self.lanes()`.
    pub fn lane_worst_drop(&self, lane: usize, rail: f64) -> Result<f64, SessionError> {
        Ok(self
            .lane_voltages(lane)?
            .iter()
            .fold(0.0f64, |m, &v| m.max(rail - v)))
    }
}

/// The frozen, shareable half of a session: every piece of read-only
/// post-build state — the voltage-propagation tier factors and pillar
/// lattice, the [`Backend::Rb3d`] engine topology, the [`Backend::Pcg`]
/// stamped system with its IC(0) factor, and the f32 shadow factors of
/// both routes — plus the session's build-time and default per-solve
/// parameters.
///
/// # Ownership rules
///
/// * A `SessionCore` is **immutable after build**: no method takes
///   `&mut self`, so one core behind an [`Arc`] serves any number of
///   threads.
/// * All per-request mutable state lives in [`SolveScratch`]es created
///   by [`SessionCore::new_scratch`]. A scratch internally holds its own
///   `Arc` references to the core's factors (forking never restamps or
///   refactors anything), so it remains valid even if the core handle
///   that created it is dropped first.
/// * A scratch is exclusively owned by whoever holds it: a [`Session`]
///   permanently owns one, a [`SharedSession`](crate::SharedSession)
///   keeps a bounded pool and checks one out per request. Solves fully
///   re-initialize every buffer they read, so identical requests on any
///   scratch of one core produce bitwise-identical results.
#[derive(Debug)]
pub struct SessionCore {
    build: BuildParams,
    defaults: SolveParams,
    width: usize,
    height: usize,
    tiers: usize,
    nn: usize,
    /// The pristine scratch template built alongside the factors. Its
    /// engine-internal `Arc`s *are* the frozen state every fork shares;
    /// its mutable arenas are never written after build (one scratch set
    /// of standby memory, the price of fork-based sharing).
    proto: SolveScratch,
    /// Why the build-time PCG prefactor failed, if it did (served as
    /// [`SessionError::BackendUnavailable`]).
    pcg_unavailable: Option<String>,
}

/// The per-request mutable half of a session: every buffer a solve
/// writes — the voltage/injection/batch arenas and Anderson mixing
/// history of the VoltProp route, the [`Backend::Rb3d`] sweep state, the
/// [`Backend::Pcg`] iteration vectors (including the f32 refinement
/// image), the transient staging buffer, and the per-lane reports.
///
/// A scratch is created by [`SessionCore::new_scratch`] and is tied to
/// that core's geometry; it shares the core's prefactored read-only
/// state internally and has no public operations of its own — solves
/// are driven through [`Session`] (which permanently owns one scratch)
/// or [`SharedSession`](crate::SharedSession) (which pools them and
/// checks one out per request). Every solve re-initializes the buffers
/// it reads, so a scratch never leaks one request's state into the
/// next.
#[derive(Debug)]
pub struct SolveScratch {
    pub(crate) vp: VpScratch,
    pub(crate) rb: Rb3dEngine,
    pub(crate) pcg: Option<PcgEngine>,
    /// Lane-major Rb3d voltages (grown to the largest lane count seen).
    pub(crate) rb_voltages: Vec<f64>,
    /// Lane-major Pcg voltages (grown to the largest lane count seen).
    pub(crate) pcg_voltages: Vec<f64>,
    /// Staging buffer for [`Session::solve_steps`] load sequences.
    pub(crate) transient_loads: Vec<f64>,
    /// Per-lane reports of the most recent request.
    pub(crate) reports: Vec<VpReport>,
}

impl SolveScratch {
    /// Estimated heap footprint of this scratch's buffers plus the
    /// shared factors it references (forks of one core count the shared
    /// factor bytes each).
    pub fn memory_bytes(&self) -> usize {
        self.vp.memory_bytes()
            + self.rb.memory_bytes()
            + self.pcg.as_ref().map_or(0, PcgEngine::memory_bytes)
            + (self.rb_voltages.len() + self.pcg_voltages.len() + self.transient_loads.len()) * 8
            + self.reports.capacity() * std::mem::size_of::<VpReport>()
    }
}

impl SessionCore {
    /// Validates the stack and builds all prefactored solve state: the
    /// voltage propagation scratch (tier factors, pillar lattice, outer
    /// buffers), the [`Backend::Rb3d`] engine, **and** the
    /// [`Backend::Pcg`] engine (the full 3-D system stamped and its
    /// IC(0) preconditioner factored, with Jacobi fallback), so any
    /// backend can serve without further factorization.
    ///
    /// A failed PCG prefactor does **not** fail the build — the other
    /// backends stay usable, and Pcg requests surface the recorded
    /// reason as [`SessionError::BackendUnavailable`].
    ///
    /// # Errors
    ///
    /// [`BuildError`] if the grid fails validation, voltage propagation
    /// cannot serve the topology (pads away from pillars, resistive pads
    /// on a single tier), or a factorization fails.
    pub fn build(stack: &Stack3d, config: VpConfig) -> Result<SessionCore, BuildError> {
        let vp = VpScratch::new(stack, &config)?;
        let rb = Rb3dEngine::build_sharded(stack, config.parallelism, config.shards)?;
        let (pcg, pcg_unavailable) = match PcgEngine::build(stack) {
            Ok(engine) => (Some(engine), None),
            Err(e) => (None, Some(format!("build-time PCG prefactor failed: {e}"))),
        };
        let nn = stack.num_nodes();
        Ok(SessionCore {
            build: config.build_params(),
            defaults: config.solve_params(),
            width: stack.width(),
            height: stack.height(),
            tiers: stack.tiers(),
            nn,
            proto: SolveScratch {
                vp,
                rb,
                pcg,
                rb_voltages: vec![0.0; nn],
                pcg_voltages: vec![0.0; nn],
                transient_loads: Vec::new(),
                reports: Vec::new(),
            },
            pcg_unavailable,
        })
    }

    /// A fresh [`SolveScratch`] for this core: the prefactored read-only
    /// state (tier factors, pin mask, stamped system, preconditioner) is
    /// shared via `Arc` — nothing is restamped or refactored — and every
    /// mutable buffer is freshly allocated. This is the cold, allocating
    /// step; warm solves on the returned scratch allocate nothing.
    #[must_use]
    pub fn new_scratch(&self) -> SolveScratch {
        SolveScratch {
            vp: self.proto.vp.fork(),
            rb: self.proto.rb.fork(),
            pcg: self.proto.pcg.as_ref().map(PcgEngine::fork),
            rb_voltages: vec![0.0; self.nn],
            pcg_voltages: vec![0.0; self.nn],
            transient_loads: Vec::new(),
            reports: Vec::new(),
        }
    }

    /// The core's build-time parameters.
    pub fn build_params(&self) -> BuildParams {
        self.build
    }

    /// The core's default per-solve parameters (from the config given to
    /// [`SessionCore::build`]).
    pub fn defaults(&self) -> SolveParams {
        self.defaults
    }

    /// Number of grid nodes per lane (the build stack's `num_nodes`).
    pub fn num_nodes(&self) -> usize {
        self.nn
    }

    /// Estimated heap footprint of the prefactored state (including the
    /// pristine scratch template; checked-out scratches count
    /// separately).
    pub fn memory_bytes(&self) -> usize {
        self.proto.memory_bytes()
    }

    /// Whether the stack's geometry matches what this core was built for
    /// (loads are ignored).
    pub fn serves(&self, stack: &Stack3d) -> bool {
        self.proto.vp.geometry_matches(stack)
    }

    pub(crate) fn check_geometry(&self, stack: &Stack3d) -> Result<(), SessionError> {
        if self.serves(stack) {
            return Ok(());
        }
        Err(SessionError::GeometryChanged {
            what: format!(
                "session was built for a {}x{}x{} stack (same footprint, \
                 resistances, TSV and pad sites); got {}x{}x{} — build a \
                 new session for the new geometry (only loads and \
                 per-solve parameters may change)",
                self.width,
                self.height,
                self.tiers,
                stack.width(),
                stack.height(),
                stack.tiers(),
            ),
        })
    }

    /// Runs one [`LoadCase`] into `scratch` (no view yet — the borrow of
    /// the case stays separable from the result view, which
    /// [`SessionCore::single_view`] builds afterwards).
    pub(crate) fn solve_on(
        &self,
        scratch: &mut SolveScratch,
        case: &LoadCase<'_>,
    ) -> Result<(), SessionError> {
        self.check_geometry(case.stack)?;
        case.stack.validate().map_err(SolverError::from)?;
        let params = case.params.unwrap_or(self.defaults);
        match case.backend {
            Backend::VoltProp => {
                let report = run_single(
                    &params,
                    case.stack,
                    case.net,
                    &mut scratch.vp,
                    case.deadline,
                )?;
                scratch.reports.clear();
                scratch.reports.push(report);
                Ok(())
            }
            Backend::Rb3d => {
                // A prefactored engine solve is one opaque call, so the
                // deadline is checked on entry only — the iteration
                // budget bounds the tail.
                case.deadline.check(0)?;
                let rep = scratch.rb.solve(
                    case.stack.loads(),
                    case.net,
                    params.sor_omega,
                    params.inner_tolerance,
                    params.max_inner_sweeps,
                    &mut scratch.rb_voltages[..self.nn],
                )?;
                scratch.reports.clear();
                scratch.reports.push(rb_report(&rep, self.tiers));
                Ok(())
            }
            Backend::Pcg => {
                case.deadline.check(0)?;
                let engine = pcg_engine(&mut scratch.pcg, &self.pcg_unavailable)?;
                let mixed = params.precision.resolve() == crate::Precision::MixedF32;
                let rep = if mixed {
                    engine.solve_mixed(
                        case.stack.loads(),
                        case.net,
                        params.inner_tolerance,
                        params.max_inner_sweeps,
                        &mut scratch.pcg_voltages[..self.nn],
                    )?
                } else {
                    engine.solve(
                        case.stack.loads(),
                        case.net,
                        params.inner_tolerance,
                        params.max_inner_sweeps,
                        &mut scratch.pcg_voltages[..self.nn],
                    )?
                };
                scratch.reports.clear();
                scratch.reports.push(pcg_report(&rep));
                Ok(())
            }
        }
    }

    /// The one-lane view over the arena a successful
    /// [`SessionCore::solve_on`] wrote.
    pub(crate) fn single_view<'s>(
        &self,
        scratch: &'s SolveScratch,
        backend: Backend,
    ) -> SolutionView<'s> {
        match backend {
            Backend::VoltProp => SolutionView {
                voltages: scratch.vp.voltages(),
                pillar_currents: scratch.vp.pillar_currents(),
                reports: &scratch.reports,
                lanes: 1,
                nodes: self.nn,
                sites: scratch.vp.num_sites(),
            },
            Backend::Rb3d => SolutionView {
                voltages: &scratch.rb_voltages[..self.nn],
                pillar_currents: &[],
                reports: &scratch.reports,
                lanes: 1,
                nodes: self.nn,
                sites: 0,
            },
            Backend::Pcg => SolutionView {
                voltages: &scratch.pcg_voltages[..self.nn],
                pillar_currents: &[],
                reports: &scratch.reports,
                lanes: 1,
                nodes: self.nn,
                sites: 0,
            },
        }
    }

    /// Runs a batched request into the backend's arena in `scratch` (no
    /// view yet — keeps the borrow of `loads` separable from the
    /// returned view).
    #[allow(clippy::too_many_arguments)] // the full batched-request surface
    pub(crate) fn batch_on(
        &self,
        scratch: &mut SolveScratch,
        stack: &Stack3d,
        net: NetKind,
        backend: Backend,
        params: Option<SolveParams>,
        loads: &[f64],
        deadline: Deadline,
    ) -> Result<(), SessionError> {
        self.check_geometry(stack)?;
        stack.validate().map_err(SolverError::from)?;
        let params = params.unwrap_or(self.defaults);
        match backend {
            Backend::VoltProp => {
                run_batch(
                    &params,
                    stack,
                    net,
                    loads,
                    &mut scratch.vp,
                    &mut scratch.reports,
                    deadline,
                )?;
                Ok(())
            }
            // Both engine routes share the per-lane loop; only the lane
            // solve and its budget-exhaustion report mapping differ. A
            // lane whose budget runs out reports its true residual with
            // `converged = false` instead of discarding the batch
            // (mirroring VoltProp); any other engine error — e.g. a PCG
            // numerical breakdown, which more lanes cannot fix — still
            // fails the whole request.
            Backend::Rb3d => {
                let rb = &mut scratch.rb;
                let tiers = self.tiers;
                run_engine_batch(
                    self.nn,
                    loads,
                    &mut scratch.rb_voltages,
                    &mut scratch.reports,
                    deadline,
                    |lane_loads, v| match rb.solve(
                        lane_loads,
                        net,
                        params.sor_omega,
                        params.inner_tolerance,
                        params.max_inner_sweeps,
                        v,
                    ) {
                        Ok(rep) => Ok(rb_report(&rep, tiers)),
                        Err(SolverError::DidNotConverge {
                            iterations,
                            residual,
                            ..
                        }) => Ok(VpReport {
                            outer_iterations: iterations,
                            inner_sweeps: iterations * tiers,
                            pad_mismatch: residual,
                            final_beta: 0.0,
                            converged: false,
                            workspace_bytes: rb.memory_bytes(),
                        }),
                        Err(e) => Err(e),
                    },
                )
            }
            Backend::Pcg => {
                let engine = pcg_engine(&mut scratch.pcg, &self.pcg_unavailable)?;
                let mixed = params.precision.resolve() == crate::Precision::MixedF32;
                run_engine_batch(
                    self.nn,
                    loads,
                    &mut scratch.pcg_voltages,
                    &mut scratch.reports,
                    deadline,
                    |lane_loads, v| {
                        let attempt = if mixed {
                            engine.solve_mixed(
                                lane_loads,
                                net,
                                params.inner_tolerance,
                                params.max_inner_sweeps,
                                v,
                            )
                        } else {
                            engine.solve(
                                lane_loads,
                                net,
                                params.inner_tolerance,
                                params.max_inner_sweeps,
                                v,
                            )
                        };
                        match attempt {
                            Ok(rep) => Ok(pcg_report(&rep)),
                            Err(SolverError::DidNotConverge {
                                iterations,
                                residual,
                                ..
                            }) => Ok(VpReport {
                                outer_iterations: iterations,
                                inner_sweeps: iterations,
                                pad_mismatch: residual,
                                final_beta: 0.0,
                                converged: false,
                                workspace_bytes: engine.memory_bytes(),
                            }),
                            Err(e) => Err(e),
                        }
                    },
                )
            }
        }
    }

    /// The view over the arena the given backend's batched results live
    /// in (call only after a successful [`SessionCore::batch_on`]).
    pub(crate) fn batch_view<'s>(
        &self,
        scratch: &'s SolveScratch,
        backend: Backend,
    ) -> SolutionView<'s> {
        match backend {
            Backend::VoltProp => {
                let (voltages, pillar_currents, k) = scratch
                    .vp
                    .batch_view()
                    .expect("batched VoltProp solve just ran");
                SolutionView {
                    voltages,
                    pillar_currents,
                    reports: &scratch.reports,
                    lanes: k,
                    nodes: self.nn,
                    sites: scratch.vp.num_sites(),
                }
            }
            Backend::Rb3d => {
                let k = scratch.reports.len();
                SolutionView {
                    voltages: &scratch.rb_voltages[..k * self.nn],
                    pillar_currents: &[],
                    reports: &scratch.reports,
                    lanes: k,
                    nodes: self.nn,
                    sites: 0,
                }
            }
            Backend::Pcg => {
                let k = scratch.reports.len();
                SolutionView {
                    voltages: &scratch.pcg_voltages[..k * self.nn],
                    pillar_currents: &[],
                    reports: &scratch.reports,
                    lanes: k,
                    nodes: self.nn,
                    sites: 0,
                }
            }
        }
    }

    /// Stages a sequence of load steps in `scratch` and runs it as one
    /// batched request (see [`Session::solve_steps`]).
    pub(crate) fn transient_on<F>(
        &self,
        scratch: &mut SolveScratch,
        case: &LoadCase<'_>,
        steps: usize,
        mut fill: F,
    ) -> Result<(), SessionError>
    where
        F: FnMut(usize, &mut [f64]),
    {
        let nn = self.nn;
        // Stage the waveform in the scratch buffer without holding a
        // borrow across the solve (take + restore is allocation-free).
        let mut loads = std::mem::take(&mut scratch.transient_loads);
        loads.resize(steps * nn, 0.0);
        for s in 0..steps {
            fill(s, &mut loads[s * nn..(s + 1) * nn]);
        }
        let outcome = self.batch_on(
            scratch,
            case.stack,
            case.net,
            case.backend,
            case.params,
            &loads,
            case.deadline,
        );
        scratch.transient_loads = loads;
        outcome
    }
}

/// The prefactored solve handle: tier factorizations, the pillar
/// lattice, and every solve buffer, built once by [`Session::build`] and
/// amortized across all following requests.
///
/// A session is tied to one grid *geometry* (footprint, tiers,
/// resistances, TSV and pad sites) and one build-time configuration
/// (sweep parallelism). Within that contract everything may vary per
/// request: loads, net, tolerances, and the [`Backend`] the request is
/// routed through — voltage propagation, the naive row-based baseline,
/// and the prefactored PCG reference all serve from this one handle.
/// Warm requests perform **zero heap allocations** on the
/// [`Backend::VoltProp`] and [`Backend::Pcg`] routes (single, batched,
/// and transient — measured by `perfsuite`), and batched VoltProp lanes
/// are bitwise identical to the corresponding single solves.
///
/// Internally a session is a frozen [`Arc`]`<`[`SessionCore`]`>` (the
/// factors) plus one permanently-owned [`SolveScratch`] (the mutable
/// buffers) — the same split [`SharedSession`](crate::SharedSession)
/// uses to serve N threads from one factorization. A `Session` is the
/// single-owner view: `solve` takes `&mut self` and never contends.
///
/// # Example
///
/// ```
/// use voltprop_core::{LoadCase, LoadSet, Session, VpConfig};
/// use voltprop_grid::{NetKind, Stack3d};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stack = Stack3d::builder(12, 12, 3).uniform_load(2e-4).build()?;
/// let mut session = Session::build(&stack, VpConfig::default())?;
///
/// // Single solve on the stack's own loads.
/// let view = session.solve(&LoadCase::new(&stack))?;
/// assert!(view.converged());
/// let worst = view.worst_drop(stack.vdd());
///
/// // A two-scenario what-if sweep on the same prefactored state.
/// let mut loads = stack.loads().to_vec();
/// loads.extend(stack.loads().iter().map(|l| 1.5 * l));
/// let sweep = session.solve_batch(&LoadSet::new(&stack, &loads))?;
/// assert_eq!(sweep.lanes(), 2);
/// assert!(sweep.lane_worst_drop(1, stack.vdd())? >= worst);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Session {
    pub(crate) core: Arc<SessionCore>,
    pub(crate) scratch: SolveScratch,
    /// The transient companion state ([`Session::transient_dynamic`]):
    /// `None` until the first transient run, then cached across runs and
    /// rebuilt only on a step-size/integrator/capacitance change.
    pub(crate) dynamic: Option<Box<crate::transient::TransientState>>,
}

impl Session {
    /// Validates the stack and builds all prefactored solve state — see
    /// [`SessionCore::build`] for what is factored. The config's
    /// build-time half is fixed for the session's lifetime; its
    /// per-solve half becomes the session defaults that a
    /// [`LoadCase`]/[`LoadSet`] may override.
    ///
    /// A failed PCG prefactor does **not** fail the build — the other
    /// backends stay usable, and Pcg requests surface the recorded
    /// reason as [`SessionError::BackendUnavailable`].
    ///
    /// Batch arenas are sized on the first batched request with a given
    /// lane count (a cold call); all later requests with that lane count
    /// are allocation-free.
    ///
    /// # Errors
    ///
    /// [`BuildError`] if the grid fails validation, voltage propagation
    /// cannot serve the topology (pads away from pillars, resistive pads
    /// on a single tier), or a factorization fails.
    pub fn build(stack: &Stack3d, config: VpConfig) -> Result<Session, BuildError> {
        Ok(Session::from_core(Arc::new(SessionCore::build(
            stack, config,
        )?)))
    }

    /// A session serving an existing core: shares the factorization
    /// (nothing is rebuilt) and allocates this session's own
    /// [`SolveScratch`]. Useful to pair a single-owner `Session` with a
    /// [`SharedSession`](crate::SharedSession) on one factorization.
    pub fn from_core(core: Arc<SessionCore>) -> Session {
        let scratch = core.new_scratch();
        Session {
            core,
            scratch,
            dynamic: None,
        }
    }

    /// The frozen core this session solves against (share it to build
    /// more sessions on the same factorization).
    pub fn core(&self) -> &Arc<SessionCore> {
        &self.core
    }

    /// The session's build-time parameters.
    pub fn build_params(&self) -> BuildParams {
        self.core.build_params()
    }

    /// The session's default per-solve parameters (from the config given
    /// to [`Session::build`]).
    pub fn defaults(&self) -> SolveParams {
        self.core.defaults()
    }

    /// Estimated heap footprint of all prefactored state and arenas.
    pub fn memory_bytes(&self) -> usize {
        self.core.memory_bytes() + self.scratch.memory_bytes()
    }

    /// Whether the stack's geometry matches what this session was built
    /// for (loads are ignored).
    pub fn serves(&self, stack: &Stack3d) -> bool {
        self.core.serves(stack)
    }

    /// Serves one load pattern (the stack's own loads), routed through
    /// the case's [`Backend`]. Warm calls are allocation-free on every
    /// route.
    ///
    /// # Errors
    ///
    /// * [`SessionError::GeometryChanged`] if the case's stack differs
    ///   geometrically from the build-time stack.
    /// * [`SessionError::BackendUnavailable`] for a backend whose
    ///   build-time prefactor failed (carrying the reason).
    /// * [`SessionError::Solver`] for engine failures (convergence
    ///   budget exhausted, numerical breakdown, invalid loads).
    pub fn solve(&mut self, case: &LoadCase<'_>) -> Result<SolutionView<'_>, SessionError> {
        self.core.solve_on(&mut self.scratch, case)?;
        Ok(self.core.single_view(&self.scratch, case.backend))
    }

    /// Serves `k` load patterns as one batched request. On the
    /// [`Backend::VoltProp`] route all lanes sweep together through the
    /// shared tier factors in lockstep — each converged lane is bitwise
    /// identical to the corresponding [`Session::solve`] — and a lane
    /// that exhausts a budget reports `converged = false` in its
    /// [`SolutionView::lane_report`] instead of failing the batch. The
    /// [`Backend::Rb3d`] and [`Backend::Pcg`] routes serve the lanes as
    /// per-lane solves on their prefactored engines (factorizations
    /// still amortized; a lane that finishes is final and never touched
    /// by later lanes, and a lane that exhausts its budget likewise
    /// reports `converged = false` instead of failing the batch).
    ///
    /// # Errors
    ///
    /// See [`Session::solve`]; additionally
    /// [`SessionError::Solver`]`(`[`SolverError::Unsupported`]`)` if the
    /// load buffer is empty, not a whole number of load vectors, or
    /// contains negative/non-finite currents.
    pub fn solve_batch(&mut self, set: &LoadSet<'_>) -> Result<SolutionView<'_>, SessionError> {
        self.core.batch_on(
            &mut self.scratch,
            set.stack,
            set.net,
            set.backend,
            set.params,
            set.loads,
            set.deadline,
        )?;
        Ok(self.core.batch_view(&self.scratch, set.backend))
    }

    /// Serves a sequence of load steps: `steps` load vectors produced by
    /// `fill(step, lane_loads)` become the lanes of one batched solve —
    /// the *quasi-static* stepping pattern (grid fixed, currents moving,
    /// no capacitive dynamics: every step is an independent DC solve).
    /// The staged loads live in a session-owned buffer, so warm calls
    /// with an unchanged `steps` allocate nothing.
    ///
    /// For a true transient — capacitances integrated with companion
    /// models on a prefactored companion system, streaming waveform I/O
    /// instead of a steps-as-lanes arena — see
    /// [`Session::transient_dynamic`].
    ///
    /// `fill` is called once per step, in step order, with a zeroed (or
    /// previously used) slice of `stack.num_nodes()` entries to
    /// overwrite.
    ///
    /// # Errors
    ///
    /// See [`Session::solve_batch`].
    pub fn solve_steps<F>(
        &mut self,
        case: &LoadCase<'_>,
        steps: usize,
        fill: F,
    ) -> Result<SolutionView<'_>, SessionError>
    where
        F: FnMut(usize, &mut [f64]),
    {
        self.core
            .transient_on(&mut self.scratch, case, steps, fill)?;
        Ok(self.core.batch_view(&self.scratch, case.backend))
    }
}

/// The scratch's prefactored PCG engine, or the core's recorded
/// build-time failure as [`SessionError::BackendUnavailable`]. A free
/// function over the field (not a method) so callers can keep borrowing
/// the scratch's other arenas while they hold the engine.
fn pcg_engine<'a>(
    pcg: &'a mut Option<PcgEngine>,
    unavailable: &Option<String>,
) -> Result<&'a mut PcgEngine, SessionError> {
    match pcg {
        Some(engine) => Ok(engine),
        None => Err(SessionError::BackendUnavailable {
            backend: Backend::Pcg,
            reason: unavailable
                .clone()
                .unwrap_or_else(|| "PCG engine missing".into()),
        }),
    }
}

/// The shared per-lane batch loop of the engine-backed routes
/// ([`Backend::Rb3d`], [`Backend::Pcg`]): validates the lane-major load
/// buffer, grows the lane-major voltage arena if this lane count is new
/// (warm calls with a seen count allocate nothing), and runs
/// `solve_lane` on each lane's slices in order — a finished lane is
/// final and never touched by later lanes. `solve_lane` returns the
/// lane's [`VpReport`] (budget exhaustion mapped to `converged = false`
/// by the caller) or a hard error that fails the whole request. The
/// request [`Deadline`] is checked before every lane — this per-lane
/// loop is the engine routes' cooperative cancellation point.
fn run_engine_batch(
    nn: usize,
    loads: &[f64],
    voltages: &mut Vec<f64>,
    reports: &mut Vec<VpReport>,
    deadline: Deadline,
    mut solve_lane: impl FnMut(&[f64], &mut [f64]) -> Result<VpReport, SolverError>,
) -> Result<(), SessionError> {
    let k = validate_loads(nn, loads)?;
    if voltages.len() < k * nn {
        voltages.resize(k * nn, 0.0);
    }
    reports.clear();
    for j in 0..k {
        deadline.check(j)?;
        let lane_loads = &loads[j * nn..(j + 1) * nn];
        let v = &mut voltages[j * nn..(j + 1) * nn];
        reports.push(solve_lane(lane_loads, v)?);
    }
    Ok(())
}

/// Maps an Rb3d [`voltprop_solvers::SolveReport`] into the session's
/// uniform per-lane [`VpReport`]: full-stack iterations count as outer
/// iterations, each of which sweeps every tier once; there is no VDA, so
/// `final_beta` is 0 and `pad_mismatch` carries the largest per-sweep
/// voltage update the iteration stopped at.
fn rb_report(rep: &voltprop_solvers::SolveReport, tiers: usize) -> VpReport {
    VpReport {
        outer_iterations: rep.iterations,
        inner_sweeps: rep.iterations * tiers,
        pad_mismatch: rep.residual,
        final_beta: 0.0,
        converged: rep.converged,
        workspace_bytes: rep.workspace_bytes,
    }
}

/// Maps a Pcg [`voltprop_solvers::SolveReport`] into the session's
/// uniform per-lane [`VpReport`]: CG iterations count as both outer
/// iterations and inner sweeps (there is no inner/outer split), there is
/// no VDA (`final_beta` 0), and `pad_mismatch` carries the relative
/// residual the iteration stopped at.
fn pcg_report(rep: &voltprop_solvers::SolveReport) -> VpReport {
    VpReport {
        outer_iterations: rep.iterations,
        inner_sweeps: rep.iterations,
        pad_mismatch: rep.residual,
        final_beta: 0.0,
        converged: rep.converged,
        workspace_bytes: rep.workspace_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltprop_grid::LoadProfile;

    fn stack() -> Stack3d {
        Stack3d::builder(10, 10, 3)
            .load_profile(
                LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 1e-3,
                },
                11,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn build_solve_roundtrip() {
        let s = stack();
        let mut session = Session::build(&s, VpConfig::default()).unwrap();
        let view = session.solve(&LoadCase::new(&s)).unwrap();
        assert!(view.converged());
        assert_eq!(view.lanes(), 1);
        assert_eq!(view.voltages().len(), s.num_nodes());
        assert_eq!(view.lane_voltages(0).unwrap(), view.voltages());
        assert!(matches!(
            view.lane_voltages(1),
            Err(SessionError::LaneOutOfRange { lane: 1, lanes: 1 })
        ));
        assert!(view.worst_drop(s.vdd()) > 0.0);
    }

    #[test]
    fn geometry_change_is_an_error_not_a_rebuild() {
        let s = stack();
        let mut session = Session::build(&s, VpConfig::default()).unwrap();
        let other = Stack3d::builder(8, 8, 2)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        assert!(!session.serves(&other));
        let err = session.solve(&LoadCase::new(&other)).unwrap_err();
        assert!(matches!(err, SessionError::GeometryChanged { .. }));
        // Loads-only changes are served (no rebuild, no error).
        let mut relo = s.clone();
        relo.set_loads(s.loads().iter().map(|l| 2.0 * l).collect())
            .unwrap();
        assert!(session.serves(&relo));
        assert!(session.solve(&LoadCase::new(&relo)).is_ok());
    }

    #[test]
    fn pcg_backend_solves_through_the_session() {
        let s = stack();
        let mut session = Session::build(&s, VpConfig::default()).unwrap();
        let pcg_params = crate::SolveParams::new()
            .inner_tolerance(1e-8)
            .max_inner_sweeps(50_000);
        let vp = session
            .solve(&LoadCase::new(&s))
            .unwrap()
            .voltages()
            .to_vec();
        let view = session
            .solve(&LoadCase::new(&s).backend(Backend::Pcg).params(pcg_params))
            .unwrap();
        assert!(view.converged());
        assert!(view.pillar_currents().is_empty(), "pcg computes none");
        let err = vp
            .iter()
            .zip(view.voltages())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 5e-4, "pcg vs voltprop drift {err} V");
    }

    #[test]
    fn errors_display_and_source() {
        let e = SessionError::GeometryChanged {
            what: "10x10x3 vs 8x8x2".into(),
        };
        assert!(e.to_string().contains("geometry"));
        assert!(e.source().is_none());
        let e = SessionError::BackendUnavailable {
            backend: Backend::Pcg,
            reason: "prefactor failed: not positive definite".into(),
        };
        assert!(e.to_string().contains("unavailable"));
        assert!(e.to_string().contains("prefactor failed"));
        assert!(e.source().is_none());
        let e = SessionError::from(SolverError::Unsupported { what: "x".into() });
        assert!(e.source().is_some());
        let b = BuildError::from(SolverError::Unsupported { what: "y".into() });
        assert!(b.to_string().contains("cannot build"));
    }
}
