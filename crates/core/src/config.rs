/// Tuning parameters of the voltage propagation solver.
///
/// The defaults follow the paper: convergence when the worst pad-voltage
/// mismatch falls below `epsilon` (well inside the 0.5 mV accuracy budget
/// of [12]), full-strength VDA feedback to start, and row-based inner
/// solves an order of magnitude tighter than the outer target.
///
/// # Example
///
/// ```
/// use voltprop_core::VpConfig;
///
/// let config = VpConfig::new()
///     .epsilon(1e-5)
///     .sor_omega(1.2)
///     .max_outer_iterations(50);
/// assert_eq!(config.epsilon, 1e-5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VpConfig {
    /// Outer convergence threshold: worst pad-voltage mismatch (V).
    pub epsilon: f64,
    /// Initial VDA feedback gain β (adapted at runtime; see
    /// [`VdaController`](crate::VdaController)).
    pub damping: f64,
    /// Outer iteration budget.
    pub max_outer_iterations: usize,
    /// SOR factor for the single-tier (planar) row-based solve; the
    /// multi-tier tier solves use prefactored plain block GS, where the
    /// densely pinned rows converge in a handful of sweeps regardless.
    pub sor_omega: f64,
    /// Inner convergence threshold: worst per-sweep voltage update (V).
    /// Defaults to `epsilon / 10`.
    pub inner_tolerance: f64,
    /// Sweep budget per tier solve.
    pub max_inner_sweeps: usize,
    /// Worker threads for the inner row sweeps. `1` (the default) keeps
    /// the paper's sequential alternating-direction schedule; larger
    /// values switch the multi-tier tier solves to the red-black row
    /// coloring, whose same-color rows are solved concurrently (see
    /// [`voltprop_solvers::SweepSchedule`]) on the persistent
    /// process-wide [`voltprop_solvers::WorkerPool`] — threads spawn on
    /// the first parallel solve and park between solves, so warm
    /// parallel solves stay allocation-free. Red-black results are
    /// deterministic in the thread count.
    pub parallelism: usize,
}

impl Default for VpConfig {
    fn default() -> Self {
        VpConfig {
            epsilon: 1e-4,
            damping: 1.0,
            max_outer_iterations: 200,
            sor_omega: 1.0,
            inner_tolerance: 1e-5,
            max_inner_sweeps: 10_000,
            parallelism: 1,
        }
    }
}

impl VpConfig {
    /// The default configuration (equivalent to `VpConfig::default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the outer pad-mismatch threshold (V) and scales the inner
    /// tolerance to one tenth of it.
    pub fn epsilon(mut self, eps: f64) -> Self {
        self.epsilon = eps;
        self.inner_tolerance = eps / 10.0;
        self
    }

    /// Sets the initial VDA gain.
    pub fn damping(mut self, beta: f64) -> Self {
        self.damping = beta;
        self
    }

    /// Sets the outer iteration budget.
    pub fn max_outer_iterations(mut self, n: usize) -> Self {
        self.max_outer_iterations = n;
        self
    }

    /// Sets the SOR factor of the inner row-based sweeps.
    pub fn sor_omega(mut self, omega: f64) -> Self {
        self.sor_omega = omega;
        self
    }

    /// Sets the inner sweep tolerance explicitly (V).
    pub fn inner_tolerance(mut self, tol: f64) -> Self {
        self.inner_tolerance = tol;
        self
    }

    /// Sets the per-tier sweep budget.
    pub fn max_inner_sweeps(mut self, n: usize) -> Self {
        self.max_inner_sweeps = n;
        self
    }

    /// Sets the inner-sweep worker thread count (`0` and `1` both mean
    /// the sequential schedule).
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = VpConfig::default();
        assert!(c.epsilon > 0.0 && c.epsilon < 5e-4, "inside 0.5 mV budget");
        assert!(c.inner_tolerance < c.epsilon);
        assert_eq!(c.damping, 1.0);
    }

    #[test]
    fn epsilon_scales_inner_tolerance() {
        let c = VpConfig::new().epsilon(1e-6);
        assert_eq!(c.inner_tolerance, 1e-7);
    }

    #[test]
    fn builder_chains() {
        let c = VpConfig::new()
            .damping(0.8)
            .max_outer_iterations(7)
            .sor_omega(1.3)
            .max_inner_sweeps(42)
            .inner_tolerance(3e-9)
            .parallelism(4);
        assert_eq!(c.damping, 0.8);
        assert_eq!(c.max_outer_iterations, 7);
        assert_eq!(c.sor_omega, 1.3);
        assert_eq!(c.max_inner_sweeps, 42);
        assert_eq!(c.inner_tolerance, 3e-9);
        assert_eq!(c.parallelism, 4);
    }

    #[test]
    fn parallelism_clamps_to_one() {
        assert_eq!(VpConfig::new().parallelism(0).parallelism, 1);
        assert_eq!(VpConfig::default().parallelism, 1);
    }
}
