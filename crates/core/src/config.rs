/// Arithmetic precision of the inner solve kernels.
///
/// `F64` (the default) runs every sweep in double precision — the
/// behaviour of all previous releases. `MixedF32` runs the
/// bandwidth-bound inner kernels in single precision wrapped in
/// iterative refinement: every refinement round evaluates the *exact
/// f64 residual* of the current iterate, solves the correction system
/// in f32 through prefactored f32 shadow factors (built once at
/// [`Session::build`](crate::Session::build), so warm solves stay
/// allocation-free), and applies the correction in f64.
///
/// # Accuracy contract
///
/// A converged `MixedF32` solve meets the **same tolerances** as `F64`:
/// the voltage-propagation route converges on the same pad-mismatch
/// `epsilon` and per-round correction bound, and the PCG route on the
/// same relative-residual target (only its preconditioner application
/// is in f32; the CG recurrence stays f64). Refinement typically costs
/// extra inner sweeps — each round re-targets the true residual, so a
/// tight `inner_tolerance` triggers more rounds — traded against ~2×
/// cheaper memory traffic per sweep. If the sweep budget runs out
/// mid-refinement the result honestly reports `converged = false`
/// rather than returning a silently loose answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full double-precision kernels (the default).
    #[default]
    F64,
    /// f32 inner sweeps + f64 residual accumulation with iterative
    /// refinement.
    MixedF32,
}

impl Precision {
    /// The precision forced by the `VOLTPROP_FORCE_PRECISION`
    /// environment variable (`"f64"` or `"mixedf32"`, case-insensitive),
    /// if any. Read once per process; unknown values are ignored. CI
    /// uses this to run the full test suite through the mixed path
    /// without touching every call site.
    pub fn forced() -> Option<Precision> {
        static FORCED: std::sync::OnceLock<Option<Precision>> = std::sync::OnceLock::new();
        *FORCED.get_or_init(|| {
            let raw = std::env::var("VOLTPROP_FORCE_PRECISION").ok()?;
            match raw.to_ascii_lowercase().as_str() {
                "f64" => Some(Precision::F64),
                "mixedf32" | "mixed" => Some(Precision::MixedF32),
                _ => None,
            }
        })
    }

    /// `self` unless `VOLTPROP_FORCE_PRECISION` overrides it.
    pub fn resolve(self) -> Precision {
        Precision::forced().unwrap_or(self)
    }
}

/// Tuning parameters of the voltage propagation solver.
///
/// The defaults follow the paper: convergence when the worst pad-voltage
/// mismatch falls below `epsilon` (well inside the 0.5 mV accuracy budget
/// of \[12\]), full-strength VDA feedback to start, and row-based inner
/// solves an order of magnitude tighter than the outer target.
///
/// A `VpConfig` is the union of two parameter families with different
/// lifetimes:
///
/// * **build-time** ([`BuildParams`], today just `parallelism`) — fixed
///   when the prefactored state is built ([`Session::build`](crate::Session));
/// * **per-solve** ([`SolveParams`] — tolerances, budgets, mixing gain,
///   SOR factor) — free to vary between solves on one session via
///   [`LoadCase::params`](crate::LoadCase::params).
///
/// [`VpConfig::build_params`] / [`VpConfig::solve_params`] project out
/// either family; [`Session::build`](crate::Session::build) consumes the
/// whole config and uses the per-solve half as the session defaults.
///
/// # Example
///
/// ```
/// use voltprop_core::VpConfig;
///
/// let config = VpConfig::new()
///     .epsilon(1e-5)
///     .sor_omega(1.2)
///     .max_outer_iterations(50);
/// assert_eq!(config.epsilon, 1e-5);
/// assert_eq!(config.solve_params().epsilon, 1e-5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VpConfig {
    /// Outer convergence threshold: worst pad-voltage mismatch (V).
    pub epsilon: f64,
    /// Initial VDA feedback gain β (adapted at runtime; see
    /// [`VdaController`](crate::VdaController)).
    pub damping: f64,
    /// Outer iteration budget.
    pub max_outer_iterations: usize,
    /// SOR factor for the single-tier (planar) row-based solve; the
    /// multi-tier tier solves use prefactored plain block GS, where the
    /// densely pinned rows converge in a handful of sweeps regardless.
    pub sor_omega: f64,
    /// Inner convergence threshold: worst per-sweep voltage update (V).
    /// Defaults to `epsilon / 10`.
    pub inner_tolerance: f64,
    /// Sweep budget per tier solve.
    pub max_inner_sweeps: usize,
    /// Worker threads for the inner row sweeps. `1` (the default) keeps
    /// the paper's sequential alternating-direction schedule; larger
    /// values switch the multi-tier tier solves to the red-black row
    /// coloring, whose same-color rows are solved concurrently (see
    /// [`voltprop_solvers::SweepSchedule`]) on the persistent
    /// process-wide [`voltprop_solvers::WorkerPool`] — threads spawn on
    /// the first parallel solve and park between solves, so warm
    /// parallel solves stay allocation-free. Red-black results are
    /// deterministic in the thread count.
    pub parallelism: usize,
    /// Row-band shards per tier for the inner sweeps (see
    /// [`BuildParams::shards`]). `0` and `1` both mean unsharded.
    pub shards: usize,
    /// Arithmetic precision of the inner kernels (see [`Precision`]).
    pub precision: Precision,
}

impl Default for VpConfig {
    fn default() -> Self {
        VpConfig {
            epsilon: 1e-4,
            damping: 1.0,
            max_outer_iterations: 200,
            sor_omega: 1.0,
            inner_tolerance: 1e-5,
            max_inner_sweeps: 10_000,
            parallelism: 1,
            shards: 1,
            precision: Precision::F64,
        }
    }
}

impl VpConfig {
    /// The default configuration (equivalent to `VpConfig::default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the outer pad-mismatch threshold (V) and scales the inner
    /// tolerance to one tenth of it.
    pub fn epsilon(mut self, eps: f64) -> Self {
        self.epsilon = eps;
        self.inner_tolerance = eps / 10.0;
        self
    }

    /// Sets the initial VDA gain.
    pub fn damping(mut self, beta: f64) -> Self {
        self.damping = beta;
        self
    }

    /// Sets the outer iteration budget.
    pub fn max_outer_iterations(mut self, n: usize) -> Self {
        self.max_outer_iterations = n;
        self
    }

    /// Sets the SOR factor of the inner row-based sweeps.
    pub fn sor_omega(mut self, omega: f64) -> Self {
        self.sor_omega = omega;
        self
    }

    /// Sets the inner sweep tolerance explicitly (V).
    pub fn inner_tolerance(mut self, tol: f64) -> Self {
        self.inner_tolerance = tol;
        self
    }

    /// Sets the per-tier sweep budget.
    pub fn max_inner_sweeps(mut self, n: usize) -> Self {
        self.max_inner_sweeps = n;
        self
    }

    /// Sets the inner-sweep worker thread count (`0` and `1` both mean
    /// the sequential schedule).
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    /// Sets the per-tier row-band shard count (`0` and `1` both mean
    /// unsharded; see [`BuildParams::shards`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the inner-kernel arithmetic precision.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The build-time half of this config (what a
    /// [`Session`](crate::Session) fixes at construction).
    pub fn build_params(&self) -> BuildParams {
        BuildParams {
            parallelism: self.parallelism.max(1),
            shards: self.shards.max(1),
        }
    }

    /// The per-solve half of this config (what a
    /// [`LoadCase`](crate::LoadCase) may override per request).
    pub fn solve_params(&self) -> SolveParams {
        SolveParams {
            epsilon: self.epsilon,
            damping: self.damping,
            max_outer_iterations: self.max_outer_iterations,
            sor_omega: self.sor_omega,
            inner_tolerance: self.inner_tolerance,
            max_inner_sweeps: self.max_inner_sweeps,
            precision: self.precision,
        }
    }

    /// Reassembles a config from its two halves.
    pub fn from_parts(build: BuildParams, solve: SolveParams) -> Self {
        VpConfig {
            epsilon: solve.epsilon,
            damping: solve.damping,
            max_outer_iterations: solve.max_outer_iterations,
            sor_omega: solve.sor_omega,
            inner_tolerance: solve.inner_tolerance,
            max_inner_sweeps: solve.max_inner_sweeps,
            parallelism: build.parallelism.max(1),
            shards: build.shards.max(1),
            precision: solve.precision,
        }
    }
}

/// Build-time solver parameters: everything that shapes the prefactored
/// state a [`Session`](crate::Session) allocates up front and therefore
/// cannot change between solves on one session.
///
/// Today this is the worker-thread count and the row-band shard count; a
/// geometry-compatible stack can be served with any per-solve
/// [`SolveParams`], but changing either build parameter requires building
/// a new session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildParams {
    /// Worker threads for the inner row sweeps (see
    /// [`VpConfig::parallelism`]).
    pub parallelism: usize,
    /// Row-band shards per tier: each tier footprint is split along the
    /// y-axis into this many contiguous bands with 1-row halos, and
    /// every inner sweep runs per band against a private halo-extended
    /// voltage image, exchanging the halos between the red and black
    /// half-sweeps. The buffers are built once at
    /// [`Session::build`](crate::Session::build), so single, batched,
    /// and transient solves all run sharded with no warm allocator
    /// calls. `0` and `1` both mean unsharded; the count is clamped to
    /// the tier height.
    ///
    /// # Determinism contract
    ///
    /// Sharding restructures dispatch and memory layout, never
    /// arithmetic. `shards >= 2` forces the red-black sweep schedule
    /// (keeping `parallelism` as the thread count), and on that schedule
    /// the row-based routes — single solves, masked/compacted batches,
    /// transient steps, both precisions — produce **bitwise identical**
    /// voltages, iteration counts, and residuals at every shard count
    /// and thread count: per-sweep convergence deltas are reduced across
    /// shards in shard order with exact `f64::max` folds, so lane
    /// freezing cannot depend on the partition. The PCG backend has no
    /// row structure to shard; it accepts the knob, runs unsharded, and
    /// keeps its usual tolerance contract.
    pub shards: usize,
}

impl Default for BuildParams {
    fn default() -> Self {
        BuildParams {
            parallelism: 1,
            shards: 1,
        }
    }
}

impl BuildParams {
    /// The default build parameters (sequential sweeps, unsharded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the inner-sweep worker thread count (`0` and `1` both mean
    /// the sequential schedule).
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    /// Sets the per-tier row-band shard count (`0` and `1` both mean
    /// unsharded; see [`BuildParams::shards`] for the determinism
    /// contract).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

/// Per-solve solver parameters: the knobs that may differ between
/// requests served by one prefactored [`Session`](crate::Session) —
/// tolerances, iteration budgets, the VDA gain, and the SOR factor.
///
/// Defaults mirror [`VpConfig::default`]. Attach explicit parameters to a
/// request with [`LoadCase::params`](crate::LoadCase::params) (or
/// [`LoadSet::params`](crate::LoadSet::params)); requests without them
/// use the session's defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveParams {
    /// Outer convergence threshold: worst pad-voltage mismatch (V).
    pub epsilon: f64,
    /// Initial VDA feedback gain β.
    pub damping: f64,
    /// Outer iteration budget.
    pub max_outer_iterations: usize,
    /// SOR factor for single-tier (planar) row sweeps; for the
    /// [`Backend::Rb3d`](crate::Backend::Rb3d) route this is the sweep
    /// over-relaxation factor.
    pub sor_omega: f64,
    /// Inner convergence threshold: worst per-sweep voltage update (V).
    /// For the [`Backend::Rb3d`](crate::Backend::Rb3d) route this is the
    /// full-stack convergence threshold; for
    /// [`Backend::Pcg`](crate::Backend::Pcg) it is the relative residual
    /// target `‖b − Ax‖₂ / ‖b‖₂`.
    pub inner_tolerance: f64,
    /// Sweep budget per tier solve; for the
    /// [`Backend::Rb3d`](crate::Backend::Rb3d) route the full-stack
    /// iteration budget, for [`Backend::Pcg`](crate::Backend::Pcg) the
    /// CG iteration budget.
    pub max_inner_sweeps: usize,
    /// Arithmetic precision of the inner kernels. Defaults to
    /// [`Precision::F64`]; [`Precision::MixedF32`] runs the sweeps (VP
    /// routes) or the preconditioner application (PCG route) in f32 with
    /// f64 residual accumulation and iterative refinement — same
    /// tolerance contract, lower memory traffic. See [`Precision`] for
    /// the accuracy contract and when refinement triggers extra
    /// iterations.
    pub precision: Precision,
}

impl Default for SolveParams {
    fn default() -> Self {
        VpConfig::default().solve_params()
    }
}

impl SolveParams {
    /// The default per-solve parameters (same numbers as
    /// [`VpConfig::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the outer pad-mismatch threshold (V) and scales the inner
    /// tolerance to one tenth of it.
    pub fn epsilon(mut self, eps: f64) -> Self {
        self.epsilon = eps;
        self.inner_tolerance = eps / 10.0;
        self
    }

    /// Sets the initial VDA gain.
    pub fn damping(mut self, beta: f64) -> Self {
        self.damping = beta;
        self
    }

    /// Sets the outer iteration budget.
    pub fn max_outer_iterations(mut self, n: usize) -> Self {
        self.max_outer_iterations = n;
        self
    }

    /// Sets the SOR factor of the inner row-based sweeps.
    pub fn sor_omega(mut self, omega: f64) -> Self {
        self.sor_omega = omega;
        self
    }

    /// Sets the inner sweep tolerance explicitly (V).
    pub fn inner_tolerance(mut self, tol: f64) -> Self {
        self.inner_tolerance = tol;
        self
    }

    /// Sets the per-tier sweep budget.
    pub fn max_inner_sweeps(mut self, n: usize) -> Self {
        self.max_inner_sweeps = n;
        self
    }

    /// Sets the inner-kernel arithmetic precision.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = VpConfig::default();
        assert!(c.epsilon > 0.0 && c.epsilon < 5e-4, "inside 0.5 mV budget");
        assert!(c.inner_tolerance < c.epsilon);
        assert_eq!(c.damping, 1.0);
    }

    #[test]
    fn epsilon_scales_inner_tolerance() {
        let c = VpConfig::new().epsilon(1e-6);
        assert_eq!(c.inner_tolerance, 1e-7);
    }

    #[test]
    fn builder_chains() {
        let c = VpConfig::new()
            .damping(0.8)
            .max_outer_iterations(7)
            .sor_omega(1.3)
            .max_inner_sweeps(42)
            .inner_tolerance(3e-9)
            .parallelism(4);
        assert_eq!(c.damping, 0.8);
        assert_eq!(c.max_outer_iterations, 7);
        assert_eq!(c.sor_omega, 1.3);
        assert_eq!(c.max_inner_sweeps, 42);
        assert_eq!(c.inner_tolerance, 3e-9);
        assert_eq!(c.parallelism, 4);
    }

    #[test]
    fn parallelism_clamps_to_one() {
        assert_eq!(VpConfig::new().parallelism(0).parallelism, 1);
        assert_eq!(VpConfig::default().parallelism, 1);
        assert_eq!(BuildParams::new().parallelism(0).parallelism, 1);
    }

    #[test]
    fn shards_default_to_one_and_clamp() {
        assert_eq!(VpConfig::default().shards, 1);
        assert_eq!(BuildParams::default().shards, 1);
        assert_eq!(VpConfig::new().shards(0).shards, 1);
        assert_eq!(BuildParams::new().shards(0).shards, 1);
        assert_eq!(VpConfig::new().shards(4).build_params().shards, 4);
        assert_eq!(BuildParams::new().shards(3).shards, 3);
    }

    #[test]
    fn split_roundtrips() {
        let c = VpConfig::new()
            .epsilon(2e-5)
            .damping(0.7)
            .max_outer_iterations(33)
            .sor_omega(1.4)
            .max_inner_sweeps(99)
            .parallelism(3)
            .shards(2)
            .precision(Precision::MixedF32);
        let rebuilt = VpConfig::from_parts(c.build_params(), c.solve_params());
        assert_eq!(rebuilt, c);
    }

    #[test]
    fn precision_defaults_to_f64_and_chains() {
        assert_eq!(VpConfig::default().precision, Precision::F64);
        assert_eq!(SolveParams::default().precision, Precision::F64);
        let p = SolveParams::new().precision(Precision::MixedF32);
        assert_eq!(p.precision, Precision::MixedF32);
        assert_eq!(
            VpConfig::new().precision(Precision::MixedF32).precision,
            Precision::MixedF32
        );
        // With no env override, resolve() is the identity.
        if Precision::forced().is_none() {
            assert_eq!(Precision::MixedF32.resolve(), Precision::MixedF32);
            assert_eq!(Precision::F64.resolve(), Precision::F64);
        }
    }

    #[test]
    fn solve_params_defaults_mirror_config() {
        let p = SolveParams::default();
        let c = VpConfig::default();
        assert_eq!(p.epsilon, c.epsilon);
        assert_eq!(p.inner_tolerance, c.inner_tolerance);
        assert_eq!(p.max_outer_iterations, c.max_outer_iterations);
        assert_eq!(SolveParams::new().epsilon(1e-6).inner_tolerance, 1e-7);
    }
}
