use std::fmt;
use voltprop_solvers::SolveReport;

/// Detailed convergence record of one voltage propagation solve.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VpReport {
    /// Outer (VDA) iterations.
    pub outer_iterations: usize,
    /// Total row-based sweeps across all tiers and outer iterations.
    pub inner_sweeps: usize,
    /// Final worst pad-voltage mismatch (V).
    pub pad_mismatch: f64,
    /// Final VDA gain β.
    pub final_beta: f64,
    /// Whether the outer loop met its ε within budget.
    pub converged: bool,
    /// Estimated peak solver workspace in bytes (the full voltage vector
    /// plus per-tier scratch; no global matrix is ever assembled).
    pub workspace_bytes: usize,
}

impl VpReport {
    /// Flattens into the cross-solver [`SolveReport`] (outer iterations,
    /// pad mismatch as the residual).
    pub fn to_solve_report(self) -> SolveReport {
        SolveReport {
            iterations: self.outer_iterations,
            residual: self.pad_mismatch,
            converged: self.converged,
            workspace_bytes: self.workspace_bytes,
        }
    }
}

impl fmt::Display for VpReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} outer iterations ({} row sweeps), pad mismatch {:.3e} V, \
             beta {:.3}, {}, {:.2} MiB workspace",
            self.outer_iterations,
            self.inner_sweeps,
            self.pad_mismatch,
            self.final_beta,
            if self.converged {
                "converged"
            } else {
                "NOT converged"
            },
            self.workspace_bytes as f64 / (1024.0 * 1024.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattening_preserves_fields() {
        let r = VpReport {
            outer_iterations: 6,
            inner_sweeps: 80,
            pad_mismatch: 2e-5,
            final_beta: 1.0,
            converged: true,
            workspace_bytes: 4096,
        };
        let s = r.to_solve_report();
        assert_eq!(s.iterations, 6);
        assert_eq!(s.residual, 2e-5);
        assert!(s.converged);
        assert_eq!(s.workspace_bytes, 4096);
    }

    #[test]
    fn display_is_informative() {
        let text = VpReport::default().to_string();
        assert!(text.contains("outer iterations"));
        assert!(text.contains("NOT converged"));
    }
}
