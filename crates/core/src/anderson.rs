//! Anderson acceleration for the VDA outer loop.
//!
//! The outer iteration is a fixed point `v0 ← v0 + F(v0)`, where `F` is
//! the lattice-distributed correction. Plain damped mixing contracts the
//! smooth error modes but crawls on the modes whose response the coarse
//! lattice mis-scales (the TSV series resistance amplifies sharp modes).
//! Anderson mixing with a short history solves a tiny least-squares
//! problem to combine the last few residuals, effectively learning the
//! Jacobian's action on the visited subspace — the standard cure for
//! exactly this kind of fixed-point stall.
//!
//! All buffers — the difference history, the previous iterate, and the
//! tiny normal-equation system — are allocated at construction and
//! recycled, so [`Anderson::step`] is heap-allocation-free: it sits
//! inside the solver's zero-allocation outer loop.

use std::collections::VecDeque;

/// Safeguarded Anderson(m) mixer over vectors of a fixed length.
#[derive(Debug, Clone)]
pub(crate) struct Anderson {
    depth: usize,
    n: usize,
    dx: VecDeque<Vec<f64>>,
    df: VecDeque<Vec<f64>>,
    /// Retired history buffers, recycled into the next push.
    pool: Vec<Vec<f64>>,
    prev_x: Vec<f64>,
    prev_f: Vec<f64>,
    has_prev: bool,
    /// Row-major `depth × depth` normal-equation workspace.
    gram: Vec<f64>,
    rhs: Vec<f64>,
    gamma: Vec<f64>,
}

impl Anderson {
    /// A mixer keeping `depth` difference pairs of `n`-vectors.
    pub(crate) fn new(depth: usize, n: usize) -> Self {
        Anderson {
            depth,
            n,
            dx: VecDeque::with_capacity(depth + 1),
            df: VecDeque::with_capacity(depth + 1),
            pool: (0..2 * (depth + 1)).map(|_| vec![0.0; n]).collect(),
            prev_x: vec![0.0; n],
            prev_f: vec![0.0; n],
            has_prev: false,
            gram: vec![0.0; depth * depth],
            rhs: vec![0.0; depth],
            gamma: vec![0.0; depth],
        }
    }

    /// Forgets the history (used by the caller's safeguard when a step
    /// increases the residual badly).
    pub(crate) fn reset(&mut self) {
        self.pool.extend(self.dx.drain(..));
        self.pool.extend(self.df.drain(..));
        self.has_prev = false;
    }

    fn history_buf(&mut self) -> Vec<f64> {
        self.pool.pop().unwrap_or_else(|| vec![0.0; self.n])
    }

    /// Estimated heap footprint in bytes (history, pool, and the tiny
    /// normal-equation workspace).
    pub(crate) fn memory_bytes(&self) -> usize {
        let vectors = self.dx.len() + self.df.len() + self.pool.len() + 2;
        vectors * self.n * 8 + (self.gram.len() + self.rhs.len() + self.gamma.len()) * 8
    }

    /// One mixing step: given the current iterate `x` and residual `f`
    /// (the proposed correction), overwrites `x` with the accelerated next
    /// iterate. `first_scale` damps the plain step taken when no history
    /// exists yet (right after a reset) — the caller passes its learned
    /// stability scale so a reset cannot re-trigger the divergence that
    /// caused it.
    pub(crate) fn step(&mut self, x: &mut [f64], f: &[f64], first_scale: f64) {
        let n = self.n;
        assert_eq!(x.len(), n, "iterate length");
        assert_eq!(f.len(), n, "residual length");
        if self.has_prev {
            let mut dx = self.history_buf();
            for ((d, a), b) in dx.iter_mut().zip(x.iter()).zip(&self.prev_x) {
                *d = a - b;
            }
            self.dx.push_back(dx);
            let mut df = self.history_buf();
            for ((d, a), b) in df.iter_mut().zip(f.iter()).zip(&self.prev_f) {
                *d = a - b;
            }
            self.df.push_back(df);
            if self.dx.len() > self.depth {
                let retired = self.dx.pop_front().expect("non-empty history");
                self.pool.push(retired);
                let retired = self.df.pop_front().expect("non-empty history");
                self.pool.push(retired);
            }
        }
        self.prev_x.copy_from_slice(x);
        self.prev_f.copy_from_slice(f);
        self.has_prev = true;

        let m = self.df.len();
        if m == 0 {
            for i in 0..n {
                x[i] += first_scale * f[i];
            }
            return;
        }
        // Solve min_γ ‖f − ΔF γ‖₂ via regularized normal equations (m ≤
        // depth is tiny).
        for a in 0..m {
            for b in a..m {
                let g = dot(&self.df[a], &self.df[b]);
                self.gram[a * m + b] = g;
                self.gram[b * m + a] = g;
            }
            self.rhs[a] = dot(&self.df[a], f);
        }
        let scale = (0..m).map(|i| self.gram[i * m + i]).fold(0.0f64, f64::max);
        for i in 0..m {
            self.gram[i * m + i] += 1e-12 * scale.max(1e-300);
        }
        let solved = solve_dense(
            &mut self.gram[..m * m],
            &mut self.rhs[..m],
            &mut self.gamma[..m],
            m,
        );
        // Wild extrapolation coefficients mean the history is nearly
        // collinear; trusting them explodes the iterate. Fall back to
        // the plain step (and let fresh history replace the stale
        // directions).
        if !solved || self.gamma[..m].iter().any(|v| v.abs() > 10.0) {
            for i in 0..n {
                x[i] += first_scale * f[i];
            }
            return;
        }
        // x ← x + f − Σ γ_a (Δx_a + Δf_a).
        for i in 0..n {
            let mut xi = x[i] + f[i];
            for (a, g) in self.gamma[..m].iter().enumerate() {
                xi -= g * (self.dx[a][i] + self.df[a][i]);
            }
            x[i] = xi;
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// In-place Gaussian elimination with partial pivoting on a tiny row-major
/// `m × m` system, writing the solution into `x`; returns `false` if a
/// pivot collapses.
fn solve_dense(a: &mut [f64], b: &mut [f64], x: &mut [f64], m: usize) -> bool {
    debug_assert_eq!(a.len(), m * m);
    for col in 0..m {
        let pivot =
            match (col..m).max_by(|&i, &j| a[i * m + col].abs().total_cmp(&a[j * m + col].abs())) {
                Some(p) => p,
                None => return false,
            };
        if a[pivot * m + col].abs() < 1e-300 {
            return false;
        }
        if pivot != col {
            for k in 0..m {
                a.swap(col * m + k, pivot * m + k);
            }
            b.swap(col, pivot);
        }
        for row in col + 1..m {
            let factor = a[row * m + col] / a[col * m + col];
            for k in col..m {
                a[row * m + k] -= factor * a[col * m + k];
            }
            b[row] -= factor * b[col];
        }
    }
    for row in (0..m).rev() {
        let mut acc = b[row];
        for k in row + 1..m {
            acc -= a[row * m + k] * x[k];
        }
        x[row] = acc / a[row * m + row];
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fixed point of x ← x + (b − A x) with A ≠ I: plain mixing crawls
    /// (or diverges) when A's eigenvalues stray from 1; Anderson(4) must
    /// nail the 2×2 affine problem in a few steps.
    #[test]
    fn solves_affine_fixed_point_fast() {
        let a = [[3.0, 0.4], [0.4, 0.5]]; // eigenvalues ~0.44 and ~3.06
        let b = [1.0, 2.0];
        let residual = |x: &[f64]| {
            [
                b[0] - (a[0][0] * x[0] + a[0][1] * x[1]),
                b[1] - (a[1][0] * x[0] + a[1][1] * x[1]),
            ]
        };
        let mut x = vec![0.0, 0.0];
        let mut anderson = Anderson::new(4, 2);
        for _ in 0..12 {
            let f = residual(&x);
            anderson.step(&mut x, &f, 1.0);
        }
        let f = residual(&x);
        assert!(
            f[0].abs() < 1e-8 && f[1].abs() < 1e-8,
            "residual {f:?} after Anderson iterations"
        );
    }

    #[test]
    fn first_step_is_plain_mixing() {
        let mut x = vec![1.0, 2.0];
        let mut anderson = Anderson::new(3, 2);
        anderson.step(&mut x, &[0.5, -0.5], 1.0);
        assert_eq!(x, vec![1.5, 1.5]);
    }

    #[test]
    fn reset_clears_history() {
        let mut anderson = Anderson::new(2, 1);
        let mut x = vec![0.0];
        anderson.step(&mut x, &[1.0], 1.0);
        anderson.step(&mut x, &[0.5], 1.0);
        anderson.reset();
        let mut y = vec![10.0];
        anderson.step(&mut y, &[1.0], 1.0);
        assert_eq!(y, vec![11.0]); // plain step again
    }

    #[test]
    fn long_runs_recycle_history_buffers() {
        // Push far past the depth: the pool must absorb retired buffers
        // instead of growing the history without bound.
        let mut anderson = Anderson::new(3, 4);
        let mut x = vec![0.0; 4];
        for k in 0..50 {
            let f = [1.0 / (k + 1) as f64; 4];
            anderson.step(&mut x, &f, 1.0);
            assert!(anderson.dx.len() <= 3);
            assert!(anderson.pool.len() <= 2 * 4);
        }
    }

    #[test]
    fn dense_solver_handles_pivoting() {
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![2.0, 3.0];
        let mut x = vec![0.0; 2];
        assert!(solve_dense(&mut a, &mut b, &mut x, 2));
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dense_solver_rejects_singular() {
        let mut a = vec![1.0, 1.0, 1.0, 1.0];
        let mut b = vec![1.0, 2.0];
        let mut x = vec![0.0; 2];
        assert!(!solve_dense(&mut a, &mut b, &mut x, 2));
    }
}
