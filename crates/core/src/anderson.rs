//! Anderson acceleration for the VDA outer loop.
//!
//! The outer iteration is a fixed point `v0 ← v0 + F(v0)`, where `F` is
//! the lattice-distributed correction. Plain damped mixing contracts the
//! smooth error modes but crawls on the modes whose response the coarse
//! lattice mis-scales (the TSV series resistance amplifies sharp modes).
//! Anderson mixing with a short history solves a tiny least-squares
//! problem to combine the last few residuals, effectively learning the
//! Jacobian's action on the visited subspace — the standard cure for
//! exactly this kind of fixed-point stall.

use std::collections::VecDeque;

/// Safeguarded Anderson(m) mixer.
#[derive(Debug, Clone)]
pub(crate) struct Anderson {
    depth: usize,
    dx: VecDeque<Vec<f64>>,
    df: VecDeque<Vec<f64>>,
    prev_x: Option<Vec<f64>>,
    prev_f: Option<Vec<f64>>,
}

impl Anderson {
    pub(crate) fn new(depth: usize) -> Self {
        Anderson {
            depth,
            dx: VecDeque::new(),
            df: VecDeque::new(),
            prev_x: None,
            prev_f: None,
        }
    }

    /// Forgets the history (used by the caller's safeguard when a step
    /// increases the residual badly).
    pub(crate) fn reset(&mut self) {
        self.dx.clear();
        self.df.clear();
        self.prev_x = None;
        self.prev_f = None;
    }

    /// One mixing step: given the current iterate `x` and residual `f`
    /// (the proposed correction), overwrites `x` with the accelerated next
    /// iterate. `first_scale` damps the plain step taken when no history
    /// exists yet (right after a reset) — the caller passes its learned
    /// stability scale so a reset cannot re-trigger the divergence that
    /// caused it.
    pub(crate) fn step(&mut self, x: &mut [f64], f: &[f64], first_scale: f64) {
        let n = x.len();
        if let (Some(px), Some(pf)) = (&self.prev_x, &self.prev_f) {
            let dx: Vec<f64> = x.iter().zip(px).map(|(a, b)| a - b).collect();
            let df: Vec<f64> = f.iter().zip(pf).map(|(a, b)| a - b).collect();
            self.dx.push_back(dx);
            self.df.push_back(df);
            if self.dx.len() > self.depth {
                self.dx.pop_front();
                self.df.pop_front();
            }
        }
        self.prev_x = Some(x.to_vec());
        self.prev_f = Some(f.to_vec());

        let m = self.df.len();
        if m == 0 {
            for i in 0..n {
                x[i] += first_scale * f[i];
            }
            return;
        }
        // Solve min_γ ‖f − ΔF γ‖₂ via regularized normal equations (m ≤
        // depth is tiny).
        let mut gram = vec![vec![0.0f64; m]; m];
        let mut rhs = vec![0.0f64; m];
        for a in 0..m {
            for b in a..m {
                let g = dot(&self.df[a], &self.df[b]);
                gram[a][b] = g;
                gram[b][a] = g;
            }
            rhs[a] = dot(&self.df[a], f);
        }
        let scale = (0..m).map(|i| gram[i][i]).fold(0.0f64, f64::max);
        for (i, row) in gram.iter_mut().enumerate() {
            row[i] += 1e-12 * scale.max(1e-300);
        }
        let gamma = match solve_dense(&mut gram, &mut rhs) {
            // Wild extrapolation coefficients mean the history is nearly
            // collinear; trusting them explodes the iterate. Fall back to
            // the plain step (and let fresh history replace the stale
            // directions).
            Some(g) if g.iter().all(|v| v.abs() <= 10.0) => g,
            _ => {
                for i in 0..n {
                    x[i] += first_scale * f[i];
                }
                return;
            }
        };
        // x ← x + f − Σ γ_a (Δx_a + Δf_a).
        for i in 0..n {
            let mut xi = x[i] + f[i];
            for (a, g) in gamma.iter().enumerate() {
                xi -= g * (self.dx[a][i] + self.df[a][i]);
            }
            x[i] = xi;
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// In-place Gaussian elimination with partial pivoting on a tiny system;
/// returns `None` if a pivot collapses.
fn solve_dense(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fixed point of x ← x + (b − A x) with A ≠ I: plain mixing crawls
    /// (or diverges) when A's eigenvalues stray from 1; Anderson(4) must
    /// nail the 2×2 affine problem in a few steps.
    #[test]
    fn solves_affine_fixed_point_fast() {
        let a = [[3.0, 0.4], [0.4, 0.5]]; // eigenvalues ~0.44 and ~3.06
        let b = [1.0, 2.0];
        let residual = |x: &[f64]| {
            [
                b[0] - (a[0][0] * x[0] + a[0][1] * x[1]),
                b[1] - (a[1][0] * x[0] + a[1][1] * x[1]),
            ]
        };
        let mut x = vec![0.0, 0.0];
        let mut anderson = Anderson::new(4);
        for _ in 0..12 {
            let f = residual(&x);
            anderson.step(&mut x, &f, 1.0);
        }
        let f = residual(&x);
        assert!(
            f[0].abs() < 1e-8 && f[1].abs() < 1e-8,
            "residual {f:?} after Anderson iterations"
        );
    }

    #[test]
    fn first_step_is_plain_mixing() {
        let mut x = vec![1.0, 2.0];
        let mut anderson = Anderson::new(3);
        anderson.step(&mut x, &[0.5, -0.5], 1.0);
        assert_eq!(x, vec![1.5, 1.5]);
    }

    #[test]
    fn reset_clears_history() {
        let mut anderson = Anderson::new(2);
        let mut x = vec![0.0];
        anderson.step(&mut x, &[1.0], 1.0);
        anderson.step(&mut x, &[0.5], 1.0);
        anderson.reset();
        let mut y = vec![10.0];
        anderson.step(&mut y, &[1.0], 1.0);
        assert_eq!(y, vec![11.0]); // plain step again
    }

    #[test]
    fn dense_solver_handles_pivoting() {
        let mut a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let mut b = vec![2.0, 3.0];
        let x = solve_dense(&mut a, &mut b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dense_solver_rejects_singular() {
        let mut a = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let mut b = vec![1.0, 2.0];
        assert!(solve_dense(&mut a, &mut b).is_none());
    }
}
