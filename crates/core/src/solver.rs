use std::sync::Arc;

use crate::anderson::Anderson;
use crate::lattice::PillarLattice;
use crate::tier_cache::CachedTier;
use crate::{VpConfig, VpReport};
use voltprop_grid::{NetKind, Stack3d};
use voltprop_solvers::{LaneReport, SolveReport, SolverError, StackSolution, StackSolver};

/// The 3-D voltage propagation solver (see the [crate docs](crate) for the
/// algorithm).
///
/// The solver is *matrix-free*: it walks the structured [`Stack3d`]
/// directly, pinning TSV terminals tier by tier and solving each tier with
/// row-based sweeps. Requirements on the model (checked, returning
/// [`SolverError::Unsupported`] otherwise):
///
/// * power must be delivered through the pillars: on multi-tier stacks
///   every pad must sit on a TSV site. Pillars *without* pads are fine —
///   their top terminals are treated as free nodes fed by the accumulated
///   pillar current, and their propagation mismatch joins the VDA feedback
///   (this covers the sparse C4-bump layouts of the IBM-derived
///   benchmarks);
/// * single-tier stacks are solved directly with pinned pads (the 2-D
///   row-based special case).
///
/// With `config.parallelism > 1` the inner tier solves run red-black row
/// sweeps across that many threads (deterministic in the thread count);
/// `1` keeps the paper's sequential schedule.
#[derive(Debug, Clone, Copy, Default)]
pub struct VpSolver {
    /// Tuning parameters.
    pub config: VpConfig,
}

/// Reusable solve state: prefactored tier engines, the pillar lattice, and
/// every outer-loop buffer.
///
/// Building the scratch is the only allocating step of a solve; once it
/// exists, the engine loops ([`run_single`], [`run_batch`]) run the
/// entire outer iteration — tier sweeps, pillar-current accumulation,
/// VDA distribution, Anderson mixing — without touching the heap. This
/// is internal state: [`Session`](crate::Session) absorbs one at build
/// and serves every request from it (the former public
/// `VpSolver::solve{_with,_batch}` shims around it were removed — see
/// `MIGRATION.md`).
///
/// A scratch is tied to the stack's *geometry* (footprint, tiers,
/// resistances, TSV and pad sites) and the config's `parallelism`; loads
/// and tolerances may change freely between solves.
#[derive(Debug)]
pub(crate) struct VpScratch {
    width: usize,
    height: usize,
    tiers: usize,
    vdd: f64,
    r_tsv: f64,
    r_pad: f64,
    /// Per-tier `(g_h, g_v)` used to detect resistance changes.
    tier_g: Vec<(f64, f64)>,
    /// Flat (row-major) index of every pillar site. Empty for single-tier.
    site_flat: Vec<usize>,
    is_pad_site: Vec<bool>,
    /// Shared pin mask: pillar terminals (multi-tier) or pads
    /// (single-tier). One allocation serves every tier engine.
    fixed: Arc<[bool]>,
    lattice: Option<PillarLattice>,
    tier_cache: Vec<CachedTier>,
    /// Error amplification factor baked from the geometry (see
    /// [`VpScratch::new`]); scales the inner tolerance.
    amplification: f64,
    voltages: Vec<f64>,
    injection: Vec<f64>,
    v0: Vec<f64>,
    pillar_current: Vec<f64>,
    mismatch: Vec<f64>,
    correction: Vec<f64>,
    last_good_v0: Vec<f64>,
    last_good_correction: Vec<f64>,
    anderson: Anderson,
    /// Lazily sized multi-load (batched) solve state; `None` until the
    /// first [`run_batch`] call.
    batch: Option<BatchArena>,
}

/// The batch arena: every buffer a lockstep multi-load solve needs, sized
/// for a fixed lane count `k`. Built on the first
/// [`run_batch`] call with that `k` and reused afterwards, so
/// warm batched solves perform no heap allocation (on every
/// `parallelism` once the persistent worker pool is warm).
///
/// The sweep-facing buffers (`v`, `injection`) are node-major/lane-minor
/// (lane `j` of flat node `i` at `i * k + j`) — the layout the batched
/// engines consume; the per-pillar outer-loop state is lane-major (lane
/// `j`'s `ns` pillar values contiguous at `j * ns`), matching the
/// per-lane VDA and Anderson operations.
#[derive(Debug)]
struct BatchArena {
    /// Lane count every buffer below is sized for.
    k: usize,
    /// Node-major voltage image, `per · tiers · k`.
    v: Vec<f64>,
    /// Node-major per-tier injection staging, `per · k`.
    injection: Vec<f64>,
    /// Lane-major solved voltages, `per · tiers · k` (the public view).
    voltages: Vec<f64>,
    /// Per-lane tier-solve reports (scratch for the inner batch calls).
    lanes: Vec<LaneReport>,
    /// Outer-level lane mask: `true` while a lane still iterates.
    mask: Vec<bool>,
    /// Lane-major pillar guesses and feedback state, `ns · k` each.
    v0: Vec<f64>,
    pillar_current: Vec<f64>,
    mismatch: Vec<f64>,
    correction: Vec<f64>,
    last_good_v0: Vec<f64>,
    last_good_correction: Vec<f64>,
    /// One Anderson mixing history per lane.
    anderson: Vec<Anderson>,
    /// Per-lane outer-loop scalar state.
    state: Vec<LaneOuterState>,
}

/// The scalar outer-loop state of one batch lane — exactly the locals of
/// the single-load [`run_single`] loop, so the lockstep batch iteration
/// reproduces it bit for bit.
#[derive(Debug, Clone)]
struct LaneOuterState {
    vda: crate::VdaController,
    plain_mode: bool,
    stable_scale: f64,
    best_worst: f64,
    since_improvement: usize,
    worst: f64,
    inner_sweeps: usize,
    /// `Some((outer_iterations, converged))` once the lane finished.
    outcome: Option<(usize, bool)>,
}

impl BatchArena {
    fn new(k: usize, per: usize, tiers: usize, ns: usize, damping: f64) -> Self {
        BatchArena {
            k,
            v: vec![0.0; per * tiers * k],
            injection: vec![0.0; per * k],
            voltages: vec![0.0; per * tiers * k],
            lanes: vec![LaneReport::default(); k],
            mask: vec![true; k],
            v0: vec![0.0; ns * k],
            pillar_current: vec![0.0; ns * k],
            mismatch: vec![0.0; ns * k],
            correction: vec![0.0; ns * k],
            last_good_v0: vec![0.0; ns * k],
            last_good_correction: vec![0.0; ns * k],
            anderson: (0..k).map(|_| Anderson::new(4, ns)).collect(),
            state: vec![
                LaneOuterState {
                    vda: crate::VdaController::new(damping),
                    plain_mode: true,
                    stable_scale: damping,
                    best_worst: f64::INFINITY,
                    since_improvement: 0,
                    worst: f64::INFINITY,
                    inner_sweeps: 0,
                    outcome: None,
                };
                k
            ],
        }
    }

    /// Rewinds every per-lane record to the start-of-solve state (no
    /// allocation; called at the top of each batched solve).
    fn reset(&mut self, damping: f64) {
        self.lanes.fill(LaneReport::default());
        self.mask.fill(true);
        for a in &mut self.anderson {
            a.reset();
        }
        for s in &mut self.state {
            *s = LaneOuterState {
                vda: crate::VdaController::new(damping),
                plain_mode: true,
                stable_scale: damping,
                best_worst: f64::INFINITY,
                since_improvement: 0,
                worst: f64::INFINITY,
                inner_sweeps: 0,
                outcome: None,
            };
        }
    }

    /// Estimated heap footprint in bytes.
    fn memory_bytes(&self) -> usize {
        (self.v.len()
            + self.injection.len()
            + self.voltages.len()
            + self.v0.len()
            + self.pillar_current.len()
            + self.mismatch.len()
            + self.correction.len()
            + self.last_good_v0.len()
            + self.last_good_correction.len())
            * 8
            + self.mask.len()
            + self.lanes.len() * std::mem::size_of::<LaneReport>()
            + self.state.len() * std::mem::size_of::<LaneOuterState>()
            + self
                .anderson
                .iter()
                .map(Anderson::memory_bytes)
                .sum::<usize>()
    }
}

impl VpScratch {
    /// Validates the stack for voltage propagation and builds the full
    /// solve state (prefactored tier engines, lattice, buffers).
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] if pads don't sit on the pillars, a
    /// single-tier stack has resistive pads, or the grid fails validation.
    pub fn new(stack: &Stack3d, config: &VpConfig) -> Result<Self, SolverError> {
        stack.validate()?;
        let (w, h, tiers) = (stack.width(), stack.height(), stack.tiers());
        let per = w * h;
        let parallelism = config.parallelism.max(1);
        let shards = config.shards.max(1);
        let tier_g: Vec<(f64, f64)> = (0..tiers)
            .map(|t| (1.0 / stack.r_horizontal(t), 1.0 / stack.r_vertical(t)))
            .collect();

        if tiers == 1 {
            if stack.pad_resistance() != 0.0 {
                return Err(SolverError::Unsupported {
                    what: "single-tier voltage propagation requires ideal pads \
                           (use Rb3d or PCG for resistive pads)"
                        .into(),
                });
            }
            let mut fixed = vec![false; per];
            for (x, y) in stack.pad_sites() {
                fixed[y as usize * w + x as usize] = true;
            }
            let fixed: Arc<[bool]> = fixed.into();
            let tier_cache = vec![CachedTier::new(
                w,
                h,
                tier_g[0].0,
                tier_g[0].1,
                fixed.clone(),
                parallelism,
                shards,
            )?];
            return Ok(VpScratch {
                width: w,
                height: h,
                tiers,
                vdd: stack.vdd(),
                r_tsv: stack.tsv_resistance(),
                r_pad: stack.pad_resistance(),
                tier_g,
                site_flat: Vec::new(),
                is_pad_site: Vec::new(),
                fixed,
                lattice: None,
                tier_cache,
                amplification: 1.0,
                voltages: vec![0.0; per],
                injection: vec![0.0; per],
                v0: Vec::new(),
                pillar_current: Vec::new(),
                mismatch: Vec::new(),
                correction: Vec::new(),
                last_good_v0: Vec::new(),
                last_good_correction: Vec::new(),
                anderson: Anderson::new(4, 0),
                batch: None,
            });
        }

        // Package power enters through the pillars: every pad must sit on a
        // pillar. Pillars *without* pads are allowed — their top terminals
        // are free nodes fed by the accumulated pillar current (the sparse
        // C4-bump topology of the IBM-derived benchmarks).
        let sites = stack.tsv_sites();
        let mut num_pad_sites = 0usize;
        let is_pad_site: Vec<bool> = sites
            .iter()
            .map(|&(x, y)| {
                let p = stack.is_pad(x as usize, y as usize);
                num_pad_sites += usize::from(p);
                p
            })
            .collect();
        if stack.num_pads() != num_pad_sites {
            return Err(SolverError::Unsupported {
                what: "pads exist away from TSV pillars; voltage propagation \
                       requires package power to enter through the pillars"
                    .into(),
            });
        }
        if num_pad_sites == 0 {
            return Err(SolverError::Unsupported {
                what: "no pillar carries a pad; the stack has no voltage reference".into(),
            });
        }

        let site_flat: Vec<usize> = sites
            .iter()
            .map(|&(x, y)| y as usize * w + x as usize)
            .collect();
        let ns = site_flat.len();

        // Every tier pins every pillar terminal — this keeps the row-based
        // inner solves in their fast densely-pinned regime. Pad-less
        // pillars are closed by the VDA instead: their accumulated excess
        // current is redistributed over the pillar lattice (see
        // `PillarLattice`). The mask is identical on every tier, so all
        // tier engines share one allocation.
        let mut fixed = vec![false; per];
        for &s in &site_flat {
            fixed[s] = true;
        }
        let fixed: Arc<[bool]> = fixed.into();
        let tier_cache: Vec<CachedTier> = tier_g
            .iter()
            .map(|&(g_h, g_v)| CachedTier::new(w, h, g_h, g_v, fixed.clone(), parallelism, shards))
            .collect::<Result<_, _>>()?;
        let lattice = PillarLattice::build(stack, sites, &is_pad_site);

        // Tier-solve errors are amplified into the propagated pad voltages
        // by roughly `1 + R_TSV · G_local · (tiers-1) · C` — each volt of
        // tier error perturbs a pillar's current by G_local, every TSV
        // segment adds R·ΔI, and a contiguous cluster of C pinned sites
        // accumulates its members' current errors. The inner tolerance is
        // tightened by this factor so the measured mismatch resolves below
        // ε even on very conductive grids and clustered TSV maps.
        let g_local_max = tier_g
            .iter()
            .map(|&(g_h, g_v)| 2.0 * g_h + 2.0 * g_v)
            .fold(0.0f64, f64::max);
        let cluster = largest_pillar_cluster(stack) as f64;
        let amplification =
            1.0 + stack.tsv_resistance() * g_local_max * (tiers as f64 - 1.0) * cluster;

        Ok(VpScratch {
            width: w,
            height: h,
            tiers,
            vdd: stack.vdd(),
            r_tsv: stack.tsv_resistance(),
            r_pad: stack.pad_resistance(),
            tier_g,
            site_flat,
            is_pad_site,
            fixed,
            lattice: Some(lattice),
            tier_cache,
            amplification,
            voltages: vec![0.0; per * tiers],
            injection: vec![0.0; per],
            v0: vec![0.0; ns],
            pillar_current: vec![0.0; ns],
            mismatch: vec![0.0; ns],
            correction: vec![0.0; ns],
            last_good_v0: vec![0.0; ns],
            last_good_correction: vec![0.0; ns],
            anderson: Anderson::new(4, ns),
            batch: None,
        })
    }

    /// A new scratch sharing this one's frozen half with fresh per-solve
    /// mutable state: the prefactored tier engines are shared through
    /// [`CachedTier::fork`] (no refactorization), the pin mask `Arc` is
    /// cloned, the pillar lattice is cloned (it carries only a tiny
    /// coarse-solve scratch of its own), and every outer-loop buffer is
    /// freshly allocated. The batch arena starts empty and is sized
    /// lazily on the fork's first batched solve.
    ///
    /// Forks solve independently — two forks may run concurrently from
    /// different threads — and reproduce the original scratch's solves
    /// bitwise: [`run_single`] and [`run_batch`] re-initialize every
    /// buffer they read before using it.
    #[must_use]
    pub(crate) fn fork(&self) -> VpScratch {
        let ns = self.v0.len();
        VpScratch {
            width: self.width,
            height: self.height,
            tiers: self.tiers,
            vdd: self.vdd,
            r_tsv: self.r_tsv,
            r_pad: self.r_pad,
            tier_g: self.tier_g.clone(),
            site_flat: self.site_flat.clone(),
            is_pad_site: self.is_pad_site.clone(),
            fixed: Arc::clone(&self.fixed),
            lattice: self.lattice.clone(),
            tier_cache: self.tier_cache.iter().map(CachedTier::fork).collect(),
            amplification: self.amplification,
            voltages: vec![0.0; self.voltages.len()],
            injection: vec![0.0; self.injection.len()],
            v0: vec![0.0; ns],
            pillar_current: vec![0.0; ns],
            mismatch: vec![0.0; ns],
            correction: vec![0.0; ns],
            last_good_v0: vec![0.0; ns],
            last_good_correction: vec![0.0; ns],
            anderson: Anderson::new(4, ns),
            batch: None,
        }
    }

    /// The solved per-node voltages of the most recent [`run_single`]
    /// call (flat tier-major).
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// The per-pillar package currents of the most recent solve (empty for
    /// single-tier stacks).
    pub fn pillar_currents(&self) -> &[f64] {
        &self.pillar_current
    }

    /// Whether this scratch's prefactored state fits the stack's
    /// *geometry* (footprint, tiers, resistances, pillar and pad sites).
    /// Loads and per-solve parameters are free to differ; the sweep
    /// parallelism is a build-time property the caller owns.
    pub(crate) fn geometry_matches(&self, stack: &Stack3d) -> bool {
        if self.width != stack.width()
            || self.height != stack.height()
            || self.tiers != stack.tiers()
            || self.vdd != stack.vdd()
            || self.r_tsv != stack.tsv_resistance()
            || self.r_pad != stack.pad_resistance()
        {
            return false;
        }
        let g_match = self.tier_g.iter().enumerate().all(|(t, &(g_h, g_v))| {
            g_h == 1.0 / stack.r_horizontal(t) && g_v == 1.0 / stack.r_vertical(t)
        });
        if !g_match {
            return false;
        }
        let w = self.width;
        if self.tiers == 1 {
            // Compare against the pad mask without allocating
            // (`pad_sites()` builds a Vec; this runs on every warm solve).
            (0..self.fixed.len()).all(|i| self.fixed[i] == stack.is_pad(i % w, i / w))
        } else {
            let sites = stack.tsv_sites();
            // Matching per-site pad flags *plus* an equal total pad count
            // proves every one of the stack's pads sits on a pillar with
            // the flag this scratch was built for — a pad added away
            // from the pillars changes num_pads and is caught here.
            let num_pad_sites = self.is_pad_site.iter().filter(|&&p| p).count();
            sites.len() == self.site_flat.len()
                && stack.num_pads() == num_pad_sites
                && sites
                    .iter()
                    .zip(&self.site_flat)
                    .all(|(&(x, y), &s)| y as usize * w + x as usize == s)
                && sites
                    .iter()
                    .zip(&self.is_pad_site)
                    .all(|(&(x, y), &p)| stack.is_pad(x as usize, y as usize) == p)
        }
    }

    /// Estimated heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        let ns_vectors = self.v0.len()
            + self.pillar_current.len()
            + self.mismatch.len()
            + self.correction.len()
            + self.last_good_v0.len()
            + self.last_good_correction.len();
        (self.voltages.len() + self.injection.len() + ns_vectors) * 8
            + self.fixed.len()
            + self.lattice.as_ref().map_or(0, PillarLattice::memory_bytes)
            + self
                .tier_cache
                .iter()
                .map(CachedTier::memory_bytes)
                .sum::<usize>()
            + self.anderson.memory_bytes()
            + self.batch.as_ref().map_or(0, BatchArena::memory_bytes)
    }

    /// Lane count of the most recent [`run_batch`] call (0 if no batched
    /// solve ran on this scratch yet).
    #[cfg(test)]
    pub fn batch_lanes(&self) -> usize {
        self.batch.as_ref().map_or(0, |b| b.k)
    }

    /// The lane-major batch result buffers of the most recent batched
    /// solve: `(voltages, pillar_currents, lanes)`. `None` until a
    /// batched solve ran on this scratch.
    pub(crate) fn batch_view(&self) -> Option<(&[f64], &[f64], usize)> {
        self.batch
            .as_ref()
            .map(|b| (&b.voltages[..], &b.pillar_current[..], b.k))
    }

    /// Number of pillar sites this scratch serves (0 for single-tier).
    pub(crate) fn num_sites(&self) -> usize {
        self.site_flat.len()
    }

    /// Number of grid nodes this scratch serves.
    #[cfg(test)]
    pub(crate) fn num_nodes(&self) -> usize {
        self.width * self.height * self.tiers
    }

    /// Prefactors a full set of transient companion tier engines against
    /// this scratch's geometry: tier `t`'s engine carries
    /// `alpha_c[t·per + site]` (the `α·C` grounded companion
    /// conductances, siemens, flat tier-major over all `nn` nodes) on its
    /// diagonal, sharing this scratch's pin mask. Built once per step
    /// size by the transient engine and then reused across every step —
    /// the same factor-once contract as the static tier cache.
    ///
    /// # Errors
    ///
    /// See [`CachedTier::new_companion`].
    pub(crate) fn build_companion_tiers(
        &self,
        alpha_c: &[f64],
        parallelism: usize,
        shards: usize,
    ) -> Result<Vec<CachedTier>, SolverError> {
        let per = self.width * self.height;
        self.tier_g
            .iter()
            .enumerate()
            .map(|(t, &(g_h, g_v))| {
                CachedTier::new_companion(
                    self.width,
                    self.height,
                    g_h,
                    g_v,
                    self.fixed.clone(),
                    Some(&alpha_c[t * per..(t + 1) * per]),
                    parallelism,
                    shards,
                )
            })
            .collect()
    }
}

/// The transient companion context of one voltage-propagation solve: the
/// companion-augmented tier factors (`G_tier + diag(α·C)`), the `α·C`
/// diagonal itself (needed by the pinned-site KCL), and the per-step
/// companion currents `i_eq` (absolute sign, positive into the node).
/// `None` in [`run_single`] is the static solve.
pub(crate) struct CompanionRef<'a> {
    /// Companion-augmented tier engines (from
    /// [`VpScratch::build_companion_tiers`]), one per tier.
    pub tiers: &'a mut [CachedTier],
    /// `α·C` per node (flat tier-major, `nn` entries, siemens).
    pub alpha_c: &'a [f64],
    /// Companion injections `i_eq` per node (flat tier-major, amperes).
    pub source: &'a [f64],
}

impl VpSolver {
    /// A solver with explicit configuration.
    pub fn new(config: VpConfig) -> Self {
        VpSolver { config }
    }
}

/// The single-load outer loop: runs the full voltage propagation method
/// inside a scratch that **must already match the stack's geometry**
/// (callers check; [`Session`](crate::Session) surfaces a mismatch as
/// `GeometryChanged`).
/// Zero heap allocations once the scratch is warm. The request
/// [`Deadline`](crate::Deadline) is checked once per outer iteration —
/// the cooperative cancellation hook of this route.
pub(crate) fn run_single(
    params: &crate::SolveParams,
    stack: &Stack3d,
    net: NetKind,
    scratch: &mut VpScratch,
    deadline: crate::Deadline,
) -> Result<VpReport, SolverError> {
    run_single_dynamic(params, stack, net, stack.loads(), scratch, deadline, None)
}

/// [`run_single`] with an explicit load vector (the transient stepper
/// feeds waveform samples without mutating the stack) and an optional
/// transient [`CompanionRef`]: companion-augmented tier factors replace
/// the static ones, the companion currents join every tier's injection,
/// and the pinned-site KCL accounts for the `α·C` grounded conductance
/// (`+ α·C·v − i_eq`) so the propagated pillar currents solve the
/// companion system `(G + α·diag(C)) v = b`. The VDA feedback loop is
/// untouched — its fixed point is whatever system the tier solves and
/// the KCL describe.
#[allow(clippy::too_many_arguments)] // the full dynamic-solve surface
pub(crate) fn run_single_dynamic(
    params: &crate::SolveParams,
    stack: &Stack3d,
    net: NetKind,
    loads: &[f64],
    scratch: &mut VpScratch,
    deadline: crate::Deadline,
    companion: Option<CompanionRef<'_>>,
) -> Result<VpReport, SolverError> {
    let rail = match net {
        NetKind::Power => stack.vdd(),
        NetKind::Ground => 0.0,
    };
    let sign = match net {
        NetKind::Power => 1.0,
        NetKind::Ground => -1.0,
    };
    if scratch.tiers == 1 {
        // One opaque planar solve: check on entry, budget bounds the tail.
        deadline.check(0)?;
        return run_single_tier(params, loads, rail, sign, scratch, companion);
    }

    let (w, h, tiers) = (scratch.width, scratch.height, scratch.tiers);
    let per = w * h;
    let r_tsv = scratch.r_tsv;
    let r_pad = scratch.r_pad;
    let top = tiers - 1;
    let tight_tol = params.inner_tolerance / scratch.amplification;
    let mixed = params.precision.resolve() == crate::Precision::MixedF32;

    let VpScratch {
        site_flat,
        is_pad_site,
        lattice,
        tier_cache,
        tier_g,
        voltages: v,
        injection,
        v0,
        pillar_current,
        mismatch,
        correction,
        last_good_v0,
        last_good_correction,
        anderson,
        ..
    } = scratch;
    let lattice = lattice.as_mut().expect("multi-tier scratch has a lattice");
    // The companion context swaps in the augmented tier factors; the
    // `α·C` / `i_eq` slices stay empty on the static path so the hot
    // loops branch on one bool.
    let (tier_cache, comp_alpha_c, comp_source): (&mut [CachedTier], &[f64], &[f64]) =
        match companion {
            Some(c) => (c.tiers, c.alpha_c, c.source),
            None => (tier_cache, &[], &[]),
        };
    let dynamic = !comp_alpha_c.is_empty();

    v.fill(rail);
    v0.fill(rail);
    last_good_v0.fill(rail);
    last_good_correction.fill(0.0);
    anderson.reset();

    // Outer fixed-point accelerator (see `anderson`): the VDA step is
    // the residual, Anderson mixing combines the recent history. A
    // safeguard resets the history and falls back to a heavily damped
    // plain step if the mismatch ever inflates.
    let mut best_worst = f64::INFINITY;
    // Start in the paper's plain damped-mixing mode; escalate to
    // safeguarded Anderson mixing on divergence or plateau.
    let mut plain_mode = true;
    let mut vda = crate::VdaController::new(params.damping);
    let mut since_improvement = 0usize;
    // Learned stability scale for plain (history-less) steps: halved on
    // every rollback, recovering by 20% per accepted improvement. It
    // also damps Anderson's first step after a reset, so a reset cannot
    // immediately re-trigger the divergence that caused it.
    let mut stable_scale = params.damping;
    let mut inner_sweeps = 0usize;
    let mut outer = 0usize;
    let mut worst = f64::INFINITY;
    let mut converged = false;
    while outer < params.max_outer_iterations {
        deadline.check(outer)?;
        // Every pass runs at the tight tolerance. (A "progressive"
        // scheme that loosened early passes was tried and reverted: the
        // noisy mismatch measurements it produced destabilized the VDA
        // far beyond what the cheaper sweeps saved — warm starts
        // already make post-first-pass solves nearly free.)
        pillar_current.fill(0.0);
        for t in 0..tiers {
            // Phase 3 (voltage propagation): pin this tier's pillar
            // terminals — layer 0 from the VDA guesses, upper layers
            // from the accumulated pillar current through R_TSV.
            if t == 0 {
                for (k, &s) in site_flat.iter().enumerate() {
                    v[s] = v0[k];
                }
            } else {
                for (k, &s) in site_flat.iter().enumerate() {
                    v[t * per + s] = v[(t - 1) * per + s] + pillar_current[k] * r_tsv;
                }
            }
            // Phase 1 (intra-plane voltage calculation). The TSV
            // resistance is deliberately absent: pinned terminals carry
            // it in the propagation phase instead. The companion
            // currents i_eq join the injection in their absolute
            // (net-independent) sign.
            if dynamic {
                for i in 0..per {
                    injection[i] = -sign * loads[t * per + i] + comp_source[t * per + i];
                }
            } else {
                for i in 0..per {
                    injection[i] = -sign * loads[t * per + i];
                }
            }
            let tier_v = &mut v[t * per..(t + 1) * per];
            let rep = if mixed {
                tier_cache[t].solve_mixed_with_omega(
                    injection,
                    tier_v,
                    tight_tol,
                    params.max_inner_sweeps,
                    1.0,
                )?
            } else {
                tier_cache[t].solve(injection, tier_v, tight_tol, params.max_inner_sweeps)?
            };
            inner_sweeps += rep.iterations;
            // Phase 2 (TSV current computation): KCL at each pinned
            // terminal gives the current its pillar injects into this
            // tier; accumulate toward the package. After the top tier
            // the accumulator holds the current each pillar asks of the
            // package — which must be zero at pad-less pillars.
            let (gh, gv) = tier_g[t];
            for (k, &s) in site_flat.iter().enumerate() {
                let (x, y) = (s % w, s / w);
                let vj = tier_v[s];
                let mut out = sign * loads[t * per + s];
                if dynamic {
                    // The pinned node's own companion branch: its α·C
                    // grounded conductance draws α·C·v from the pillar
                    // and its companion source i_eq supplies current.
                    out += comp_alpha_c[t * per + s] * vj - comp_source[t * per + s];
                }
                if x > 0 {
                    out += gh * (vj - tier_v[s - 1]);
                }
                if x + 1 < w {
                    out += gh * (vj - tier_v[s + 1]);
                }
                if y > 0 {
                    out += gv * (vj - tier_v[s - w]);
                }
                if y + 1 < h {
                    out += gv * (vj - tier_v[s + w]);
                }
                pillar_current[k] += out;
            }
        }
        outer += 1;
        // Phase 4 (VDA): padded pillars report the voltage gap between
        // their propagated top voltage and the rail (shifted by the pad
        // drop when pads are resistive); pad-less pillars report the
        // current they wrongly ask of the package. The lattice
        // redistributes both — the paper's "distributing the resulting
        // voltage difference" — into per-pillar voltage corrections.
        for (k, &s) in site_flat.iter().enumerate() {
            mismatch[k] = if is_pad_site[k] {
                let target = rail - pillar_current[k] * r_pad;
                target - v[top * per + s]
            } else {
                pillar_current[k] // amperes of excess, not volts
            };
        }
        worst = lattice.correction(mismatch, correction);
        // Only a pass whose tier solves ran at the tight tolerance may
        // declare convergence; a loose pass that lands under ε simply
        // makes the next (tight) pass cheap.
        if worst < params.epsilon {
            converged = true;
            break;
        }
        if worst <= best_worst {
            last_good_v0.copy_from_slice(v0);
            last_good_correction.copy_from_slice(correction);
            since_improvement = 0;
        } else {
            since_improvement += 1;
        }
        if plain_mode {
            // The paper's VDA: plain damped mixing, halving the gain
            // when the mismatch grows (the contraction principle). This
            // converges in a handful of outers on benchmark topologies;
            // if it diverges or plateaus, hand the loop to the
            // accelerated mode below.
            if worst > 10.0 * best_worst.min(1e3) || since_improvement > 8 {
                plain_mode = false;
                since_improvement = 0;
                v0.copy_from_slice(last_good_v0);
                stable_scale = 0.25 * params.damping;
                for (g, c) in v0.iter_mut().zip(&*last_good_correction) {
                    *g += stable_scale * c;
                }
            } else {
                vda.apply(v0, correction);
            }
        } else if worst > 2.0 * best_worst {
            // Accelerated mode safeguard: roll back to the best
            // iterate, forget the mixing history, halve the stability
            // scale, and retry with the damped plain step.
            anderson.reset();
            stable_scale = (stable_scale * 0.5).max(1e-3);
            v0.copy_from_slice(last_good_v0);
            for (g, c) in v0.iter_mut().zip(&*last_good_correction) {
                *g += stable_scale * c;
            }
        } else {
            if worst <= best_worst {
                stable_scale = (stable_scale * 1.5).min(params.damping);
            }
            anderson.step(v0, correction, stable_scale);
        }
        // The reference decays by 15% per outer so that one lucky
        // transient cannot veto every later state (which deadlocks the
        // safeguard in a rollback limit cycle); sustained growth is
        // still caught.
        best_worst = best_worst.min(worst) * if plain_mode { 1.0 } else { 1.15 };
    }
    if converged {
        return Ok(VpReport {
            outer_iterations: outer,
            inner_sweeps,
            pad_mismatch: worst,
            final_beta: params.damping,
            converged: true,
            // Reported uniformly on every return path (the scratch
            // *is* the solver workspace).
            workspace_bytes: scratch.memory_bytes(),
        });
    }
    Err(SolverError::DidNotConverge {
        iterations: outer,
        residual: worst,
        tolerance: params.epsilon,
    })
}

/// Validates a lane-major batch load buffer against the node count,
/// returning the lane count `k`.
pub(crate) fn validate_loads(nn: usize, loads: &[f64]) -> Result<usize, SolverError> {
    if loads.is_empty() || loads.len() % nn != 0 {
        return Err(SolverError::Unsupported {
            what: format!(
                "batch loads must be a non-empty whole number of {nn}-node \
                 load vectors (got {} entries)",
                loads.len()
            ),
        });
    }
    for (i, &a) in loads.iter().enumerate() {
        if !a.is_finite() || a < 0.0 {
            return Err(SolverError::Unsupported {
                what: format!("load {a} at batch index {i} is not a finite, non-negative current"),
            });
        }
    }
    Ok(loads.len() / nn)
}

/// The batched outer loop: validates the load set, (re)sizes the batch
/// arena for the lane count, and runs every lane in lockstep through the
/// shared tier factors. The scratch **must already match the stack's
/// geometry** (callers check). Warm calls with an unchanged lane count
/// perform no heap allocation. The [`Deadline`](crate::Deadline) is
/// checked once per lockstep outer pass (it governs the whole batch).
pub(crate) fn run_batch(
    params: &crate::SolveParams,
    stack: &Stack3d,
    net: NetKind,
    loads: &[f64],
    scratch: &mut VpScratch,
    reports: &mut Vec<VpReport>,
    deadline: crate::Deadline,
) -> Result<(), SolverError> {
    let k = validate_loads(stack.num_nodes(), loads)?;
    let per = scratch.width * scratch.height;
    let ns = scratch.site_flat.len();
    if scratch.batch.as_ref().is_none_or(|b| b.k != k) {
        scratch.batch = Some(BatchArena::new(k, per, scratch.tiers, ns, params.damping));
    }
    let rail = match net {
        NetKind::Power => stack.vdd(),
        NetKind::Ground => 0.0,
    };
    let sign = match net {
        NetKind::Power => 1.0,
        NetKind::Ground => -1.0,
    };
    if scratch.tiers == 1 {
        // One opaque batched solve: check on entry, budget bounds the tail.
        deadline.check(0)?;
        run_batch_single_tier(params, rail, sign, loads, k, scratch, reports)
    } else {
        run_batch_multi(params, rail, sign, loads, k, scratch, reports, deadline)
    }
}

/// Single-tier batched path: one batched row-based solve with the
/// pads pinned at the rail (per-lane reports mirror
/// [`run_single_tier`]).
fn run_batch_single_tier(
    params: &crate::SolveParams,
    rail: f64,
    sign: f64,
    loads: &[f64],
    k: usize,
    scratch: &mut VpScratch,
    reports: &mut Vec<VpReport>,
) -> Result<(), SolverError> {
    let per = scratch.width * scratch.height;
    {
        let VpScratch {
            tier_cache, batch, ..
        } = scratch;
        let arena = batch.as_mut().expect("batch arena sized");
        arena.reset(params.damping);
        arena.v.fill(rail);
        for j in 0..k {
            let lane_loads = &loads[j * per..(j + 1) * per];
            for i in 0..per {
                arena.injection[i * k + j] = -sign * lane_loads[i];
            }
        }
        if params.precision.resolve() == crate::Precision::MixedF32 {
            tier_cache[0].solve_batch_masked_mixed(
                &arena.injection,
                &mut arena.v,
                params.inner_tolerance,
                params.max_inner_sweeps,
                params.sor_omega,
                None,
                &mut arena.lanes,
            )?;
        } else {
            tier_cache[0].solve_batch_masked(
                &arena.injection,
                &mut arena.v,
                params.inner_tolerance,
                params.max_inner_sweeps,
                params.sor_omega,
                None,
                &mut arena.lanes,
            )?;
        }
        deinterleave(&arena.v, &mut arena.voltages, k);
    }
    let ws = scratch.memory_bytes();
    let arena = scratch.batch.as_ref().expect("batch arena sized");
    reports.clear();
    reports.extend(arena.lanes.iter().map(|l| VpReport {
        outer_iterations: 1,
        inner_sweeps: l.iterations,
        pad_mismatch: l.residual,
        final_beta: params.damping,
        converged: l.converged,
        workspace_bytes: ws,
    }));
    Ok(())
}

/// Multi-tier batched path: every lane runs the propagation/VDA outer
/// loop of [`run_single`] in lockstep, sharing each tier's
/// batched inner solve. Per-lane scalar state lives in the arena's
/// [`LaneOuterState`]; a lane that converges (or fails a budget) is
/// masked out of all later tier solves, so its iterate — bitwise
/// identical to the sequential solve — is never touched again.
#[allow(clippy::too_many_arguments)] // mirrors run_batch's surface
fn run_batch_multi(
    params: &crate::SolveParams,
    rail: f64,
    sign: f64,
    loads: &[f64],
    k: usize,
    scratch: &mut VpScratch,
    reports: &mut Vec<VpReport>,
    deadline: crate::Deadline,
) -> Result<(), SolverError> {
    let (w, h, tiers) = (scratch.width, scratch.height, scratch.tiers);
    let per = w * h;
    let nn = per * tiers;
    let ns = scratch.site_flat.len();
    let r_tsv = scratch.r_tsv;
    let r_pad = scratch.r_pad;
    let top = tiers - 1;
    let tight_tol = params.inner_tolerance / scratch.amplification;
    let eps = params.epsilon;
    let damping = params.damping;
    let mixed = params.precision.resolve() == crate::Precision::MixedF32;
    {
        let VpScratch {
            site_flat,
            is_pad_site,
            lattice,
            tier_cache,
            tier_g,
            batch,
            ..
        } = scratch;
        let lattice = lattice.as_mut().expect("multi-tier scratch has a lattice");
        let arena = batch.as_mut().expect("batch arena sized");
        arena.reset(damping);
        arena.v.fill(rail);
        arena.v0.fill(rail);
        arena.last_good_v0.fill(rail);
        arena.last_good_correction.fill(0.0);

        let mut n_running = k;
        let mut outer = 0usize;
        while outer < params.max_outer_iterations && n_running > 0 {
            deadline.check(outer)?;
            for j in 0..k {
                if arena.mask[j] {
                    arena.pillar_current[j * ns..(j + 1) * ns].fill(0.0);
                }
            }
            for t in 0..tiers {
                // Phase 3 (voltage propagation): pin this tier's pillar
                // terminals per running lane.
                if t == 0 {
                    for j in 0..k {
                        if !arena.mask[j] {
                            continue;
                        }
                        let v0_j = &arena.v0[j * ns..(j + 1) * ns];
                        for (kk, &s) in site_flat.iter().enumerate() {
                            arena.v[s * k + j] = v0_j[kk];
                        }
                    }
                } else {
                    for j in 0..k {
                        if !arena.mask[j] {
                            continue;
                        }
                        let pc_j = &arena.pillar_current[j * ns..(j + 1) * ns];
                        for (kk, &s) in site_flat.iter().enumerate() {
                            arena.v[(t * per + s) * k + j] =
                                arena.v[((t - 1) * per + s) * k + j] + pc_j[kk] * r_tsv;
                        }
                    }
                }
                // Phase 1 (intra-plane): batched row-based solve of
                // this tier for every running lane.
                for j in 0..k {
                    if !arena.mask[j] {
                        continue;
                    }
                    let lane_loads = &loads[j * nn + t * per..j * nn + (t + 1) * per];
                    for i in 0..per {
                        arena.injection[i * k + j] = -sign * lane_loads[i];
                    }
                }
                let tier_v = &mut arena.v[t * per * k..(t + 1) * per * k];
                if mixed {
                    tier_cache[t].solve_batch_masked_mixed(
                        &arena.injection,
                        tier_v,
                        tight_tol,
                        params.max_inner_sweeps,
                        1.0,
                        Some(&arena.mask),
                        &mut arena.lanes,
                    )?;
                } else {
                    tier_cache[t].solve_batch_masked(
                        &arena.injection,
                        tier_v,
                        tight_tol,
                        params.max_inner_sweeps,
                        1.0,
                        Some(&arena.mask),
                        &mut arena.lanes,
                    )?;
                }
                for j in 0..k {
                    if !arena.mask[j] {
                        continue;
                    }
                    arena.state[j].inner_sweeps += arena.lanes[j].iterations;
                    if !arena.lanes[j].converged {
                        // The sequential path would abort this load
                        // with `DidNotConverge`; the batch freezes the
                        // lane and reports its true inner residual.
                        // `outer + 1` counts the pass it died in, like
                        // the other outcomes recorded post-increment.
                        arena.state[j].worst = arena.lanes[j].residual;
                        arena.state[j].outcome = Some((outer + 1, false));
                        arena.mask[j] = false;
                        n_running -= 1;
                    }
                }
                // Phase 2 (TSV current computation) per running lane.
                let (gh, gv) = tier_g[t];
                for j in 0..k {
                    if !arena.mask[j] {
                        continue;
                    }
                    let tier_v = &arena.v[t * per * k..(t + 1) * per * k];
                    let pc_j = &mut arena.pillar_current[j * ns..(j + 1) * ns];
                    let lane_loads = &loads[j * nn + t * per..j * nn + (t + 1) * per];
                    for (kk, &s) in site_flat.iter().enumerate() {
                        let (x, y) = (s % w, s / w);
                        let vj = tier_v[s * k + j];
                        let mut out = sign * lane_loads[s];
                        if x > 0 {
                            out += gh * (vj - tier_v[(s - 1) * k + j]);
                        }
                        if x + 1 < w {
                            out += gh * (vj - tier_v[(s + 1) * k + j]);
                        }
                        if y > 0 {
                            out += gv * (vj - tier_v[(s - w) * k + j]);
                        }
                        if y + 1 < h {
                            out += gv * (vj - tier_v[(s + w) * k + j]);
                        }
                        pc_j[kk] += out;
                    }
                }
            }
            outer += 1;
            // Phase 4 (VDA + mixing) per running lane — the scalar
            // logic of `run_single`, verbatim, on the lane's slices.
            for j in 0..k {
                if !arena.mask[j] {
                    continue;
                }
                let mm = &mut arena.mismatch[j * ns..(j + 1) * ns];
                let pc = &arena.pillar_current[j * ns..(j + 1) * ns];
                for (kk, &s) in site_flat.iter().enumerate() {
                    mm[kk] = if is_pad_site[kk] {
                        let target = rail - pc[kk] * r_pad;
                        target - arena.v[(top * per + s) * k + j]
                    } else {
                        pc[kk] // amperes of excess, not volts
                    };
                }
                let corr = &mut arena.correction[j * ns..(j + 1) * ns];
                let worst = lattice.correction(mm, corr);
                let st = &mut arena.state[j];
                st.worst = worst;
                if worst < eps {
                    st.outcome = Some((outer, true));
                    arena.mask[j] = false;
                    n_running -= 1;
                    continue;
                }
                let v0_j = &mut arena.v0[j * ns..(j + 1) * ns];
                let lg_v0 = &mut arena.last_good_v0[j * ns..(j + 1) * ns];
                let lg_c = &mut arena.last_good_correction[j * ns..(j + 1) * ns];
                if worst <= st.best_worst {
                    lg_v0.copy_from_slice(v0_j);
                    lg_c.copy_from_slice(corr);
                    st.since_improvement = 0;
                } else {
                    st.since_improvement += 1;
                }
                if st.plain_mode {
                    if worst > 10.0 * st.best_worst.min(1e3) || st.since_improvement > 8 {
                        st.plain_mode = false;
                        st.since_improvement = 0;
                        v0_j.copy_from_slice(lg_v0);
                        st.stable_scale = 0.25 * damping;
                        for (g, c) in v0_j.iter_mut().zip(&*lg_c) {
                            *g += st.stable_scale * c;
                        }
                    } else {
                        st.vda.apply(v0_j, corr);
                    }
                } else if worst > 2.0 * st.best_worst {
                    st.stable_scale = (st.stable_scale * 0.5).max(1e-3);
                    v0_j.copy_from_slice(lg_v0);
                    for (g, c) in v0_j.iter_mut().zip(&*lg_c) {
                        *g += st.stable_scale * c;
                    }
                    arena.anderson[j].reset();
                } else {
                    if worst <= st.best_worst {
                        st.stable_scale = (st.stable_scale * 1.5).min(damping);
                    }
                    arena.anderson[j].step(v0_j, corr, st.stable_scale);
                }
                st.best_worst = st.best_worst.min(worst) * if st.plain_mode { 1.0 } else { 1.15 };
            }
        }
        // Lanes still running exhausted the outer budget.
        for j in 0..k {
            if arena.mask[j] {
                arena.state[j].outcome = Some((outer, false));
                arena.mask[j] = false;
            }
        }
        deinterleave(&arena.v, &mut arena.voltages, k);
    }
    let ws = scratch.memory_bytes();
    let arena = scratch.batch.as_ref().expect("batch arena sized");
    reports.clear();
    reports.extend(arena.state.iter().map(|st| {
        let (outer_iterations, converged) = st.outcome.expect("every lane resolved");
        VpReport {
            outer_iterations,
            inner_sweeps: st.inner_sweeps,
            pad_mismatch: st.worst,
            final_beta: damping,
            converged,
            workspace_bytes: ws,
        }
    }));
    Ok(())
}

/// Single-tier special case: pads pinned at the rail, one row-based
/// solve (the planar method the paper builds on).
///
/// There is no propagation loop here, so `pad_mismatch` reports the
/// inner solve's final residual (its largest per-sweep voltage
/// update) and `converged` its actual status — a sweep budget that
/// runs out comes back as `converged = false` with the true residual,
/// not as an error.
fn run_single_tier(
    params: &crate::SolveParams,
    loads: &[f64],
    rail: f64,
    sign: f64,
    scratch: &mut VpScratch,
    companion: Option<CompanionRef<'_>>,
) -> Result<VpReport, SolverError> {
    let per = scratch.width * scratch.height;
    let VpScratch {
        tier_cache,
        voltages,
        injection,
        ..
    } = scratch;
    voltages.fill(rail);
    for (inj, load) in injection.iter_mut().zip(&loads[..per]) {
        *inj = -sign * load;
    }
    // On the planar path every companion site is either free (its α·C
    // lives in the augmented factors, its i_eq in the injection) or a
    // pad pinned at the rail (where the companion branch is inert), so
    // only the factors and the injection change.
    let tier_cache: &mut [CachedTier] = match companion {
        Some(c) => {
            for (inj, src) in injection.iter_mut().zip(&c.source[..per]) {
                *inj += src;
            }
            c.tiers
        }
        None => tier_cache,
    };
    let mixed = params.precision.resolve() == crate::Precision::MixedF32;
    let attempt = if mixed {
        tier_cache[0].solve_mixed_with_omega(
            injection,
            voltages,
            params.inner_tolerance,
            params.max_inner_sweeps,
            params.sor_omega,
        )
    } else {
        tier_cache[0].solve_with_omega(
            injection,
            voltages,
            params.inner_tolerance,
            params.max_inner_sweeps,
            params.sor_omega,
        )
    };
    let rep = match attempt {
        Ok(rep) => rep,
        Err(SolverError::DidNotConverge {
            iterations,
            residual,
            ..
        }) => SolveReport {
            iterations,
            residual,
            converged: false,
            workspace_bytes: 0,
        },
        Err(e) => return Err(e),
    };
    Ok(VpReport {
        outer_iterations: 1,
        inner_sweeps: rep.iterations,
        pad_mismatch: rep.residual,
        final_beta: params.damping,
        converged: rep.converged,
        workspace_bytes: scratch.memory_bytes(),
    })
}

/// Copies the node-major/lane-minor batch image (`v[i * k + j]`) into
/// lane-major per-lane vectors (`out[j * n + i]`), so callers get each
/// lane's solution as one contiguous slice.
fn deinterleave(v: &[f64], out: &mut [f64], k: usize) {
    debug_assert_eq!(v.len(), out.len());
    let n = v.len() / k;
    for j in 0..k {
        let lane = &mut out[j * n..(j + 1) * n];
        for (i, x) in lane.iter_mut().enumerate() {
            *x = v[i * k + j];
        }
    }
}

/// Size of the largest 4-connected component of TSV sites (1 for any
/// pattern whose pillars never touch, e.g. uniform pitch ≥ 2).
fn largest_pillar_cluster(stack: &Stack3d) -> usize {
    let (w, h) = (stack.width(), stack.height());
    let mut seen = vec![false; w * h];
    let mut largest = 1usize;
    let mut queue = Vec::new();
    for &(sx, sy) in stack.tsv_sites() {
        let start = sy as usize * w + sx as usize;
        if seen[start] {
            continue;
        }
        seen[start] = true;
        queue.push((sx as usize, sy as usize));
        let mut size = 0usize;
        while let Some((x, y)) = queue.pop() {
            size += 1;
            let mut visit = |nx: usize, ny: usize| {
                let i = ny * w + nx;
                if !seen[i] && stack.is_tsv(nx, ny) {
                    seen[i] = true;
                    queue.push((nx, ny));
                }
            };
            if x > 0 {
                visit(x - 1, y);
            }
            if x + 1 < w {
                visit(x + 1, y);
            }
            if y > 0 {
                visit(x, y - 1);
            }
            if y + 1 < h {
                visit(x, y + 1);
            }
        }
        largest = largest.max(size);
    }
    largest
}

impl StackSolver for VpSolver {
    fn solve_stack(&self, stack: &Stack3d, net: NetKind) -> Result<StackSolution, SolverError> {
        let mut scratch = VpScratch::new(stack, &self.config)?;
        let report = run_single(
            &self.config.solve_params(),
            stack,
            net,
            &mut scratch,
            crate::Deadline::NONE,
        )?;
        Ok(StackSolution {
            voltages: std::mem::take(&mut scratch.voltages),
            report: report.to_solve_report(),
        })
    }

    fn solver_name(&self) -> &'static str {
        "voltage-propagation"
    }
}
#[cfg(test)]
mod tests {
    // These unit tests exercise the engine loops (`run_single`,
    // `run_batch`) directly on a `VpScratch` — the layer below
    // `Session`, whose routing is covered by `session.rs` and the root
    // integration tests. The former deprecated `VpSolver` shims were
    // removed; see MIGRATION.md.
    use super::*;
    use crate::Deadline;
    use voltprop_grid::{LoadProfile, TsvPattern};
    use voltprop_solvers::{residual, DirectCholesky};

    const HALF_MV: f64 = 5e-4; // the paper's accuracy budget

    /// Builds a scratch and runs the single-load engine loop on it.
    fn solve_fresh(
        config: &VpConfig,
        stack: &Stack3d,
        net: NetKind,
    ) -> Result<(VpScratch, VpReport), SolverError> {
        let mut scratch = VpScratch::new(stack, config)?;
        let report = run_single(
            &config.solve_params(),
            stack,
            net,
            &mut scratch,
            crate::Deadline::NONE,
        )?;
        Ok((scratch, report))
    }

    /// Lane `lane`'s voltages from the most recent batched solve.
    fn lane_voltages(scratch: &VpScratch, lane: usize) -> &[f64] {
        let (v, _, k) = scratch.batch_view().expect("batched solve ran");
        assert!(lane < k);
        let nn = scratch.num_nodes();
        &v[lane * nn..(lane + 1) * nn]
    }

    /// Lane `lane`'s pillar currents from the most recent batched solve.
    fn lane_pillar_currents(scratch: &VpScratch, lane: usize) -> &[f64] {
        let (_, c, k) = scratch.batch_view().expect("batched solve ran");
        assert!(lane < k);
        let ns = scratch.num_sites();
        &c[lane * ns..(lane + 1) * ns]
    }

    fn assert_matches_direct(stack: &Stack3d, net: NetKind) -> (VpScratch, VpReport, Vec<f64>) {
        let exact = DirectCholesky::new().solve_stack(stack, net).unwrap();
        let (scratch, report) = solve_fresh(&VpConfig::default(), stack, net).unwrap();
        let err = residual::max_abs_error(
            &exact.voltages[..stack.num_nodes()],
            &scratch.voltages()[..stack.num_nodes()],
        );
        assert!(
            err < HALF_MV,
            "VP deviates {err} V from direct (> 0.5 mV budget)"
        );
        assert!(report.converged);
        (scratch, report, exact.voltages)
    }

    #[test]
    fn agrees_with_direct_on_paper_default_grid() {
        let stack = Stack3d::builder(12, 12, 3)
            .load_profile(
                LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 1e-3,
                },
                5,
            )
            .build()
            .unwrap();
        let (_, report, _) = assert_matches_direct(&stack, NetKind::Power);
        assert!(
            report.outer_iterations <= 20,
            "VP should converge in few outer iterations, took {}",
            report.outer_iterations
        );
    }

    #[test]
    fn agrees_on_hotspot_loads() {
        let stack = Stack3d::builder(14, 10, 3)
            .load_profile(
                LoadProfile::Hotspot {
                    background: 1e-5,
                    peak: 2e-3,
                    centers: vec![(0, 3, 3), (2, 10, 7)],
                    radius: 2.5,
                },
                0,
            )
            .build()
            .unwrap();
        assert_matches_direct(&stack, NetKind::Power);
    }

    #[test]
    fn agrees_on_two_and_four_tiers() {
        for tiers in [2, 4] {
            let stack = Stack3d::builder(10, 10, tiers)
                .load_profile(
                    LoadProfile::UniformRandom {
                        min: 1e-5,
                        max: 5e-4,
                    },
                    7,
                )
                .build()
                .unwrap();
            assert_matches_direct(&stack, NetKind::Power);
        }
    }

    #[test]
    fn agrees_on_anisotropic_tiers() {
        let stack = Stack3d::builder(9, 11, 3)
            .tier_resistance(0, 0.015, 0.03)
            .tier_resistance(1, 0.04, 0.02)
            .tier_resistance(2, 0.025, 0.025)
            .uniform_load(4e-4)
            .build()
            .unwrap();
        assert_matches_direct(&stack, NetKind::Power);
    }

    #[test]
    fn agrees_on_ground_net() {
        let stack = Stack3d::builder(10, 10, 3)
            .load_profile(
                LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 1e-3,
                },
                9,
            )
            .build()
            .unwrap();
        let (scratch, _, _) = assert_matches_direct(&stack, NetKind::Ground);
        // Ground bounce is positive (pads converge to 0 within epsilon).
        let eps = VpConfig::default().epsilon;
        assert!(scratch.voltages().iter().all(|&v| v >= -2.0 * eps));
    }

    #[test]
    fn agrees_with_resistive_pads() {
        let stack = Stack3d::builder(8, 8, 3)
            .pad_resistance(0.2)
            .uniform_load(3e-4)
            .build()
            .unwrap();
        assert_matches_direct(&stack, NetKind::Power);
    }

    #[test]
    fn oblivious_to_tsv_distribution() {
        // §III-B-2: the method works for any TSV distribution. Uniform
        // lattices converge to arbitrary ε through the grid-lattice VDA;
        // irregular patterns use the diagonal fallback, which resolves to
        // ~2e-4 V — still well inside the paper's 0.5 mV budget, so they
        // run with a matching ε (the limitation is recorded in
        // EXPERIMENTS.md).
        let patterns: Vec<(TsvPattern, f64)> = vec![
            (TsvPattern::Uniform { pitch: 2 }, 1e-4),
            (TsvPattern::Random { count: 20, seed: 3 }, 3e-4),
            (
                TsvPattern::Clustered {
                    centers: vec![(3, 3), (9, 9)],
                    radius: 2,
                },
                3e-4,
            ),
        ];
        for (pattern, eps) in patterns {
            let stack = Stack3d::builder(12, 12, 3)
                .tsv_pattern(pattern.clone())
                .uniform_load(2e-4)
                .build()
                .unwrap();
            let exact = DirectCholesky::new()
                .solve_stack(&stack, NetKind::Power)
                .unwrap();
            let config = VpConfig::new().epsilon(eps);
            let (scratch, report) = solve_fresh(&config, &stack, NetKind::Power).unwrap();
            let err = residual::max_abs_error(&exact.voltages, scratch.voltages());
            assert!(err < HALF_MV, "{pattern:?}: error {err}");
            assert!(
                report.outer_iterations <= 60,
                "{pattern:?}: {} outer iterations",
                report.outer_iterations
            );
        }
    }

    #[test]
    fn single_tier_reduces_to_planar_rb() {
        let stack = Stack3d::builder(12, 12, 1)
            .load_profile(
                LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 1e-3,
                },
                2,
            )
            .build()
            .unwrap();
        let (scratch, report, _) = assert_matches_direct(&stack, NetKind::Power);
        assert_eq!(report.outer_iterations, 1);
        assert!(scratch.pillar_currents().is_empty());
    }

    #[test]
    fn pillar_currents_sum_to_total_load() {
        let stack = Stack3d::builder(10, 10, 3)
            .load_profile(
                LoadProfile::UniformRandom {
                    min: 1e-4,
                    max: 1e-3,
                },
                4,
            )
            .build()
            .unwrap();
        let (scratch, _) = solve_fresh(&VpConfig::default(), &stack, NetKind::Power).unwrap();
        let delivered: f64 = scratch.pillar_currents().iter().sum();
        let rel = (delivered - stack.total_load()).abs() / stack.total_load();
        assert!(
            rel < 1e-2,
            "pillar current {delivered} vs load {}",
            stack.total_load()
        );
    }

    #[test]
    fn kcl_residual_is_small() {
        let stack = Stack3d::builder(10, 10, 3)
            .uniform_load(5e-4)
            .build()
            .unwrap();
        let (scratch, _) = solve_fresh(&VpConfig::default(), &stack, NetKind::Power).unwrap();
        let r = residual::kcl_residual_inf(&stack, NetKind::Power, scratch.voltages());
        // Free nodes satisfy KCL to the inner tolerance; pinned TSV nodes
        // close their balance through the pillar current by construction.
        assert!(r < 5e-2, "KCL residual {r} A");
    }

    #[test]
    fn zero_load_grid_is_exact_immediately() {
        let stack = Stack3d::builder(8, 8, 3).build().unwrap();
        let (scratch, report) = solve_fresh(&VpConfig::default(), &stack, NetKind::Power).unwrap();
        for &v in scratch.voltages() {
            assert!((v - 1.8).abs() < 1e-9);
        }
        assert!(report.outer_iterations <= 2);
    }

    #[test]
    fn sparse_pads_agree_with_direct() {
        // The IBM-like topology: pads only on a coarse bump array, most
        // pillars pad-less.
        let mut pads = vec![];
        for y in (0..16).step_by(8) {
            for x in (0..16).step_by(8) {
                pads.push((x, y));
            }
        }
        let stack = Stack3d::builder(16, 16, 3)
            .pad_sites(pads)
            .load_profile(
                LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 5e-4,
                },
                3,
            )
            .build()
            .unwrap();
        let (_, report, _) = assert_matches_direct(&stack, NetKind::Power);
        assert!(
            report.outer_iterations <= 60,
            "sparse pads took {} outer iterations",
            report.outer_iterations
        );
    }

    #[test]
    fn single_pad_pillar_agrees_with_direct() {
        let stack = Stack3d::builder(8, 8, 2)
            .pad_sites(vec![(4, 4)])
            .tsv_pattern(TsvPattern::Uniform { pitch: 2 })
            .uniform_load(1e-4)
            .build()
            .unwrap();
        assert_matches_direct(&stack, NetKind::Power);
    }

    #[test]
    fn pads_off_pillars_unsupported() {
        let mut pads: Vec<(usize, usize)> = Stack3d::builder(8, 8, 3)
            .build()
            .unwrap()
            .tsv_sites()
            .iter()
            .map(|&(x, y)| (x as usize, y as usize))
            .collect();
        pads.push((1, 1)); // not a TSV site (pitch 2 → odd coords are free)
        let stack = Stack3d::builder(8, 8, 3)
            .pad_sites(pads)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        assert!(matches!(
            VpScratch::new(&stack, &VpConfig::default()),
            Err(SolverError::Unsupported { .. })
        ));
    }

    #[test]
    fn budget_exhaustion_is_error() {
        let stack = Stack3d::builder(10, 10, 3)
            .uniform_load(1e-3)
            .build()
            .unwrap();
        let config = VpConfig::new().epsilon(1e-13).max_outer_iterations(2);
        assert!(matches!(
            solve_fresh(&config, &stack, NetKind::Power),
            Err(SolverError::DidNotConverge { .. })
        ));
    }

    #[test]
    fn stack_solver_interface() {
        let stack = Stack3d::builder(8, 8, 3)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let sol = VpSolver::default()
            .solve_stack(&stack, NetKind::Power)
            .unwrap();
        assert_eq!(sol.voltages.len(), stack.num_nodes());
        assert_eq!(VpSolver::default().solver_name(), "voltage-propagation");
    }

    #[test]
    fn workspace_is_linear_in_nodes() {
        // The memory pitch of the paper: VP's workspace is a few vectors,
        // no assembled matrix. ~9 f64-sized arrays per node, plus the
        // mixed-precision path's f32 shadow factors and residual diagonal
        // (~2.5 more f64-equivalents), is the cap.
        let stack = Stack3d::builder(20, 20, 3)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let (_, report) = solve_fresh(&VpConfig::default(), &stack, NetKind::Power).unwrap();
        let per_node = report.workspace_bytes as f64 / stack.num_nodes() as f64;
        assert!(per_node < 11.5 * 8.0, "workspace {per_node} bytes/node");
    }

    #[test]
    fn parallel_solve_matches_sequential_on_multi_tier_stack() {
        // The parallelism knob must not change the answer: red-black
        // parallel tier sweeps and the sequential schedule both converge
        // to the same solution within solver tolerance.
        let stack = Stack3d::builder(14, 12, 4)
            .load_profile(
                LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 1e-3,
                },
                21,
            )
            .build()
            .unwrap();
        let exact = DirectCholesky::new()
            .solve_stack(&stack, NetKind::Power)
            .unwrap();
        let (seq, _) = solve_fresh(&VpConfig::default(), &stack, NetKind::Power).unwrap();
        for threads in [2usize, 4] {
            let config = VpConfig::new().parallelism(threads);
            let (par, report) = solve_fresh(&config, &stack, NetKind::Power).unwrap();
            assert!(report.converged);
            // Accuracy: the parallel schedule meets the same 0.5 mV paper
            // budget against the exact solution...
            let err = residual::max_abs_error(&exact.voltages, par.voltages());
            assert!(
                err < HALF_MV,
                "parallelism {threads}: error {err} V vs direct"
            );
            // ...and therefore sits within 2ε-ish of the sequential
            // iterate (each schedule independently stops within ε).
            let drift = residual::max_abs_error(seq.voltages(), par.voltages());
            assert!(
                drift < 3.0 * VpConfig::default().epsilon,
                "parallelism {threads}: drift {drift} V vs sequential"
            );
        }
    }

    #[test]
    fn scratch_reuse_reproduces_fresh_solves() {
        let stack_a = Stack3d::builder(10, 10, 3)
            .load_profile(
                LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 1e-3,
                },
                5,
            )
            .build()
            .unwrap();
        let config = VpConfig::default();
        let params = config.solve_params();
        let mut scratch = VpScratch::new(&stack_a, &config).unwrap();
        let r1 = run_single(
            &params,
            &stack_a,
            NetKind::Power,
            &mut scratch,
            Deadline::NONE,
        )
        .unwrap();
        assert!(r1.converged);
        let (fresh, _) = solve_fresh(&config, &stack_a, NetKind::Power).unwrap();
        assert_eq!(scratch.voltages(), fresh.voltages());
        assert_eq!(scratch.pillar_currents(), fresh.pillar_currents());

        // Same geometry, different loads: reuse without rebuilding.
        let mut stack_b = stack_a.clone();
        stack_b
            .set_loads(stack_a.loads().iter().map(|l| l * 1.5).collect())
            .unwrap();
        assert!(scratch.geometry_matches(&stack_b));
        let r2 = run_single(
            &params,
            &stack_b,
            NetKind::Power,
            &mut scratch,
            Deadline::NONE,
        )
        .unwrap();
        assert!(r2.converged);
        let (fresh_b, _) = solve_fresh(&config, &stack_b, NetKind::Power).unwrap();
        assert_eq!(scratch.voltages(), fresh_b.voltages());

        // Different geometry: the scratch reports the mismatch (callers
        // build a new one — nothing rebuilds silently anymore).
        let stack_c = Stack3d::builder(8, 8, 2)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        assert!(!scratch.geometry_matches(&stack_c));
    }

    /// `k` load vectors derived from the stack's own loads with different
    /// magnitudes (so lanes converge along different trajectories).
    fn load_sweep(stack: &Stack3d, k: usize) -> Vec<f64> {
        let mut loads = Vec::with_capacity(k * stack.num_nodes());
        for j in 0..k {
            let scale = 0.5 + 0.4 * j as f64;
            loads.extend(stack.loads().iter().map(|l| scale * l));
        }
        loads
    }

    fn assert_batch_matches_sequential(stack: &Stack3d, config: VpConfig, k: usize) {
        let params = config.solve_params();
        let loads = load_sweep(stack, k);
        let mut scratch = VpScratch::new(stack, &config).unwrap();
        let mut reports = Vec::new();
        run_batch(
            &params,
            stack,
            NetKind::Power,
            &loads,
            &mut scratch,
            &mut reports,
            Deadline::NONE,
        )
        .unwrap();
        assert_eq!(reports.len(), k);
        let nn = stack.num_nodes();
        let mut solo_scratch = VpScratch::new(stack, &config).unwrap();
        for j in 0..k {
            let mut lane_stack = stack.clone();
            lane_stack
                .set_loads(loads[j * nn..(j + 1) * nn].to_vec())
                .unwrap();
            let solo = run_single(
                &params,
                &lane_stack,
                NetKind::Power,
                &mut solo_scratch,
                Deadline::NONE,
            )
            .unwrap();
            assert_eq!(
                lane_voltages(&scratch, j),
                solo_scratch.voltages(),
                "lane {j} voltages must be bitwise identical to the sequential solve"
            );
            assert_eq!(
                lane_pillar_currents(&scratch, j),
                solo_scratch.pillar_currents(),
                "lane {j} pillar currents"
            );
            assert!(reports[j].converged);
            assert_eq!(
                reports[j].outer_iterations, solo.outer_iterations,
                "lane {j}"
            );
            assert_eq!(reports[j].inner_sweeps, solo.inner_sweeps, "lane {j}");
            assert_eq!(
                reports[j].pad_mismatch.to_bits(),
                solo.pad_mismatch.to_bits(),
                "lane {j}"
            );
        }
    }

    #[test]
    fn batch_matches_sequential_solves_bitwise_multi_tier() {
        let stack = Stack3d::builder(10, 10, 3)
            .load_profile(
                LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 1e-3,
                },
                5,
            )
            .build()
            .unwrap();
        // Sequential and red-black (parallel) inner schedules.
        assert_batch_matches_sequential(&stack, VpConfig::new(), 3);
        assert_batch_matches_sequential(&stack, VpConfig::new().parallelism(2), 3);
    }

    #[test]
    fn batch_matches_sequential_solves_bitwise_single_tier() {
        let stack = Stack3d::builder(12, 12, 1)
            .load_profile(
                LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 1e-3,
                },
                2,
            )
            .build()
            .unwrap();
        assert_batch_matches_sequential(&stack, VpConfig::new(), 4);
        assert_batch_matches_sequential(&stack, VpConfig::new().parallelism(4), 4);
    }

    #[test]
    fn batch_scratch_is_warm_on_second_call() {
        let stack = Stack3d::builder(8, 8, 2)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let config = VpConfig::default();
        let params = config.solve_params();
        let loads = load_sweep(&stack, 3);
        let mut scratch = VpScratch::new(&stack, &config).unwrap();
        let mut reports = Vec::new();
        run_batch(
            &params,
            &stack,
            NetKind::Power,
            &loads,
            &mut scratch,
            &mut reports,
            Deadline::NONE,
        )
        .unwrap();
        assert_eq!(scratch.batch_lanes(), 3);
        let first: Vec<Vec<f64>> = (0..3)
            .map(|j| lane_voltages(&scratch, j).to_vec())
            .collect();
        // Second call reuses the arena and reproduces the solution.
        run_batch(
            &params,
            &stack,
            NetKind::Power,
            &loads,
            &mut scratch,
            &mut reports,
            Deadline::NONE,
        )
        .unwrap();
        for j in 0..3 {
            assert_eq!(lane_voltages(&scratch, j), &first[j][..]);
        }
        let mem = scratch.memory_bytes();
        assert_eq!(reports[0].workspace_bytes, mem);
    }

    #[test]
    fn batch_rejects_malformed_loads() {
        let stack = Stack3d::builder(8, 8, 2)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let config = VpConfig::default();
        let params = config.solve_params();
        let mut scratch = VpScratch::new(&stack, &config).unwrap();
        let mut reports = Vec::new();
        let nn = stack.num_nodes();
        for bad in [
            vec![],
            vec![1e-4; nn + 1],
            vec![-1e-4; nn],
            vec![f64::NAN; nn],
        ] {
            assert!(
                matches!(
                    run_batch(
                        &params,
                        &stack,
                        NetKind::Power,
                        &bad,
                        &mut scratch,
                        &mut reports,
                        Deadline::NONE
                    ),
                    Err(SolverError::Unsupported { .. })
                ),
                "loads of len {} accepted",
                bad.len()
            );
        }
    }

    #[test]
    fn forced_did_not_converge_surfaces_true_report_fields() {
        // Single-tier with a starved sweep budget: the report must carry
        // the inner solve's real residual and status, not the previously
        // hardcoded `pad_mismatch: 0.0` / `converged: true`.
        let stack = Stack3d::builder(16, 16, 1)
            .uniform_load(1e-3)
            .build()
            .unwrap();
        let config = VpConfig::new().inner_tolerance(1e-14).max_inner_sweeps(2);
        let (_, report) = solve_fresh(&config, &stack, NetKind::Power).unwrap();
        assert!(!report.converged, "2 sweeps cannot reach 1e-14");
        assert_eq!(report.inner_sweeps, 2);
        assert!(
            report.pad_mismatch.is_finite() && report.pad_mismatch > 1e-14,
            "true residual must be reported, got {}",
            report.pad_mismatch
        );
        // The batched path reports the same per-lane truth.
        let mut scratch = VpScratch::new(&stack, &config).unwrap();
        let mut reports = Vec::new();
        run_batch(
            &config.solve_params(),
            &stack,
            NetKind::Power,
            &load_sweep(&stack, 2),
            &mut scratch,
            &mut reports,
            Deadline::NONE,
        )
        .unwrap();
        for (j, rep) in reports.iter().enumerate() {
            assert!(!rep.converged, "lane {j}");
            assert!(rep.pad_mismatch > 1e-14, "lane {j}: {}", rep.pad_mismatch);
        }
        // A converged single-tier solve reports its actual residual too.
        let (_, ok) = solve_fresh(&VpConfig::default(), &stack, NetKind::Power).unwrap();
        assert!(ok.converged);
        assert!(
            ok.pad_mismatch > 0.0 && ok.pad_mismatch < VpConfig::default().inner_tolerance,
            "converged residual should be the real (non-hardcoded) value, got {}",
            ok.pad_mismatch
        );
    }

    #[test]
    fn workspace_bytes_reported_uniformly() {
        // Every return path must report the scratch's real footprint.
        let stack = Stack3d::builder(10, 10, 3)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let (scratch, rep) = solve_fresh(&VpConfig::default(), &stack, NetKind::Power).unwrap();
        assert_eq!(rep.workspace_bytes, scratch.memory_bytes());
        let single = Stack3d::builder(10, 10, 1)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let (scratch1, rep1) = solve_fresh(&VpConfig::default(), &single, NetKind::Power).unwrap();
        assert_eq!(rep1.workspace_bytes, scratch1.memory_bytes());
    }

    #[test]
    fn scratch_memory_is_reported() {
        let stack = Stack3d::builder(10, 10, 3)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let scratch = VpScratch::new(&stack, &VpConfig::default()).unwrap();
        assert!(scratch.memory_bytes() > 0);
    }
}
