//! Property-based tests for the sparse linear algebra kernels.
//!
//! The properties are exercised over deterministic seeded case sweeps (the
//! workspace builds offline without the `proptest` crate); each test runs
//! the same assertion across dozens of generated instances.

use voltprop_sparse::ordering::rcm;
use voltprop_sparse::rng::SmallRng;
use voltprop_sparse::tridiag::solve_tridiag;
use voltprop_sparse::{Cholesky, CsrMatrix, IncompleteCholesky, Permutation, TripletMatrix};

/// Random triplet list for an n×n matrix.
fn triplets(g: &mut SmallRng, n: usize, max_entries: usize) -> Vec<(usize, usize, f64)> {
    let count = g.usize_below(max_entries + 1);
    (0..count)
        .map(|_| (g.usize_below(n), g.usize_below(n), g.f64_in(-10.0, 10.0)))
        .collect()
}

/// A random connected resistor-network SPD matrix of size 2..=20: a path
/// (guarantees connectivity) plus random extra conductances plus at least
/// one grounding stamp.
fn spd_matrix(g: &mut SmallRng) -> CsrMatrix {
    let n = 2 + g.usize_below(18);
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n - 1 {
        t.stamp_conductance(i, i + 1, 1.0);
    }
    for _ in 0..g.usize_below(3 * n + 1) {
        let (a, b) = (g.usize_below(n), g.usize_below(n));
        if a != b {
            t.stamp_conductance(a, b, g.f64_in(0.1, 10.0));
        }
    }
    for _ in 0..1 + g.usize_below(3) {
        t.stamp_to_ground(g.usize_below(n), g.f64_in(0.1, 5.0));
    }
    t.to_csr()
}

#[test]
fn csr_get_equals_triplet_sum() {
    for case in 0..40u64 {
        let mut g = SmallRng::new(case);
        let entries = triplets(&mut g, 8, 40);
        let mut t = TripletMatrix::new(8, 8);
        let mut dense = vec![vec![0.0f64; 8]; 8];
        for &(r, c, v) in &entries {
            t.push(r, c, v);
            dense[r][c] += v;
        }
        let m = t.to_csr();
        for r in 0..8 {
            for c in 0..8 {
                assert!((m.get(r, c) - dense[r][c]).abs() < 1e-12, "case {case}");
            }
        }
    }
}

#[test]
fn spmv_matches_dense_reference() {
    for case in 0..40u64 {
        let mut g = SmallRng::new(1000 + case);
        let entries = triplets(&mut g, 10, 60);
        let x: Vec<f64> = (0..10).map(|_| g.f64_in(-5.0, 5.0)).collect();
        let mut t = TripletMatrix::new(10, 10);
        for &(r, c, v) in &entries {
            t.push(r, c, v);
        }
        let m = t.to_csr();
        let d = m.to_dense();
        let y = m.mul_vec(&x);
        for r in 0..10 {
            let want: f64 = (0..10).map(|c| d[r][c] * x[c]).sum();
            assert!((y[r] - want).abs() < 1e-9, "case {case} row {r}");
        }
    }
}

#[test]
fn transpose_is_involution() {
    for case in 0..40u64 {
        let mut g = SmallRng::new(2000 + case);
        let entries = triplets(&mut g, 9, 50);
        let mut t = TripletMatrix::new(9, 9);
        for &(r, c, v) in &entries {
            t.push(r, c, v);
        }
        let m = t.to_csr();
        assert_eq!(m.transpose().transpose(), m, "case {case}");
    }
}

#[test]
fn cholesky_residual_is_tiny() {
    for case in 0..40u64 {
        let mut g = SmallRng::new(3000 + case);
        let a = spd_matrix(&mut g);
        let n = a.nrows();
        let seed = g.next_u64() % 1000;
        let b: Vec<f64> = (0..n)
            .map(|i| ((i as u64 * 31 + seed) % 17) as f64 - 8.0)
            .collect();
        let f = Cholesky::factor(&a).unwrap();
        let x = f.solve(&b);
        let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1.0);
        assert!(a.residual(&x, &b) / bnorm < 1e-9, "case {case}");
    }
}

#[test]
fn ichol_solve_is_finite_and_definite() {
    for case in 0..40u64 {
        let mut g = SmallRng::new(4000 + case);
        let a = spd_matrix(&mut g);
        let n = a.nrows();
        let ic = IncompleteCholesky::new(&a).unwrap();
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let z = ic.solve(&r);
        assert!(z.iter().all(|v| v.is_finite()), "case {case}");
        // M⁻¹ is SPD: rᵀ M⁻¹ r > 0 for r ≠ 0.
        let quad: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        assert!(quad > 0.0, "case {case}");
    }
}

#[test]
fn tridiag_matches_cholesky() {
    for case in 0..40u64 {
        let mut g = SmallRng::new(5000 + case);
        // Diagonally dominant symmetric tridiagonal system: solve with
        // Thomas and with sparse Cholesky; answers must agree.
        let n = 2 + g.usize_below(28);
        let off: Vec<f64> = (0..n - 1).map(|_| -(0.1 + g.f64())).collect();
        let diag: Vec<f64> = (0..n)
            .map(|i| {
                let mut d = 0.5 + g.f64();
                if i > 0 {
                    d += off[i - 1].abs();
                }
                if i < n - 1 {
                    d += off[i].abs();
                }
                d
            })
            .collect();
        let rhs: Vec<f64> = (0..n).map(|_| g.f64_in(-1.0, 1.0)).collect();

        let x_thomas = solve_tridiag(&off, &diag, &off, &rhs).unwrap();

        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, diag[i]);
        }
        for i in 0..n - 1 {
            t.push(i, i + 1, off[i]);
            t.push(i + 1, i, off[i]);
        }
        let a = t.to_csr();
        let x_chol = Cholesky::factor(&a).unwrap().solve(&rhs);
        for i in 0..n {
            assert!(
                (x_thomas[i] - x_chol[i]).abs() < 1e-8,
                "case {case} row {i}"
            );
        }
    }
}

#[test]
fn permutation_roundtrip() {
    for case in 0..40u64 {
        let mut g = SmallRng::new(6000 + case);
        let n = 1 + g.usize_below(49);
        // Fisher–Yates.
        let mut map: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = g.usize_below(i + 1);
            map.swap(i, j);
        }
        let p = Permutation::from_new_to_old(map).unwrap();
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        assert_eq!(p.apply_inverse(&p.apply(&x)), x.clone(), "case {case}");
        assert_eq!(p.apply(&p.apply_inverse(&x)), x, "case {case}");
    }
}

#[test]
fn rcm_permuted_solve_matches_natural() {
    for case in 0..40u64 {
        let mut g = SmallRng::new(7000 + case);
        let a = spd_matrix(&mut g);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let p = rcm(&a);
        let ap = a.permute_sym(&p);
        let xp = Cholesky::factor(&ap).unwrap().solve(&p.apply(&b));
        let x = Cholesky::factor(&a).unwrap().solve(&b);
        let x_back = p.apply_inverse(&xp);
        for i in 0..n {
            assert!((x[i] - x_back[i]).abs() < 1e-7, "case {case} row {i}");
        }
    }
}
