//! Property-based tests for the sparse linear algebra kernels.

use proptest::prelude::*;
use voltprop_sparse::ordering::rcm;
use voltprop_sparse::tridiag::solve_tridiag;
use voltprop_sparse::{Cholesky, CsrMatrix, IncompleteCholesky, Permutation, TripletMatrix};

/// Strategy: random triplet list for an n×n matrix.
fn triplets(n: usize, max_entries: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec(
        (0..n, 0..n, -10.0f64..10.0),
        0..max_entries,
    )
}

/// Strategy: a random connected resistor-network SPD matrix of size 2..=20.
/// Built as a path (guarantees connectivity) plus random extra conductances
/// plus at least one grounding stamp.
fn spd_matrix() -> impl Strategy<Value = CsrMatrix> {
    (2usize..20).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((0..n, 0..n, 0.1f64..10.0), 0..3 * n),
            prop::collection::vec((0..n, 0.1f64..5.0), 1..4),
        )
            .prop_map(|(n, extra, grounds)| {
                let mut t = TripletMatrix::new(n, n);
                for i in 0..n - 1 {
                    t.stamp_conductance(i, i + 1, 1.0);
                }
                for (a, b, g) in extra {
                    if a != b {
                        t.stamp_conductance(a, b, g);
                    }
                }
                for (i, g) in grounds {
                    t.stamp_to_ground(i, g);
                }
                t.to_csr()
            })
    })
}

proptest! {
    #[test]
    fn csr_get_equals_triplet_sum(entries in triplets(8, 40)) {
        let mut t = TripletMatrix::new(8, 8);
        let mut dense = vec![vec![0.0f64; 8]; 8];
        for &(r, c, v) in &entries {
            t.push(r, c, v);
            dense[r][c] += v;
        }
        let m = t.to_csr();
        for r in 0..8 {
            for c in 0..8 {
                prop_assert!((m.get(r, c) - dense[r][c]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn spmv_matches_dense_reference(entries in triplets(10, 60),
                                    x in prop::collection::vec(-5.0f64..5.0, 10)) {
        let mut t = TripletMatrix::new(10, 10);
        for &(r, c, v) in &entries {
            t.push(r, c, v);
        }
        let m = t.to_csr();
        let d = m.to_dense();
        let y = m.mul_vec(&x);
        for r in 0..10 {
            let want: f64 = (0..10).map(|c| d[r][c] * x[c]).sum();
            prop_assert!((y[r] - want).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_is_involution(entries in triplets(9, 50)) {
        let mut t = TripletMatrix::new(9, 9);
        for &(r, c, v) in &entries {
            t.push(r, c, v);
        }
        let m = t.to_csr();
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn cholesky_residual_is_tiny(a in spd_matrix(),
                                 seed in 0u64..1000) {
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i as u64 * 31 + seed) % 17) as f64 - 8.0).collect();
        let f = Cholesky::factor(&a).unwrap();
        let x = f.solve(&b);
        let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1.0);
        prop_assert!(a.residual(&x, &b) / bnorm < 1e-9);
    }

    #[test]
    fn ichol_solve_is_finite_and_definite(a in spd_matrix()) {
        let n = a.nrows();
        let ic = IncompleteCholesky::new(&a).unwrap();
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let z = ic.solve(&r);
        prop_assert!(z.iter().all(|v| v.is_finite()));
        // M⁻¹ is SPD: rᵀ M⁻¹ r > 0 for r ≠ 0.
        let quad: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        prop_assert!(quad > 0.0);
    }

    #[test]
    fn tridiag_matches_cholesky(n in 2usize..30, seed in 0u64..500) {
        // Diagonally dominant symmetric tridiagonal system: solve with
        // Thomas and with sparse Cholesky; answers must agree.
        let mut s = seed.wrapping_add(7);
        let mut rnd = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64)
        };
        let off: Vec<f64> = (0..n - 1).map(|_| -(0.1 + rnd())).collect();
        let diag: Vec<f64> = (0..n)
            .map(|i| {
                let mut d = 0.5 + rnd();
                if i > 0 { d += off[i - 1].abs(); }
                if i < n - 1 { d += off[i].abs(); }
                d
            })
            .collect();
        let rhs: Vec<f64> = (0..n).map(|_| rnd() * 2.0 - 1.0).collect();

        let x_thomas = solve_tridiag(&off, &diag, &off, &rhs).unwrap();

        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, diag[i]);
        }
        for i in 0..n - 1 {
            t.push(i, i + 1, off[i]);
            t.push(i + 1, i, off[i]);
        }
        let a = t.to_csr();
        let x_chol = Cholesky::factor(&a).unwrap().solve(&rhs);
        for i in 0..n {
            prop_assert!((x_thomas[i] - x_chol[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn permutation_roundtrip(n in 1usize..50, seed in 0u64..1000) {
        // Fisher–Yates with a tiny LCG.
        let mut map: Vec<u32> = (0..n as u32).collect();
        let mut s = seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            map.swap(i, j);
        }
        let p = Permutation::from_new_to_old(map).unwrap();
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        prop_assert_eq!(p.apply_inverse(&p.apply(&x)), x.clone());
        prop_assert_eq!(p.apply(&p.apply_inverse(&x)), x);
    }

    #[test]
    fn rcm_permuted_solve_matches_natural(a in spd_matrix()) {
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let p = rcm(&a);
        let ap = a.permute_sym(&p);
        let xp = Cholesky::factor(&ap).unwrap().solve(&p.apply(&b));
        let x = Cholesky::factor(&a).unwrap().solve(&b);
        let x_back = p.apply_inverse(&xp);
        for i in 0..n {
            prop_assert!((x[i] - x_back[i]).abs() < 1e-7);
        }
    }
}
