//! A small deterministic pseudo-random number generator.
//!
//! The workspace builds without external dependencies, so the seeded load
//! generators, TSV-pattern synthesis, and randomized test sweeps across
//! every crate use this splitmix64-based generator instead of the `rand`
//! crate (it lives in the base crate so all layers share one
//! implementation). It is deterministic per seed across platforms, which
//! is all benchmark synthesis needs — it makes no cryptographic claims.

/// A seeded splitmix64 generator.
///
/// # Example
///
/// ```
/// use voltprop_sparse::rng::SmallRng;
///
/// let mut a = SmallRng::new(7);
/// let mut b = SmallRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.f64_in(1.0, 2.0);
/// assert!((1.0..=2.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SmallRng {
            // Pre-mix so small consecutive seeds decorrelate immediately.
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 mantissa bits of the stream.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[min, max]`; returns `min` when the range is
    /// degenerate (`max <= min`).
    pub fn f64_in(&mut self, min: f64, max: f64) -> f64 {
        if max > min {
            min + (max - min) * self.f64()
        } else {
            min
        }
    }

    /// Uniform draw in `0..bound` (`0` when `bound == 0`).
    pub fn usize_below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.usize_below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::new(42);
        let mut b = SmallRng::new(42);
        let mut c = SmallRng::new(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SmallRng::new(1);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_in_respects_bounds_and_degenerate_range() {
        let mut r = SmallRng::new(2);
        for _ in 0..100 {
            let x = r.f64_in(-3.0, 5.0);
            assert!((-3.0..=5.0).contains(&x));
        }
        assert_eq!(r.f64_in(4.0, 4.0), 4.0);
        assert_eq!(r.f64_in(4.0, 1.0), 4.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::new(3);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "seed 3 should permute");
    }

    #[test]
    fn usize_below_handles_zero() {
        let mut r = SmallRng::new(4);
        assert_eq!(r.usize_below(0), 0);
        for _ in 0..50 {
            assert!(r.usize_below(7) < 7);
        }
    }
}
