//! Sparse linear algebra substrate for 3-D power grid analysis.
//!
//! This crate provides the numerical kernels that the rest of the `voltprop`
//! workspace builds on:
//!
//! * [`TripletMatrix`] — a coordinate-format builder for sparse matrices,
//!   convenient for MNA stamping.
//! * [`CsrMatrix`] — compressed sparse row storage with matrix-vector
//!   products, symmetric permutation, and structure queries. Because all
//!   matrices in this workspace are symmetric, a `CsrMatrix` can equally be
//!   read as compressed sparse *column* storage, which the factorizations
//!   exploit.
//! * [`tridiag`] — the Thomas algorithm used by the row-based power grid
//!   solver (the `5N-4` multiplication kernel cited in the paper), plus
//!   the prefactored [`tridiag::FactoredSegments`] arena whose
//!   substitution runs one right-hand side
//!   ([`tridiag::FactoredSegments::solve_streamed`]) or a whole batch
//!   ([`tridiag::FactoredSegments::solve_batch`], position-major /
//!   lane-minor layout: entry `(i, j)` at `buf[i * lanes + j]`, so the
//!   inner loop over the lanes is unit-stride and every factor
//!   coefficient is loaded once per row).
//! * [`ordering`] — reverse Cuthill–McKee fill-reducing ordering and
//!   permutation utilities.
//! * [`Cholesky`] — a simplicial sparse Cholesky factorization
//!   (elimination-tree based, up-looking), the stand-in for SPICE's direct
//!   DC operating-point solve.
//! * [`IncompleteCholesky`] — zero-fill IC(0), the default PCG
//!   preconditioner.
//!
//! # Example
//!
//! Factor and solve a small symmetric positive definite system:
//!
//! ```
//! use voltprop_sparse::{TripletMatrix, Cholesky};
//!
//! # fn main() -> Result<(), voltprop_sparse::SparseError> {
//! let mut a = TripletMatrix::new(3, 3);
//! a.push(0, 0, 4.0); a.push(1, 1, 5.0); a.push(2, 2, 6.0);
//! a.push(0, 1, -1.0); a.push(1, 0, -1.0);
//! a.push(1, 2, -2.0); a.push(2, 1, -2.0);
//! let a = a.to_csr();
//!
//! let chol = Cholesky::factor(&a)?;
//! let x = chol.solve(&[3.0, 2.0, 4.0]);
//! let r = a.residual(&x, &[3.0, 2.0, 4.0]);
//! assert!(r < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod coo;
mod csr;
mod error;
mod ichol;
pub mod ordering;
pub mod rng;
pub mod tridiag;
pub mod vec_ops;

pub use cholesky::Cholesky;
pub use coo::TripletMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use ichol::IncompleteCholesky;
pub use ordering::Permutation;
