use crate::{CsrMatrix, SparseError};

/// Zero-fill incomplete Cholesky factorization IC(0).
///
/// `L` shares the sparsity pattern of the lower triangle of `A`; the
/// approximate factorization `A ≈ L Lᵀ` serves as the default PCG
/// preconditioner in `voltprop-solvers`, standing in for the multigrid
/// preconditioner of the paper's comparator.
///
/// IC(0) can break down on matrices that are positive definite but not
/// H-matrices; the constructor retries with a progressively larger diagonal
/// shift `A + αD` (Manteuffel-style) and records the shift that succeeded.
///
/// # Example
///
/// ```
/// use voltprop_sparse::{TripletMatrix, IncompleteCholesky};
///
/// # fn main() -> Result<(), voltprop_sparse::SparseError> {
/// let mut t = TripletMatrix::new(2, 2);
/// t.stamp_conductance(0, 1, 1.0);
/// t.stamp_to_ground(0, 1.0);
/// t.stamp_to_ground(1, 1.0);
/// let a = t.to_csr();
/// let ic = IncompleteCholesky::new(&a)?;
/// let z = ic.solve(&[1.0, 1.0]);
/// assert_eq!(z.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    /// Lower triangle of A's pattern with factored values, CSR, diagonal last
    /// in each row.
    l: CsrMatrix,
    /// f32 shadow of the factored values (same CSR layout), built once at
    /// construction for the mixed-precision preconditioner application
    /// ([`IncompleteCholesky::solve_into_f32`]).
    values32: Vec<f32>,
    shift: f64,
}

impl IncompleteCholesky {
    /// Computes IC(0) of a symmetric positive definite matrix.
    ///
    /// # Errors
    ///
    /// * [`SparseError::DimensionMismatch`] if `a` is not square.
    /// * [`SparseError::Empty`] for a 0×0 matrix.
    /// * [`SparseError::NotPositiveDefinite`] if factorization breaks down
    ///   even after the maximum diagonal shift.
    pub fn new(a: &CsrMatrix) -> Result<Self, SparseError> {
        let n = a.nrows();
        if n == 0 {
            return Err(SparseError::Empty);
        }
        if a.nrows() != a.ncols() {
            return Err(SparseError::DimensionMismatch {
                expected: (n, n),
                got: a.shape(),
            });
        }
        let lower = a.lower_triangle();
        // Verify each row carries its structural diagonal (it is the last
        // entry because columns are sorted ascending).
        for i in 0..n {
            let (cols, _) = lower.row(i);
            match cols.last() {
                Some(&c) if c as usize == i => {}
                _ => return Err(SparseError::NotPositiveDefinite { column: i }),
            }
        }

        let max_diag = lower
            .diag()
            .iter()
            .fold(0.0f64, |m, d| m.max(d.abs()))
            .max(f64::MIN_POSITIVE);
        let mut shift = 0.0;
        for attempt in 0..9 {
            match Self::try_factor(&lower, shift) {
                Ok(l) => {
                    let values32 = l.values().iter().map(|&v| v as f32).collect();
                    return Ok(IncompleteCholesky { l, values32, shift });
                }
                Err(SparseError::NotPositiveDefinite { column }) => {
                    if attempt == 8 {
                        return Err(SparseError::NotPositiveDefinite { column });
                    }
                    shift = if shift == 0.0 {
                        1e-8 * max_diag
                    } else {
                        shift * 10.0
                    };
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on the final attempt")
    }

    fn try_factor(lower: &CsrMatrix, shift: f64) -> Result<CsrMatrix, SparseError> {
        let n = lower.nrows();
        let mut l = lower.clone();
        // dpos[i]: index of the diagonal entry of row i in the value array.
        let dpos: Vec<usize> = (0..n).map(|i| l.indptr()[i + 1] - 1).collect();
        if shift != 0.0 {
            for i in 0..n {
                let p = dpos[i];
                l.values_mut()[p] += shift * l.values()[p].abs().max(1.0);
            }
        }
        for i in 0..n {
            let (row_lo, row_hi) = (l.indptr()[i], l.indptr()[i + 1]);
            for p in row_lo..row_hi - 1 {
                let k = l.indices()[p] as usize;
                // s = Σ_{j<k} L[i,j] · L[k,j] over the shared pattern.
                let s = sparse_row_dot(&l, i, k, row_lo, p);
                let dk = l.values()[dpos[k]];
                let v = (l.values()[p] - s) / dk;
                l.values_mut()[p] = v;
            }
            // Diagonal: sqrt(a_ii - Σ_{j<i} L[i,j]²).
            let mut d = l.values()[dpos[i]];
            for p in row_lo..row_hi - 1 {
                let v = l.values()[p];
                d -= v * v;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(SparseError::NotPositiveDefinite { column: i });
            }
            l.values_mut()[dpos[i]] = d.sqrt();
        }
        Ok(l)
    }

    /// The diagonal shift α that was needed for the factorization to
    /// succeed (`0.0` in the common case).
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Number of nonzeros stored in `L`.
    pub fn nnz(&self) -> usize {
        self.l.nnz()
    }

    /// Estimated heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.l.memory_bytes() + self.values32.capacity() * std::mem::size_of::<f32>()
    }

    /// Applies the preconditioner: solves `L Lᵀ z = r`.
    ///
    /// # Panics
    ///
    /// Panics if `r.len()` differs from the matrix dimension.
    pub fn solve(&self, r: &[f64]) -> Vec<f64> {
        let mut z = r.to_vec();
        self.solve_in_place(&mut z);
        z
    }

    /// Applies the preconditioner out of place: solves `L Lᵀ z = r`
    /// without touching `r` and without allocating — the warm-path
    /// variant reusable solver engines call on their pinned scratch.
    ///
    /// # Panics
    ///
    /// Panics if `r.len()` or `z.len()` differ from the matrix dimension.
    pub fn solve_into(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), z.len(), "rhs/solution length mismatch");
        z.copy_from_slice(r);
        self.solve_in_place(z);
    }

    /// In-place variant of [`IncompleteCholesky::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` differs from the matrix dimension.
    pub fn solve_in_place(&self, z: &mut [f64]) {
        let n = self.l.nrows();
        assert_eq!(z.len(), n, "rhs length mismatch");
        let indptr = self.l.indptr();
        let indices = self.l.indices();
        let values = self.l.values();
        // Forward: L y = r. Row i of L holds all j ≤ i, diagonal last.
        for i in 0..n {
            let (lo, hi) = (indptr[i], indptr[i + 1]);
            let mut acc = z[i];
            for p in lo..hi - 1 {
                acc = (-values[p]).mul_add(z[indices[p] as usize], acc);
            }
            z[i] = acc / values[hi - 1];
        }
        // Backward: Lᵀ x = y (column sweep over rows of L).
        for i in (0..n).rev() {
            let (lo, hi) = (indptr[i], indptr[i + 1]);
            z[i] /= values[hi - 1];
            let zi = z[i];
            for p in lo..hi - 1 {
                let j = indices[p] as usize;
                z[j] = (-values[p]).mul_add(zi, z[j]);
            }
        }
    }

    /// Mixed-precision preconditioner application: solves `L Lᵀ z ≈ r`
    /// with both triangular sweeps in f32 through the shadow values,
    /// using `z32` (matrix-dimension length) as the working image. The
    /// preconditioner this applies is *fixed* — the same slightly
    /// perturbed `M₃₂` every call — so PCG's theory is untouched; only
    /// the preconditioner quality changes, by f32 roundoff. No
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `r.len()`, `z.len()`, or `z32.len()` differ from the
    /// matrix dimension.
    pub fn solve_into_f32(&self, r: &[f64], z: &mut [f64], z32: &mut [f32]) {
        let n = self.l.nrows();
        assert_eq!(r.len(), n, "rhs length mismatch");
        assert_eq!(z.len(), n, "solution length mismatch");
        assert_eq!(z32.len(), n, "f32 scratch length mismatch");
        let indptr = self.l.indptr();
        let indices = self.l.indices();
        let values = &self.values32;
        for (s, &x) in z32.iter_mut().zip(r.iter()) {
            *s = x as f32;
        }
        for i in 0..n {
            let (lo, hi) = (indptr[i], indptr[i + 1]);
            let mut acc = z32[i];
            for p in lo..hi - 1 {
                acc = (-values[p]).mul_add(z32[indices[p] as usize], acc);
            }
            z32[i] = acc / values[hi - 1];
        }
        for i in (0..n).rev() {
            let (lo, hi) = (indptr[i], indptr[i + 1]);
            z32[i] /= values[hi - 1];
            let zi = z32[i];
            for p in lo..hi - 1 {
                let j = indices[p] as usize;
                z32[j] = (-values[p]).mul_add(zi, z32[j]);
            }
        }
        for (x, &s) in z.iter_mut().zip(z32.iter()) {
            *x = f64::from(s);
        }
    }
}

/// Sparse dot of `L[i, 0..k)` and `L[k, 0..k)` via two-pointer merge.
/// `row_lo` is the start of row `i`, `p_end` the position of entry `(i,k)`.
fn sparse_row_dot(l: &CsrMatrix, _i: usize, k: usize, row_lo: usize, p_end: usize) -> f64 {
    let indptr = l.indptr();
    let indices = l.indices();
    let values = l.values();
    let (mut pa, pa_end) = (row_lo, p_end);
    let (mut pb, pb_end) = (indptr[k], indptr[k + 1] - 1); // exclude k's diagonal
    let mut s = 0.0;
    while pa < pa_end && pb < pb_end {
        let (ca, cb) = (indices[pa], indices[pb]);
        match ca.cmp(&cb) {
            std::cmp::Ordering::Less => pa += 1,
            std::cmp::Ordering::Greater => pb += 1,
            std::cmp::Ordering::Equal => {
                s += values[pa] * values[pb];
                pa += 1;
                pb += 1;
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cholesky, TripletMatrix};

    fn grid_spd(w: usize, h: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(w * h, w * h);
        let id = |x: usize, y: usize| y * w + x;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    t.stamp_conductance(id(x, y), id(x + 1, y), 1.0);
                }
                if y + 1 < h {
                    t.stamp_conductance(id(x, y), id(x, y + 1), 1.0);
                }
            }
        }
        t.stamp_to_ground(0, 1.0);
        t.to_csr()
    }

    #[test]
    fn exact_on_tridiagonal_pattern() {
        // For a matrix whose Cholesky has no fill (path graph in natural
        // order), IC(0) is the exact factorization.
        let mut t = TripletMatrix::new(4, 4);
        for i in 0..3 {
            t.stamp_conductance(i, i + 1, 1.0);
        }
        t.stamp_to_ground(0, 1.0);
        let a = t.to_csr();
        let ic = IncompleteCholesky::new(&a).unwrap();
        let exact = Cholesky::factor_with(&a, crate::cholesky::FillOrdering::Natural).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        let z_ic = ic.solve(&b);
        let z_ex = exact.solve(&b);
        for (u, v) in z_ic.iter().zip(&z_ex) {
            assert!((u - v).abs() < 1e-12);
        }
        assert_eq!(ic.shift(), 0.0);
    }

    #[test]
    fn preconditioner_reduces_error_direction() {
        // M⁻¹ should approximate A⁻¹: applying it to A·x should land near x.
        let a = grid_spd(6, 6);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) / 11.0).collect();
        let b = a.mul_vec(&x);
        let ic = IncompleteCholesky::new(&a).unwrap();
        let z = ic.solve(&b);
        // Relative error well below applying no preconditioner at all
        // (z = b would have enormous error in A-norm direction).
        let err: f64 = x
            .iter()
            .zip(&z)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        let xnorm: f64 = x.iter().map(|u| u * u).sum::<f64>().sqrt();
        assert!(
            err / xnorm < 0.9,
            "IC(0) should be a nontrivial approximation"
        );
    }

    #[test]
    fn missing_structural_diagonal_rejected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 0.5);
        t.push(1, 0, 0.5); // no (1,1) entry
        let err = IncompleteCholesky::new(&t.to_csr()).unwrap_err();
        assert!(matches!(err, SparseError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn non_square_rejected() {
        let m = CsrMatrix::from_triplets(2, 3, &[0], &[0], &[1.0]);
        assert!(matches!(
            IncompleteCholesky::new(&m).unwrap_err(),
            SparseError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn empty_rejected() {
        let m = CsrMatrix::from_triplets(0, 0, &[], &[], &[]);
        assert_eq!(IncompleteCholesky::new(&m).unwrap_err(), SparseError::Empty);
    }

    #[test]
    fn breakdown_recovered_by_shift() {
        // An SPD matrix engineered so plain IC(0) breaks down: strong
        // off-diagonals in a pattern with discarded fill. If no breakdown
        // occurs the shift stays zero — either way `new` must succeed.
        let mut t = TripletMatrix::new(4, 4);
        let g = 10.0;
        t.stamp_conductance(0, 1, g);
        t.stamp_conductance(0, 2, g);
        t.stamp_conductance(0, 3, g);
        t.stamp_conductance(1, 2, g);
        t.stamp_conductance(1, 3, g);
        t.stamp_conductance(2, 3, g);
        t.stamp_to_ground(0, 1e-6);
        let a = t.to_csr();
        let ic = IncompleteCholesky::new(&a).unwrap();
        let z = ic.solve(&[1.0; 4]);
        assert!(z.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn f32_application_tracks_f64_application() {
        let a = grid_spd(6, 6);
        let ic = IncompleteCholesky::new(&a).unwrap();
        let n = a.nrows();
        let r: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64 - 8.0) * 0.1).collect();
        let z64 = ic.solve(&r);
        let mut z = vec![0.0; n];
        let mut z32 = vec![0.0f32; n];
        ic.solve_into_f32(&r, &mut z, &mut z32);
        for (u, v) in z64.iter().zip(&z) {
            assert!(
                (u - v).abs() <= 1e-4 * u.abs().max(1.0),
                "f32 application drifted: {u} vs {v}"
            );
        }
    }

    #[test]
    fn nnz_matches_lower_triangle() {
        let a = grid_spd(5, 5);
        let ic = IncompleteCholesky::new(&a).unwrap();
        assert_eq!(ic.nnz(), a.lower_triangle().nnz());
        assert!(ic.memory_bytes() > 0);
    }
}
