//! Tridiagonal systems and the Thomas algorithm.
//!
//! The row-based power grid method of Zhong & Wong reduces each grid row to a
//! tridiagonal solve; the paper quotes its cost as `5N-4` multiplications and
//! `3(N-1)` additions per row, which is exactly the Thomas algorithm
//! implemented here.

use crate::SparseError;

/// Reusable workspace for repeated tridiagonal solves of bounded size.
///
/// The row-based solver calls [`TridiagWorkspace::solve`] once per grid row
/// per sweep; keeping the scratch vectors alive avoids per-row allocation.
///
/// # Example
///
/// ```
/// use voltprop_sparse::tridiag::TridiagWorkspace;
///
/// # fn main() -> Result<(), voltprop_sparse::SparseError> {
/// // Solve [2 -1; -1 2] x = [1; 1]  →  x = [1; 1].
/// let mut ws = TridiagWorkspace::new(2);
/// let mut x = [0.0; 2];
/// ws.solve(&[-1.0], &[2.0, 2.0], &[-1.0], &[1.0, 1.0], &mut x)?;
/// assert!((x[0] - 1.0).abs() < 1e-15);
/// assert!((x[1] - 1.0).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TridiagWorkspace {
    cp: Vec<f64>,
    dp: Vec<f64>,
}

impl TridiagWorkspace {
    /// Creates a workspace able to solve systems up to `n` unknowns without
    /// reallocating.
    pub fn new(n: usize) -> Self {
        TridiagWorkspace {
            cp: Vec::with_capacity(n),
            dp: Vec::with_capacity(n),
        }
    }

    /// Solves the tridiagonal system
    ///
    /// ```text
    /// | b0 c0          | |x0|   |d0|
    /// | a0 b1 c1       | |x1|   |d1|
    /// |    a1 b2 ..    | |x2| = |..|
    /// |       .. .. cN-2|
    /// |         aN-2 bN-1|
    /// ```
    ///
    /// where `lower` has length `n-1` (sub-diagonal), `diag` length `n`,
    /// `upper` length `n-1` (super-diagonal), writing the solution into `x`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::SingularPivot`] if forward elimination hits a
    /// zero pivot, and [`SparseError::Empty`] for `n == 0`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths are inconsistent.
    pub fn solve(
        &mut self,
        lower: &[f64],
        diag: &[f64],
        upper: &[f64],
        rhs: &[f64],
        x: &mut [f64],
    ) -> Result<(), SparseError> {
        let n = diag.len();
        if n == 0 {
            return Err(SparseError::Empty);
        }
        assert_eq!(lower.len(), n - 1, "lower diagonal must have n-1 entries");
        assert_eq!(upper.len(), n - 1, "upper diagonal must have n-1 entries");
        assert_eq!(rhs.len(), n, "rhs must have n entries");
        assert_eq!(x.len(), n, "x must have n entries");

        self.cp.clear();
        self.dp.clear();
        self.cp.resize(n, 0.0);
        self.dp.resize(n, 0.0);

        if diag[0] == 0.0 {
            return Err(SparseError::SingularPivot { row: 0 });
        }
        self.cp[0] = if n > 1 { upper[0] / diag[0] } else { 0.0 };
        self.dp[0] = rhs[0] / diag[0];
        for i in 1..n {
            let m = diag[i] - lower[i - 1] * self.cp[i - 1];
            if m == 0.0 {
                return Err(SparseError::SingularPivot { row: i });
            }
            self.cp[i] = if i < n - 1 { upper[i] / m } else { 0.0 };
            self.dp[i] = (rhs[i] - lower[i - 1] * self.dp[i - 1]) / m;
        }
        x[n - 1] = self.dp[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = self.dp[i] - self.cp[i] * x[i + 1];
        }
        Ok(())
    }
}

/// One-shot convenience wrapper around [`TridiagWorkspace::solve`].
///
/// # Errors
///
/// See [`TridiagWorkspace::solve`].
pub fn solve_tridiag(
    lower: &[f64],
    diag: &[f64],
    upper: &[f64],
    rhs: &[f64],
) -> Result<Vec<f64>, SparseError> {
    let mut x = vec![0.0; diag.len()];
    TridiagWorkspace::new(diag.len()).solve(lower, diag, upper, rhs, &mut x)?;
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mul_tridiag(lower: &[f64], diag: &[f64], upper: &[f64], x: &[f64]) -> Vec<f64> {
        let n = diag.len();
        let mut y = vec![0.0; n];
        for i in 0..n {
            y[i] = diag[i] * x[i];
            if i > 0 {
                y[i] += lower[i - 1] * x[i - 1];
            }
            if i + 1 < n {
                y[i] += upper[i] * x[i + 1];
            }
        }
        y
    }

    #[test]
    fn solves_1x1() {
        let x = solve_tridiag(&[], &[4.0], &[], &[8.0]).unwrap();
        assert_eq!(x, vec![2.0]);
    }

    #[test]
    fn solves_known_3x3() {
        // [2 -1 0; -1 2 -1; 0 -1 2] x = [1 0 1] → x = [1, 1, 1].
        let x = solve_tridiag(&[-1.0, -1.0], &[2.0, 2.0, 2.0], &[-1.0, -1.0], &[1.0, 0.0, 1.0])
            .unwrap();
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn residual_small_for_random_system() {
        // Deterministic pseudo-random diagonally dominant system.
        let n = 50;
        let mut seed = 12345u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let lower: Vec<f64> = (0..n - 1).map(|_| rnd()).collect();
        let upper: Vec<f64> = (0..n - 1).map(|_| rnd()).collect();
        let diag: Vec<f64> = (0..n).map(|_| 3.0 + rnd()).collect();
        let rhs: Vec<f64> = (0..n).map(|_| rnd() * 10.0).collect();
        let x = solve_tridiag(&lower, &diag, &upper, &rhs).unwrap();
        let y = mul_tridiag(&lower, &diag, &upper, &x);
        for i in 0..n {
            assert!((y[i] - rhs[i]).abs() < 1e-10, "row {i}");
        }
    }

    #[test]
    fn empty_system_is_error() {
        assert_eq!(
            solve_tridiag(&[], &[], &[], &[]).unwrap_err(),
            SparseError::Empty
        );
    }

    #[test]
    fn singular_pivot_detected() {
        let err = solve_tridiag(&[1.0], &[0.0, 1.0], &[1.0], &[1.0, 1.0]).unwrap_err();
        assert_eq!(err, SparseError::SingularPivot { row: 0 });
    }

    #[test]
    fn workspace_is_reusable() {
        let mut ws = TridiagWorkspace::new(3);
        let mut x = [0.0; 2];
        ws.solve(&[-1.0], &[2.0, 2.0], &[-1.0], &[1.0, 1.0], &mut x)
            .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-14);
        // Different size on the same workspace.
        let mut x3 = [0.0; 3];
        ws.solve(
            &[-1.0, -1.0],
            &[2.0, 2.0, 2.0],
            &[-1.0, -1.0],
            &[1.0, 0.0, 1.0],
            &mut x3,
        )
        .unwrap();
        assert!((x3[1] - 1.0).abs() < 1e-14);
    }
}
