//! Tridiagonal systems and the Thomas algorithm.
//!
//! The row-based power grid method of Zhong & Wong reduces each grid row to a
//! tridiagonal solve; the paper quotes its cost as `5N-4` multiplications and
//! `3(N-1)` additions per row, which is exactly the Thomas algorithm
//! implemented here.

use crate::SparseError;

/// Lane-block width of the batched substitution kernels: `f64` rows are
/// processed as `[f64; 8]` blocks of fused multiply-adds (one AVX-512
/// register, two NEON/AVX2 registers). Lanes are arithmetically
/// independent, so the block width is numerically invisible — the
/// remainder lanes run the identical scalar operation.
const ROW_BLOCK: usize = 8;

/// Lane-block width of the `f32` mirror kernels (twice [`ROW_BLOCK`]:
/// twice as many `f32` lanes fit one vector register).
const ROW_BLOCK_F32: usize = 16;

/// Reusable workspace for repeated tridiagonal solves of bounded size.
///
/// The row-based solver calls [`TridiagWorkspace::solve`] once per grid row
/// per sweep; keeping the scratch vectors alive avoids per-row allocation.
///
/// # Example
///
/// ```
/// use voltprop_sparse::tridiag::TridiagWorkspace;
///
/// # fn main() -> Result<(), voltprop_sparse::SparseError> {
/// // Solve [2 -1; -1 2] x = [1; 1]  →  x = [1; 1].
/// let mut ws = TridiagWorkspace::new(2);
/// let mut x = [0.0; 2];
/// ws.solve(&[-1.0], &[2.0, 2.0], &[-1.0], &[1.0, 1.0], &mut x)?;
/// assert!((x[0] - 1.0).abs() < 1e-15);
/// assert!((x[1] - 1.0).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TridiagWorkspace {
    cp: Vec<f64>,
    dp: Vec<f64>,
}

impl TridiagWorkspace {
    /// Creates a workspace able to solve systems up to `n` unknowns without
    /// reallocating.
    pub fn new(n: usize) -> Self {
        TridiagWorkspace {
            cp: Vec::with_capacity(n),
            dp: Vec::with_capacity(n),
        }
    }

    /// Solves the tridiagonal system
    ///
    /// ```text
    /// | b0 c0          | |x0|   |d0|
    /// | a0 b1 c1       | |x1|   |d1|
    /// |    a1 b2 ..    | |x2| = |..|
    /// |       .. .. cN-2|
    /// |         aN-2 bN-1|
    /// ```
    ///
    /// where `lower` has length `n-1` (sub-diagonal), `diag` length `n`,
    /// `upper` length `n-1` (super-diagonal), writing the solution into `x`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::SingularPivot`] if forward elimination hits a
    /// zero pivot, and [`SparseError::Empty`] for `n == 0`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths are inconsistent.
    pub fn solve(
        &mut self,
        lower: &[f64],
        diag: &[f64],
        upper: &[f64],
        rhs: &[f64],
        x: &mut [f64],
    ) -> Result<(), SparseError> {
        let n = diag.len();
        if n == 0 {
            return Err(SparseError::Empty);
        }
        assert_eq!(lower.len(), n - 1, "lower diagonal must have n-1 entries");
        assert_eq!(upper.len(), n - 1, "upper diagonal must have n-1 entries");
        assert_eq!(rhs.len(), n, "rhs must have n entries");
        assert_eq!(x.len(), n, "x must have n entries");

        self.cp.clear();
        self.dp.clear();
        self.cp.resize(n, 0.0);
        self.dp.resize(n, 0.0);

        if diag[0] == 0.0 {
            return Err(SparseError::SingularPivot { row: 0 });
        }
        self.cp[0] = if n > 1 { upper[0] / diag[0] } else { 0.0 };
        self.dp[0] = rhs[0] / diag[0];
        for i in 1..n {
            let m = diag[i] - lower[i - 1] * self.cp[i - 1];
            if m == 0.0 {
                return Err(SparseError::SingularPivot { row: i });
            }
            self.cp[i] = if i < n - 1 { upper[i] / m } else { 0.0 };
            self.dp[i] = (rhs[i] - lower[i - 1] * self.dp[i - 1]) / m;
        }
        x[n - 1] = self.dp[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = self.dp[i] - self.cp[i] * x[i + 1];
        }
        Ok(())
    }
}

impl TridiagWorkspace {
    /// Estimated heap footprint in bytes (the two scratch vectors).
    pub fn memory_bytes(&self) -> usize {
        (self.cp.capacity() + self.dp.capacity()) * std::mem::size_of::<f64>()
    }
}

/// An arena of prefactored tridiagonal segments.
///
/// The row-based power grid solvers cut every grid row into segments
/// between pinned nodes and solve each segment thousands of times with the
/// *same* matrix — only the right-hand side changes between sweeps. This
/// arena runs the Thomas forward elimination **once per segment** at setup
/// and stores the normalized super-diagonal `c'` and reciprocal pivots
/// `1/m`, so every later solve is pure forward/backward substitution
/// (`3N` multiplies instead of `5N-4`) with zero allocation.
///
/// Because a solve only *reads* the factors, one arena can be shared by
/// any number of threads sweeping disjoint segments concurrently — the
/// red-black parallel schedule relies on this.
///
/// # Example
///
/// ```
/// use voltprop_sparse::tridiag::FactoredSegments;
///
/// # fn main() -> Result<(), voltprop_sparse::SparseError> {
/// let mut arena = FactoredSegments::new();
/// // Factor [2 -1; -1 2] once...
/// let seg = arena.push_segment(&[-1.0], &[2.0, 2.0], &[-1.0])?;
/// // ...then substitute repeatedly with streaming right-hand sides.
/// let mut scratch = [0.0; 2];
/// let mut x = [0.0; 2];
/// arena.solve_streamed(seg, 2, &mut scratch, |_| 1.0, |i, xi| x[i] = xi);
/// assert!((x[0] - 1.0).abs() < 1e-15 && (x[1] - 1.0).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct FactoredSegments {
    /// Sub-diagonal coefficient entering each in-segment row (0 at starts).
    lower: Vec<f64>,
    /// Thomas normalized super-diagonal `c'` per in-segment position.
    cp: Vec<f64>,
    /// Reciprocal pivot `1/m` per in-segment position.
    inv_m: Vec<f64>,
    /// Longest factored segment, for sizing substitution scratch.
    max_len: usize,
}

impl FactoredSegments {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total factored coefficient slots across all segments.
    pub fn len(&self) -> usize {
        self.inv_m.len()
    }

    /// Whether no segment has been factored yet.
    pub fn is_empty(&self) -> bool {
        self.inv_m.is_empty()
    }

    /// Length of the longest factored segment (the minimum scratch size
    /// [`FactoredSegments::solve_streamed`] needs).
    pub fn max_segment_len(&self) -> usize {
        self.max_len
    }

    /// Drops all factored segments, keeping the allocations.
    pub fn clear(&mut self) {
        self.lower.clear();
        self.cp.clear();
        self.inv_m.clear();
        self.max_len = 0;
    }

    /// Factors one tridiagonal segment (`lower` sub-diagonal of length
    /// `n-1`, `diag` of length `n`, `upper` super-diagonal of length
    /// `n-1`), appending its coefficients to the arena. Returns the
    /// segment's offset for later [`FactoredSegments::solve_streamed`]
    /// calls.
    ///
    /// # Errors
    ///
    /// [`SparseError::Empty`] for `n == 0` and
    /// [`SparseError::SingularPivot`] if elimination hits a zero pivot (the
    /// arena is left unchanged in both cases).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths are inconsistent.
    pub fn push_segment(
        &mut self,
        lower: &[f64],
        diag: &[f64],
        upper: &[f64],
    ) -> Result<usize, SparseError> {
        let n = diag.len();
        if n == 0 {
            return Err(SparseError::Empty);
        }
        assert_eq!(lower.len(), n - 1, "lower diagonal must have n-1 entries");
        assert_eq!(upper.len(), n - 1, "upper diagonal must have n-1 entries");
        let offset = self.inv_m.len();
        let mut prev_cp = 0.0;
        for i in 0..n {
            let m = if i == 0 {
                diag[0]
            } else {
                diag[i] - lower[i - 1] * prev_cp
            };
            if m == 0.0 {
                self.lower.truncate(offset);
                self.cp.truncate(offset);
                self.inv_m.truncate(offset);
                return Err(SparseError::SingularPivot { row: i });
            }
            let c = if i + 1 < n { upper[i] / m } else { 0.0 };
            self.lower.push(if i == 0 { 0.0 } else { lower[i - 1] });
            self.cp.push(c);
            self.inv_m.push(1.0 / m);
            prev_cp = c;
        }
        self.max_len = self.max_len.max(n);
        Ok(offset)
    }

    /// Substitutes through the factors at `offset..offset + len` without
    /// touching the heap: `rhs(i)` produces the i-th right-hand side entry
    /// during the forward pass and `emit(i, x_i)` receives the i-th
    /// solution entry during the backward pass (so `emit` is called in
    /// reverse order). `scratch` holds the forward intermediates and must
    /// be at least `len` long.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` is shorter than `len` or the range exceeds the
    /// arena.
    #[inline]
    pub fn solve_streamed(
        &self,
        offset: usize,
        len: usize,
        scratch: &mut [f64],
        mut rhs: impl FnMut(usize) -> f64,
        mut emit: impl FnMut(usize, f64),
    ) {
        assert!(scratch.len() >= len, "scratch shorter than segment");
        assert!(offset + len <= self.inv_m.len(), "segment outside arena");
        let mut prev = 0.0;
        for i in 0..len {
            let dp = self.forward_step(offset + i, rhs(i), prev);
            scratch[i] = dp;
            prev = dp;
        }
        let mut next = 0.0;
        for i in (0..len).rev() {
            let xi = self.backward_step(offset + i, scratch[i], next);
            emit(i, xi);
            next = xi;
        }
    }

    /// One forward-elimination step at arena slot `k`: turns the
    /// right-hand side entry `b` and the previous intermediate `prev_dp`
    /// into this row's intermediate. Exposed so callers whose right-hand
    /// sides are produced *while reading* other state (the row sweeps read
    /// neighbouring rows) can fuse generation and substitution without a
    /// staging buffer.
    ///
    /// The elimination is written as a fused multiply-add,
    /// `fma(-lower, prev, b) * inv_m` — the *same* per-element operation
    /// the blocked [`FactoredSegments::forward_row`] kernel applies to
    /// every lane, so scalar and batched substitution stay bitwise
    /// identical.
    #[inline(always)]
    pub fn forward_step(&self, k: usize, b: f64, prev_dp: f64) -> f64 {
        (-self.lower[k]).mul_add(prev_dp, b) * self.inv_m[k]
    }

    /// One backward-substitution step at arena slot `k`: turns the stored
    /// intermediate `dp` and the next solution entry `next_x` into this
    /// row's solution entry. Fused like
    /// [`FactoredSegments::forward_step`], matching the blocked
    /// [`FactoredSegments::backward_row`] lane kernel bit for bit.
    #[inline(always)]
    pub fn backward_step(&self, k: usize, dp: f64, next_x: f64) -> f64 {
        (-self.cp[k]).mul_add(next_x, dp)
    }

    /// Batched [`FactoredSegments::forward_step`] over one *row* of
    /// right-hand sides: `row[j]` holds the right-hand side entry of lane
    /// `j` at arena slot `k` and is overwritten with that lane's forward
    /// intermediate; `prev` is the previous row's intermediates (`None`
    /// for the first row of a segment). The factor coefficients are loaded
    /// once and broadcast over the lanes; the lane loop runs as
    /// fixed-width `[f64; 8]` blocks of fused multiply-adds (the
    /// remainder lanes run the identical scalar operation), so the inner
    /// loop vectorizes while each lane still computes exactly the scalar
    /// [`FactoredSegments::forward_step`] sequence, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `prev` is present with a length different from `row`.
    #[inline]
    pub fn forward_row(&self, k: usize, row: &mut [f64], prev: Option<&[f64]>) {
        let inv_m = self.inv_m[k];
        match prev {
            Some(prev) => {
                assert_eq!(prev.len(), row.len(), "lane count mismatch");
                let neg_lower = -self.lower[k];
                // Narrow batches (k < one block) skip the block iterator
                // setup — per-row fixed cost that dominates at k = 1.
                // The remainder loop below is the identical operation.
                if row.len() < ROW_BLOCK {
                    for (b, &p) in row.iter_mut().zip(prev) {
                        *b = neg_lower.mul_add(p, *b) * inv_m;
                    }
                    return;
                }
                let mut rc = row.chunks_exact_mut(ROW_BLOCK);
                let mut pc = prev.chunks_exact(ROW_BLOCK);
                for (rb, pb) in rc.by_ref().zip(pc.by_ref()) {
                    let rb: &mut [f64; ROW_BLOCK] = rb.try_into().unwrap();
                    let pb: &[f64; ROW_BLOCK] = pb.try_into().unwrap();
                    for j in 0..ROW_BLOCK {
                        rb[j] = neg_lower.mul_add(pb[j], rb[j]) * inv_m;
                    }
                }
                for (b, &p) in rc.into_remainder().iter_mut().zip(pc.remainder()) {
                    *b = neg_lower.mul_add(p, *b) * inv_m;
                }
            }
            // First row: the stored `lower` is 0 and the previous
            // intermediate is 0, and `fma(-0.0, 0.0, b) = b` is exact,
            // so scaling by `inv_m` alone is the same arithmetic as the
            // scalar path.
            None => {
                for b in row.iter_mut() {
                    *b *= inv_m;
                }
            }
        }
    }

    /// Batched [`FactoredSegments::backward_step`] over one row: `row[j]`
    /// holds lane `j`'s forward intermediate at arena slot `k` and is
    /// overwritten with that lane's solution entry; `next` is the next
    /// (already substituted) row, `None` for the last row of a segment.
    /// Blocked and fused exactly like [`FactoredSegments::forward_row`].
    ///
    /// # Panics
    ///
    /// Panics if `next` is present with a length different from `row`.
    #[inline]
    pub fn backward_row(&self, k: usize, row: &mut [f64], next: Option<&[f64]>) {
        if let Some(next) = next {
            assert_eq!(next.len(), row.len(), "lane count mismatch");
            let neg_cp = -self.cp[k];
            // Same narrow-batch fast path as `forward_row`.
            if row.len() < ROW_BLOCK {
                for (dp, &nx) in row.iter_mut().zip(next) {
                    *dp = neg_cp.mul_add(nx, *dp);
                }
                return;
            }
            let mut rc = row.chunks_exact_mut(ROW_BLOCK);
            let mut nc = next.chunks_exact(ROW_BLOCK);
            for (rb, nb) in rc.by_ref().zip(nc.by_ref()) {
                let rb: &mut [f64; ROW_BLOCK] = rb.try_into().unwrap();
                let nb: &[f64; ROW_BLOCK] = nb.try_into().unwrap();
                for j in 0..ROW_BLOCK {
                    rb[j] = neg_cp.mul_add(nb[j], rb[j]);
                }
            }
            for (dp, &nx) in rc.into_remainder().iter_mut().zip(nc.remainder()) {
                *dp = neg_cp.mul_add(nx, *dp);
            }
        }
        // Last row: the stored `cp` is 0, so `fma(-0.0, x, dp) = dp`
        // exactly — nothing to do.
    }

    /// Substitutes `lanes` right-hand sides through the factors at
    /// `offset..offset + len` in place: on entry `buf` holds the
    /// right-hand sides, on exit the solutions.
    ///
    /// # Right-hand-side memory layout
    ///
    /// `buf` is **position-major, lane-minor**: entry `(i, j)` — in-segment
    /// position `i` of lane `j` — lives at `buf[i * lanes + j]`, so all
    /// lanes of one row are contiguous. Both substitution passes walk one
    /// row at a time with a blocked, vectorized inner loop over the lanes
    /// (see [`FactoredSegments::forward_row`]), loading each factor
    /// coefficient once per row instead of once per lane; lane `j`'s
    /// result is bitwise identical to a scalar
    /// [`FactoredSegments::solve_streamed`] call on its right-hand side,
    /// at any lane count.
    ///
    /// # Example
    ///
    /// ```
    /// use voltprop_sparse::tridiag::FactoredSegments;
    ///
    /// # fn main() -> Result<(), voltprop_sparse::SparseError> {
    /// let mut arena = FactoredSegments::new();
    /// let seg = arena.push_segment(&[-1.0], &[2.0, 2.0], &[-1.0])?;
    /// // Three lanes of [2 -1; -1 2] x = b: b = [1, 1] → x = [1, 1],
    /// // b = [3, 3] → x = [3, 3], and b = [3, 0] → x = [2, 1].
    /// let mut buf = [
    ///     1.0, 3.0, 3.0, // row 0, lanes 0..3
    ///     1.0, 3.0, 0.0, // row 1, lanes 0..3
    /// ];
    /// arena.solve_batch(seg, 2, 3, &mut buf);
    /// assert!((buf[0] - 1.0).abs() < 1e-15 && (buf[3] - 1.0).abs() < 1e-15);
    /// assert!((buf[1] - 3.0).abs() < 1e-15 && (buf[4] - 3.0).abs() < 1e-15);
    /// assert!((buf[2] - 2.0).abs() < 1e-15 && (buf[5] - 1.0).abs() < 1e-15);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`, `buf.len() != len * lanes`, or the range
    /// exceeds the arena.
    pub fn solve_batch(&self, offset: usize, len: usize, lanes: usize, buf: &mut [f64]) {
        assert!(lanes > 0, "lane count must be positive");
        assert_eq!(
            buf.len(),
            len * lanes,
            "buffer must hold len * lanes entries"
        );
        assert!(offset + len <= self.inv_m.len(), "segment outside arena");
        for i in 0..len {
            let (done, rest) = buf.split_at_mut(i * lanes);
            let prev = if i == 0 {
                None
            } else {
                Some(&done[(i - 1) * lanes..])
            };
            self.forward_row(offset + i, &mut rest[..lanes], prev);
        }
        for i in (0..len).rev() {
            let (head, tail) = buf.split_at_mut((i + 1) * lanes);
            let next = if i + 1 == len {
                None
            } else {
                Some(&tail[..lanes])
            };
            self.backward_row(offset + i, &mut head[i * lanes..], next);
        }
    }

    /// Compacted [`FactoredSegments::solve_batch`]: substitutes only the
    /// lanes listed in `active` through the factors at
    /// `offset..offset + len`, leaving every other lane of `buf`
    /// untouched.
    ///
    /// The active lanes are **gathered** out of the position-major
    /// `lanes`-wide buffer into `compact` (an `active.len()`-wide image
    /// of the same shape), swept with unit-stride inner loops, and
    /// **scattered** back. Each listed lane runs exactly the arithmetic
    /// of [`FactoredSegments::solve_batch`] — and therefore of a scalar
    /// [`FactoredSegments::solve_streamed`] — bit for bit, so freezing
    /// lanes in and out of a batch cannot perturb the survivors. This is
    /// the sparse-level counterpart of the row-sweep engines'
    /// active-lane compaction, for callers that drive the factor arena
    /// directly with pre-assembled right-hand sides (the engines fuse
    /// their neighbour-gathering RHS assembly into an equivalent
    /// compacted kernel of their own): a batch with one live lane costs
    /// one lane's substitution, not the batch's.
    ///
    /// # Example
    ///
    /// ```
    /// use voltprop_sparse::tridiag::FactoredSegments;
    ///
    /// # fn main() -> Result<(), voltprop_sparse::SparseError> {
    /// let mut arena = FactoredSegments::new();
    /// let seg = arena.push_segment(&[-1.0], &[2.0, 2.0], &[-1.0])?;
    /// // Three lanes; only lane 1 is active (rhs [3, 3] → x = [3, 3]).
    /// let mut buf = [9.0, 3.0, 9.0, 9.0, 3.0, 9.0];
    /// let mut compact = [0.0; 2];
    /// arena.solve_batch_active(seg, 2, 3, &[1], &mut buf, &mut compact);
    /// assert!((buf[1] - 3.0).abs() < 1e-15 && (buf[4] - 3.0).abs() < 1e-15);
    /// assert_eq!(buf[0], 9.0); // frozen lanes untouched
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`, `buf.len() != len * lanes`, `compact` is
    /// shorter than `len * active.len()`, any listed lane is out of
    /// range, or the range exceeds the arena.
    pub fn solve_batch_active(
        &self,
        offset: usize,
        len: usize,
        lanes: usize,
        active: &[u32],
        buf: &mut [f64],
        compact: &mut [f64],
    ) {
        assert!(lanes > 0, "lane count must be positive");
        assert_eq!(
            buf.len(),
            len * lanes,
            "buffer must hold len * lanes entries"
        );
        assert!(offset + len <= self.inv_m.len(), "segment outside arena");
        let m = active.len();
        if m == 0 {
            return;
        }
        assert!(
            compact.len() >= len * m,
            "compact scratch must hold len * active.len() entries"
        );
        assert!(
            active.iter().all(|&j| (j as usize) < lanes),
            "active lane index out of range"
        );
        // Gather the active lanes into the compact image.
        for i in 0..len {
            let src = &buf[i * lanes..(i + 1) * lanes];
            let dst = &mut compact[i * m..(i + 1) * m];
            for (d, &j) in dst.iter_mut().zip(active) {
                *d = src[j as usize];
            }
        }
        // Sweep the compact image exactly like `solve_batch` does.
        for i in 0..len {
            let (done, rest) = compact.split_at_mut(i * m);
            let prev = if i == 0 {
                None
            } else {
                Some(&done[(i - 1) * m..])
            };
            self.forward_row(offset + i, &mut rest[..m], prev);
        }
        for i in (0..len).rev() {
            let (head, tail) = compact.split_at_mut((i + 1) * m);
            let next = if i + 1 == len { None } else { Some(&tail[..m]) };
            self.backward_row(offset + i, &mut head[i * m..(i + 1) * m], next);
        }
        // Scatter the solutions back; frozen lanes are never written.
        for i in 0..len {
            let src = &compact[i * m..(i + 1) * m];
            let dst = &mut buf[i * lanes..(i + 1) * lanes];
            for (&s, &j) in src.iter().zip(active) {
                dst[j as usize] = s;
            }
        }
    }

    /// Estimated heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.lower.capacity() + self.cp.capacity() + self.inv_m.capacity())
            * std::mem::size_of::<f64>()
    }
}

/// An `f32` mirror of a [`FactoredSegments`] arena, for mixed-precision
/// sweeps.
///
/// The mixed-precision solve path runs its coarse sweeps and its
/// iterative-refinement correction solves in `f32` (halving the memory
/// traffic of the memory-bound row sweeps and doubling the SIMD lane
/// count), while residuals accumulate in `f64` against the original
/// factors. The mirror is built **once** next to the `f64` arena —
/// narrowing each stored coefficient with a plain `as f32` cast — so
/// warm mixed solves touch the allocator exactly as often as the `f64`
/// path: never.
///
/// The kernels mirror [`FactoredSegments::forward_row`] /
/// [`FactoredSegments::backward_row`] with the same blocked
/// fused-multiply-add structure (at twice the lane-block width, since
/// twice as many `f32` lanes fit a vector register) and the same
/// scalar-vs-blocked bitwise-identity contract — in `f32`.
#[derive(Debug, Clone, Default)]
pub struct FactoredSegmentsF32 {
    lower: Vec<f32>,
    cp: Vec<f32>,
    inv_m: Vec<f32>,
    max_len: usize,
}

impl FactoredSegmentsF32 {
    /// Narrows every factored coefficient of `src` to `f32`.
    pub fn mirror(src: &FactoredSegments) -> Self {
        FactoredSegmentsF32 {
            lower: src.lower.iter().map(|&x| x as f32).collect(),
            cp: src.cp.iter().map(|&x| x as f32).collect(),
            inv_m: src.inv_m.iter().map(|&x| x as f32).collect(),
            max_len: src.max_len,
        }
    }

    /// Total factored coefficient slots across all segments.
    pub fn len(&self) -> usize {
        self.inv_m.len()
    }

    /// Whether the mirror is empty.
    pub fn is_empty(&self) -> bool {
        self.inv_m.is_empty()
    }

    /// Length of the longest mirrored segment.
    pub fn max_segment_len(&self) -> usize {
        self.max_len
    }

    /// `f32` [`FactoredSegments::forward_step`].
    #[inline(always)]
    pub fn forward_step(&self, k: usize, b: f32, prev_dp: f32) -> f32 {
        (-self.lower[k]).mul_add(prev_dp, b) * self.inv_m[k]
    }

    /// `f32` [`FactoredSegments::backward_step`].
    #[inline(always)]
    pub fn backward_step(&self, k: usize, dp: f32, next_x: f32) -> f32 {
        (-self.cp[k]).mul_add(next_x, dp)
    }

    /// The prefactored reciprocal pivot of global row `k` — the single
    /// factor a one-row segment's forward elimination applies, exposed so
    /// callers can fuse the trivial singleton solve into their own lane
    /// pass instead of paying the row-kernel call machinery per node.
    #[inline]
    #[must_use]
    pub fn inv_m(&self, k: usize) -> f32 {
        self.inv_m[k]
    }

    /// `f32` [`FactoredSegments::forward_row`]: blocked fused
    /// forward-elimination over one row of lanes.
    ///
    /// # Panics
    ///
    /// Panics if `prev` is present with a length different from `row`.
    #[inline]
    pub fn forward_row(&self, k: usize, row: &mut [f32], prev: Option<&[f32]>) {
        let inv_m = self.inv_m[k];
        match prev {
            Some(prev) => {
                assert_eq!(prev.len(), row.len(), "lane count mismatch");
                let neg_lower = -self.lower[k];
                // Same narrow-batch fast path as the f64 kernel: skip the
                // block iterator setup when the row holds no full block.
                if row.len() < ROW_BLOCK_F32 {
                    for (b, &p) in row.iter_mut().zip(prev) {
                        *b = neg_lower.mul_add(p, *b) * inv_m;
                    }
                    return;
                }
                let mut rc = row.chunks_exact_mut(ROW_BLOCK_F32);
                let mut pc = prev.chunks_exact(ROW_BLOCK_F32);
                for (rb, pb) in rc.by_ref().zip(pc.by_ref()) {
                    let rb: &mut [f32; ROW_BLOCK_F32] = rb.try_into().unwrap();
                    let pb: &[f32; ROW_BLOCK_F32] = pb.try_into().unwrap();
                    for j in 0..ROW_BLOCK_F32 {
                        rb[j] = neg_lower.mul_add(pb[j], rb[j]) * inv_m;
                    }
                }
                for (b, &p) in rc.into_remainder().iter_mut().zip(pc.remainder()) {
                    *b = neg_lower.mul_add(p, *b) * inv_m;
                }
            }
            None => {
                for b in row.iter_mut() {
                    *b *= inv_m;
                }
            }
        }
    }

    /// `f32` [`FactoredSegments::backward_row`]: blocked fused
    /// backward-substitution over one row of lanes.
    ///
    /// # Panics
    ///
    /// Panics if `next` is present with a length different from `row`.
    #[inline]
    pub fn backward_row(&self, k: usize, row: &mut [f32], next: Option<&[f32]>) {
        if let Some(next) = next {
            assert_eq!(next.len(), row.len(), "lane count mismatch");
            let neg_cp = -self.cp[k];
            // Same narrow-batch fast path as the f64 kernel.
            if row.len() < ROW_BLOCK_F32 {
                for (dp, &nx) in row.iter_mut().zip(next) {
                    *dp = neg_cp.mul_add(nx, *dp);
                }
                return;
            }
            let mut rc = row.chunks_exact_mut(ROW_BLOCK_F32);
            let mut nc = next.chunks_exact(ROW_BLOCK_F32);
            for (rb, nb) in rc.by_ref().zip(nc.by_ref()) {
                let rb: &mut [f32; ROW_BLOCK_F32] = rb.try_into().unwrap();
                let nb: &[f32; ROW_BLOCK_F32] = nb.try_into().unwrap();
                for j in 0..ROW_BLOCK_F32 {
                    rb[j] = neg_cp.mul_add(nb[j], rb[j]);
                }
            }
            for (dp, &nx) in rc.into_remainder().iter_mut().zip(nc.remainder()) {
                *dp = neg_cp.mul_add(nx, *dp);
            }
        }
    }

    /// Estimated heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.lower.capacity() + self.cp.capacity() + self.inv_m.capacity())
            * std::mem::size_of::<f32>()
    }
}

/// One-shot convenience wrapper around [`TridiagWorkspace::solve`].
///
/// # Errors
///
/// See [`TridiagWorkspace::solve`].
pub fn solve_tridiag(
    lower: &[f64],
    diag: &[f64],
    upper: &[f64],
    rhs: &[f64],
) -> Result<Vec<f64>, SparseError> {
    let mut x = vec![0.0; diag.len()];
    TridiagWorkspace::new(diag.len()).solve(lower, diag, upper, rhs, &mut x)?;
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mul_tridiag(lower: &[f64], diag: &[f64], upper: &[f64], x: &[f64]) -> Vec<f64> {
        let n = diag.len();
        let mut y = vec![0.0; n];
        for i in 0..n {
            y[i] = diag[i] * x[i];
            if i > 0 {
                y[i] += lower[i - 1] * x[i - 1];
            }
            if i + 1 < n {
                y[i] += upper[i] * x[i + 1];
            }
        }
        y
    }

    #[test]
    fn solves_1x1() {
        let x = solve_tridiag(&[], &[4.0], &[], &[8.0]).unwrap();
        assert_eq!(x, vec![2.0]);
    }

    #[test]
    fn solves_known_3x3() {
        // [2 -1 0; -1 2 -1; 0 -1 2] x = [1 0 1] → x = [1, 1, 1].
        let x = solve_tridiag(
            &[-1.0, -1.0],
            &[2.0, 2.0, 2.0],
            &[-1.0, -1.0],
            &[1.0, 0.0, 1.0],
        )
        .unwrap();
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn residual_small_for_random_system() {
        // Deterministic pseudo-random diagonally dominant system.
        let n = 50;
        let mut seed = 12345u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let lower: Vec<f64> = (0..n - 1).map(|_| rnd()).collect();
        let upper: Vec<f64> = (0..n - 1).map(|_| rnd()).collect();
        let diag: Vec<f64> = (0..n).map(|_| 3.0 + rnd()).collect();
        let rhs: Vec<f64> = (0..n).map(|_| rnd() * 10.0).collect();
        let x = solve_tridiag(&lower, &diag, &upper, &rhs).unwrap();
        let y = mul_tridiag(&lower, &diag, &upper, &x);
        for i in 0..n {
            assert!((y[i] - rhs[i]).abs() < 1e-10, "row {i}");
        }
    }

    #[test]
    fn empty_system_is_error() {
        assert_eq!(
            solve_tridiag(&[], &[], &[], &[]).unwrap_err(),
            SparseError::Empty
        );
    }

    #[test]
    fn singular_pivot_detected() {
        let err = solve_tridiag(&[1.0], &[0.0, 1.0], &[1.0], &[1.0, 1.0]).unwrap_err();
        assert_eq!(err, SparseError::SingularPivot { row: 0 });
    }

    #[test]
    fn workspace_reports_memory() {
        let mut ws = TridiagWorkspace::new(8);
        assert_eq!(ws.memory_bytes(), 2 * 8 * 8);
        let mut x = [0.0; 2];
        ws.solve(&[-1.0], &[2.0, 2.0], &[-1.0], &[1.0, 1.0], &mut x)
            .unwrap();
        assert!(ws.memory_bytes() >= 2 * 2 * 8);
    }

    #[test]
    fn factored_segments_match_one_shot_thomas() {
        let mut seed = 99u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut arena = FactoredSegments::new();
        let mut cases = Vec::new();
        for n in [1usize, 2, 3, 17, 40] {
            let lower: Vec<f64> = (0..n - 1).map(|_| rnd()).collect();
            let upper: Vec<f64> = (0..n - 1).map(|_| rnd()).collect();
            let diag: Vec<f64> = (0..n).map(|_| 3.0 + rnd()).collect();
            let rhs: Vec<f64> = (0..n).map(|_| rnd() * 10.0).collect();
            let offset = arena.push_segment(&lower, &diag, &upper).unwrap();
            cases.push((n, lower, diag, upper, rhs, offset));
        }
        assert_eq!(arena.max_segment_len(), 40);
        let mut scratch = vec![0.0; arena.max_segment_len()];
        // Solve in arbitrary order; factors are position-independent.
        for (n, lower, diag, upper, rhs, offset) in cases.iter().rev() {
            let want = solve_tridiag(lower, diag, upper, rhs).unwrap();
            let mut got = vec![0.0; *n];
            arena.solve_streamed(*offset, *n, &mut scratch, |i| rhs[i], |i, x| got[i] = x);
            for i in 0..*n {
                assert!((got[i] - want[i]).abs() < 1e-12, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn solve_batch_is_bitwise_identical_to_streamed_lanes() {
        let mut seed = 7u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut arena = FactoredSegments::new();
        for n in [1usize, 2, 5, 33] {
            let lower: Vec<f64> = (0..n - 1).map(|_| rnd()).collect();
            let upper: Vec<f64> = (0..n - 1).map(|_| rnd()).collect();
            let diag: Vec<f64> = (0..n).map(|_| 3.0 + rnd()).collect();
            let offset = arena.push_segment(&lower, &diag, &upper).unwrap();
            for lanes in [1usize, 3, 8] {
                // Lane-major RHS for the scalar reference, interleaved for
                // the batch call.
                let rhs: Vec<Vec<f64>> = (0..lanes)
                    .map(|_| (0..n).map(|_| rnd() * 10.0).collect())
                    .collect();
                let mut buf = vec![0.0; n * lanes];
                for i in 0..n {
                    for (j, r) in rhs.iter().enumerate() {
                        buf[i * lanes + j] = r[i];
                    }
                }
                arena.solve_batch(offset, n, lanes, &mut buf);
                let mut scratch = vec![0.0; n];
                for (j, r) in rhs.iter().enumerate() {
                    let mut want = vec![0.0; n];
                    arena.solve_streamed(offset, n, &mut scratch, |i| r[i], |i, x| want[i] = x);
                    for i in 0..n {
                        assert_eq!(
                            buf[i * lanes + j].to_bits(),
                            want[i].to_bits(),
                            "n={n} lanes={lanes} lane={j} row={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn solve_batch_active_matches_full_batch_and_leaves_frozen_lanes() {
        let mut seed = 21u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut arena = FactoredSegments::new();
        for n in [1usize, 2, 7, 24] {
            let lower: Vec<f64> = (0..n - 1).map(|_| rnd()).collect();
            let upper: Vec<f64> = (0..n - 1).map(|_| rnd()).collect();
            let diag: Vec<f64> = (0..n).map(|_| 3.0 + rnd()).collect();
            let offset = arena.push_segment(&lower, &diag, &upper).unwrap();
            let lanes = 6usize;
            let rhs: Vec<f64> = (0..n * lanes).map(|_| rnd() * 10.0).collect();
            for active in [vec![], vec![3u32], vec![0, 2, 5], vec![0, 1, 2, 3, 4, 5]] {
                let mut full = rhs.clone();
                arena.solve_batch(offset, n, lanes, &mut full);
                let mut gathered = rhs.clone();
                let mut compact = vec![0.0; n * active.len().max(1)];
                arena.solve_batch_active(offset, n, lanes, &active, &mut gathered, &mut compact);
                let is_active = |j: u32| active.contains(&j);
                for i in 0..n {
                    for j in 0..lanes as u32 {
                        let at = i * lanes + j as usize;
                        let want = if is_active(j) { full[at] } else { rhs[at] };
                        assert_eq!(
                            gathered[at].to_bits(),
                            want.to_bits(),
                            "n={n} active={active:?} row={i} lane={j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn solve_batch_active_rejects_bad_lane() {
        let mut arena = FactoredSegments::new();
        let seg = arena.push_segment(&[-1.0], &[2.0, 2.0], &[-1.0]).unwrap();
        let mut buf = [0.0; 4];
        let mut compact = [0.0; 2];
        arena.solve_batch_active(seg, 2, 2, &[2], &mut buf, &mut compact);
    }

    #[test]
    #[should_panic(expected = "len * lanes")]
    fn solve_batch_rejects_short_buffer() {
        let mut arena = FactoredSegments::new();
        let seg = arena.push_segment(&[-1.0], &[2.0, 2.0], &[-1.0]).unwrap();
        let mut buf = [0.0; 3];
        arena.solve_batch(seg, 2, 2, &mut buf);
    }

    #[test]
    fn factored_segments_reject_bad_input() {
        let mut arena = FactoredSegments::new();
        assert_eq!(
            arena.push_segment(&[], &[], &[]).unwrap_err(),
            SparseError::Empty
        );
        arena.push_segment(&[], &[2.0], &[]).unwrap();
        let before = arena.len();
        assert_eq!(
            arena.push_segment(&[1.0], &[0.0, 1.0], &[1.0]).unwrap_err(),
            SparseError::SingularPivot { row: 0 }
        );
        // A failed push must not leave partial coefficients behind.
        assert_eq!(arena.len(), before);
        assert!(arena.memory_bytes() > 0);
        arena.clear();
        assert!(arena.is_empty());
    }

    #[test]
    fn f32_mirror_matches_narrowed_factors() {
        let mut seed = 4u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut arena = FactoredSegments::new();
        for n in [1usize, 3, 29] {
            let lower: Vec<f64> = (0..n - 1).map(|_| rnd()).collect();
            let upper: Vec<f64> = (0..n - 1).map(|_| rnd()).collect();
            let diag: Vec<f64> = (0..n).map(|_| 3.0 + rnd()).collect();
            arena.push_segment(&lower, &diag, &upper).unwrap();
        }
        let mirror = FactoredSegmentsF32::mirror(&arena);
        assert_eq!(mirror.len(), arena.len());
        assert_eq!(mirror.max_segment_len(), arena.max_segment_len());
        assert!(!mirror.is_empty());
        assert!(mirror.memory_bytes() > 0);
        for k in 0..arena.len() {
            assert_eq!(mirror.lower[k], arena.lower[k] as f32);
            assert_eq!(mirror.cp[k], arena.cp[k] as f32);
            assert_eq!(mirror.inv_m[k], arena.inv_m[k] as f32);
        }
    }

    #[test]
    fn f32_rows_are_bitwise_identical_to_f32_steps() {
        // The blocked f32 row kernels must match the scalar f32 step
        // sequence bit for bit at every lane count (the same contract the
        // f64 kernels pin), including counts straddling the block width.
        let mut seed = 13u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut arena = FactoredSegments::new();
        let n = 9usize;
        let lower: Vec<f64> = (0..n - 1).map(|_| rnd()).collect();
        let upper: Vec<f64> = (0..n - 1).map(|_| rnd()).collect();
        let diag: Vec<f64> = (0..n).map(|_| 3.0 + rnd()).collect();
        let offset = arena.push_segment(&lower, &diag, &upper).unwrap();
        let mirror = FactoredSegmentsF32::mirror(&arena);
        for lanes in [1usize, 7, 16, 19, 40] {
            let rhs: Vec<f32> = (0..n * lanes).map(|_| (rnd() * 10.0) as f32).collect();
            // Blocked path: forward then backward over the whole segment.
            let mut buf = rhs.clone();
            for i in 0..n {
                let (done, rest) = buf.split_at_mut(i * lanes);
                let prev = if i == 0 {
                    None
                } else {
                    Some(&done[(i - 1) * lanes..])
                };
                mirror.forward_row(offset + i, &mut rest[..lanes], prev);
            }
            for i in (0..n).rev() {
                let (head, tail) = buf.split_at_mut((i + 1) * lanes);
                let next = if i + 1 == n {
                    None
                } else {
                    Some(&tail[..lanes])
                };
                mirror.backward_row(offset + i, &mut head[i * lanes..], next);
            }
            // Scalar reference, lane by lane.
            for j in 0..lanes {
                let mut dp = vec![0.0f32; n];
                let mut prev = 0.0f32;
                for i in 0..n {
                    let d = mirror.forward_step(offset + i, rhs[i * lanes + j], prev);
                    dp[i] = d;
                    prev = d;
                }
                let mut next = 0.0f32;
                for i in (0..n).rev() {
                    let xi = mirror.backward_step(offset + i, dp[i], next);
                    assert_eq!(
                        buf[i * lanes + j].to_bits(),
                        xi.to_bits(),
                        "lanes={lanes} lane={j} row={i}"
                    );
                    next = xi;
                }
            }
        }
    }

    #[test]
    fn workspace_is_reusable() {
        let mut ws = TridiagWorkspace::new(3);
        let mut x = [0.0; 2];
        ws.solve(&[-1.0], &[2.0, 2.0], &[-1.0], &[1.0, 1.0], &mut x)
            .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-14);
        // Different size on the same workspace.
        let mut x3 = [0.0; 3];
        ws.solve(
            &[-1.0, -1.0],
            &[2.0, 2.0, 2.0],
            &[-1.0, -1.0],
            &[1.0, 0.0, 1.0],
            &mut x3,
        )
        .unwrap();
        assert!((x3[1] - 1.0).abs() < 1e-14);
    }
}
