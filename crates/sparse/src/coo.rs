use crate::CsrMatrix;

/// A sparse matrix under construction, stored as `(row, col, value)`
/// triplets.
///
/// Duplicate entries are allowed and are *summed* when converting to
/// [`CsrMatrix`], which is exactly the semantics needed for modified nodal
/// analysis stamping: each resistor stamps four entries and overlapping
/// stamps accumulate.
///
/// # Example
///
/// ```
/// use voltprop_sparse::TripletMatrix;
///
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicate: summed on conversion
/// t.push(1, 1, 5.0);
/// let csr = t.to_csr();
/// assert_eq!(csr.get(0, 0), 3.0);
/// assert_eq!(csr.get(1, 1), 5.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TripletMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl TripletMatrix {
    /// Creates an empty triplet matrix with the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        TripletMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty triplet matrix with storage reserved for `cap`
    /// entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        TripletMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Returns `true` if no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Appends the entry `(row, col, val)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is outside the matrix shape. Stamping an
    /// out-of-range node is a programming error in the caller, not a
    /// recoverable condition.
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "triplet ({row}, {col}) out of bounds for {}x{} matrix",
            self.nrows,
            self.ncols
        );
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.vals.push(val);
    }

    /// Appends the four symmetric conductance stamps for a two-terminal
    /// conductance `g` between nodes `a` and `b`:
    /// `(a,a)+=g`, `(b,b)+=g`, `(a,b)-=g`, `(b,a)-=g`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of bounds (see [`TripletMatrix::push`]).
    pub fn stamp_conductance(&mut self, a: usize, b: usize, g: f64) {
        self.push(a, a, g);
        self.push(b, b, g);
        self.push(a, b, -g);
        self.push(b, a, -g);
    }

    /// Appends a diagonal stamp `(n,n) += g` (conductance to ground or a
    /// folded Dirichlet node).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds (see [`TripletMatrix::push`]).
    pub fn stamp_to_ground(&mut self, n: usize, g: f64) {
        self.push(n, n, g);
    }

    /// Converts to compressed sparse row format, summing duplicates and
    /// dropping entries whose accumulated value is exactly zero only if they
    /// were never stamped (explicit zeros are kept, preserving structure).
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_triplets(self.nrows, self.ncols, &self.rows, &self.cols, &self.vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let t = TripletMatrix::new(4, 5);
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 5);
        assert_eq!(t.nnz(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn push_and_convert_sums_duplicates() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(1, 2, 1.5);
        t.push(1, 2, 2.5);
        t.push(0, 0, 1.0);
        let m = t.to_csr();
        assert_eq!(m.get(1, 2), 4.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn stamp_conductance_is_symmetric() {
        let mut t = TripletMatrix::new(2, 2);
        t.stamp_conductance(0, 1, 2.0);
        let m = t.to_csr();
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 1), 2.0);
        assert_eq!(m.get(0, 1), -2.0);
        assert_eq!(m.get(1, 0), -2.0);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn stamp_to_ground_hits_diagonal() {
        let mut t = TripletMatrix::new(2, 2);
        t.stamp_to_ground(1, 3.0);
        let m = t.to_csr();
        assert_eq!(m.get(1, 1), 3.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn with_capacity_reserves() {
        let t = TripletMatrix::with_capacity(2, 2, 100);
        assert!(t.is_empty());
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn explicit_zero_is_kept() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 0.0);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 1);
    }
}
