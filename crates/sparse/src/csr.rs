use crate::ordering::Permutation;
use crate::vec_ops;

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// Within each row, column indices are strictly increasing. For the symmetric
/// matrices used throughout this workspace, the same storage can be read as
/// compressed sparse *column* format, which [`crate::Cholesky`] relies on.
///
/// # Example
///
/// ```
/// use voltprop_sparse::TripletMatrix;
///
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 2.0);
/// t.push(0, 1, -1.0);
/// t.push(1, 0, -1.0);
/// t.push(1, 1, 2.0);
/// let a = t.to_csr();
///
/// let y = a.mul_vec(&[1.0, 1.0]);
/// assert_eq!(y, vec![1.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from triplet arrays, summing duplicate entries.
    ///
    /// # Panics
    ///
    /// Panics if the triplet arrays have different lengths or contain indices
    /// outside `nrows` × `ncols`.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: &[u32],
        cols: &[u32],
        vals: &[f64],
    ) -> Self {
        assert_eq!(rows.len(), cols.len(), "triplet array length mismatch");
        assert_eq!(rows.len(), vals.len(), "triplet array length mismatch");

        // Count entries per row.
        let mut counts = vec![0usize; nrows + 1];
        for &r in rows {
            assert!((r as usize) < nrows, "row index {r} out of bounds");
            counts[r as usize + 1] += 1;
        }
        for i in 0..nrows {
            counts[i + 1] += counts[i];
        }
        let indptr_raw = counts.clone();

        // Scatter into row-grouped arrays.
        let mut next = indptr_raw.clone();
        let mut idx = vec![0u32; vals.len()];
        let mut val = vec![0f64; vals.len()];
        for k in 0..vals.len() {
            let r = rows[k] as usize;
            let c = cols[k];
            assert!((c as usize) < ncols, "col index {c} out of bounds");
            let p = next[r];
            idx[p] = c;
            val[p] = vals[k];
            next[r] += 1;
        }

        // Sort each row by column and merge duplicates.
        let mut indptr = vec![0usize; nrows + 1];
        let mut out_idx = Vec::with_capacity(vals.len());
        let mut out_val = Vec::with_capacity(vals.len());
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for r in 0..nrows {
            let (lo, hi) = (indptr_raw[r], indptr_raw[r + 1]);
            scratch.clear();
            scratch.extend(idx[lo..hi].iter().copied().zip(val[lo..hi].iter().copied()));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_idx.push(c);
                out_val.push(v);
                i = j;
            }
            indptr[r + 1] = out_idx.len();
        }

        CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices: out_idx,
            values: out_val,
        }
    }

    /// Builds a CSR matrix directly from its raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent (wrong `indptr` length, column
    /// indices out of range or not strictly increasing within a row).
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), nrows + 1, "indptr length must be nrows + 1");
        assert_eq!(indices.len(), values.len());
        assert_eq!(*indptr.last().unwrap(), indices.len());
        for r in 0..nrows {
            assert!(indptr[r] <= indptr[r + 1], "indptr must be nondecreasing");
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                assert!(
                    w[0] < w[1],
                    "columns must be strictly increasing in row {r}"
                );
            }
            if let Some(&last) = row.last() {
                assert!((last as usize) < ncols, "column index out of bounds");
            }
        }
        CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        }
    }

    /// Creates an `n` × `n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of explicitly stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row pointer array (`nrows + 1` entries).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The column index array.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The stored values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values (the sparsity pattern is fixed).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The column indices and values of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= nrows`.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// The value at `(r, c)`, or `0.0` if the entry is not stored.
    ///
    /// # Panics
    ///
    /// Panics if `r >= nrows`.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as u32)) {
            Ok(p) => vals[p],
            Err(_) => 0.0,
        }
    }

    /// Dense matrix–vector product `y = A x`, writing into `y`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        for r in 0..self.nrows {
            let mut acc = 0.0;
            for p in self.indptr[r]..self.indptr[r + 1] {
                acc += self.values[p] * x[self.indices[p] as usize];
            }
            y[r] = acc;
        }
    }

    /// Allocating matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv(x, &mut y);
        y
    }

    /// The 2-norm of the residual `b - A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols` or `b.len() != nrows`.
    pub fn residual(&self, x: &[f64], b: &[f64]) -> f64 {
        assert_eq!(b.len(), self.nrows, "b length must equal nrows");
        let mut y = self.mul_vec(x);
        for i in 0..y.len() {
            y[i] = b[i] - y[i];
        }
        vec_ops::norm2(&y)
    }

    /// The main diagonal as a dense vector (missing entries are `0.0`).
    pub fn diag(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut next = counts;
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        for r in 0..self.nrows {
            for p in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[p] as usize;
                let q = next[c];
                indices[q] = r as u32;
                values[q] = self.values[p];
                next[c] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            indptr,
            indices,
            values,
        }
    }

    /// Whether the matrix equals its transpose within absolute tolerance
    /// `tol` on every entry.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.indptr != self.indptr || t.indices != self.indices {
            // Patterns differ; fall back to value comparison via `get`.
            for r in 0..self.nrows {
                let (cols, vals) = self.row(r);
                for (c, v) in cols.iter().zip(vals) {
                    if (v - t.get(r, *c as usize)).abs() > tol {
                        return false;
                    }
                }
            }
            return true;
        }
        self.values
            .iter()
            .zip(&t.values)
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Whether every row is (weakly) diagonally dominant, and strictly so in
    /// at least one row. Returns the *minimum dominance ratio*
    /// `|a_ii| / Σ_{j≠i} |a_ij|` over all rows (∞ if a row has no
    /// off-diagonal entries).
    ///
    /// The paper's §III-A argument is that TSV stamps collapse this ratio
    /// toward 1, which slows Gauss–Seidel-family methods.
    pub fn diagonal_dominance(&self) -> f64 {
        let mut min_ratio = f64::INFINITY;
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                if *c as usize == r {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            let ratio = if off == 0.0 {
                f64::INFINITY
            } else {
                diag / off
            };
            min_ratio = min_ratio.min(ratio);
        }
        min_ratio
    }

    /// Extracts the lower triangle (including the diagonal) as CSR.
    pub fn lower_triangle(&self) -> CsrMatrix {
        let mut indptr = vec![0usize; self.nrows + 1];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                if *c as usize <= r {
                    indices.push(*c);
                    values.push(*v);
                }
            }
            indptr[r + 1] = indices.len();
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            values,
        }
    }

    /// Symmetric permutation `B = P A Pᵀ`, i.e.
    /// `B[p.new_of(i), p.new_of(j)] = A[i, j]`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or the permutation length differs
    /// from the matrix dimension.
    pub fn permute_sym(&self, p: &Permutation) -> CsrMatrix {
        assert_eq!(
            self.nrows, self.ncols,
            "permute_sym requires a square matrix"
        );
        assert_eq!(p.len(), self.nrows, "permutation length mismatch");
        let mut rows = Vec::with_capacity(self.nnz());
        let mut cols = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for r in 0..self.nrows {
            let nr = p.new_of(r) as u32;
            for q in self.indptr[r]..self.indptr[r + 1] {
                rows.push(nr);
                cols.push(p.new_of(self.indices[q] as usize) as u32);
                vals.push(self.values[q]);
            }
        }
        CsrMatrix::from_triplets(self.nrows, self.ncols, &rows, &cols, &vals)
    }

    /// Converts to a dense row-major matrix (testing helper; avoid for large
    /// matrices).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                d[r][*c as usize] = *v;
            }
        }
        d
    }

    /// Estimated heap footprint of this matrix in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn laplacian_path(n: usize) -> CsrMatrix {
        // 1-D resistor chain Laplacian with unit conductances + 1.0 to ground
        // at node 0 (makes it SPD).
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.stamp_conductance(i, i + 1, 1.0);
        }
        t.stamp_to_ground(0, 1.0);
        t.to_csr()
    }

    #[test]
    fn from_triplets_sorts_and_merges() {
        let rows = [1u32, 0, 1, 0];
        let cols = [1u32, 1, 1, 0];
        let vals = [2.0, 3.0, 4.0, 5.0];
        let m = CsrMatrix::from_triplets(2, 2, &rows, &cols, &vals);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 5.0);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 1), 6.0);
        // Strictly increasing columns per row.
        let (cols0, _) = m.row(0);
        assert_eq!(cols0, &[0, 1]);
    }

    #[test]
    fn identity_spmv_is_noop() {
        let i = CsrMatrix::identity(4);
        let x = [1.0, -2.0, 3.0, 0.5];
        assert_eq!(i.mul_vec(&x), x.to_vec());
        assert_eq!(i.nnz(), 4);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = laplacian_path(5);
        let d = m.to_dense();
        let x = [1.0, 2.0, -1.0, 0.0, 3.0];
        let y = m.mul_vec(&x);
        for r in 0..5 {
            let want: f64 = (0..5).map(|c| d[r][c] * x[c]).sum();
            assert!((y[r] - want).abs() < 1e-14);
        }
    }

    #[test]
    fn transpose_involution() {
        let m = laplacian_path(6);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn symmetric_laplacian_detected() {
        let m = laplacian_path(5);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn asymmetric_detected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 1.0);
        let m = t.to_csr();
        assert!(!m.is_symmetric(1e-12));
    }

    #[test]
    fn diag_extraction() {
        let m = laplacian_path(3);
        assert_eq!(m.diag(), vec![2.0, 2.0, 1.0]);
    }

    #[test]
    fn lower_triangle_keeps_diag() {
        let m = laplacian_path(4);
        let l = m.lower_triangle();
        for r in 0..4 {
            let (cols, _) = l.row(r);
            assert!(cols.iter().all(|&c| c as usize <= r));
            assert!(cols.contains(&(r as u32)));
        }
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let m = CsrMatrix::identity(3);
        let b = [1.0, 2.0, 3.0];
        assert_eq!(m.residual(&b, &b), 0.0);
    }

    #[test]
    fn permute_sym_preserves_values() {
        let m = laplacian_path(4);
        let p = Permutation::from_new_to_old(vec![3, 1, 0, 2]).unwrap();
        let b = m.permute_sym(&p);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(b.get(p.new_of(i), p.new_of(j)), m.get(i, j));
            }
        }
    }

    #[test]
    fn diagonal_dominance_of_path() {
        let m = laplacian_path(3);
        // Rows: [2,-1,·], [-1,2,-1], [·,-1,1] → ratios 2, 1, 1.
        assert!((m.diagonal_dominance() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn memory_bytes_positive() {
        let m = laplacian_path(3);
        assert!(m.memory_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn spmv_wrong_len_panics() {
        let m = CsrMatrix::identity(3);
        let _ = m.mul_vec(&[1.0]);
    }

    #[test]
    fn from_raw_parts_roundtrip() {
        let m = laplacian_path(4);
        let m2 = CsrMatrix::from_raw_parts(
            m.nrows(),
            m.ncols(),
            m.indptr().to_vec(),
            m.indices().to_vec(),
            m.values().to_vec(),
        );
        assert_eq!(m, m2);
    }

    #[test]
    fn empty_rows_are_allowed() {
        let m = CsrMatrix::from_triplets(3, 3, &[2], &[2], &[7.0]);
        assert_eq!(m.row(0).0.len(), 0);
        assert_eq!(m.row(1).0.len(), 0);
        assert_eq!(m.get(2, 2), 7.0);
    }
}
