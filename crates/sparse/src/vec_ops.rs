//! Dense vector kernels used by the iterative solvers.
//!
//! These are deliberately plain, allocation-free loops over slices: the
//! iterative methods in `voltprop-solvers` call them in their inner loops.

/// Dot product `xᵀ y`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(voltprop_sparse::vec_ops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = x + beta * y` (the CG direction update).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm ‖x‖₂.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Maximum norm ‖x‖∞.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Largest absolute difference `max_i |x_i - y_i|`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff: length mismatch");
    x.iter().zip(y).fold(0.0, |m, (a, b)| m.max((a - b).abs()))
}

/// `z = x - y`, writing into `z`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub_into(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub_into: length mismatch");
    assert_eq!(x.len(), z.len(), "sub_into: length mismatch");
    for i in 0..x.len() {
        z[i] = x[i] - y[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basics() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot(&[1.0, -1.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0]);
    }

    #[test]
    fn xpby_direction_update() {
        let mut p = vec![1.0, 1.0];
        xpby(&[3.0, 4.0], 0.5, &mut p);
        assert_eq!(p, vec![3.5, 4.5]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn diff_and_sub() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 5.5]), 1.0);
        let mut z = vec![0.0; 2];
        sub_into(&[3.0, 1.0], &[1.0, 1.0], &mut z);
        assert_eq!(z, vec![2.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
