//! Dense vector kernels used by the iterative solvers.
//!
//! These are allocation-free loops over slices, written as fixed-width
//! blocks so the compiler can vectorize them: the iterative methods in
//! `voltprop-solvers` call them in their inner loops. The reductions
//! ([`dot`], [`norm2`]) use **blocked pairwise accumulation** — a fixed
//! summation tree whose shape depends only on the vector length — so the
//! result is deterministic (bit for bit) for a given input no matter how
//! the caller batches its solves, and the rounding error grows like
//! `O(log n)` instead of the `O(n)` of a naive running sum.

/// Elements reduced by one leaf of the pairwise tree. Each leaf runs
/// `LANE_BLOCK` independent accumulators so the loop vectorizes.
const PAIRWISE_BLOCK: usize = 64;

/// Accumulator / unroll width of the blocked inner loops.
const LANE_BLOCK: usize = 4;

/// Dot product `xᵀ y`, reduced with a fixed pairwise tree (see the
/// module docs): leaves of `PAIRWISE_BLOCK` elements are combined in a
/// shape that depends only on `x.len()`, so the result is a pure
/// function of the operands — batch-1 and batch-N callers that hand in
/// the same lane get the same bits.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(voltprop_sparse::vec_ops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    pairwise_dot(x, y)
}

/// Recursive pairwise reduction. The split point is the largest
/// power-of-two multiple of `PAIRWISE_BLOCK` strictly below `n`, so
/// the tree shape — and therefore the rounding — is a function of `n`
/// alone.
fn pairwise_dot(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    if n <= PAIRWISE_BLOCK {
        return leaf_dot(x, y);
    }
    let mut half = PAIRWISE_BLOCK;
    while half * 2 < n {
        half *= 2;
    }
    pairwise_dot(&x[..half], &y[..half]) + pairwise_dot(&x[half..], &y[half..])
}

/// One leaf of the pairwise tree: `LANE_BLOCK` independent fused
/// accumulators over fixed-width chunks, remainder folded in last, then
/// a balanced combine. At most `PAIRWISE_BLOCK` elements.
fn leaf_dot(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANE_BLOCK];
    let mut xc = x.chunks_exact(LANE_BLOCK);
    let mut yc = y.chunks_exact(LANE_BLOCK);
    for (xb, yb) in xc.by_ref().zip(yc.by_ref()) {
        for j in 0..LANE_BLOCK {
            acc[j] = xb[j].mul_add(yb[j], acc[j]);
        }
    }
    let mut tail = 0.0f64;
    for (&a, &b) in xc.remainder().iter().zip(yc.remainder()) {
        tail = a.mul_add(b, tail);
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// `y += alpha * x`, as fused multiply-adds in `LANE_BLOCK`-wide
/// blocks (each element is independent, so blocking is invisible).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let mut yc = y.chunks_exact_mut(LANE_BLOCK);
    let mut xc = x.chunks_exact(LANE_BLOCK);
    for (yb, xb) in yc.by_ref().zip(xc.by_ref()) {
        for j in 0..LANE_BLOCK {
            yb[j] = alpha.mul_add(xb[j], yb[j]);
        }
    }
    for (yi, &xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi = alpha.mul_add(xi, *yi);
    }
}

/// `y = x + beta * y` (the CG direction update), fused like [`axpy`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    let mut yc = y.chunks_exact_mut(LANE_BLOCK);
    let mut xc = x.chunks_exact(LANE_BLOCK);
    for (yb, xb) in yc.by_ref().zip(xc.by_ref()) {
        for j in 0..LANE_BLOCK {
            yb[j] = beta.mul_add(yb[j], xb[j]);
        }
    }
    for (yi, &xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi = beta.mul_add(*yi, xi);
    }
}

/// `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm ‖x‖₂, via the pairwise [`dot`].
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Maximum norm ‖x‖∞.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Largest absolute difference `max_i |x_i - y_i|`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff: length mismatch");
    x.iter().zip(y).fold(0.0, |m, (a, b)| m.max((a - b).abs()))
}

/// `z = x - y`, writing into `z`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub_into(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub_into: length mismatch");
    assert_eq!(x.len(), z.len(), "sub_into: length mismatch");
    for i in 0..x.len() {
        z[i] = x[i] - y[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basics() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot(&[1.0, -1.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0]);
    }

    #[test]
    fn xpby_direction_update() {
        let mut p = vec![1.0, 1.0];
        xpby(&[3.0, 4.0], 0.5, &mut p);
        assert_eq!(p, vec![3.5, 4.5]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn diff_and_sub() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 5.5]), 1.0);
        let mut z = vec![0.0; 2];
        sub_into(&[3.0, 1.0], &[1.0, 1.0], &mut z);
        assert_eq!(z, vec![2.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    fn pseudo_random(seed: u64, n: usize, scale_pow: i32) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|i| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = ((s >> 33) as f64) / (u32::MAX as f64) - 0.5;
                // Ill-scaled: magnitudes spanning ~2^scale_pow, alternating
                // signs so the true sum suffers heavy cancellation.
                u * (2.0f64).powi((i as i32 * 7 % scale_pow.max(1)) - scale_pow / 2)
            })
            .collect()
    }

    /// Kahan (compensated) dot product — the accuracy reference.
    fn kahan_dot(x: &[f64], y: &[f64]) -> f64 {
        let mut sum = 0.0f64;
        let mut c = 0.0f64;
        for (&a, &b) in x.iter().zip(y) {
            let term = a * b - c;
            let t = sum + term;
            c = (t - sum) - term;
            sum = t;
        }
        sum
    }

    /// Naive left-to-right dot (the pre-vectorization implementation),
    /// used to show the pairwise tree does not do worse.
    fn naive_dot(x: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn dot_is_deterministic_across_batch_orderings() {
        // A batch-N caller hands each lane to `dot` as its own slice; a
        // batch-1 caller hands the same lane alone. Both must see the
        // same bits: the reduction is a pure function of the slice, with
        // a tree shape fixed by the length (no data-dependent or
        // call-order-dependent state).
        let k = 5;
        let n = 777;
        let lanes: Vec<Vec<f64>> = (0..k)
            .map(|j| pseudo_random(100 + j as u64, n, 24))
            .collect();
        let ys: Vec<Vec<f64>> = (0..k)
            .map(|j| pseudo_random(900 + j as u64, n, 24))
            .collect();
        // Batch-N ordering: all lanes, in order, twice over.
        let batch: Vec<f64> = (0..2 * k).map(|r| dot(&lanes[r % k], &ys[r % k])).collect();
        // Batch-1 ordering: each lane alone (fresh pass, reverse order).
        for j in (0..k).rev() {
            let solo = dot(&lanes[j], &ys[j]);
            assert_eq!(solo.to_bits(), batch[j].to_bits(), "lane {j}");
            assert_eq!(solo.to_bits(), batch[k + j].to_bits(), "lane {j} rerun");
        }
    }

    #[test]
    fn dot_tree_shape_depends_only_on_length() {
        // Same data viewed through sub-slices of different origins must
        // reduce identically when the lengths match.
        let x = pseudo_random(7, 1000, 30);
        let y = pseudo_random(8, 1000, 30);
        for (a, b) in [(0usize, 640usize), (100, 740), (360, 1000)] {
            let d = dot(&x[a..b], &y[a..b]);
            let copied_x: Vec<f64> = x[a..b].to_vec();
            let copied_y: Vec<f64> = y[a..b].to_vec();
            assert_eq!(d.to_bits(), dot(&copied_x, &copied_y).to_bits());
        }
    }

    #[test]
    fn dot_accuracy_vs_kahan_on_ill_scaled_inputs() {
        for (seed, n) in [(1u64, 513usize), (2, 4096), (3, 10_000)] {
            let x = pseudo_random(seed, n, 40);
            let y = pseudo_random(seed + 50, n, 40);
            let reference = kahan_dot(&x, &y);
            let pairwise = dot(&x, &y);
            let naive = naive_dot(&x, &y);
            let scale: f64 = x
                .iter()
                .zip(&y)
                .map(|(a, b)| (a * b).abs())
                .fold(0.0, f64::max);
            let err_pairwise = (pairwise - reference).abs() / scale;
            let err_naive = (naive - reference).abs() / scale;
            // Blocked pairwise must stay within a few ulps of the
            // compensated reference and never lose to the naive sum.
            assert!(
                err_pairwise < 1e-13,
                "seed {seed} n {n}: pairwise off by {err_pairwise:.3e} (naive {err_naive:.3e})"
            );
            assert!(
                err_pairwise <= err_naive + 1e-16,
                "seed {seed} n {n}: pairwise ({err_pairwise:.3e}) worse than naive ({err_naive:.3e})"
            );
        }
    }

    #[test]
    fn norm2_matches_dot_bits() {
        let x = pseudo_random(11, 333, 12);
        assert_eq!(norm2(&x).to_bits(), dot(&x, &x).sqrt().to_bits());
    }
}
