//! Fill-reducing orderings and permutation utilities.
//!
//! The direct ("SPICE") solver permutes the conductance matrix with reverse
//! Cuthill–McKee before factorization; on mesh-like power grids this keeps
//! the Cholesky fill close to the matrix bandwidth.

use crate::CsrMatrix;
use std::collections::VecDeque;

/// A permutation of `0..n`, stored as the *new → old* index map.
///
/// `new_to_old[k]` is the original index that lands at position `k` after
/// permuting. The inverse (old → new) map is precomputed for O(1) lookups in
/// both directions.
///
/// # Example
///
/// ```
/// use voltprop_sparse::Permutation;
///
/// let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
/// assert_eq!(p.old_of(0), 2);
/// assert_eq!(p.new_of(2), 0);
/// let v = p.apply(&[10.0, 20.0, 30.0]); // v[new] = x[old]
/// assert_eq!(v, vec![30.0, 10.0, 20.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_to_old: Vec<u32>,
    old_to_new: Vec<u32>,
}

impl Permutation {
    /// Builds a permutation from its new → old map.
    ///
    /// Returns `None` if `map` is not a permutation of `0..map.len()`.
    pub fn from_new_to_old(map: Vec<u32>) -> Option<Self> {
        let n = map.len();
        let mut inv = vec![u32::MAX; n];
        for (new, &old) in map.iter().enumerate() {
            if old as usize >= n || inv[old as usize] != u32::MAX {
                return None;
            }
            inv[old as usize] = new as u32;
        }
        Some(Permutation {
            new_to_old: map,
            old_to_new: inv,
        })
    }

    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        let id: Vec<u32> = (0..n as u32).collect();
        Permutation {
            new_to_old: id.clone(),
            old_to_new: id,
        }
    }

    /// Number of indices.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// Whether the permutation is over the empty set.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// The original index that occupies position `new` after permuting.
    pub fn old_of(&self, new: usize) -> usize {
        self.new_to_old[new] as usize
    }

    /// The position that original index `old` moves to.
    pub fn new_of(&self, old: usize) -> usize {
        self.old_to_new[old] as usize
    }

    /// Applies the permutation to a vector: `out[new] = x[old_of(new)]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len(), "permutation length mismatch");
        self.new_to_old.iter().map(|&o| x[o as usize]).collect()
    }

    /// Applies the inverse permutation: `out[old] = x[new_of(old)]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply_inverse(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len(), "permutation length mismatch");
        self.old_to_new.iter().map(|&nw| x[nw as usize]).collect()
    }

    /// The inverse permutation as a new object.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            new_to_old: self.old_to_new.clone(),
            old_to_new: self.new_to_old.clone(),
        }
    }
}

/// Computes a reverse Cuthill–McKee ordering from the sparsity pattern of a
/// symmetric matrix.
///
/// Each connected component is seeded with a pseudo-peripheral vertex found
/// by repeated BFS (the George–Liu heuristic), then traversed in
/// lowest-degree-first BFS order; the final sequence is reversed.
///
/// The returned permutation maps *new → old* as in [`Permutation`]: applying
/// [`CsrMatrix::permute_sym`] with it yields the reordered matrix.
///
/// # Example
///
/// ```
/// use voltprop_sparse::{TripletMatrix, ordering::rcm};
///
/// // Path graph 0-1-2: RCM produces a bandwidth-1 ordering.
/// let mut t = TripletMatrix::new(3, 3);
/// t.stamp_conductance(0, 1, 1.0);
/// t.stamp_conductance(1, 2, 1.0);
/// let a = t.to_csr();
/// let p = rcm(&a);
/// assert_eq!(p.len(), 3);
/// ```
pub fn rcm(a: &CsrMatrix) -> Permutation {
    let n = a.nrows();
    let degree: Vec<u32> = (0..n)
        .map(|r| {
            let (cols, _) = a.row(r);
            cols.iter().filter(|&&c| c as usize != r).count() as u32
        })
        .collect();

    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut neighbors: Vec<u32> = Vec::new();

    for start in 0..n {
        if visited[start] {
            continue;
        }
        let seed = pseudo_peripheral(a, start, &degree);
        // Cuthill–McKee BFS from the seed.
        let mut queue = VecDeque::new();
        visited[seed] = true;
        queue.push_back(seed as u32);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            neighbors.clear();
            let (cols, _) = a.row(v as usize);
            for &c in cols {
                let c = c as usize;
                if c != v as usize && !visited[c] {
                    visited[c] = true;
                    neighbors.push(c as u32);
                }
            }
            neighbors.sort_unstable_by_key(|&u| degree[u as usize]);
            for &u in &neighbors {
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    Permutation::from_new_to_old(order).expect("BFS order is a permutation")
}

/// Finds a pseudo-peripheral vertex of the component containing `start`.
fn pseudo_peripheral(a: &CsrMatrix, start: usize, degree: &[u32]) -> usize {
    let mut v = start;
    let (mut ecc, mut last_level) = bfs_eccentricity(a, v);
    loop {
        // Pick the minimum-degree vertex in the last BFS level.
        let next = *last_level
            .iter()
            .min_by_key(|&&u| degree[u as usize])
            .expect("last BFS level is non-empty") as usize;
        let (next_ecc, next_level) = bfs_eccentricity(a, next);
        if next_ecc > ecc {
            v = next;
            ecc = next_ecc;
            last_level = next_level;
        } else {
            return v;
        }
    }
}

/// BFS from `v`; returns the eccentricity and the vertices of the last level.
fn bfs_eccentricity(a: &CsrMatrix, v: usize) -> (u32, Vec<u32>) {
    let n = a.nrows();
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    dist[v] = 0;
    queue.push_back(v as u32);
    let mut max_d = 0;
    while let Some(u) = queue.pop_front() {
        let d = dist[u as usize];
        max_d = max_d.max(d);
        let (cols, _) = a.row(u as usize);
        for &c in cols {
            if dist[c as usize] == u32::MAX {
                dist[c as usize] = d + 1;
                queue.push_back(c);
            }
        }
    }
    let last: Vec<u32> = (0..n as u32)
        .filter(|&u| dist[u as usize] == max_d)
        .collect();
    (max_d, last)
}

/// Half-bandwidth of a symmetric matrix: `max_i max_{j∈row i} |i - j|`.
///
/// Useful for checking that RCM actually tightened the profile.
pub fn bandwidth(a: &CsrMatrix) -> usize {
    let mut bw = 0usize;
    for r in 0..a.nrows() {
        let (cols, _) = a.row(r);
        for &c in cols {
            bw = bw.max(r.abs_diff(c as usize));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn grid_laplacian(w: usize, h: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(w * h, w * h);
        let id = |x: usize, y: usize| y * w + x;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    t.stamp_conductance(id(x, y), id(x + 1, y), 1.0);
                }
                if y + 1 < h {
                    t.stamp_conductance(id(x, y), id(x, y + 1), 1.0);
                }
            }
        }
        t.stamp_to_ground(0, 1.0);
        t.to_csr()
    }

    #[test]
    fn identity_permutation_is_noop() {
        let p = Permutation::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(p.apply(&x), x.to_vec());
        assert_eq!(p.apply_inverse(&x), x.to_vec());
    }

    #[test]
    fn from_new_to_old_rejects_non_permutations() {
        assert!(Permutation::from_new_to_old(vec![0, 0]).is_none());
        assert!(Permutation::from_new_to_old(vec![0, 5]).is_none());
        assert!(Permutation::from_new_to_old(vec![1, 0]).is_some());
    }

    #[test]
    fn apply_then_inverse_roundtrips() {
        let p = Permutation::from_new_to_old(vec![2, 0, 3, 1]).unwrap();
        let x = [10.0, 20.0, 30.0, 40.0];
        let y = p.apply(&x);
        assert_eq!(p.apply_inverse(&y), x.to_vec());
    }

    #[test]
    fn inverse_of_inverse_is_original() {
        let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        assert_eq!(p.inverse().inverse(), p);
    }

    #[test]
    fn rcm_is_valid_permutation() {
        let a = grid_laplacian(5, 4);
        let p = rcm(&a);
        assert_eq!(p.len(), 20);
        // All indices present exactly once (checked by constructor), and the
        // permuted matrix stays symmetric.
        let b = a.permute_sym(&p);
        assert!(b.is_symmetric(0.0));
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_grid() {
        let a = grid_laplacian(10, 10);
        // Shuffle with a fixed arbitrary permutation to ruin the natural
        // banded order, then check RCM restores a narrow band.
        let n = a.nrows();
        let shuffle: Vec<u32> = (0..n as u32).map(|i| i * 37 % n as u32).collect();
        let shuffle = Permutation::from_new_to_old(shuffle).expect("37 is coprime to 100");
        let messy = a.permute_sym(&shuffle);
        let tidy = messy.permute_sym(&rcm(&messy));
        assert!(bandwidth(&tidy) < bandwidth(&messy));
        assert!(bandwidth(&tidy) <= 2 * 10); // near-optimal for a 10-wide grid
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        // Two disjoint edges: 0-1 and 2-3.
        let mut t = TripletMatrix::new(4, 4);
        t.stamp_conductance(0, 1, 1.0);
        t.stamp_conductance(2, 3, 1.0);
        let p = rcm(&t.to_csr());
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn rcm_handles_isolated_vertices() {
        let mut t = TripletMatrix::new(3, 3);
        t.stamp_to_ground(1, 1.0); // vertices 0 and 2 have no edges at all
        let p = rcm(&t.to_csr());
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn bandwidth_of_path() {
        let mut t = TripletMatrix::new(3, 3);
        t.stamp_conductance(0, 2, 1.0);
        assert_eq!(bandwidth(&t.to_csr()), 2);
    }
}
