use crate::ordering::{rcm, Permutation};
use crate::{CsrMatrix, SparseError};

/// Which fill-reducing ordering [`Cholesky::factor_with`] applies before
/// factorizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillOrdering {
    /// Factor the matrix as given.
    Natural,
    /// Reverse Cuthill–McKee (the default; near-optimal for mesh-like power
    /// grids).
    #[default]
    Rcm,
}

/// A simplicial sparse Cholesky factorization `P A Pᵀ = L Lᵀ`.
///
/// This is the workspace's stand-in for SPICE: the DC operating point of a
/// linear resistive power grid is exactly one sparse symmetric
/// positive-definite solve. The implementation is the classic up-looking
/// algorithm driven by the elimination tree (Davis, *Direct Methods for
/// Sparse Linear Systems*): a symbolic pass computes the column counts of
/// `L` via `ereach`, then a numeric pass fills each row of `L` in
/// topological order.
///
/// Like SPICE, its memory is proportional to the *fill-in* `nnz(L)`, which
/// grows super-linearly on 3-D grids — this is the mechanism behind the
/// paper's "SPICE runs out of memory beyond 230K nodes" row in Table I.
///
/// # Example
///
/// ```
/// use voltprop_sparse::{TripletMatrix, Cholesky};
///
/// # fn main() -> Result<(), voltprop_sparse::SparseError> {
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 4.0);
/// t.push(1, 1, 3.0);
/// t.push(0, 1, 1.0);
/// t.push(1, 0, 1.0);
/// let a = t.to_csr();
/// let f = Cholesky::factor(&a)?;
/// let x = f.solve(&[5.0, 4.0]);
/// assert!(a.residual(&x, &[5.0, 4.0]) < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    /// Column pointers of L (CSC).
    colptr: Vec<usize>,
    /// Row indices of L; the first entry of each column is the diagonal.
    rowind: Vec<u32>,
    values: Vec<f64>,
    perm: Permutation,
}

impl Cholesky {
    /// Factors a symmetric positive definite matrix using the default RCM
    /// ordering.
    ///
    /// # Errors
    ///
    /// * [`SparseError::DimensionMismatch`] if the matrix is not square.
    /// * [`SparseError::NotSymmetric`] if it is not symmetric.
    /// * [`SparseError::NotPositiveDefinite`] if a pivot is non-positive.
    /// * [`SparseError::Empty`] for a 0×0 matrix.
    pub fn factor(a: &CsrMatrix) -> Result<Self, SparseError> {
        Self::factor_with(a, FillOrdering::Rcm)
    }

    /// Factors with an explicit ordering choice.
    ///
    /// # Errors
    ///
    /// See [`Cholesky::factor`].
    pub fn factor_with(a: &CsrMatrix, ordering: FillOrdering) -> Result<Self, SparseError> {
        let n = a.nrows();
        if n == 0 {
            return Err(SparseError::Empty);
        }
        if a.nrows() != a.ncols() {
            return Err(SparseError::DimensionMismatch {
                expected: (n, n),
                got: a.shape(),
            });
        }
        if !a.is_symmetric(1e-10) {
            return Err(SparseError::NotSymmetric);
        }
        let perm = match ordering {
            FillOrdering::Natural => Permutation::identity(n),
            FillOrdering::Rcm => rcm(a),
        };
        let b = a.permute_sym(&perm);

        let parent = etree(&b);

        // Symbolic pass: column counts of L via ereach.
        let mut counts = vec![1usize; n]; // diagonal of each column
        {
            let mut w = vec![u32::MAX; n];
            let mut s = vec![0u32; n];
            let mut stack = vec![0u32; n];
            for k in 0..n {
                let top = ereach(&b, k, &parent, &mut w, &mut s, &mut stack);
                for &i in &s[top..n] {
                    counts[i as usize] += 1;
                }
            }
        }
        let mut colptr = vec![0usize; n + 1];
        for i in 0..n {
            colptr[i + 1] = colptr[i] + counts[i];
        }
        let nnz = colptr[n];
        let mut rowind = vec![0u32; nnz];
        let mut values = vec![0f64; nnz];

        // Numeric pass (up-looking).
        let mut next = colptr.clone(); // next free slot per column
        let mut x = vec![0f64; n];
        let mut w = vec![u32::MAX; n];
        let mut s = vec![0u32; n];
        let mut stack = vec![0u32; n];
        for k in 0..n {
            let top = ereach(&b, k, &parent, &mut w, &mut s, &mut stack);
            // Scatter the upper-triangular part of column k of B (== entries
            // i <= k of row k, by symmetry) into x.
            let mut d = 0.0;
            {
                let (cols, vals) = b.row(k);
                for (c, v) in cols.iter().zip(vals) {
                    let i = *c as usize;
                    if i < k {
                        x[i] = *v;
                    } else if i == k {
                        d = *v;
                    }
                }
            }
            for &i_u in &s[top..n] {
                let i = i_u as usize;
                let lki = x[i] / values[colptr[i]];
                x[i] = 0.0;
                for p in colptr[i] + 1..next[i] {
                    x[rowind[p] as usize] -= values[p] * lki;
                }
                d -= lki * lki;
                let p = next[i];
                next[i] += 1;
                rowind[p] = k as u32;
                values[p] = lki;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(SparseError::NotPositiveDefinite {
                    column: perm.old_of(k),
                });
            }
            let p = next[k];
            next[k] += 1;
            rowind[p] = k as u32;
            values[p] = d.sqrt();
        }

        Ok(Cholesky {
            n,
            colptr,
            rowind,
            values,
            perm,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of nonzeros in the factor `L` (the fill).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The fill-reducing permutation that was applied.
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// Estimated heap footprint of the factor in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.colptr.len() * std::mem::size_of::<usize>()
            + self.rowind.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f64>()
    }

    /// Solves `A x = b` using the factorization.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let mut y = self.perm.apply(b);
        self.solve_permuted_in_place(&mut y);
        self.perm.apply_inverse(&y)
    }

    /// Solves in the permuted basis, overwriting `y` (used by the
    /// preconditioner path where permutation is handled by the caller).
    fn solve_permuted_in_place(&self, y: &mut [f64]) {
        let n = self.n;
        // Forward: L z = y (CSC lower-triangular, diagonal first per column).
        for j in 0..n {
            let d = self.values[self.colptr[j]];
            y[j] /= d;
            let yj = y[j];
            for p in self.colptr[j] + 1..self.colptr[j + 1] {
                y[self.rowind[p] as usize] -= self.values[p] * yj;
            }
        }
        // Backward: Lᵀ x = z.
        for j in (0..n).rev() {
            let mut acc = y[j];
            for p in self.colptr[j] + 1..self.colptr[j + 1] {
                acc -= self.values[p] * y[self.rowind[p] as usize];
            }
            y[j] = acc / self.values[self.colptr[j]];
        }
    }
}

/// Elimination tree of a symmetric matrix given its full (both triangles)
/// pattern; `parent[k] == u32::MAX` marks a root.
fn etree(b: &CsrMatrix) -> Vec<u32> {
    let n = b.nrows();
    const NONE: u32 = u32::MAX;
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for k in 0..n {
        let (cols, _) = b.row(k);
        for &c in cols {
            let mut i = c;
            while i != NONE && (i as usize) < k {
                let inext = ancestor[i as usize];
                ancestor[i as usize] = k as u32;
                if inext == NONE {
                    parent[i as usize] = k as u32;
                }
                i = inext;
            }
        }
    }
    parent
}

/// Computes the nonzero pattern of row `k` of `L`: returns `top` such that
/// `s[top..n]` lists the pattern in elimination-tree topological order.
fn ereach(
    b: &CsrMatrix,
    k: usize,
    parent: &[u32],
    w: &mut [u32],
    s: &mut [u32],
    stack: &mut [u32],
) -> usize {
    const NONE: u32 = u32::MAX;
    let n = b.nrows();
    let mark = k as u32;
    let mut top = n;
    w[k] = mark;
    let (cols, _) = b.row(k);
    for &c in cols {
        if c as usize >= k {
            continue;
        }
        let mut i = c;
        let mut len = 0usize;
        while w[i as usize] != mark {
            stack[len] = i;
            len += 1;
            w[i as usize] = mark;
            let pi = parent[i as usize];
            if pi == NONE {
                break;
            }
            i = pi;
        }
        while len > 0 {
            len -= 1;
            top -= 1;
            s[top] = stack[len];
        }
    }
    top
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn grid_spd(w: usize, h: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(w * h, w * h);
        let id = |x: usize, y: usize| y * w + x;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    t.stamp_conductance(id(x, y), id(x + 1, y), 1.0 + (x + y) as f64 * 0.1);
                }
                if y + 1 < h {
                    t.stamp_conductance(id(x, y), id(x, y + 1), 2.0);
                }
            }
        }
        t.stamp_to_ground(0, 1.0);
        t.stamp_to_ground(w * h - 1, 0.5);
        t.to_csr()
    }

    #[test]
    fn solves_diagonal_matrix() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 1, 4.0);
        t.push(2, 2, 8.0);
        let a = t.to_csr();
        let f = Cholesky::factor(&a).unwrap();
        for v in f.solve(&[2.0, 4.0, 8.0]) {
            assert!((v - 1.0).abs() < 1e-14);
        }
        assert_eq!(f.nnz(), 3);
    }

    #[test]
    fn solves_2x2_hand_computed() {
        // A = [4 2; 2 3], b = [10, 8] → x = [1.75, 1.5].
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 4.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 3.0);
        let a = t.to_csr();
        let f = Cholesky::factor_with(&a, FillOrdering::Natural).unwrap();
        let x = f.solve(&[10.0, 8.0]);
        assert!((x[0] - 1.75).abs() < 1e-14);
        assert!((x[1] - 1.5).abs() < 1e-14);
    }

    #[test]
    fn grid_laplacian_residual_tiny() {
        let a = grid_spd(7, 5);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        for ord in [FillOrdering::Natural, FillOrdering::Rcm] {
            let f = Cholesky::factor_with(&a, ord).unwrap();
            let x = f.solve(&b);
            assert!(a.residual(&x, &b) < 1e-10, "ordering {ord:?}");
        }
    }

    #[test]
    fn rcm_ordering_reduces_fill_on_shuffled_grid() {
        let a = grid_spd(12, 12);
        let n = a.nrows();
        let shuffle: Vec<u32> = (0..n as u32).map(|i| i * 59 % n as u32).collect();
        let p = Permutation::from_new_to_old(shuffle).expect("59 coprime to 144");
        let messy = a.permute_sym(&p);
        let f_nat = Cholesky::factor_with(&messy, FillOrdering::Natural).unwrap();
        let f_rcm = Cholesky::factor_with(&messy, FillOrdering::Rcm).unwrap();
        assert!(f_rcm.nnz() < f_nat.nnz());
    }

    #[test]
    fn not_positive_definite_detected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 1.0); // eigenvalues 3 and -1
        let err = Cholesky::factor(&t.to_csr()).unwrap_err();
        assert!(matches!(err, SparseError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn non_symmetric_rejected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 2.0);
        t.push(1, 1, 2.0);
        t.push(0, 1, 1.0);
        let err = Cholesky::factor(&t.to_csr()).unwrap_err();
        assert_eq!(err, SparseError::NotSymmetric);
    }

    #[test]
    fn non_square_rejected() {
        let m = CsrMatrix::from_triplets(2, 3, &[0], &[0], &[1.0]);
        let err = Cholesky::factor(&m).unwrap_err();
        assert!(matches!(err, SparseError::DimensionMismatch { .. }));
    }

    #[test]
    fn empty_rejected() {
        let m = CsrMatrix::from_triplets(0, 0, &[], &[], &[]);
        assert_eq!(Cholesky::factor(&m).unwrap_err(), SparseError::Empty);
    }

    #[test]
    fn singular_laplacian_without_ground_rejected() {
        // Pure graph Laplacian (no path to ground) is singular PSD.
        let mut t = TripletMatrix::new(3, 3);
        t.stamp_conductance(0, 1, 1.0);
        t.stamp_conductance(1, 2, 1.0);
        let err = Cholesky::factor(&t.to_csr()).unwrap_err();
        assert!(matches!(err, SparseError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn solve_matches_dense_gauss_on_random_spd() {
        // SPD via A = M Mᵀ + I on a small dense matrix, converted to CSR.
        let n = 8;
        let mut seed = 99u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let m: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
        let mut dense = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += m[i][k] * m[j][k];
                }
                dense[i][j] = s + if i == j { 1.0 * n as f64 } else { 0.0 };
            }
        }
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                t.push(i, j, dense[i][j]);
            }
        }
        let a = t.to_csr();
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = Cholesky::factor(&a).unwrap().solve(&b);
        assert!(a.residual(&x, &b) < 1e-9);
    }

    #[test]
    fn memory_bytes_scales_with_fill() {
        let a = grid_spd(6, 6);
        let f = Cholesky::factor(&a).unwrap();
        assert!(f.memory_bytes() >= f.nnz() * 12);
        assert_eq!(f.dim(), 36);
    }
}
