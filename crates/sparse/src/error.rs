use std::error::Error;
use std::fmt;

/// Errors produced by the sparse linear algebra kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SparseError {
    /// Matrix dimensions are inconsistent with the requested operation.
    DimensionMismatch {
        /// What the operation expected (rows, cols).
        expected: (usize, usize),
        /// What it was given.
        got: (usize, usize),
    },
    /// An entry index lies outside the declared matrix shape.
    IndexOutOfBounds {
        /// Offending (row, col).
        index: (usize, usize),
        /// Declared matrix shape.
        shape: (usize, usize),
    },
    /// The matrix is structurally or numerically not symmetric where a
    /// symmetric matrix is required.
    NotSymmetric,
    /// A Cholesky pivot was non-positive; the matrix is not positive
    /// definite.
    NotPositiveDefinite {
        /// Column at which factorization broke down.
        column: usize,
    },
    /// A zero (or near-zero) pivot was encountered in a triangular or
    /// tridiagonal solve.
    SingularPivot {
        /// Row of the offending pivot.
        row: usize,
    },
    /// The operation requires a non-empty matrix.
    Empty,
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { expected, got } => write!(
                f,
                "dimension mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            SparseError::IndexOutOfBounds { index, shape } => write!(
                f,
                "entry ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            SparseError::NotSymmetric => write!(f, "matrix is not symmetric"),
            SparseError::NotPositiveDefinite { column } => write!(
                f,
                "matrix is not positive definite (breakdown at column {column})"
            ),
            SparseError::SingularPivot { row } => {
                write!(f, "singular pivot encountered at row {row}")
            }
            SparseError::Empty => write!(f, "operation requires a non-empty matrix"),
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            SparseError::DimensionMismatch {
                expected: (2, 2),
                got: (3, 3),
            },
            SparseError::IndexOutOfBounds {
                index: (5, 1),
                shape: (2, 2),
            },
            SparseError::NotSymmetric,
            SparseError::NotPositiveDefinite { column: 7 },
            SparseError::SingularPivot { row: 3 },
            SparseError::Empty,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
