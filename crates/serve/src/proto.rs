//! The serve wire protocol: newline-delimited JSON requests and
//! responses, typed request parsing, and the geometry hash that keys the
//! session registry.
//!
//! # Requests
//!
//! Every request is one JSON object on one line with an `"op"` member:
//!
//! * `{"op":"ping"}` — liveness probe.
//! * `{"op":"info"}` — registry statistics.
//! * `{"op":"shutdown"}` — ask the daemon to stop accepting and drain.
//! * `{"op":"solve","stack":{…},…}` — a solve (see [`SolveRequest`]).
//!
//! A solve request describes the stack inline:
//!
//! ```json
//! {"op":"solve",
//!  "stack":{"width":16,"height":16,"tiers":3,"vdd":1.0,
//!           "wire_resistance":0.5,"tsv_resistance":0.05,
//!           "pad_resistance":0.01,"tsv_pitch":2,
//!           "loads":1e-4},
//!  "net":"power","backend":"voltprop",
//!  "params":{"epsilon":1e-6,"precision":"f64"},
//!  "build":"allow","voltages":false}
//! ```
//!
//! `"loads"` is either one number (uniform per-node draw) or an array of
//! `width*height*tiers` per-node values. Everything except
//! `width`/`height`/`tiers` is optional. `"build":"reject"` refuses to
//! factor a new session when the stack's geometry hash is not already in
//! the registry; the default (`"allow"`) builds and caches it.
//!
//! # Responses
//!
//! One JSON object per line. Success responses carry `"ok":true`;
//! failures carry `"ok":false` and a typed
//! `"error":{"kind":…,"message":…}` object. The server never answers a
//! request by dropping the connection.

use crate::json::Json;
use voltprop_core::{Backend, Precision, SolveParams};
use voltprop_grid::{NetKind, Stack3d, TsvPattern};

/// Wire protocol version reported by `info` responses.
pub const PROTOCOL_VERSION: usize = 1;

/// A typed request failure, serialized as the `"error"` member of a
/// response. The `kind` is machine-matchable; the message is for humans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Machine-readable category.
    pub kind: ErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Shedding hint rendered as `"retry_after_ms"` in the error object:
    /// how long a well-behaved client should back off before retrying.
    /// Only [`ErrorKind::Overloaded`] responses set it.
    pub retry_after_ms: Option<u64>,
}

/// Machine-readable error categories of the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not valid JSON or not a JSON object.
    MalformedRequest,
    /// The request was well-formed JSON but semantically invalid
    /// (unknown op, missing field, bad enum value, bad load vector…).
    BadRequest,
    /// `"build":"reject"` was set and the stack's geometry hash is not
    /// in the registry.
    GeometryNotCached,
    /// Building a session for the requested stack failed.
    Build,
    /// The requested backend cannot be served by the cached session.
    BackendUnavailable,
    /// The solve itself failed (e.g. convergence budget exhausted).
    Solver,
    /// The request's wall-clock deadline (its `deadline_ms`, or the
    /// server default) expired before the solve finished. The partial
    /// solve was abandoned cooperatively.
    DeadlineExceeded,
    /// The server shed the request under load: every scratch slot stayed
    /// busy for the admission window, the connection cap was hit, or the
    /// per-connection rate limit tripped. The error object carries a
    /// `retry_after_ms` backoff hint.
    Overloaded,
}

impl ErrorKind {
    /// The wire name of the category.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::MalformedRequest => "malformed-request",
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::GeometryNotCached => "geometry-not-cached",
            ErrorKind::Build => "build-error",
            ErrorKind::BackendUnavailable => "backend-unavailable",
            ErrorKind::Solver => "solver-error",
            ErrorKind::DeadlineExceeded => "deadline-exceeded",
            ErrorKind::Overloaded => "overloaded",
        }
    }
}

impl ServeError {
    /// A typed error with no retry hint.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> ServeError {
        ServeError {
            kind,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    fn bad(message: impl Into<String>) -> ServeError {
        ServeError::new(ErrorKind::BadRequest, message)
    }

    /// An [`ErrorKind::Overloaded`] shed carrying a backoff hint.
    pub fn overloaded(message: impl Into<String>, retry_after_ms: u64) -> ServeError {
        ServeError {
            kind: ErrorKind::Overloaded,
            message: message.into(),
            retry_after_ms: Some(retry_after_ms),
        }
    }

    /// Serializes the error as a complete response line (without the
    /// trailing newline).
    pub fn to_response(&self) -> String {
        let mut members = vec![
            ("kind".to_string(), Json::from(self.kind.as_str())),
            ("message".to_string(), Json::from(self.message.clone())),
        ];
        if let Some(ms) = self.retry_after_ms {
            members.push(("retry_after_ms".to_string(), Json::Num(ms as f64)));
        }
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(false)),
            ("error".to_string(), Json::Obj(members)),
        ])
        .to_string()
    }
}

/// Whether a solve may factor a new session on a registry miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildPolicy {
    /// Build and cache a session for an unseen geometry (the default).
    #[default]
    Allow,
    /// Refuse with [`ErrorKind::GeometryNotCached`] on a registry miss.
    Reject,
}

/// Per-node current loads of a solve request.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadSpec {
    /// The same draw at every node.
    Uniform(f64),
    /// Explicit per-node values (`width*height*tiers` entries).
    Explicit(Vec<f64>),
}

/// The inline stack description of a solve request. Geometry fields
/// (everything except `loads`) feed the registry hash; loads are free to
/// vary between requests on one cached session.
#[derive(Debug, Clone, PartialEq)]
pub struct StackSpec {
    /// Nodes along x per tier.
    pub width: usize,
    /// Nodes along y per tier.
    pub height: usize,
    /// Number of stacked tiers.
    pub tiers: usize,
    /// Supply voltage; `None` keeps the builder default.
    pub vdd: Option<f64>,
    /// Uniform wire resistance; `None` keeps the builder default.
    pub wire_resistance: Option<f64>,
    /// TSV pillar resistance; `None` keeps the builder default.
    pub tsv_resistance: Option<f64>,
    /// Package pad resistance; `None` keeps the builder default.
    pub pad_resistance: Option<f64>,
    /// Uniform TSV lattice pitch; `None` keeps the builder default.
    pub tsv_pitch: Option<usize>,
    /// Per-node current draws.
    pub loads: LoadSpec,
}

impl StackSpec {
    /// FNV-1a hash over the geometry fields — deliberately *not* the
    /// loads, so load-only variations of one grid share a registry
    /// entry.
    pub fn geometry_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.usize(self.width);
        h.usize(self.height);
        h.usize(self.tiers);
        h.opt_f64(self.vdd);
        h.opt_f64(self.wire_resistance);
        h.opt_f64(self.tsv_resistance);
        h.opt_f64(self.pad_resistance);
        h.usize(self.tsv_pitch.map_or(usize::MAX, |p| p));
        h.finish()
    }

    /// Materializes the spec into a [`Stack3d`].
    ///
    /// # Errors
    ///
    /// [`ErrorKind::BadRequest`] when the grid model rejects the spec
    /// (zero dimension, load-vector length mismatch, …).
    pub fn build_stack(&self) -> Result<Stack3d, ServeError> {
        let mut builder = Stack3d::builder(self.width, self.height, self.tiers);
        if let Some(v) = self.vdd {
            builder = builder.vdd(v);
        }
        if let Some(r) = self.wire_resistance {
            builder = builder.wire_resistance(r);
        }
        if let Some(r) = self.tsv_resistance {
            builder = builder.tsv_resistance(r);
        }
        if let Some(r) = self.pad_resistance {
            builder = builder.pad_resistance(r);
        }
        if let Some(pitch) = self.tsv_pitch {
            builder = builder.tsv_pattern(TsvPattern::Uniform { pitch });
        }
        builder = match &self.loads {
            LoadSpec::Uniform(amps) => builder.uniform_load(*amps),
            LoadSpec::Explicit(loads) => builder.loads(loads.clone()),
        };
        builder
            .build()
            .map_err(|e| ServeError::bad(format!("invalid stack: {e}")))
    }
}

/// A fully-parsed solve request.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// The stack to solve.
    pub stack: StackSpec,
    /// Which supply net to analyze.
    pub net: NetKind,
    /// Which solver backend to route through.
    pub backend: Backend,
    /// Per-request solve parameters overriding the session defaults.
    pub params: Option<SolveParams>,
    /// Registry-miss policy.
    pub build: BuildPolicy,
    /// Whether the response should carry the full voltage vector.
    pub voltages: bool,
    /// Wall-clock budget for this request in milliseconds. `None` defers
    /// to the server's configured default.
    pub deadline_ms: Option<u64>,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Registry statistics.
    Info,
    /// Stop accepting and drain.
    Shutdown,
    /// A solve.
    Solve(Box<SolveRequest>),
}

/// Parses one request line into a typed [`Request`].
///
/// # Errors
///
/// [`ErrorKind::MalformedRequest`] for invalid JSON,
/// [`ErrorKind::BadRequest`] for well-formed JSON that violates the
/// protocol. Never panics on any input.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let value = Json::parse(line)
        .map_err(|e| ServeError::new(ErrorKind::MalformedRequest, format!("invalid JSON: {e}")))?;
    if !matches!(value, Json::Obj(_)) {
        return Err(ServeError::new(
            ErrorKind::MalformedRequest,
            "request must be a JSON object",
        ));
    }
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::bad("missing string member \"op\""))?;
    match op {
        "ping" => Ok(Request::Ping),
        "info" => Ok(Request::Info),
        "shutdown" => Ok(Request::Shutdown),
        "solve" => Ok(Request::Solve(Box::new(parse_solve(&value)?))),
        other => Err(ServeError::bad(format!(
            "unknown op {other:?} (expected ping, info, shutdown, or solve)"
        ))),
    }
}

fn parse_solve(value: &Json) -> Result<SolveRequest, ServeError> {
    let stack = parse_stack(
        value
            .get("stack")
            .ok_or_else(|| ServeError::bad("solve requires a \"stack\" object"))?,
    )?;
    let net = match value.get("net").map(|v| (v, v.as_str())) {
        None => NetKind::Power,
        Some((_, Some("power"))) => NetKind::Power,
        Some((_, Some("ground"))) => NetKind::Ground,
        Some(_) => return Err(ServeError::bad("\"net\" must be \"power\" or \"ground\"")),
    };
    let backend = match value.get("backend").map(|v| (v, v.as_str())) {
        None => Backend::VoltProp,
        Some((_, Some("voltprop"))) => Backend::VoltProp,
        Some((_, Some("rb3d"))) => Backend::Rb3d,
        Some((_, Some("pcg"))) => Backend::Pcg,
        Some(_) => {
            return Err(ServeError::bad(
                "\"backend\" must be \"voltprop\", \"rb3d\", or \"pcg\"",
            ))
        }
    };
    let params = match value.get("params") {
        None | Some(Json::Null) => None,
        Some(p) => Some(parse_params(p)?),
    };
    let build = match value.get("build").map(|v| (v, v.as_str())) {
        None => BuildPolicy::Allow,
        Some((_, Some("allow"))) => BuildPolicy::Allow,
        Some((_, Some("reject"))) => BuildPolicy::Reject,
        Some(_) => return Err(ServeError::bad("\"build\" must be \"allow\" or \"reject\"")),
    };
    let voltages = match value.get("voltages") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ServeError::bad("\"voltages\" must be a bool"))?,
    };
    let deadline_ms = match value.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_usize()
                .filter(|&ms| ms > 0)
                .map(|ms| ms as u64)
                .ok_or_else(|| ServeError::bad("\"deadline_ms\" must be a positive integer"))?,
        ),
    };
    Ok(SolveRequest {
        stack,
        net,
        backend,
        params,
        build,
        voltages,
        deadline_ms,
    })
}

fn parse_stack(value: &Json) -> Result<StackSpec, ServeError> {
    if !matches!(value, Json::Obj(_)) {
        return Err(ServeError::bad("\"stack\" must be a JSON object"));
    }
    let dim = |name: &str| -> Result<usize, ServeError> {
        value
            .get(name)
            .and_then(Json::as_usize)
            .filter(|&n| n > 0)
            .ok_or_else(|| ServeError::bad(format!("stack.{name} must be a positive integer")))
    };
    let opt_num = |name: &str| -> Result<Option<f64>, ServeError> {
        match value.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| ServeError::bad(format!("stack.{name} must be a number"))),
        }
    };
    let width = dim("width")?;
    let height = dim("height")?;
    let tiers = dim("tiers")?;
    let tsv_pitch = match value.get("tsv_pitch") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_usize()
                .filter(|&p| p > 0)
                .ok_or_else(|| ServeError::bad("stack.tsv_pitch must be a positive integer"))?,
        ),
    };
    let loads =
        match value.get("loads") {
            None | Some(Json::Null) => {
                return Err(ServeError::bad(
                    "stack.loads must be a number (uniform) or an array of per-node values",
                ))
            }
            Some(Json::Num(amps)) => LoadSpec::Uniform(*amps),
            Some(Json::Arr(items)) => {
                let expected = width * height * tiers;
                if items.len() != expected {
                    return Err(ServeError::bad(format!(
                        "stack.loads has {} entries, expected width*height*tiers = {expected}",
                        items.len()
                    )));
                }
                let mut loads = Vec::with_capacity(items.len());
                for item in items {
                    loads.push(item.as_f64().ok_or_else(|| {
                        ServeError::bad("stack.loads entries must all be numbers")
                    })?);
                }
                LoadSpec::Explicit(loads)
            }
            Some(_) => {
                return Err(ServeError::bad(
                    "stack.loads must be a number (uniform) or an array of per-node values",
                ))
            }
        };
    Ok(StackSpec {
        width,
        height,
        tiers,
        vdd: opt_num("vdd")?,
        wire_resistance: opt_num("wire_resistance")?,
        tsv_resistance: opt_num("tsv_resistance")?,
        pad_resistance: opt_num("pad_resistance")?,
        tsv_pitch,
        loads,
    })
}

fn parse_params(value: &Json) -> Result<SolveParams, ServeError> {
    if !matches!(value, Json::Obj(_)) {
        return Err(ServeError::bad("\"params\" must be a JSON object"));
    }
    let num = |name: &str| -> Result<Option<f64>, ServeError> {
        match value.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| ServeError::bad(format!("params.{name} must be a number"))),
        }
    };
    let count = |name: &str| -> Result<Option<usize>, ServeError> {
        match value.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v.as_usize().map(Some).ok_or_else(|| {
                ServeError::bad(format!("params.{name} must be a non-negative integer"))
            }),
        }
    };
    let mut params = SolveParams::new();
    if let Some(v) = num("epsilon")? {
        params = params.epsilon(v);
    }
    if let Some(v) = num("damping")? {
        params = params.damping(v);
    }
    if let Some(v) = count("max_outer_iterations")? {
        params = params.max_outer_iterations(v);
    }
    if let Some(v) = num("sor_omega")? {
        params = params.sor_omega(v);
    }
    if let Some(v) = num("inner_tolerance")? {
        params = params.inner_tolerance(v);
    }
    if let Some(v) = count("max_inner_sweeps")? {
        params = params.max_inner_sweeps(v);
    }
    match value.get("precision").map(|v| (v, v.as_str())) {
        None | Some((&Json::Null, _)) => {}
        Some((_, Some("f64"))) => params = params.precision(Precision::F64),
        Some((_, Some("mixedf32"))) => params = params.precision(Precision::MixedF32),
        Some(_) => {
            return Err(ServeError::bad(
                "params.precision must be \"f64\" or \"mixedf32\"",
            ))
        }
    }
    Ok(params)
}

/// Incremental FNV-1a 64-bit hasher over canonical little-endian bytes.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn usize(&mut self, n: usize) {
        self.bytes(&(n as u64).to_le_bytes());
    }

    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            // Distinguish "absent" from any real value.
            None => self.bytes(&[0]),
            Some(x) => {
                self.bytes(&[1]);
                self.bytes(&x.to_bits().to_le_bytes());
            }
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(line: &str) -> SolveRequest {
        match parse_request(line).unwrap() {
            Request::Solve(req) => *req,
            other => panic!("expected solve, got {other:?}"),
        }
    }

    #[test]
    fn ops_parse() {
        assert_eq!(parse_request("{\"op\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(parse_request("{\"op\":\"info\"}").unwrap(), Request::Info);
        assert_eq!(
            parse_request("{\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn solve_defaults() {
        let req = spec(
            "{\"op\":\"solve\",\"stack\":{\"width\":8,\"height\":8,\"tiers\":2,\"loads\":1e-4}}",
        );
        assert_eq!(req.net, NetKind::Power);
        assert_eq!(req.backend, Backend::VoltProp);
        assert_eq!(req.build, BuildPolicy::Allow);
        assert!(req.params.is_none());
        assert!(!req.voltages);
        assert!(req.stack.build_stack().is_ok());
    }

    #[test]
    fn hash_ignores_loads_but_not_geometry() {
        let a = spec(
            "{\"op\":\"solve\",\"stack\":{\"width\":8,\"height\":8,\"tiers\":2,\"loads\":1e-4}}",
        );
        let b = spec(
            "{\"op\":\"solve\",\"stack\":{\"width\":8,\"height\":8,\"tiers\":2,\"loads\":2e-3}}",
        );
        let c = spec(
            "{\"op\":\"solve\",\"stack\":{\"width\":8,\"height\":8,\"tiers\":3,\"loads\":1e-4}}",
        );
        assert_eq!(a.stack.geometry_hash(), b.stack.geometry_hash());
        assert_ne!(a.stack.geometry_hash(), c.stack.geometry_hash());
    }

    #[test]
    fn deadline_ms_parses_and_validates() {
        let req = spec(
            "{\"op\":\"solve\",\"stack\":{\"width\":8,\"height\":8,\"tiers\":2,\"loads\":1e-4},\"deadline_ms\":250}",
        );
        assert_eq!(req.deadline_ms, Some(250));
        let req = spec(
            "{\"op\":\"solve\",\"stack\":{\"width\":8,\"height\":8,\"tiers\":2,\"loads\":1e-4}}",
        );
        assert_eq!(req.deadline_ms, None);
        for bad in ["0", "-5", "\"fast\"", "1.5"] {
            let line = format!(
                "{{\"op\":\"solve\",\"stack\":{{\"width\":8,\"height\":8,\"tiers\":2,\"loads\":1e-4}},\"deadline_ms\":{bad}}}"
            );
            let err = parse_request(&line).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "for deadline_ms={bad}");
        }
    }

    #[test]
    fn overloaded_renders_retry_after_hint() {
        let err = ServeError::overloaded("all slots busy", 40);
        let back = Json::parse(&err.to_response()).unwrap();
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(false));
        let error = back.get("error").unwrap();
        assert_eq!(error.get("kind").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(
            error.get("retry_after_ms").and_then(Json::as_usize),
            Some(40)
        );
        // Errors without a hint must not render the member at all.
        let plain = ServeError::new(ErrorKind::Solver, "x");
        assert!(!plain.to_response().contains("retry_after_ms"));
    }

    #[test]
    fn typed_errors_not_panics() {
        let cases: &[(&str, ErrorKind)] = &[
            ("not json", ErrorKind::MalformedRequest),
            ("[1,2,3]", ErrorKind::MalformedRequest),
            ("{\"op\":\"fly\"}", ErrorKind::BadRequest),
            ("{\"op\":\"solve\"}", ErrorKind::BadRequest),
            (
                "{\"op\":\"solve\",\"stack\":{\"width\":0,\"height\":8,\"tiers\":2,\"loads\":1}}",
                ErrorKind::BadRequest,
            ),
            (
                "{\"op\":\"solve\",\"stack\":{\"width\":8,\"height\":8,\"tiers\":2,\"loads\":[1,2]}}",
                ErrorKind::BadRequest,
            ),
            (
                "{\"op\":\"solve\",\"stack\":{\"width\":8,\"height\":8,\"tiers\":2,\"loads\":1},\"backend\":\"gpu\"}",
                ErrorKind::BadRequest,
            ),
            (
                "{\"op\":\"solve\",\"stack\":{\"width\":8,\"height\":8,\"tiers\":2,\"loads\":1},\"params\":{\"precision\":\"f16\"}}",
                ErrorKind::BadRequest,
            ),
        ];
        for (line, kind) in cases {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.kind, *kind, "for {line:?}");
            // The error must serialize into a well-formed response line.
            let rendered = err.to_response();
            let back = Json::parse(&rendered).unwrap();
            assert_eq!(back.get("ok").and_then(Json::as_bool), Some(false));
            assert_eq!(
                back.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str),
                Some(err.kind.as_str())
            );
        }
    }
}
