//! Byte-budgeted LRU registry of prefactored sessions:
//! [`SessionRegistry`].
//!
//! The daemon keys one [`SharedSession`] per geometry hash (see
//! [`StackSpec::geometry_hash`](crate::proto::StackSpec::geometry_hash)).
//! Factorizations are the server's dominant memory consumer, so the
//! registry enforces a byte budget: whenever an insert pushes the total
//! past it, idle sessions are evicted least-recently-used-first until
//! the total fits (or nothing idle remains). A session is *idle* when
//! the registry holds the only [`Arc`] to it **and** none of its scratch
//! slots are checked out — a session serving an in-flight request is
//! never evicted, even if that leaves the registry over budget until the
//! request completes.
//!
//! Byte accounting uses [`SharedSession::memory_bytes`], which is
//! computed once at build and stable for the pool's lifetime, so the
//! running total cannot drift from the sum of the entries.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use voltprop_core::SharedSession;

/// One cached session plus its LRU bookkeeping.
#[derive(Debug)]
struct Entry {
    session: Arc<SharedSession>,
    /// Footprint captured at insert ([`SharedSession::memory_bytes`]).
    bytes: usize,
    /// Logical timestamp of the last `get`/insert touch.
    last_used: u64,
}

/// The registry's interior state, behind one mutex.
#[derive(Debug, Default)]
struct State {
    entries: HashMap<u64, Entry>,
    /// Monotonic logical clock advanced on every touch.
    clock: u64,
    /// Sum of every entry's `bytes`.
    total_bytes: usize,
    /// Sessions evicted since construction.
    evictions: u64,
}

/// Point-in-time statistics of a [`SessionRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryStats {
    /// Cached sessions.
    pub sessions: usize,
    /// Sum of the cached sessions' footprints.
    pub total_bytes: usize,
    /// The configured budget (`usize::MAX` when unbounded).
    pub budget_bytes: usize,
    /// Sessions evicted since the registry was created.
    pub evictions: u64,
}

/// A concurrent map from geometry hash to [`Arc<SharedSession>`] with a
/// byte budget enforced by LRU eviction of idle sessions. See the
/// [module docs](self) for the eviction contract.
#[derive(Debug)]
pub struct SessionRegistry {
    budget_bytes: usize,
    state: Mutex<State>,
}

/// Recovers a poisoned registry mutex: the critical sections only touch
/// the map, counters, and the clock — no multi-step invariant can be
/// left torn — so continuing with the recovered state is sound.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl SessionRegistry {
    /// A registry evicting down to `budget_bytes` (use `usize::MAX` for
    /// the unbounded behavior of earlier releases).
    pub fn new(budget_bytes: usize) -> SessionRegistry {
        SessionRegistry {
            budget_bytes,
            state: Mutex::new(State::default()),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// The cached session for `hash`, refreshing its recency. `None` on
    /// a miss.
    pub fn get(&self, hash: u64) -> Option<Arc<SharedSession>> {
        let mut state = lock_recover(&self.state);
        state.clock += 1;
        let clock = state.clock;
        let entry = state.entries.get_mut(&hash)?;
        entry.last_used = clock;
        Some(Arc::clone(&entry.session))
    }

    /// Inserts a freshly built session, returning the one actually
    /// cached: when another thread won the build race for the same hash,
    /// the incumbent is kept (and `session` dropped) so both requesters
    /// share one factorization. Enforces the byte budget afterwards —
    /// the inserted/returned session itself is safe from this pass,
    /// because the caller's `Arc` clone pins it.
    pub fn insert(&self, hash: u64, session: Arc<SharedSession>) -> Arc<SharedSession> {
        let mut state = lock_recover(&self.state);
        state.clock += 1;
        let clock = state.clock;
        let kept = match state.entries.get_mut(&hash) {
            Some(incumbent) => {
                incumbent.last_used = clock;
                Arc::clone(&incumbent.session)
            }
            None => {
                let bytes = session.memory_bytes();
                state.total_bytes += bytes;
                state.entries.insert(
                    hash,
                    Entry {
                        session: Arc::clone(&session),
                        bytes,
                        last_used: clock,
                    },
                );
                session
            }
        };
        Self::evict_to_budget(&mut state, self.budget_bytes);
        kept
    }

    /// Evicts idle sessions, least recently used first, until
    /// `total_bytes <= budget` or no entry is evictable. An entry is
    /// evictable only when the registry holds the session's sole `Arc`
    /// and no scratch is checked out.
    fn evict_to_budget(state: &mut State, budget: usize) {
        while state.total_bytes > budget {
            let victim = state
                .entries
                .iter()
                .filter(|(_, e)| Arc::strong_count(&e.session) == 1 && e.session.in_flight() == 0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&hash, _)| hash);
            match victim {
                Some(hash) => {
                    let entry = state.entries.remove(&hash).expect("victim present");
                    state.total_bytes -= entry.bytes;
                    state.evictions += 1;
                }
                // Everything left is in use; stay over budget until the
                // in-flight requests drain rather than evict live work.
                None => break,
            }
        }
    }

    /// Unconditionally replaces the entry for `hash` (the hash-collision
    /// escape hatch: a cached session that does not serve the request's
    /// actual geometry must give way). The displaced session is dropped
    /// without counting as an eviction; budget enforcement runs as in
    /// [`SessionRegistry::insert`].
    pub fn replace(&self, hash: u64, session: Arc<SharedSession>) -> Arc<SharedSession> {
        let mut state = lock_recover(&self.state);
        state.clock += 1;
        let clock = state.clock;
        if let Some(old) = state.entries.remove(&hash) {
            state.total_bytes -= old.bytes;
        }
        let bytes = session.memory_bytes();
        state.total_bytes += bytes;
        state.entries.insert(
            hash,
            Entry {
                session: Arc::clone(&session),
                bytes,
                last_used: clock,
            },
        );
        Self::evict_to_budget(&mut state, self.budget_bytes);
        session
    }

    /// Re-runs budget enforcement without inserting (e.g. after requests
    /// drain, from a maintenance tick).
    pub fn enforce_budget(&self) {
        let mut state = lock_recover(&self.state);
        Self::evict_to_budget(&mut state, self.budget_bytes);
    }

    /// Current statistics (sessions, bytes, budget, evictions).
    pub fn stats(&self) -> RegistryStats {
        let state = lock_recover(&self.state);
        RegistryStats {
            sessions: state.entries.len(),
            total_bytes: state.total_bytes,
            budget_bytes: self.budget_bytes,
            evictions: state.evictions,
        }
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        lock_recover(&self.state).entries.len()
    }

    /// Whether no session is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `hash` is cached (without refreshing recency).
    pub fn contains(&self, hash: u64) -> bool {
        lock_recover(&self.state).entries.contains_key(&hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltprop_core::VpConfig;
    use voltprop_grid::Stack3d;

    fn session(width: usize) -> Arc<SharedSession> {
        let stack = Stack3d::builder(width, width, 2)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        Arc::new(SharedSession::build(&stack, VpConfig::default(), 1).unwrap())
    }

    #[test]
    fn unbounded_registry_never_evicts() {
        let reg = SessionRegistry::new(usize::MAX);
        for hash in 0..4u64 {
            reg.insert(hash, session(6));
        }
        let stats = reg.stats();
        assert_eq!(stats.sessions, 4);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn byte_accounting_matches_memory_bytes() {
        let reg = SessionRegistry::new(usize::MAX);
        let a = reg.insert(1, session(6));
        let b = reg.insert(2, session(8));
        assert_eq!(reg.stats().total_bytes, a.memory_bytes() + b.memory_bytes());
    }

    #[test]
    fn insert_race_keeps_the_incumbent() {
        let reg = SessionRegistry::new(usize::MAX);
        let first = reg.insert(7, session(6));
        let kept = reg.insert(7, session(6));
        assert!(Arc::ptr_eq(&first, &kept), "loser of the race is dropped");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.stats().total_bytes, first.memory_bytes());
    }

    #[test]
    fn evicts_least_recently_used_first() {
        // Budget that fits roughly two sessions of this size.
        let probe = session(6);
        let budget = probe.memory_bytes() * 2 + probe.memory_bytes() / 2;
        drop(probe);
        let reg = SessionRegistry::new(budget);
        reg.insert(1, session(6));
        reg.insert(2, session(6));
        // Touch 1 so 2 becomes the LRU, then force an eviction with 3.
        assert!(reg.get(1).is_some());
        reg.insert(3, session(6));
        assert!(reg.contains(1), "recently used survives");
        assert!(!reg.contains(2), "LRU entry is evicted");
        assert!(reg.contains(3), "new entry survives its own insert");
        let stats = reg.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.total_bytes <= budget);
    }

    #[test]
    fn in_use_sessions_are_pinned() {
        let reg = SessionRegistry::new(0); // evict everything idle
        let held = reg.insert(1, session(6));
        // The caller's Arc pins hash 1 despite the zero budget.
        assert!(reg.contains(1));
        // A second insert's own handle pins it too; hash 1 still held.
        let second = reg.insert(2, session(6));
        assert!(reg.contains(1) && reg.contains(2));
        // Dropping the handles unpins: the next enforcement clears both.
        drop(held);
        drop(second);
        reg.enforce_budget();
        assert!(reg.is_empty());
        assert_eq!(reg.stats().evictions, 2);
        assert_eq!(reg.stats().total_bytes, 0);
    }

    #[test]
    fn checked_out_scratch_pins_even_without_an_arc() {
        let reg = SessionRegistry::new(0);
        let arc = reg.insert(1, session(6));
        let stack = Stack3d::builder(6, 6, 2)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let sol = arc.solve(&voltprop_core::LoadCase::new(&stack)).unwrap();
        // Leak the guard so the scratch stays checked out after the Arc
        // is gone — the pathological state the `in_flight` guard is for.
        std::mem::forget(sol);
        drop(arc); // registry now holds the only Arc…
        assert_eq!(reg.get(1).map(|s| s.in_flight()), Some(1));
        reg.enforce_budget();
        assert!(
            reg.contains(1),
            "a session with a checked-out scratch must never be evicted"
        );
    }
}
