//! `voltprop-serve` — a zero-dependency JSON-over-TCP daemon serving
//! IR-drop solves from registry-cached
//! [`SharedSession`](voltprop_core::SharedSession)s.
//!
//! The daemon keeps one prefactored session per distinct grid geometry
//! (keyed by a hash of the geometry fields, never the loads) and serves
//! concurrent solve requests against it through the session's bounded
//! scratch checkout pool: up to `slots` requests solve in parallel,
//! later arrivals queue briefly, and sustained excess is shed with
//! typed errors. The wire protocol is newline-delimited JSON — see
//! [`proto`] for the request/response schema.
//!
//! ```no_run
//! use voltprop_serve::{request, serve, ServeConfig};
//!
//! # fn main() -> std::io::Result<()> {
//! let server = serve("127.0.0.1:0", ServeConfig::default())?;
//! let reply = request(
//!     server.addr(),
//!     r#"{"op":"solve","stack":{"width":8,"height":8,"tiers":2,"loads":1e-4}}"#,
//! )?;
//! assert!(reply.contains("\"ok\":true"));
//! # Ok(())
//! # }
//! ```
//!
//! # Operating voltprop-serve
//!
//! The daemon is engineered to degrade predictably under overload
//! instead of queueing unboundedly. Operators control four limits (all
//! [`ServeConfig`] fields, all exposed as `voltprop-serve` CLI flags):
//!
//! * **`max_connections`** (`--max-connections`) — the connection cap.
//!   A connection accepted past the cap receives exactly one
//!   `overloaded` error line (with a `retry_after_ms` hint) and is
//!   closed; no handler thread is spawned for it.
//! * **`registry_bytes`** (`--registry-bytes`) — the session cache
//!   budget. Each cached geometry costs
//!   [`SharedSession::memory_bytes`](voltprop_core::SharedSession::memory_bytes);
//!   past the budget, idle sessions are evicted
//!   least-recently-used-first. Sessions with in-flight solves are
//!   never evicted — the registry runs over budget until they drain
//!   rather than invalidate live work.
//! * **`deadline_default_ms`** (`--deadline-default-ms`) — the default
//!   wall-clock budget per solve, counted from request receipt through
//!   queueing and the solve itself. Requests may override it with their
//!   own `"deadline_ms"`. Expiry is cooperative (checked between
//!   engine iterations) and surfaces as a typed `deadline-exceeded`
//!   error; a request without either deadline may run arbitrarily
//!   long.
//! * **`checkout_wait_ms` / `max_rps_per_conn` / `max_line_bytes`** —
//!   the admission-control knobs: the bounded wait for a scratch slot
//!   before a solve is shed `overloaded`; an optional per-connection
//!   request rate cap (shed without closing); and the request-line
//!   length cap (`malformed-request`, then close — the only overload
//!   response that closes an admitted connection, because framing is
//!   unrecoverable mid-line).
//!
//! ## The retry contract
//!
//! Every shed is a typed `overloaded` error carrying `retry_after_ms`.
//! Clients should back off at least that long (the hint is jittered
//! server-side, so honoring it avoids synchronized retry waves) and
//! may then retry idempotently — solves are pure functions of their
//! request. `deadline-exceeded` means the work itself exceeded its
//! budget: retrying with the same deadline will likely fail again;
//! raise `deadline_ms`, relax the solve tolerances, or drop `slots`
//! contention instead.
//!
//! ## Fault injection
//!
//! For hardening tests, [`ChaosConfig`] (the `VOLTPROP_CHAOS`
//! environment variable or [`ServeConfig::chaos`]) makes the daemon
//! drop, truncate, and stall its own responses and starve solves at
//! configurable rates. [`ServerHandle::stats`] exposes the counters
//! soak tests assert on: after [`ServerHandle::shutdown`],
//! `handlers_spawned == handlers_finished` (no leaked threads), the
//! registry within budget, and every shed accounted for.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod json;
pub mod proto;
pub mod registry;
mod server;

pub use chaos::{ChaosConfig, ResponseFate};
pub use registry::{RegistryStats, SessionRegistry};
pub use server::{serve, ServeConfig, ServeStats, ServerHandle};

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A persistent client connection: send request lines, read response
/// lines, keep the socket open across requests.
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates the underlying connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Ok(Client {
            reader: BufReader::new(TcpStream::connect(addr)?),
        })
    }

    /// Sends one request line and blocks for the matching response line
    /// (without its trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates socket failures; an empty read (server closed the
    /// connection) surfaces as [`std::io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        let stream = self.reader.get_mut();
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}

/// One-shot convenience: connect, send one request line, return the
/// response line. Used by the CI smoke step and `--smoke`.
///
/// # Errors
///
/// Propagates the underlying socket failures.
pub fn request(addr: impl ToSocketAddrs, line: &str) -> std::io::Result<String> {
    Client::connect(addr)?.request(line)
}
