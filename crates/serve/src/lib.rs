//! `voltprop-serve` — a zero-dependency JSON-over-TCP daemon serving
//! IR-drop solves from registry-cached
//! [`SharedSession`](voltprop_core::SharedSession)s.
//!
//! The daemon keeps one prefactored session per distinct grid geometry
//! (keyed by a hash of the geometry fields, never the loads) and serves
//! concurrent solve requests against it through the session's bounded
//! scratch checkout pool: up to `slots` requests solve in parallel,
//! later arrivals queue. The wire protocol is newline-delimited JSON —
//! see [`proto`] for the request/response schema.
//!
//! ```no_run
//! use voltprop_serve::{request, serve, ServeConfig};
//!
//! # fn main() -> std::io::Result<()> {
//! let server = serve("127.0.0.1:0", ServeConfig::default())?;
//! let reply = request(
//!     server.addr(),
//!     r#"{"op":"solve","stack":{"width":8,"height":8,"tiers":2,"loads":1e-4}}"#,
//! )?;
//! assert!(reply.contains("\"ok\":true"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod proto;
mod server;

pub use server::{serve, ServeConfig, ServerHandle};

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A persistent client connection: send request lines, read response
/// lines, keep the socket open across requests.
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates the underlying connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Ok(Client {
            reader: BufReader::new(TcpStream::connect(addr)?),
        })
    }

    /// Sends one request line and blocks for the matching response line
    /// (without its trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates socket failures; an empty read (server closed the
    /// connection) surfaces as [`std::io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        let stream = self.reader.get_mut();
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}

/// One-shot convenience: connect, send one request line, return the
/// response line. Used by the CI smoke step and `--smoke`.
///
/// # Errors
///
/// Propagates the underlying socket failures.
pub fn request(addr: impl ToSocketAddrs, line: &str) -> std::io::Result<String> {
    Client::connect(addr)?.request(line)
}
