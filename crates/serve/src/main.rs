//! CLI entry point for the `voltprop-serve` daemon.
//!
//! ```text
//! voltprop-serve [--port N] [--slots N] [--parallelism N]
//! voltprop-serve --smoke [--clients N] [--slots N] [--parallelism N]
//! ```
//!
//! Without `--smoke`, binds `127.0.0.1:<port>` (port 0 picks an
//! ephemeral port, printed on stdout) and serves until a `shutdown`
//! request arrives. With `--smoke`, runs an in-process self-test: start
//! on an ephemeral port, fire concurrent solve requests from `--clients`
//! client threads, check the registry cached exactly one session, and
//! shut down cleanly — exiting non-zero on any failed check.

use voltprop_serve::{json::Json, serve, Client, ServeConfig, ServerHandle};

fn main() {
    let mut port: u16 = 7317;
    let mut config = ServeConfig::default();
    let mut smoke = false;
    let mut clients: usize = 4;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {arg} needs a {what} argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--port" => port = parse(&value("port"), "--port"),
            "--slots" => config.slots = parse(&value("count"), "--slots"),
            "--parallelism" => config.parallelism = parse(&value("count"), "--parallelism"),
            "--clients" => clients = parse(&value("count"), "--clients"),
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                println!(
                    "usage: voltprop-serve [--port N] [--slots N] [--parallelism N] \
                     [--smoke [--clients N]]"
                );
                return;
            }
            other => {
                eprintln!("error: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    if smoke {
        match run_smoke(config, clients) {
            Ok(summary) => println!("smoke ok: {summary}"),
            Err(what) => {
                eprintln!("smoke FAILED: {what}");
                std::process::exit(1);
            }
        }
        return;
    }

    let server = match serve(("127.0.0.1", port), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind 127.0.0.1:{port}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "voltprop-serve listening on {} (slots={}, parallelism={})",
        server.addr(),
        config.slots,
        config.parallelism
    );
    server.wait();
    println!("voltprop-serve stopped");
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid value {text:?} for {flag}");
        std::process::exit(2);
    })
}

/// In-process self-test: N client threads × 3 solve requests each (two
/// load levels and one explicit-params request) against one geometry,
/// then registry and shutdown checks.
fn run_smoke(config: ServeConfig, clients: usize) -> Result<String, String> {
    let server: ServerHandle =
        serve("127.0.0.1:0", config).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.addr();

    let failures: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients.max(1))
            .map(|c| {
                scope.spawn(move || -> Result<(), String> {
                    let mut client = Client::connect(addr)
                        .map_err(|e| format!("client {c} connect: {e}"))?;
                    let requests = [
                        r#"{"op":"solve","stack":{"width":12,"height":12,"tiers":3,"tsv_pitch":2,"loads":1e-4}}"#.to_string(),
                        format!(
                            r#"{{"op":"solve","stack":{{"width":12,"height":12,"tiers":3,"tsv_pitch":2,"loads":{}}}}}"#,
                            2e-4 * (c + 1) as f64
                        ),
                        r#"{"op":"solve","stack":{"width":12,"height":12,"tiers":3,"tsv_pitch":2,"loads":1e-4},"backend":"pcg","params":{"inner_tolerance":1e-8}}"#.to_string(),
                    ];
                    for (i, line) in requests.iter().enumerate() {
                        let reply = client
                            .request(line)
                            .map_err(|e| format!("client {c} request {i}: {e}"))?;
                        let value = Json::parse(&reply)
                            .map_err(|e| format!("client {c} reply {i} unparsable: {e}"))?;
                        if value.get("ok").and_then(Json::as_bool) != Some(true) {
                            return Err(format!("client {c} request {i} failed: {reply}"));
                        }
                        if value.get("converged").and_then(Json::as_bool) != Some(true) {
                            return Err(format!("client {c} request {i} did not converge: {reply}"));
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| match h.join() {
                Ok(Ok(())) => None,
                Ok(Err(what)) => Some(what),
                Err(_) => Some("client thread panicked".to_string()),
            })
            .collect()
    });
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }

    let mut client = Client::connect(addr).map_err(|e| format!("info connect: {e}"))?;
    let info = client
        .request(r#"{"op":"info"}"#)
        .map_err(|e| format!("info request: {e}"))?;
    let info_value = Json::parse(&info).map_err(|e| format!("info reply unparsable: {e}"))?;
    let sessions = info_value.get("sessions").and_then(Json::as_usize);
    if sessions != Some(1) {
        return Err(format!(
            "expected exactly 1 cached session for 1 geometry, got {info}"
        ));
    }
    let bye = client
        .request(r#"{"op":"shutdown"}"#)
        .map_err(|e| format!("shutdown request: {e}"))?;
    if !bye.contains("\"stopping\":true") {
        return Err(format!("unexpected shutdown reply: {bye}"));
    }
    drop(server); // joins the accept loop and all handlers

    Ok(format!(
        "{} clients x 3 requests, 1 cached session, clean shutdown",
        clients.max(1)
    ))
}
