//! CLI entry point for the `voltprop-serve` daemon.
//!
//! ```text
//! voltprop-serve [--port N] [--slots N] [--parallelism N]
//!                [--max-connections N] [--registry-bytes N]
//!                [--deadline-default-ms N] [--checkout-wait-ms N]
//!                [--max-rps N] [--chaos SPEC]
//! voltprop-serve --smoke [--clients N] [...]
//! voltprop-serve --soak [--seconds N] [--clients N] [...]
//! ```
//!
//! Without a mode flag, binds `127.0.0.1:<port>` (port 0 picks an
//! ephemeral port, printed on stdout) and serves until a `shutdown`
//! request arrives. With `--smoke`, runs an in-process self-test: start
//! on an ephemeral port, fire concurrent solve requests from `--clients`
//! client threads, check the registry cached exactly one session, and
//! shut down cleanly — exiting non-zero on any failed check. With
//! `--soak`, runs the overload/fault-injection harness: a chaos-enabled
//! server under `--clients` mixed abusive clients for `--seconds`,
//! asserting the robustness invariants (typed shedding only, registry
//! within its byte budget, zero leaked threads, bounded p99 for
//! well-behaved requests). The `VOLTPROP_CHAOS` environment variable (or
//! `--chaos`) overrides the soak's default fault mix and enables chaos
//! for the plain serving mode.

use std::io::{BufRead, BufReader, Write};
use std::time::{Duration, Instant};

use voltprop_serve::{
    json::Json, serve, ChaosConfig, Client, ServeConfig, ServeStats, ServerHandle,
};

fn main() {
    let mut port: u16 = 7317;
    let mut config = ServeConfig::default();
    let mut smoke = false;
    let mut soak = false;
    let mut clients: usize = 4;
    let mut seconds: u64 = 10;
    let mut chaos_flag: Option<ChaosConfig> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {arg} needs a {what} argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--port" => port = parse(&value("port"), "--port"),
            "--slots" => config.slots = parse_positive(&value("count"), "--slots"),
            "--parallelism" => {
                config.parallelism = parse_positive(&value("count"), "--parallelism")
            }
            "--max-connections" => {
                config.max_connections = parse_positive(&value("count"), "--max-connections")
            }
            "--registry-bytes" => {
                config.registry_bytes = parse_positive(&value("bytes"), "--registry-bytes")
            }
            "--deadline-default-ms" => {
                config.deadline_default_ms = parse(&value("milliseconds"), "--deadline-default-ms")
            }
            "--checkout-wait-ms" => {
                config.checkout_wait_ms = parse(&value("milliseconds"), "--checkout-wait-ms")
            }
            "--max-rps" => config.max_rps_per_conn = parse(&value("count"), "--max-rps"),
            "--chaos" => match ChaosConfig::parse(&value("spec")) {
                Ok(chaos) => chaos_flag = Some(chaos),
                Err(what) => {
                    eprintln!("error: invalid --chaos spec: {what}");
                    std::process::exit(2);
                }
            },
            "--clients" => clients = parse_positive(&value("count"), "--clients"),
            "--seconds" => seconds = parse_positive(&value("count"), "--seconds") as u64,
            "--smoke" => smoke = true,
            "--soak" => soak = true,
            "--help" | "-h" => {
                println!(
                    "usage: voltprop-serve [--port N] [--slots N] [--parallelism N]\n\
                     \x20                     [--max-connections N] [--registry-bytes N]\n\
                     \x20                     [--deadline-default-ms N] [--checkout-wait-ms N]\n\
                     \x20                     [--max-rps N] [--chaos drop=F,truncate=F,slow=F,slow_ms=N,breakdown=F,seed=N]\n\
                     \x20      voltprop-serve --smoke [--clients N] [...]\n\
                     \x20      voltprop-serve --soak [--seconds N] [--clients N] [...]\n\
                     \n\
                     Defaults: --port 7317 --slots 4 --parallelism 1 --max-connections 64\n\
                     \x20         --checkout-wait-ms 250; registry bytes unbounded; no default\n\
                     \x20         deadline; no rate limit; chaos off (VOLTPROP_CHAOS overrides)."
                );
                return;
            }
            other => {
                eprintln!("error: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if smoke && soak {
        eprintln!("error: --smoke and --soak are mutually exclusive");
        std::process::exit(2);
    }

    // Precedence: explicit --chaos flag, then VOLTPROP_CHAOS, then off
    // (the soak mode supplies its own default mix below).
    match ChaosConfig::from_env() {
        Ok(env_chaos) => config.chaos = chaos_flag.or(env_chaos).unwrap_or(ChaosConfig::OFF),
        Err(what) => {
            eprintln!("error: invalid VOLTPROP_CHAOS: {what}");
            std::process::exit(2);
        }
    }

    if smoke {
        match run_smoke(config, clients) {
            Ok(summary) => println!("smoke ok: {summary}"),
            Err(what) => {
                eprintln!("smoke FAILED: {what}");
                std::process::exit(1);
            }
        }
        return;
    }
    if soak {
        match run_soak(config, clients, seconds) {
            Ok(summary) => println!("soak ok: {summary}"),
            Err(what) => {
                eprintln!("soak FAILED: {what}");
                std::process::exit(1);
            }
        }
        return;
    }

    let server = match serve(("127.0.0.1", port), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind 127.0.0.1:{port}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "voltprop-serve listening on {} (slots={}, parallelism={}, max-connections={}{})",
        server.addr(),
        config.slots,
        config.parallelism,
        config.max_connections,
        if config.chaos.enabled() {
            ", CHAOS ENABLED"
        } else {
            ""
        }
    );
    server.wait();
    println!("voltprop-serve stopped");
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid value {text:?} for {flag}");
        std::process::exit(2);
    })
}

/// Like [`parse`] for counts where zero makes no sense (zero slots can
/// serve nothing, a zero-byte registry can cache nothing, …).
fn parse_positive(text: &str, flag: &str) -> usize {
    let n: usize = parse(text, flag);
    if n == 0 {
        eprintln!("error: {flag} must be positive, got 0");
        std::process::exit(2);
    }
    n
}

/// In-process self-test: N client threads × 3 solve requests each (two
/// load levels and one explicit-params request) against one geometry,
/// then registry and shutdown checks.
fn run_smoke(config: ServeConfig, clients: usize) -> Result<String, String> {
    let server: ServerHandle =
        serve("127.0.0.1:0", config).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.addr();

    let failures: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients.max(1))
            .map(|c| {
                scope.spawn(move || -> Result<(), String> {
                    let mut client = Client::connect(addr)
                        .map_err(|e| format!("client {c} connect: {e}"))?;
                    let requests = [
                        r#"{"op":"solve","stack":{"width":12,"height":12,"tiers":3,"tsv_pitch":2,"loads":1e-4}}"#.to_string(),
                        format!(
                            r#"{{"op":"solve","stack":{{"width":12,"height":12,"tiers":3,"tsv_pitch":2,"loads":{}}}}}"#,
                            2e-4 * (c + 1) as f64
                        ),
                        r#"{"op":"solve","stack":{"width":12,"height":12,"tiers":3,"tsv_pitch":2,"loads":1e-4},"backend":"pcg","params":{"inner_tolerance":1e-8}}"#.to_string(),
                    ];
                    for (i, line) in requests.iter().enumerate() {
                        let reply = client
                            .request(line)
                            .map_err(|e| format!("client {c} request {i}: {e}"))?;
                        let value = Json::parse(&reply)
                            .map_err(|e| format!("client {c} reply {i} unparsable: {e}"))?;
                        if value.get("ok").and_then(Json::as_bool) != Some(true) {
                            return Err(format!("client {c} request {i} failed: {reply}"));
                        }
                        if value.get("converged").and_then(Json::as_bool) != Some(true) {
                            return Err(format!("client {c} request {i} did not converge: {reply}"));
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| match h.join() {
                Ok(Ok(())) => None,
                Ok(Err(what)) => Some(what),
                Err(_) => Some("client thread panicked".to_string()),
            })
            .collect()
    });
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }

    let mut client = Client::connect(addr).map_err(|e| format!("info connect: {e}"))?;
    let info = client
        .request(r#"{"op":"info"}"#)
        .map_err(|e| format!("info request: {e}"))?;
    let info_value = Json::parse(&info).map_err(|e| format!("info reply unparsable: {e}"))?;
    let sessions = info_value.get("sessions").and_then(Json::as_usize);
    if sessions != Some(1) {
        return Err(format!(
            "expected exactly 1 cached session for 1 geometry, got {info}"
        ));
    }
    let bye = client
        .request(r#"{"op":"shutdown"}"#)
        .map_err(|e| format!("shutdown request: {e}"))?;
    if !bye.contains("\"stopping\":true") {
        return Err(format!("unexpected shutdown reply: {bye}"));
    }
    drop(server); // joins the accept loop and all handlers

    Ok(format!(
        "{} clients x 3 requests, 1 cached session, clean shutdown",
        clients.max(1)
    ))
}

/// What one soak client observed. Merged across clients for the final
/// invariant checks.
#[derive(Debug, Default)]
struct SoakTally {
    ok: u64,
    typed_errors: u64,
    overloaded: u64,
    deadline_exceeded: u64,
    dropped: u64,
    /// Wall-clock latencies of the well-behaved solves that succeeded.
    latencies_ms: Vec<u64>,
    violations: Vec<String>,
}

/// The overload/fault-injection harness (see the crate docs' "Operating
/// voltprop-serve" section). Runs a chaos-enabled server under abusive
/// mixed clients and asserts the robustness invariants.
fn run_soak(mut config: ServeConfig, clients: usize, seconds: u64) -> Result<String, String> {
    // A deliberately small serving surface so overload actually happens:
    // one scratch slot, a short admission wait, and a per-connection
    // rate cap that pipelined clients will trip.
    config.slots = 1;
    config.checkout_wait_ms = config.checkout_wait_ms.min(40);
    config.max_rps_per_conn = if config.max_rps_per_conn == 0 {
        60
    } else {
        config.max_rps_per_conn
    };
    config.deadline_default_ms = if config.deadline_default_ms == 0 {
        2_000
    } else {
        config.deadline_default_ms
    };
    config.max_connections = config.max_connections.min(clients.max(2) * 2);
    if !config.chaos.enabled() {
        config.chaos = ChaosConfig {
            drop_frac: 0.05,
            truncate_frac: 0.05,
            slow_frac: 0.05,
            slow_ms: 30,
            breakdown_frac: 0.08,
            seed: 42,
        };
    }
    // Budget the registry at the heavy-contention session plus roughly
    // three of the small rotation sessions: the five rotating
    // geometries force evictions while the hot heavy session stays
    // resident (so concurrent heavy solves contend on one pool).
    let probe = |width: usize, tiers: usize| -> Result<usize, String> {
        let stack = voltprop_grid::Stack3d::builder(width, width, tiers)
            .tsv_pattern(voltprop_grid::TsvPattern::Uniform { pitch: 2 })
            .uniform_load(1e-4)
            .build()
            .map_err(|e| format!("probe stack build failed: {e}"))?;
        Ok(voltprop_core::SharedSession::build(
            &stack,
            voltprop_core::VpConfig::default(),
            config.slots,
        )
        .map_err(|e| format!("probe session build failed: {e}"))?
        .memory_bytes())
    };
    if config.registry_bytes == usize::MAX {
        config.registry_bytes = probe(32, 4)? + probe(12, 3)? * 3 + probe(12, 3)? / 2;
    }

    let server: ServerHandle =
        serve("127.0.0.1:0", config).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.addr();
    let stop_at = Instant::now() + Duration::from_secs(seconds);

    let cap = config.max_connections;
    let tallies: Vec<SoakTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients.max(1))
            .map(|c| scope.spawn(move || soak_client(addr, c as u64, stop_at, cap)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| SoakTally {
                    violations: vec!["client thread panicked".to_string()],
                    ..SoakTally::default()
                })
            })
            .collect()
    });

    // Drain, shut down, and take the final counters.
    let mut server = server;
    server.shutdown();
    let stats: ServeStats = server.stats();

    let mut merged = SoakTally::default();
    for tally in tallies {
        merged.ok += tally.ok;
        merged.typed_errors += tally.typed_errors;
        merged.overloaded += tally.overloaded;
        merged.deadline_exceeded += tally.deadline_exceeded;
        merged.dropped += tally.dropped;
        merged.latencies_ms.extend(tally.latencies_ms);
        merged.violations.extend(tally.violations);
    }

    // Invariant 1: every answered line was well-formed JSON with a typed
    // outcome (violations collected client-side).
    if !merged.violations.is_empty() {
        let shown = merged
            .violations
            .iter()
            .take(5)
            .cloned()
            .collect::<Vec<_>>();
        return Err(format!(
            "{} protocol violations, e.g.: {}",
            merged.violations.len(),
            shown.join("; ")
        ));
    }
    // Invariant 2: no leaked handler threads after the handle joined.
    if stats.handlers_spawned != stats.handlers_finished {
        return Err(format!(
            "leaked handler threads: {} spawned, {} finished",
            stats.handlers_spawned, stats.handlers_finished
        ));
    }
    // Invariant 3: the registry ended within its byte budget (in-flight
    // pins are gone once every handler joined).
    if stats.registry_bytes > config.registry_bytes {
        return Err(format!(
            "registry over budget after drain: {} > {}",
            stats.registry_bytes, config.registry_bytes
        ));
    }
    // Invariant 4: eviction actually ran (five geometries through a
    // three-session budget must evict).
    if stats.registry_evictions == 0 {
        return Err("expected registry evictions under the soak byte budget".to_string());
    }
    // Invariant 5: the server made real progress and sheds were typed.
    if merged.ok == 0 {
        return Err("no successful solve in the whole soak".to_string());
    }
    // Invariant 5b: the connection storms must have been shed with typed
    // `overloaded` lines (each storm exceeds the cap by construction).
    if merged.overloaded == 0 {
        return Err("no typed overloaded shed despite connection storms".to_string());
    }
    // Invariant 6: bounded tail latency for the well-behaved requests
    // that succeeded (deadline default 2 s + chaos stalls; anything
    // near 10 s means a request hung un-shed).
    merged.latencies_ms.sort_unstable();
    let p99 = merged.latencies_ms[(merged.latencies_ms.len() - 1) * 99 / 100];
    if p99 > 8_000 {
        return Err(format!("p99 of successful solves is {p99} ms (> 8000)"));
    }

    Ok(format!(
        "{} clients x {seconds}s: {} ok (p99 {p99} ms), {} typed errors \
         ({} overloaded, {} deadline-exceeded), {} chaos closes; server: \
         {}/{} threads joined, {} evictions, registry {} <= {} bytes",
        clients.max(1),
        merged.ok,
        merged.typed_errors,
        merged.overloaded,
        merged.deadline_exceeded,
        merged.dropped,
        stats.handlers_finished,
        stats.handlers_spawned,
        stats.registry_evictions,
        stats.registry_bytes,
        config.registry_bytes,
    ))
}

/// One abusive soak client: rotates geometries (forcing eviction
/// churn), short deadlines, garbage lines, pings, info probes, and
/// periodic connection storms until `stop_at`, reconnecting whenever
/// chaos kills its connection.
/// Opens `cap + 1` simultaneous connections and pings each: with the
/// client's own connection already open, at least one must land past the
/// server's cap and receive the typed `overloaded` shed line.
fn connection_storm(addr: std::net::SocketAddr, cap: usize, tally: &mut SoakTally) {
    let streams: Vec<std::net::TcpStream> = (0..cap + 1)
        .filter_map(|_| std::net::TcpStream::connect(addr).ok())
        .collect();
    for stream in streams {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut writer = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => continue,
        };
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        let sent = writer
            .write_all(b"{\"op\":\"ping\"}\n")
            .and_then(|()| writer.flush());
        // A shed connection may close before the ping is even written;
        // either way, read whatever single line the server produced.
        let _ = sent;
        match reader.read_line(&mut reply) {
            Ok(n) if n > 0 && reply.ends_with('\n') => match Json::parse(reply.trim()) {
                Ok(value) => match value.get("ok").and_then(Json::as_bool) {
                    Some(true) => tally.ok += 1,
                    Some(false) => {
                        tally.typed_errors += 1;
                        let kind = value
                            .get("error")
                            .and_then(|e| e.get("kind"))
                            .and_then(Json::as_str);
                        if kind == Some("overloaded") {
                            tally.overloaded += 1;
                        }
                    }
                    None => tally
                        .violations
                        .push(format!("storm response without \"ok\": {}", reply.trim())),
                },
                Err(e) => tally
                    .violations
                    .push(format!("unparsable storm response {:?}: {e}", reply.trim())),
            },
            // EOF, torn frame, or timeout: a chaos close — allowed.
            _ => tally.dropped += 1,
        }
    }
}

fn soak_client(
    addr: std::net::SocketAddr,
    seed: u64,
    stop_at: Instant,
    max_connections: usize,
) -> SoakTally {
    let mut tally = SoakTally::default();
    let mut step = seed;
    'outer: while Instant::now() < stop_at {
        let stream = match std::net::TcpStream::connect(addr) {
            Ok(stream) => stream,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(12)));
        let mut writer = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => continue,
        };
        let mut reader = BufReader::new(stream);
        loop {
            if Instant::now() >= stop_at {
                break 'outer;
            }
            step = step.wrapping_add(1);
            // Periodic connection storm: briefly hold open more sockets
            // than the server's cap, proving excess connections are shed
            // with a typed `overloaded` line instead of hanging.
            if step % 37 == 0 {
                connection_storm(addr, max_connections, &mut tally);
            }
            // Geometry rotation: five distinct widths through a budget
            // sized for about three sessions.
            let width = 10 + (step % 5) as usize;
            let line = match step % 8 {
                // A "well-behaved" request: default deadline, modest
                // grid, latency measured for the p99 invariant.
                0..=2 => format!(
                    r#"{{"op":"solve","stack":{{"width":{width},"height":{width},"tiers":3,"tsv_pitch":2,"loads":1e-4}}}}"#
                ),
                // A deadline-starved request (1 ms on a tight budget).
                3 => format!(
                    r#"{{"op":"solve","stack":{{"width":{width},"height":{width},"tiers":3,"tsv_pitch":2,"loads":1e-4}},"deadline_ms":1,"params":{{"epsilon":1e-12}}}}"#
                ),
                // Garbage (typed malformed-request, connection lives).
                4 => "this is not json".to_string(),
                5 if step % 16 < 8 => r#"{"op":"ping"}"#.to_string(),
                5 => r#"{"op":"info"}"#.to_string(),
                // Heavy solves on one shared (budget-resident) heavy
                // geometry: with two heavy steps per cycle across all
                // clients, its single scratch slot stays hogged long
                // enough that concurrent admissions time out and shed.
                _ => r#"{"op":"solve","stack":{"width":32,"height":32,"tiers":4,"tsv_pitch":2,"loads":6e-4},"deadline_ms":4000,"params":{"epsilon":1e-10,"inner_tolerance":1e-11,"max_inner_sweeps":4000}}"#.to_string(),
            };
            let well_behaved = step % 8 < 3;
            let sent_at = Instant::now();
            if writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_err()
            {
                tally.dropped += 1;
                break; // reconnect
            }
            let mut reply = String::new();
            match reader.read_line(&mut reply) {
                Ok(0) => {
                    // Clean close (chaos drop or shed): allowed.
                    tally.dropped += 1;
                    break;
                }
                Ok(_) if !reply.ends_with('\n') => {
                    // Torn frame: the connection died mid-response
                    // (chaos truncate). Allowed — but only as a close.
                    tally.dropped += 1;
                    break;
                }
                Ok(_) => {
                    let trimmed = reply.trim();
                    match Json::parse(trimmed) {
                        Err(e) => {
                            tally
                                .violations
                                .push(format!("unparsable response {trimmed:?}: {e}"));
                            break;
                        }
                        Ok(value) => match value.get("ok").and_then(Json::as_bool) {
                            Some(true) => {
                                tally.ok += 1;
                                if well_behaved {
                                    tally
                                        .latencies_ms
                                        .push(sent_at.elapsed().as_millis() as u64);
                                }
                            }
                            Some(false) => {
                                tally.typed_errors += 1;
                                match value
                                    .get("error")
                                    .and_then(|e| e.get("kind"))
                                    .and_then(Json::as_str)
                                {
                                    Some("overloaded") => {
                                        tally.overloaded += 1;
                                        // Honor the retry contract.
                                        if let Some(ms) = value
                                            .get("error")
                                            .and_then(|e| e.get("retry_after_ms"))
                                            .and_then(Json::as_usize)
                                        {
                                            std::thread::sleep(Duration::from_millis(
                                                (ms as u64).min(100),
                                            ));
                                        }
                                    }
                                    Some("deadline-exceeded") => tally.deadline_exceeded += 1,
                                    Some(_) => {}
                                    None => tally
                                        .violations
                                        .push(format!("untyped error response: {trimmed}")),
                                }
                            }
                            None => tally
                                .violations
                                .push(format!("response without \"ok\": {trimmed}")),
                        },
                    }
                }
                Err(_) => {
                    // Read timeout or reset — count as a close.
                    tally.dropped += 1;
                    break;
                }
            }
        }
    }
    tally
}
