//! A minimal JSON value, parser, and writer — just enough for the serve
//! protocol, with zero dependencies.
//!
//! Objects preserve insertion order (they are association lists, not
//! hash maps), so encoded responses are byte-stable — the golden
//! round-trip tests rely on that. The parser is a depth-limited
//! recursive-descent reader that returns a typed [`JsonError`] on any
//! malformed input; it never panics.

use std::fmt;

/// Maximum nesting depth the parser accepts; deeper input is rejected
/// as malformed instead of risking a stack overflow on hostile input.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an insertion-ordered association list.
    Obj(Vec<(String, Json)>),
}

/// A typed parse failure: what went wrong and the byte offset it was
/// detected at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document (trailing non-whitespace is an error).
    ///
    /// # Errors
    ///
    /// [`JsonError`] on any malformed input; the parser never panics.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` for missing keys and for
    /// non-object values).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one (rejects
    /// fractional and out-of-range numbers).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            // Rust's shortest-roundtrip float formatting is valid JSON
            // for every finite value; non-finite numbers (which JSON
            // cannot carry) degrade to null.
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The input is a &str, so the scanned range stays valid UTF-8
            // (multi-byte sequences are never split: the loop only stops
            // on ASCII bytes, which cannot appear inside one).
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| {
                    self.err("invalid UTF-8 in string") // unreachable from &str input
                })?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let high = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&high) {
                    // Surrogate pair: require the low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.eat(b'u', "expected low surrogate escape")?;
                        let low = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&low) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                    } else {
                        return Err(self.err("unpaired high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&high) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    high
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err("invalid escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_values() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-1.5",
            "\"hello\"",
            "[]",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}",
        ] {
            let value = Json::parse(text).unwrap();
            assert_eq!(value.to_string(), text, "roundtrip of {text}");
        }
        // Exponent-notation numbers reprint in decimal notation, but the
        // value survives the round trip exactly.
        let value = Json::parse("1e300").unwrap();
        assert_eq!(Json::parse(&value.to_string()).unwrap(), value);
    }

    #[test]
    fn escapes_roundtrip() {
        let value = Json::parse("\"a\\\"b\\\\c\\nd\\u0041\\u00e9\"").unwrap();
        assert_eq!(value.as_str().unwrap(), "a\"b\\c\nd\u{41}\u{e9}");
        let re = Json::parse(&value.to_string()).unwrap();
        assert_eq!(re, value);
    }

    #[test]
    fn surrogate_pair_parses() {
        let value = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(value.as_str().unwrap(), "😀");
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for text in [
            "",
            "{",
            "[1,",
            "nul",
            "\"open",
            "{\"a\"}",
            "{\"a\":}",
            "1 2",
            "[1 2]",
            "{\"a\":1,}",
            "\"\\q\"",
            "\"\\ud800\"",
            "- ",
            "1e999",
            &("[".repeat(100) + &"]".repeat(100)),
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} must not parse");
        }
    }

    #[test]
    fn accessors() {
        let value = Json::parse("{\"n\":3,\"s\":\"x\",\"b\":true,\"a\":[1],\"f\":1.5}").unwrap();
        assert_eq!(value.get("n").and_then(Json::as_usize), Some(3));
        assert_eq!(value.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(value.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            value.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(value.get("f").and_then(Json::as_usize), None, "fractional");
        assert_eq!(value.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(value.get("missing"), None);
    }
}
