//! Fault injection for overload hardening: [`ChaosConfig`].
//!
//! Chaos mode makes the daemon *hostile to its own clients* so tests
//! can prove the server itself stays healthy while everything around it
//! misbehaves. Four faults are injected, each with an independent
//! probability per response:
//!
//! * **drop** — close the connection instead of answering;
//! * **truncate** — write a prefix of the response bytes, then close
//!   (the client sees a torn frame);
//! * **slow** — stall [`ChaosConfig::slow_ms`] before answering (a slow
//!   peer / saturated link);
//! * **breakdown** — starve the solve's iteration budget so the request
//!   fails with a typed `solver-error` (an unhealthy numerical kernel).
//!
//! The soak harness runs a chaos-enabled server under concurrent load
//! and asserts the invariants that matter: no leaked handler threads,
//! the registry within its byte budget, every connection ending in a
//! typed error or a clean close, and bounded latency for well-behaved
//! requests.
//!
//! Chaos is off by default. Enable it programmatically via
//! [`ServeConfig::chaos`](crate::ServeConfig::chaos) or from the
//! environment with `VOLTPROP_CHAOS` (parsed by
//! [`ChaosConfig::from_env`]):
//!
//! ```text
//! VOLTPROP_CHAOS="drop=0.05,truncate=0.05,slow=0.1,slow_ms=40,breakdown=0.1,seed=7"
//! ```
//!
//! Fault decisions are drawn from a deterministic per-connection
//! generator seeded from [`ChaosConfig::seed`] and the connection
//! ordinal, so a failing soak run replays identically.

use voltprop_grid::rng::SmallRng;

/// Per-response fault probabilities, all in `[0, 1]`. The default is
/// all-zero (chaos off).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChaosConfig {
    /// Probability of dropping the connection instead of responding.
    pub drop_frac: f64,
    /// Probability of truncating the response mid-frame, then closing.
    pub truncate_frac: f64,
    /// Probability of stalling [`ChaosConfig::slow_ms`] before the
    /// response bytes are written.
    pub slow_frac: f64,
    /// Stall length for slow responses, in milliseconds.
    pub slow_ms: u64,
    /// Probability of starving a solve's iteration budget so it fails
    /// with a typed solver error.
    pub breakdown_frac: f64,
    /// Seed for the deterministic fault stream.
    pub seed: u64,
}

/// What chaos decided to do with one response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseFate {
    /// Write the response normally.
    Deliver,
    /// Close the connection without writing anything.
    Drop,
    /// Write only this many bytes of the response, then close.
    Truncate {
        /// Bytes of the response to write before closing (may be 0).
        keep: usize,
    },
    /// Sleep [`ChaosConfig::slow_ms`], then write normally.
    SlowThenDeliver,
}

impl ChaosConfig {
    /// Chaos fully disabled (every probability zero).
    pub const OFF: ChaosConfig = ChaosConfig {
        drop_frac: 0.0,
        truncate_frac: 0.0,
        slow_frac: 0.0,
        slow_ms: 0,
        breakdown_frac: 0.0,
        seed: 0,
    };

    /// Whether any fault has a nonzero probability.
    pub fn enabled(&self) -> bool {
        self.drop_frac > 0.0
            || self.truncate_frac > 0.0
            || self.slow_frac > 0.0
            || self.breakdown_frac > 0.0
    }

    /// Validates the probabilities (each must be a finite value in
    /// `[0, 1]`).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, frac) in [
            ("drop", self.drop_frac),
            ("truncate", self.truncate_frac),
            ("slow", self.slow_frac),
            ("breakdown", self.breakdown_frac),
        ] {
            if !frac.is_finite() || !(0.0..=1.0).contains(&frac) {
                return Err(format!(
                    "chaos {name} fraction must be in [0, 1], got {frac}"
                ));
            }
        }
        Ok(())
    }

    /// Parses `VOLTPROP_CHAOS` from the environment: `None` when unset
    /// or empty, the parsed (validated) config otherwise.
    ///
    /// # Errors
    ///
    /// A description of the malformed key/value when set but invalid.
    pub fn from_env() -> Result<Option<ChaosConfig>, String> {
        match std::env::var("VOLTPROP_CHAOS") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// Parses a `key=value,key=value` chaos spec. Keys: `drop`,
    /// `truncate`, `slow`, `breakdown` (fractions in `[0, 1]`),
    /// `slow_ms`, `seed` (non-negative integers).
    ///
    /// # Errors
    ///
    /// A description of the first malformed or unknown entry.
    pub fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let mut config = ChaosConfig::OFF;
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos entry {part:?} is not key=value"))?;
            let frac = || -> Result<f64, String> {
                value
                    .parse::<f64>()
                    .map_err(|e| format!("chaos {key}={value:?}: {e}"))
            };
            let int = || -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|e| format!("chaos {key}={value:?}: {e}"))
            };
            match key.trim() {
                "drop" => config.drop_frac = frac()?,
                "truncate" => config.truncate_frac = frac()?,
                "slow" => config.slow_frac = frac()?,
                "breakdown" => config.breakdown_frac = frac()?,
                "slow_ms" => config.slow_ms = int()?,
                "seed" => config.seed = int()?,
                other => {
                    return Err(format!(
                        "unknown chaos key {other:?} (expected drop, truncate, \
                         slow, slow_ms, breakdown, or seed)"
                    ))
                }
            }
        }
        config.validate()?;
        Ok(config)
    }

    /// The deterministic fault stream for one connection.
    pub fn rng_for_connection(&self, ordinal: u64) -> SmallRng {
        // Mix the ordinal through a splitmix-style step so consecutive
        // connections get unrelated streams from one seed.
        let mixed = (self.seed ^ ordinal.wrapping_mul(0x9e37_79b9_7f4a_7c15)).wrapping_add(1);
        SmallRng::new(mixed)
    }

    /// Draws the fate of one response of `len` bytes. Faults are tried
    /// in drop → truncate → slow order, each with its own probability.
    pub fn response_fate(&self, rng: &mut SmallRng, len: usize) -> ResponseFate {
        if !self.enabled() {
            return ResponseFate::Deliver;
        }
        if self.drop_frac > 0.0 && rng.f64() < self.drop_frac {
            return ResponseFate::Drop;
        }
        if self.truncate_frac > 0.0 && rng.f64() < self.truncate_frac {
            let keep = if len == 0 { 0 } else { rng.usize_below(len) };
            return ResponseFate::Truncate { keep };
        }
        if self.slow_frac > 0.0 && rng.f64() < self.slow_frac {
            return ResponseFate::SlowThenDeliver;
        }
        ResponseFate::Deliver
    }

    /// Whether this solve should have its iteration budget starved.
    pub fn force_breakdown(&self, rng: &mut SmallRng) -> bool {
        self.breakdown_frac > 0.0 && rng.f64() < self.breakdown_frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_inert() {
        assert!(!ChaosConfig::OFF.enabled());
        assert!(!ChaosConfig::default().enabled());
        let mut rng = ChaosConfig::OFF.rng_for_connection(0);
        for _ in 0..64 {
            assert_eq!(
                ChaosConfig::OFF.response_fate(&mut rng, 100),
                ResponseFate::Deliver
            );
            assert!(!ChaosConfig::OFF.force_breakdown(&mut rng));
        }
    }

    #[test]
    fn parse_round_trips_and_validates() {
        let c =
            ChaosConfig::parse("drop=0.1, truncate=0.2,slow=0.3,slow_ms=40,breakdown=0.4,seed=7")
                .unwrap();
        assert_eq!(c.drop_frac, 0.1);
        assert_eq!(c.truncate_frac, 0.2);
        assert_eq!(c.slow_frac, 0.3);
        assert_eq!(c.slow_ms, 40);
        assert_eq!(c.breakdown_frac, 0.4);
        assert_eq!(c.seed, 7);
        assert!(c.enabled());
        assert!(ChaosConfig::parse("drop=1.5").is_err());
        assert!(ChaosConfig::parse("drop=-0.1").is_err());
        assert!(ChaosConfig::parse("warp=0.5").is_err());
        assert!(ChaosConfig::parse("drop").is_err());
        assert!(ChaosConfig::parse("slow_ms=abc").is_err());
        assert_eq!(ChaosConfig::parse("").unwrap(), ChaosConfig::OFF);
    }

    #[test]
    fn fault_stream_is_deterministic_per_connection() {
        let config = ChaosConfig {
            drop_frac: 0.2,
            truncate_frac: 0.2,
            slow_frac: 0.2,
            slow_ms: 1,
            breakdown_frac: 0.2,
            seed: 99,
        };
        let draw = |ordinal: u64| {
            let mut rng = config.rng_for_connection(ordinal);
            (0..32)
                .map(|_| config.response_fate(&mut rng, 64))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3), "same connection replays identically");
        assert_ne!(draw(3), draw(4), "different connections differ");
    }

    #[test]
    fn all_fates_reachable_under_heavy_chaos() {
        let config = ChaosConfig {
            drop_frac: 0.25,
            truncate_frac: 0.25,
            slow_frac: 0.25,
            slow_ms: 1,
            breakdown_frac: 0.5,
            seed: 5,
        };
        let mut rng = config.rng_for_connection(0);
        let (mut dropped, mut truncated, mut slowed, mut delivered, mut broke) = (0, 0, 0, 0, 0);
        for _ in 0..512 {
            match config.response_fate(&mut rng, 64) {
                ResponseFate::Drop => dropped += 1,
                ResponseFate::Truncate { keep } => {
                    assert!(keep < 64);
                    truncated += 1;
                }
                ResponseFate::SlowThenDeliver => slowed += 1,
                ResponseFate::Deliver => delivered += 1,
            }
            if config.force_breakdown(&mut rng) {
                broke += 1;
            }
        }
        assert!(dropped > 0 && truncated > 0 && slowed > 0 && delivered > 0 && broke > 0);
    }
}
