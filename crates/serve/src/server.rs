//! The daemon: a TCP listener serving the newline-delimited JSON
//! protocol of [`crate::proto`] from a byte-budgeted LRU registry
//! ([`crate::registry::SessionRegistry`]) of geometry-keyed
//! [`SharedSession`]s.
//!
//! One thread accepts connections; each connection gets its own handler
//! thread. The daemon is built to stay healthy under hostile load:
//!
//! * **Admission control** — at most
//!   [`ServeConfig::max_connections`] handler threads exist at once
//!   (excess connections get one typed `overloaded` response and a
//!   close); a solve waits at most [`ServeConfig::checkout_wait_ms`]
//!   for a scratch slot (split over a few jittered attempts) before it
//!   is shed with `overloaded` + `retry_after_ms`; an optional
//!   per-connection request rate cap ([`ServeConfig::max_rps_per_conn`])
//!   sheds pipelined floods the same way without closing the
//!   connection.
//! * **Deadlines** — every solve carries a wall-clock deadline (its
//!   `deadline_ms`, or [`ServeConfig::deadline_default_ms`]) that
//!   propagates into the engine outer loops as a cooperative
//!   cancellation check; expiry surfaces as a typed
//!   `deadline-exceeded` error, never a hung request.
//! * **Bounded framing** — a request line longer than
//!   [`ServeConfig::max_line_bytes`] or a partial line stalled longer
//!   than ten seconds gets `malformed-request` and a close, so no
//!   client can grow the read buffer (or park a handler) without bound.
//! * **Fault injection** — [`ServeConfig::chaos`] (or the
//!   `VOLTPROP_CHAOS` environment variable) makes the daemon abuse its
//!   own clients — dropped, truncated, and stalled responses, starved
//!   solves — so soak tests can assert the server survives abuse.
//!
//! Shutdown is graceful: a `shutdown` request (or
//! [`ServerHandle::shutdown`]) stops the accept loop, handler threads
//! notice within their read-timeout tick, and every thread is joined
//! before the handle returns — [`ServerHandle::stats`] then shows
//! `handlers_spawned == handlers_finished` (the no-leaked-threads
//! invariant the soak suite asserts).

use std::io::{BufRead, BufReader, ErrorKind as IoKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use voltprop_core::{Deadline, LoadCase, SessionError, SharedSession, TryCheckout, VpConfig};
use voltprop_grid::rng::SmallRng;
use voltprop_grid::Stack3d;
use voltprop_solvers::SolverError;

use crate::chaos::{ChaosConfig, ResponseFate};
use crate::json::Json;
use crate::proto::{
    parse_request, BuildPolicy, ErrorKind, Request, ServeError, SolveRequest, PROTOCOL_VERSION,
};
use crate::registry::SessionRegistry;

/// How often blocked reads wake up to check the stop flag.
const POLL_TICK: Duration = Duration::from_millis(100);

/// How long a partial request line may sit without progress before the
/// connection is closed (anti-slowloris: a handler thread is never
/// parked indefinitely on a half-written line).
const PARTIAL_LINE_STALL: Duration = Duration::from_secs(10);

/// Admission attempts a solve's checkout wait is split across.
const ADMISSION_ATTEMPTS: u32 = 3;

/// Daemon configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Scratch slots per cached session — the number of solves one
    /// geometry serves concurrently before requests queue.
    pub slots: usize,
    /// Worker-thread parallelism each session is built with.
    pub parallelism: usize,
    /// Connection cap: accepts beyond this many live handler threads
    /// get one typed `overloaded` response and are closed unserved.
    pub max_connections: usize,
    /// Registry byte budget: once cached sessions exceed it, idle ones
    /// are evicted least-recently-used-first (`usize::MAX` = unbounded).
    pub registry_bytes: usize,
    /// Default wall-clock budget in milliseconds applied to solves that
    /// do not set their own `deadline_ms` (`0` = no default deadline).
    pub deadline_default_ms: u64,
    /// Longest a solve waits for a scratch slot before it is shed with
    /// a typed `overloaded` error.
    pub checkout_wait_ms: u64,
    /// Per-connection request rate cap (requests per second, `0` =
    /// unlimited). Excess requests get `overloaded` + `retry_after_ms`
    /// without closing the connection.
    pub max_rps_per_conn: u32,
    /// Longest accepted request line in bytes; longer lines get
    /// `malformed-request` and a close.
    pub max_line_bytes: usize,
    /// Fault injection (off by default; see [`ChaosConfig`]).
    pub chaos: ChaosConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            slots: 4,
            parallelism: 1,
            max_connections: 64,
            registry_bytes: usize::MAX,
            deadline_default_ms: 0,
            checkout_wait_ms: 250,
            max_rps_per_conn: 0,
            max_line_bytes: 1 << 20,
            chaos: ChaosConfig::OFF,
        }
    }
}

/// Monotonic counters kept by the daemon (see [`ServeStats`]).
#[derive(Debug, Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_shed: AtomicU64,
    requests: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    malformed: AtomicU64,
    chaos_faults: AtomicU64,
    handlers_spawned: AtomicU64,
    handlers_finished: AtomicU64,
}

/// A point-in-time snapshot of the daemon's health counters, read via
/// [`ServerHandle::stats`]. After [`ServerHandle::shutdown`] returns,
/// `handlers_spawned == handlers_finished` must hold — the soak suite
/// asserts it as the no-leaked-threads invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections admitted to a handler thread.
    pub connections_accepted: u64,
    /// Connections refused at the cap (one `overloaded` line, closed).
    pub connections_shed: u64,
    /// Request lines dispatched (any op, any outcome).
    pub requests: u64,
    /// Requests shed with a typed `overloaded` error.
    pub overloaded: u64,
    /// Solves that expired with a typed `deadline-exceeded` error.
    pub deadline_exceeded: u64,
    /// Connections closed for oversized or stalled request lines.
    pub malformed_closes: u64,
    /// Responses the chaos layer dropped, truncated, or stalled.
    pub chaos_faults: u64,
    /// Handler threads ever spawned.
    pub handlers_spawned: u64,
    /// Handler threads that have run to completion.
    pub handlers_finished: u64,
    /// Cached sessions in the registry.
    pub sessions: usize,
    /// Bytes the cached sessions occupy.
    pub registry_bytes: usize,
    /// Sessions evicted by the byte budget since startup.
    pub registry_evictions: u64,
}

/// State shared between the accept loop and every connection handler.
struct Shared {
    stop: AtomicBool,
    registry: SessionRegistry,
    config: ServeConfig,
    /// Live handler threads (admission-control connection count).
    connections: AtomicUsize,
    /// Total connections ever admitted (chaos stream ordinal).
    ordinal: AtomicU64,
    counters: Counters,
}

/// A running daemon. Dropping the handle shuts the daemon down and joins
/// its threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound TCP port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Signals shutdown and joins the accept loop and all connection
    /// handlers. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop; it re-checks the flag per connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Blocks until the daemon stops (a `shutdown` request arrives),
    /// joining all of its threads.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// The daemon's health counters. Safe to call at any point; after
    /// [`ServerHandle::shutdown`] (or [`ServerHandle::wait`] returning)
    /// the counters are final and `handlers_spawned ==
    /// handlers_finished` holds.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        let reg = self.shared.registry.stats();
        ServeStats {
            connections_accepted: c.connections_accepted.load(Ordering::SeqCst),
            connections_shed: c.connections_shed.load(Ordering::SeqCst),
            requests: c.requests.load(Ordering::SeqCst),
            overloaded: c.overloaded.load(Ordering::SeqCst),
            deadline_exceeded: c.deadline_exceeded.load(Ordering::SeqCst),
            malformed_closes: c.malformed.load(Ordering::SeqCst),
            chaos_faults: c.chaos_faults.load(Ordering::SeqCst),
            handlers_spawned: c.handlers_spawned.load(Ordering::SeqCst),
            handlers_finished: c.handlers_finished.load(Ordering::SeqCst),
            sessions: reg.sessions,
            registry_bytes: reg.total_bytes,
            registry_evictions: reg.evictions,
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and starts serving in background threads.
///
/// # Errors
///
/// Propagates the listener bind failure; everything after the bind is
/// reported per-request on the wire instead.
pub fn serve(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        registry: SessionRegistry::new(config.registry_bytes.max(1)),
        config,
        connections: AtomicUsize::new(0),
        ordinal: AtomicU64::new(0),
        counters: Counters::default(),
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::spawn(move || accept_loop(&listener, addr, &accept_shared));
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

fn accept_loop(listener: &TcpListener, addr: SocketAddr, shared: &Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                // Reap finished handlers eagerly (join is immediate for
                // them) so the vec tracks only live threads.
                let mut live = Vec::with_capacity(handlers.len());
                for handler in handlers {
                    if handler.is_finished() {
                        let _ = handler.join();
                    } else {
                        live.push(handler);
                    }
                }
                handlers = live;
                // Connection cap: the increment happens here, before the
                // spawn, so a burst of accepts cannot over-admit.
                let open = shared.connections.fetch_add(1, Ordering::SeqCst);
                if open >= shared.config.max_connections {
                    shared.connections.fetch_sub(1, Ordering::SeqCst);
                    shed_connection(stream, shared);
                    continue;
                }
                shared
                    .counters
                    .connections_accepted
                    .fetch_add(1, Ordering::SeqCst);
                shared
                    .counters
                    .handlers_spawned
                    .fetch_add(1, Ordering::SeqCst);
                let ordinal = shared.ordinal.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(shared);
                handlers.push(std::thread::spawn(move || {
                    // Count the exit (and release the connection slot)
                    // even if the handler panics.
                    let _guard = HandlerGuard(&conn_shared);
                    handle_connection(stream, addr, &conn_shared, ordinal);
                }));
            }
            Err(e) if e.kind() == IoKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    for handler in handlers {
        let _ = handler.join();
    }
}

/// Decrements the live-connection count and records the handler exit on
/// drop — unwind-safe bookkeeping for `accept_loop`'s admission cap and
/// the no-leaked-threads accounting.
struct HandlerGuard<'a>(&'a Arc<Shared>);

impl Drop for HandlerGuard<'_> {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::SeqCst);
        self.0
            .counters
            .handlers_finished
            .fetch_add(1, Ordering::SeqCst);
    }
}

/// Refuses a connection at the cap: one typed `overloaded` response,
/// then close. No handler thread is spawned for it.
fn shed_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    shared
        .counters
        .connections_shed
        .fetch_add(1, Ordering::SeqCst);
    shared.counters.overloaded.fetch_add(1, Ordering::SeqCst);
    let err = ServeError::overloaded(
        format!(
            "connection limit ({}) reached",
            shared.config.max_connections
        ),
        retry_after_hint(&mut SmallRng::new(
            shared.ordinal.load(Ordering::SeqCst) ^ 0xc0a1,
        )),
    );
    let _ = stream.set_write_timeout(Some(POLL_TICK));
    let _ = write_line(&mut stream, &err.to_response());
}

/// A jittered `retry_after_ms` hint in 25–75 ms: load spreads instead
/// of re-arriving in one synchronized wave.
fn retry_after_hint(rng: &mut SmallRng) -> u64 {
    25 + rng.next_u64() % 51
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line (without the newline) is in the buffer.
    Line,
    /// The peer closed the connection.
    Closed,
    /// Read-timeout tick: check the stop flag, then resume.
    Tick,
    /// The line exceeded `max_line_bytes` before its newline arrived.
    TooLong,
    /// Unrecoverable socket error.
    Failed,
}

/// Reads until a newline, the byte cap, EOF, or the poll tick — at most
/// `max_bytes` of one line are ever buffered, so a malicious client
/// cannot grow memory without bound. Partial data persists in `buf`
/// across `Tick` returns.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max_bytes: usize,
) -> LineRead {
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => return LineRead::Closed,
            Ok(chunk) => chunk,
            Err(e) if matches!(e.kind(), IoKind::WouldBlock | IoKind::TimedOut) => {
                return LineRead::Tick
            }
            Err(e) if e.kind() == IoKind::Interrupted => continue,
            Err(_) => return LineRead::Failed,
        };
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let take = &chunk[..pos];
                if buf.len() + take.len() > max_bytes {
                    reader.consume(pos + 1);
                    return LineRead::TooLong;
                }
                buf.extend_from_slice(take);
                reader.consume(pos + 1);
                return LineRead::Line;
            }
            None => {
                let len = chunk.len();
                if buf.len() + len > max_bytes {
                    reader.consume(len);
                    return LineRead::TooLong;
                }
                buf.extend_from_slice(chunk);
                reader.consume(len);
                // No newline yet; loop for more (or a Tick).
            }
        }
    }
}

/// Per-connection request-rate limiter: a one-second counting window.
struct RateWindow {
    started: Instant,
    count: u32,
}

impl RateWindow {
    fn new() -> RateWindow {
        RateWindow {
            started: Instant::now(),
            count: 0,
        }
    }

    /// Admits or sheds one request; on shed, returns how many
    /// milliseconds remain in the window (the natural retry hint).
    fn admit(&mut self, limit: u32) -> Result<(), u64> {
        if limit == 0 {
            return Ok(());
        }
        let elapsed = self.started.elapsed();
        if elapsed >= Duration::from_secs(1) {
            self.started = Instant::now();
            self.count = 0;
        }
        if self.count >= limit {
            let left = Duration::from_secs(1).saturating_sub(elapsed);
            return Err((left.as_millis() as u64).max(1));
        }
        self.count += 1;
        Ok(())
    }
}

fn handle_connection(stream: TcpStream, addr: SocketAddr, shared: &Arc<Shared>, ordinal: u64) {
    // The read timeout turns blocked reads into periodic stop-flag
    // checks so shutdown can drain every handler.
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let mut rate = RateWindow::new();
    let mut chaos_rng = shared.config.chaos.rng_for_connection(ordinal);
    let mut partial_since: Option<Instant> = None;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match read_bounded_line(&mut reader, &mut buf, shared.config.max_line_bytes) {
            LineRead::Closed | LineRead::Failed => return,
            LineRead::Tick => {
                // A partial line making no progress parks this handler;
                // bound that (anti-slowloris) like any other abuse.
                match partial_since {
                    None if !buf.is_empty() => partial_since = Some(Instant::now()),
                    Some(since) if since.elapsed() > PARTIAL_LINE_STALL => {
                        shared.counters.malformed.fetch_add(1, Ordering::SeqCst);
                        let err = ServeError::new(
                            ErrorKind::MalformedRequest,
                            "request line stalled without a newline",
                        );
                        let _ = write_line(&mut writer, &err.to_response());
                        return;
                    }
                    _ => {}
                }
                continue;
            }
            LineRead::TooLong => {
                shared.counters.malformed.fetch_add(1, Ordering::SeqCst);
                let err = ServeError::new(
                    ErrorKind::MalformedRequest,
                    format!(
                        "request line exceeds the {} byte limit",
                        shared.config.max_line_bytes
                    ),
                );
                // Framing is unrecoverable mid-line: answer, then close.
                let _ = write_line(&mut writer, &err.to_response());
                return;
            }
            LineRead::Line => {
                partial_since = None;
                let line = match std::str::from_utf8(&buf) {
                    Ok(line) => line.trim().to_string(),
                    Err(_) => {
                        // Non-UTF-8 on the wire: line framing survives
                        // (the newline was found), but the request is
                        // garbage; answer typed and close like before.
                        shared.counters.malformed.fetch_add(1, Ordering::SeqCst);
                        let err = ServeError::new(
                            ErrorKind::MalformedRequest,
                            "request line is not valid UTF-8",
                        );
                        let _ = write_line(&mut writer, &err.to_response());
                        return;
                    }
                };
                buf.clear();
                if line.is_empty() {
                    continue;
                }
                shared.counters.requests.fetch_add(1, Ordering::SeqCst);
                let (response, stop_after) = match rate.admit(shared.config.max_rps_per_conn) {
                    Ok(()) => handle_line(shared, &line, &mut chaos_rng),
                    Err(left_ms) => {
                        shared.counters.overloaded.fetch_add(1, Ordering::SeqCst);
                        let err = ServeError::overloaded(
                            format!(
                                "per-connection rate limit ({}/s) exceeded",
                                shared.config.max_rps_per_conn
                            ),
                            left_ms,
                        );
                        (err.to_response(), false)
                    }
                };
                if deliver(shared, &mut writer, &response, &mut chaos_rng).is_err() {
                    return;
                }
                if stop_after {
                    shared.stop.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so it drains.
                    let _ = TcpStream::connect(addr);
                    return;
                }
            }
        }
    }
}

/// Writes one response through the chaos layer: delivered verbatim with
/// chaos off; possibly dropped, truncated, or stalled with it on. `Err`
/// means the connection is done (fault-injected or real I/O failure).
fn deliver(
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
    response: &str,
    rng: &mut SmallRng,
) -> Result<(), ()> {
    let chaos = &shared.config.chaos;
    match chaos.response_fate(rng, response.len()) {
        ResponseFate::Deliver => write_line(writer, response).map_err(|_| ()),
        ResponseFate::Drop => {
            shared.counters.chaos_faults.fetch_add(1, Ordering::SeqCst);
            Err(())
        }
        ResponseFate::Truncate { keep } => {
            shared.counters.chaos_faults.fetch_add(1, Ordering::SeqCst);
            let _ = writer.write_all(&response.as_bytes()[..keep]);
            let _ = writer.flush();
            Err(())
        }
        ResponseFate::SlowThenDeliver => {
            shared.counters.chaos_faults.fetch_add(1, Ordering::SeqCst);
            // Stall in poll-tick slices so shutdown still drains us.
            let mut left = Duration::from_millis(chaos.slow_ms);
            while !left.is_zero() && !shared.stop.load(Ordering::SeqCst) {
                let nap = left.min(POLL_TICK);
                std::thread::sleep(nap);
                left -= nap;
            }
            write_line(writer, response).map_err(|_| ())
        }
    }
}

fn write_line(writer: &mut TcpStream, response: &str) -> std::io::Result<()> {
    writer.write_all(response.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Dispatches one request line to a `(response, stop_after)` pair. Every
/// failure mode is a typed error response — this function never panics
/// and never asks for the connection to be dropped.
fn handle_line(shared: &Arc<Shared>, line: &str, chaos_rng: &mut SmallRng) -> (String, bool) {
    match parse_request(line) {
        Err(e) => (e.to_response(), false),
        Ok(Request::Ping) => (
            Json::Obj(vec![
                ("ok".to_string(), Json::Bool(true)),
                ("pong".to_string(), Json::Bool(true)),
            ])
            .to_string(),
            false,
        ),
        Ok(Request::Info) => {
            let reg = shared.registry.stats();
            (
                Json::Obj(vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("protocol".to_string(), Json::from(PROTOCOL_VERSION)),
                    ("sessions".to_string(), Json::from(reg.sessions)),
                    ("slots".to_string(), Json::from(shared.config.slots)),
                    (
                        "parallelism".to_string(),
                        Json::from(shared.config.parallelism),
                    ),
                    ("registry_bytes".to_string(), Json::from(reg.total_bytes)),
                    (
                        "registry_budget_bytes".to_string(),
                        Json::Num(if reg.budget_bytes == usize::MAX {
                            -1.0
                        } else {
                            reg.budget_bytes as f64
                        }),
                    ),
                    ("evictions".to_string(), Json::from(reg.evictions as usize)),
                    (
                        "connections".to_string(),
                        Json::from(shared.connections.load(Ordering::SeqCst)),
                    ),
                    (
                        "max_connections".to_string(),
                        Json::from(shared.config.max_connections),
                    ),
                    (
                        "deadline_default_ms".to_string(),
                        Json::from(shared.config.deadline_default_ms as usize),
                    ),
                    (
                        "chaos".to_string(),
                        Json::Bool(shared.config.chaos.enabled()),
                    ),
                ])
                .to_string(),
                false,
            )
        }
        Ok(Request::Shutdown) => (
            Json::Obj(vec![
                ("ok".to_string(), Json::Bool(true)),
                ("stopping".to_string(), Json::Bool(true)),
            ])
            .to_string(),
            true,
        ),
        Ok(Request::Solve(req)) => (
            solve(shared, &req, chaos_rng).unwrap_or_else(|e| e.to_response()),
            false,
        ),
    }
}

fn solve(
    shared: &Arc<Shared>,
    req: &SolveRequest,
    chaos_rng: &mut SmallRng,
) -> Result<String, ServeError> {
    // The deadline clock starts at request receipt: queueing, admission
    // waits, and the solve itself all spend from one budget.
    let deadline = match req.deadline_ms.or(match shared.config.deadline_default_ms {
        0 => None,
        ms => Some(ms),
    }) {
        Some(ms) => Deadline::after(Duration::from_millis(ms)),
        None => Deadline::NONE,
    };
    let stack = req.stack.build_stack()?;
    let hash = req.stack.geometry_hash();
    let (session, cached) = lookup_session(shared, hash, &stack, req.build)?;

    let mut case = LoadCase::new(&stack)
        .net(req.net)
        .backend(req.backend)
        .deadline(deadline);
    if let Some(params) = req.params {
        case = case.params(params);
    }
    if shared.config.chaos.force_breakdown(chaos_rng) {
        // Starve the budgets so the solve fails like a sick kernel.
        shared.counters.chaos_faults.fetch_add(1, Ordering::SeqCst);
        case = case.params(
            voltprop_core::SolveParams::new()
                .epsilon(1e-300)
                .max_outer_iterations(1)
                .inner_tolerance(1e-300)
                .max_inner_sweeps(1),
        );
    }

    let solution = admit_and_solve(shared, &session, &case, deadline)?;
    let view = solution.view();
    let report = view.report();

    let mut members = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("geometry".to_string(), Json::from(format!("{hash:016x}"))),
        ("cached".to_string(), Json::Bool(cached)),
        ("backend".to_string(), Json::from(backend_name(req.backend))),
        ("converged".to_string(), Json::Bool(view.converged())),
        (
            "iterations".to_string(),
            Json::from(report.outer_iterations),
        ),
        ("sweeps".to_string(), Json::from(report.inner_sweeps)),
        ("residual".to_string(), Json::from(report.pad_mismatch)),
        ("nodes".to_string(), Json::from(view.nodes())),
        (
            "worst_drop".to_string(),
            Json::from(view.worst_drop(stack.vdd())),
        ),
    ];
    if req.voltages {
        members.push((
            "voltages".to_string(),
            Json::Arr(view.voltages().iter().map(|&v| Json::Num(v)).collect()),
        ));
    }
    Ok(Json::Obj(members).to_string())
}

/// Admission control around one solve: the bounded checkout wait is
/// split into [`ADMISSION_ATTEMPTS`] slices with jittered pauses
/// between them (a saturated pool sheds load spread out, not in lock
/// step), and the whole wait is additionally capped by the request's
/// deadline. A pool still busy at the end sheds the request with a
/// typed `overloaded` + `retry_after_ms`.
fn admit_and_solve<'s>(
    shared: &Arc<Shared>,
    session: &'s SharedSession,
    case: &LoadCase<'_>,
    deadline: Deadline,
) -> Result<voltprop_core::SharedSolution<'s>, ServeError> {
    let mut jitter = SmallRng::new(
        shared.counters.requests.load(Ordering::SeqCst) ^ shared.config.chaos.seed ^ 0x51ce,
    );
    let slice = Duration::from_millis(shared.config.checkout_wait_ms) / ADMISSION_ATTEMPTS;
    for attempt in 0..ADMISSION_ATTEMPTS {
        // Never wait past the request's own deadline.
        let wait = match deadline.remaining() {
            Some(left) if left < slice => left,
            _ => slice,
        };
        match session.try_solve_for(case, wait) {
            Ok(TryCheckout::Ready(solution)) => return Ok(solution),
            Ok(TryCheckout::Busy) => {
                if deadline.expired() {
                    break;
                }
                if attempt + 1 < ADMISSION_ATTEMPTS {
                    // Jittered backoff between attempts: 1–5 ms.
                    std::thread::sleep(Duration::from_millis(1 + jitter.next_u64() % 5));
                }
            }
            Err(e) => return Err(map_session_error(shared, e)),
        }
    }
    shared.counters.overloaded.fetch_add(1, Ordering::SeqCst);
    Err(ServeError::overloaded(
        format!(
            "all {} scratch slots stayed busy for {} ms",
            session.slots(),
            shared.config.checkout_wait_ms
        ),
        retry_after_hint(&mut jitter),
    ))
}

/// Resolves the session serving `hash`, honoring the build policy.
/// Factoring a new session happens outside the registry lock so a slow
/// build never blocks requests against already-cached geometries; a
/// concurrent duplicate build loses the insert race and is dropped.
fn lookup_session(
    shared: &Arc<Shared>,
    hash: u64,
    stack: &Stack3d,
    policy: BuildPolicy,
) -> Result<(Arc<SharedSession>, bool), ServeError> {
    let mut collided = false;
    if let Some(session) = shared.registry.get(hash) {
        if session.serves(stack) {
            return Ok((session, true));
        }
        // A 64-bit hash collision between distinct geometries: serve
        // correctness over cache residency by rebuilding below.
        collided = true;
    }
    if policy == BuildPolicy::Reject {
        return Err(ServeError::new(
            ErrorKind::GeometryNotCached,
            format!(
                "geometry {hash:016x} is not in the registry and the request set \"build\":\"reject\""
            ),
        ));
    }
    let config = VpConfig::default().parallelism(shared.config.parallelism);
    let session = SharedSession::build(stack, config, shared.config.slots)
        .map_err(|e| ServeError::new(ErrorKind::Build, e.to_string()))?;
    let session = Arc::new(session);
    let session = if collided {
        shared.registry.replace(hash, session)
    } else {
        shared.registry.insert(hash, session)
    };
    if !session.serves(stack) {
        // Lost the insert race to a *different* colliding geometry;
        // serve this request off-registry rather than thrash the entry.
        let session = SharedSession::build(stack, config, shared.config.slots)
            .map_err(|e| ServeError::new(ErrorKind::Build, e.to_string()))?;
        return Ok((Arc::new(session), false));
    }
    Ok((session, false))
}

fn map_session_error(shared: &Arc<Shared>, e: SessionError) -> ServeError {
    let kind = match &e {
        SessionError::BackendUnavailable { .. } => ErrorKind::BackendUnavailable,
        SessionError::Solver(SolverError::DeadlineExceeded { .. }) => {
            shared
                .counters
                .deadline_exceeded
                .fetch_add(1, Ordering::SeqCst);
            ErrorKind::DeadlineExceeded
        }
        _ => ErrorKind::Solver,
    };
    ServeError::new(kind, e.to_string())
}

fn backend_name(backend: voltprop_core::Backend) -> &'static str {
    match backend {
        voltprop_core::Backend::VoltProp => "voltprop",
        voltprop_core::Backend::Rb3d => "rb3d",
        voltprop_core::Backend::Pcg => "pcg",
        // `Backend` is non-exhaustive; name future variants once the
        // protocol grows words for them.
        _ => "unknown",
    }
}
