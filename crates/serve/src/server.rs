//! The daemon: a TCP listener serving the newline-delimited JSON
//! protocol of [`crate::proto`] from a registry of geometry-keyed
//! [`SharedSession`]s.
//!
//! One thread accepts connections; each connection gets its own handler
//! thread. Solves on one cached session run concurrently — admission
//! control (the bounded scratch pool inside [`SharedSession`]) queues
//! excess requests rather than rejecting them. Shutdown is graceful: a
//! `shutdown` request (or [`ServerHandle::shutdown`]) stops the accept
//! loop, handler threads notice within their read-timeout tick, and
//! every thread is joined before the handle returns.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind as IoKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use voltprop_core::{LoadCase, SessionError, SharedSession, VpConfig};
use voltprop_grid::Stack3d;

use crate::json::Json;
use crate::proto::{
    parse_request, BuildPolicy, ErrorKind, Request, ServeError, SolveRequest, PROTOCOL_VERSION,
};

/// How often blocked reads wake up to check the stop flag.
const POLL_TICK: Duration = Duration::from_millis(100);

/// Daemon configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Scratch slots per cached session — the number of solves one
    /// geometry serves concurrently before requests queue.
    pub slots: usize,
    /// Worker-thread parallelism each session is built with.
    pub parallelism: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            slots: 4,
            parallelism: 1,
        }
    }
}

/// State shared between the accept loop and every connection handler.
struct Shared {
    stop: AtomicBool,
    registry: Mutex<HashMap<u64, Arc<SharedSession>>>,
    config: ServeConfig,
}

fn lock_registry(shared: &Shared) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<SharedSession>>> {
    // A panicking solve can only poison a registry guard between two
    // plain HashMap operations, which cannot leave the map torn.
    shared
        .registry
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A running daemon. Dropping the handle shuts the daemon down and joins
/// its threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound TCP port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Signals shutdown and joins the accept loop and all connection
    /// handlers. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop; it re-checks the flag per connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Blocks until the daemon stops (a `shutdown` request arrives),
    /// joining all of its threads.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and starts serving in background threads.
///
/// # Errors
///
/// Propagates the listener bind failure; everything after the bind is
/// reported per-request on the wire instead.
pub fn serve(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        registry: Mutex::new(HashMap::new()),
        config,
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::spawn(move || accept_loop(&listener, addr, &accept_shared));
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

fn accept_loop(listener: &TcpListener, addr: SocketAddr, shared: &Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                handlers.retain(|h| !h.is_finished());
                let conn_shared = Arc::clone(shared);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, addr, &conn_shared);
                }));
            }
            Err(e) if e.kind() == IoKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    for handler in handlers {
        let _ = handler.join();
    }
}

fn handle_connection(stream: TcpStream, addr: SocketAddr, shared: &Arc<Shared>) {
    // The read timeout turns blocked reads into periodic stop-flag
    // checks so shutdown can drain every handler.
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let (response, stop_after) = handle_line(shared, trimmed);
                    if write_line(&mut writer, &response).is_err() {
                        return;
                    }
                    if stop_after {
                        shared.stop.store(true, Ordering::SeqCst);
                        // Unblock the accept loop so it drains.
                        let _ = TcpStream::connect(addr);
                        return;
                    }
                }
                line.clear();
            }
            // Timeout tick: partial input (if any) stays buffered in
            // `line`; loop around to re-check the stop flag.
            Err(e) if matches!(e.kind(), IoKind::WouldBlock | IoKind::TimedOut) => continue,
            Err(e) if e.kind() == IoKind::Interrupted => continue,
            Err(e) if e.kind() == IoKind::InvalidData => {
                // Non-UTF-8 on the wire: line framing is gone, so answer
                // with a typed error and close this connection.
                let err = ServeError {
                    kind: ErrorKind::MalformedRequest,
                    message: "request line is not valid UTF-8".to_string(),
                };
                let _ = write_line(&mut writer, &err.to_response());
                return;
            }
            Err(_) => return,
        }
    }
}

fn write_line(writer: &mut TcpStream, response: &str) -> std::io::Result<()> {
    writer.write_all(response.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Dispatches one request line to a `(response, stop_after)` pair. Every
/// failure mode is a typed error response — this function never panics
/// and never asks for the connection to be dropped.
fn handle_line(shared: &Arc<Shared>, line: &str) -> (String, bool) {
    match parse_request(line) {
        Err(e) => (e.to_response(), false),
        Ok(Request::Ping) => (
            Json::Obj(vec![
                ("ok".to_string(), Json::Bool(true)),
                ("pong".to_string(), Json::Bool(true)),
            ])
            .to_string(),
            false,
        ),
        Ok(Request::Info) => {
            let sessions = lock_registry(shared).len();
            (
                Json::Obj(vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("protocol".to_string(), Json::from(PROTOCOL_VERSION)),
                    ("sessions".to_string(), Json::from(sessions)),
                    ("slots".to_string(), Json::from(shared.config.slots)),
                    (
                        "parallelism".to_string(),
                        Json::from(shared.config.parallelism),
                    ),
                ])
                .to_string(),
                false,
            )
        }
        Ok(Request::Shutdown) => (
            Json::Obj(vec![
                ("ok".to_string(), Json::Bool(true)),
                ("stopping".to_string(), Json::Bool(true)),
            ])
            .to_string(),
            true,
        ),
        Ok(Request::Solve(req)) => (
            solve(shared, &req).unwrap_or_else(|e| e.to_response()),
            false,
        ),
    }
}

fn solve(shared: &Arc<Shared>, req: &SolveRequest) -> Result<String, ServeError> {
    let stack = req.stack.build_stack()?;
    let hash = req.stack.geometry_hash();
    let (session, cached) = lookup_session(shared, hash, &stack, req.build)?;

    let mut case = LoadCase::new(&stack).net(req.net).backend(req.backend);
    if let Some(params) = req.params {
        case = case.params(params);
    }
    let solution = session.solve(&case).map_err(map_session_error)?;
    let view = solution.view();
    let report = view.report();

    let mut members = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("geometry".to_string(), Json::from(format!("{hash:016x}"))),
        ("cached".to_string(), Json::Bool(cached)),
        ("backend".to_string(), Json::from(backend_name(req.backend))),
        ("converged".to_string(), Json::Bool(view.converged())),
        (
            "iterations".to_string(),
            Json::from(report.outer_iterations),
        ),
        ("sweeps".to_string(), Json::from(report.inner_sweeps)),
        ("residual".to_string(), Json::from(report.pad_mismatch)),
        ("nodes".to_string(), Json::from(view.nodes())),
        (
            "worst_drop".to_string(),
            Json::from(view.worst_drop(stack.vdd())),
        ),
    ];
    if req.voltages {
        members.push((
            "voltages".to_string(),
            Json::Arr(view.voltages().iter().map(|&v| Json::Num(v)).collect()),
        ));
    }
    Ok(Json::Obj(members).to_string())
}

/// Resolves the session serving `hash`, honoring the build policy.
/// Factoring a new session happens outside the registry lock so a slow
/// build never blocks requests against already-cached geometries; a
/// concurrent duplicate build loses the insert race and is dropped.
fn lookup_session(
    shared: &Arc<Shared>,
    hash: u64,
    stack: &Stack3d,
    policy: BuildPolicy,
) -> Result<(Arc<SharedSession>, bool), ServeError> {
    if let Some(session) = lock_registry(shared).get(&hash) {
        if session.serves(stack) {
            return Ok((Arc::clone(session), true));
        }
        // A 64-bit hash collision between distinct geometries: serve
        // correctness over cache residency by rebuilding below.
    }
    if policy == BuildPolicy::Reject {
        return Err(ServeError {
            kind: ErrorKind::GeometryNotCached,
            message: format!(
                "geometry {hash:016x} is not in the registry and the request set \"build\":\"reject\""
            ),
        });
    }
    let config = VpConfig::default().parallelism(shared.config.parallelism);
    let session =
        SharedSession::build(stack, config, shared.config.slots).map_err(|e| ServeError {
            kind: ErrorKind::Build,
            message: e.to_string(),
        })?;
    let session = Arc::new(session);
    let mut registry = lock_registry(shared);
    let entry = registry.entry(hash).or_insert_with(|| Arc::clone(&session));
    if !entry.serves(stack) {
        *entry = Arc::clone(&session);
    }
    Ok((Arc::clone(entry), false))
}

fn map_session_error(e: SessionError) -> ServeError {
    let kind = match e {
        SessionError::BackendUnavailable { .. } => ErrorKind::BackendUnavailable,
        _ => ErrorKind::Solver,
    };
    ServeError {
        kind,
        message: e.to_string(),
    }
}

fn backend_name(backend: voltprop_core::Backend) -> &'static str {
    match backend {
        voltprop_core::Backend::VoltProp => "voltprop",
        voltprop_core::Backend::Rb3d => "rb3d",
        voltprop_core::Backend::Pcg => "pcg",
        // `Backend` is non-exhaustive; name future variants once the
        // protocol grows words for them.
        _ => "unknown",
    }
}
