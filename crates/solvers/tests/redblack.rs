//! Property tests for the red-black parallel sweep schedule.
//!
//! Run across deterministic sweeps of random pinned meshes (the workspace
//! builds offline without the `proptest` crate). The contract under test:
//!
//! * red-black iterates are **bitwise identical** for every thread count;
//! * the converged red-black solution agrees with the converged
//!   sequential solution to ≤ 1e-9 max |ΔV|;
//! * both agree with the re-eliminating reference kernel ([`RowBased`]).

use std::sync::Arc;
use voltprop_grid::rng::SmallRng;
use voltprop_solvers::rowbased::{RowBased, TierProblem};
use voltprop_solvers::{SweepSchedule, TierEngine};

struct Mesh {
    w: usize,
    h: usize,
    g_h: f64,
    g_v: f64,
    fixed: Vec<bool>,
    extra: Vec<f64>,
    injection: Vec<f64>,
    v0: Vec<f64>,
}

/// A random pinned mesh: geometry, conductances, pin density, pin
/// voltages, loads, and (sometimes) an external-coupling diagonal all
/// vary with the seed.
fn random_mesh(case: u64) -> Mesh {
    let mut g = SmallRng::new(case);
    let w = 3 + g.usize_below(30);
    let h = 3 + g.usize_below(24);
    let n = w * h;
    let g_h = 0.5 + 50.0 * g.f64();
    let g_v = 0.5 + 50.0 * g.f64();
    let pin_density = 0.05 + 0.4 * g.f64();
    let mut fixed = vec![false; n];
    let mut v0 = vec![1.8; n];
    for i in 0..n {
        if g.f64() < pin_density {
            fixed[i] = true;
            v0[i] = 1.7 + 0.2 * g.f64();
        }
    }
    // At least one pin keeps the system nonsingular.
    if !fixed.iter().any(|&f| f) {
        fixed[g.usize_below(n)] = true;
    }
    let with_extra = g.next_u64() % 3 == 0;
    let extra: Vec<f64> = (0..n)
        .map(|_| if with_extra { 5.0 * g.f64() } else { 0.0 })
        .collect();
    let injection: Vec<f64> = (0..n)
        .map(|i| if fixed[i] { 0.0 } else { -1e-3 * g.f64() })
        .collect();
    Mesh {
        w,
        h,
        g_h,
        g_v,
        fixed,
        extra,
        injection,
        v0,
    }
}

fn engine(m: &Mesh, schedule: SweepSchedule) -> TierEngine {
    TierEngine::new(
        m.w,
        m.h,
        m.g_h,
        m.g_v,
        Arc::from(&m.fixed[..]),
        Some(&m.extra),
        schedule,
    )
    .unwrap()
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
}

#[test]
fn redblack_parallel_matches_sequential_on_random_pinned_meshes() {
    for case in 0..30u64 {
        let m = random_mesh(case);
        let mut v_seq = m.v0.clone();
        engine(&m, SweepSchedule::Sequential)
            .solve(&m.injection, &mut v_seq, 1e-12, 500_000)
            .unwrap();
        let mut v_rb = m.v0.clone();
        engine(&m, SweepSchedule::RedBlack { threads: 4 })
            .solve(&m.injection, &mut v_rb, 1e-12, 500_000)
            .unwrap();
        let diff = max_abs_diff(&v_seq, &v_rb);
        assert!(
            diff <= 1e-9,
            "case {case} ({}x{}): schedules disagree by {diff} V",
            m.w,
            m.h
        );
    }
}

#[test]
fn redblack_iterates_are_bitwise_thread_count_invariant() {
    for case in 0..30u64 {
        let m = random_mesh(1000 + case);
        let mut reference = m.v0.clone();
        engine(&m, SweepSchedule::RedBlack { threads: 1 })
            .solve(&m.injection, &mut reference, 1e-10, 500_000)
            .unwrap();
        for threads in [2usize, 3, 4] {
            let mut v = m.v0.clone();
            engine(&m, SweepSchedule::RedBlack { threads })
                .solve(&m.injection, &mut v, 1e-10, 500_000)
                .unwrap();
            assert_eq!(
                reference, v,
                "case {case}: {threads}-thread result must be bitwise equal"
            );
        }
    }
}

#[test]
fn scheduled_solves_match_reference_kernel() {
    for case in 0..20u64 {
        let m = random_mesh(2000 + case);
        let problem = TierProblem {
            width: m.w,
            height: m.h,
            g_h: m.g_h,
            g_v: m.g_v,
            fixed: &m.fixed,
            extra_diag: &m.extra,
            injection: &m.injection,
        };
        let rb = RowBased {
            tolerance: 1e-12,
            max_sweeps: 500_000,
            ..Default::default()
        };
        let mut v_ref = m.v0.clone();
        rb.solve_tier(&problem, &mut v_ref).unwrap();
        for schedule in [
            SweepSchedule::Sequential,
            SweepSchedule::RedBlack { threads: 2 },
        ] {
            let mut v = m.v0.clone();
            rb.solve_tier_scheduled(&problem, &mut v, schedule).unwrap();
            let diff = max_abs_diff(&v_ref, &v);
            assert!(
                diff <= 1e-9,
                "case {case} {schedule:?}: {diff} V from reference"
            );
        }
    }
}
