use crate::{LinearSolver, Solution, SolveReport, SolverError};
use voltprop_sparse::{vec_ops, CsrMatrix};

/// Plain (unpreconditioned) conjugate gradients.
///
/// Kept mostly as an ablation baseline for [`Pcg`](crate::Pcg): on power
/// grid matrices the condition number grows with grid size and plain CG
/// needs several times the iterations of its preconditioned variants.
#[derive(Debug, Clone, Copy)]
pub struct ConjugateGradient {
    /// Relative residual target ‖b − Ax‖₂ / ‖b‖₂.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl Default for ConjugateGradient {
    fn default() -> Self {
        ConjugateGradient {
            tolerance: 1e-8,
            max_iterations: 100_000,
        }
    }
}

impl ConjugateGradient {
    /// Creates a CG solver with the given relative-residual tolerance.
    pub fn new(tolerance: f64) -> Self {
        ConjugateGradient {
            tolerance,
            ..Default::default()
        }
    }
}

impl LinearSolver for ConjugateGradient {
    fn solve(&self, a: &CsrMatrix, b: &[f64]) -> Result<Solution, SolverError> {
        let n = b.len();
        let bnorm = vec_ops::norm2(b);
        if bnorm == 0.0 {
            return Ok(Solution {
                x: vec![0.0; n],
                report: SolveReport {
                    iterations: 0,
                    residual: 0.0,
                    converged: true,
                    workspace_bytes: 4 * n * 8,
                },
            });
        }
        let mut x = vec![0.0; n];
        let mut r = b.to_vec();
        let mut p = r.clone();
        let mut ap = vec![0.0; n];
        let mut rr = vec_ops::dot(&r, &r);
        let target = self.tolerance * bnorm;
        let mut iterations = 0;
        while iterations < self.max_iterations {
            if rr.sqrt() <= target {
                break;
            }
            a.spmv(&p, &mut ap);
            let pap = vec_ops::dot(&p, &ap);
            if pap <= 0.0 {
                return Err(SolverError::Sparse(
                    voltprop_sparse::SparseError::NotPositiveDefinite { column: iterations },
                ));
            }
            let alpha = rr / pap;
            vec_ops::axpy(alpha, &p, &mut x);
            vec_ops::axpy(-alpha, &ap, &mut r);
            let rr_new = vec_ops::dot(&r, &r);
            vec_ops::xpby(&r, rr_new / rr, &mut p);
            rr = rr_new;
            iterations += 1;
        }
        let residual = rr.sqrt() / bnorm;
        let converged = residual <= self.tolerance;
        if !converged {
            return Err(SolverError::DidNotConverge {
                iterations,
                residual,
                tolerance: self.tolerance,
            });
        }
        Ok(Solution {
            x,
            report: SolveReport {
                iterations,
                residual,
                converged,
                workspace_bytes: 4 * n * 8,
            },
        })
    }

    fn name(&self) -> &'static str {
        "cg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltprop_sparse::TripletMatrix;

    fn grid_system(n_side: usize) -> (CsrMatrix, Vec<f64>) {
        let n = n_side * n_side;
        let mut t = TripletMatrix::new(n, n);
        let id = |x: usize, y: usize| y * n_side + x;
        for y in 0..n_side {
            for x in 0..n_side {
                if x + 1 < n_side {
                    t.stamp_conductance(id(x, y), id(x + 1, y), 1.0);
                }
                if y + 1 < n_side {
                    t.stamp_conductance(id(x, y), id(x, y + 1), 1.0);
                }
            }
        }
        t.stamp_to_ground(0, 1.0);
        let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) * 0.01).collect();
        (t.to_csr(), b)
    }

    #[test]
    fn converges_on_grid_laplacian() {
        let (a, b) = grid_system(12);
        let sol = ConjugateGradient::default().solve(&a, &b).unwrap();
        assert!(sol.report.converged);
        assert!(a.residual(&sol.x, &b) / voltprop_sparse::vec_ops::norm2(&b) < 1e-7);
        assert!(sol.report.iterations > 1);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let (a, _) = grid_system(4);
        let sol = ConjugateGradient::default().solve(&a, &[0.0; 16]).unwrap();
        assert_eq!(sol.report.iterations, 0);
        assert!(sol.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn budget_exhaustion_is_error() {
        let (a, b) = grid_system(12);
        let tight = ConjugateGradient {
            tolerance: 1e-14,
            max_iterations: 2,
        };
        assert!(matches!(
            tight.solve(&a, &b),
            Err(SolverError::DidNotConverge { iterations: 2, .. })
        ));
    }

    #[test]
    fn indefinite_matrix_detected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, -1.0);
        let a = t.to_csr();
        let r = ConjugateGradient::default().solve(&a, &[1.0, 1.0]);
        assert!(matches!(r, Err(SolverError::Sparse(_))));
    }
}
