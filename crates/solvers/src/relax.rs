//! Point relaxation methods: Jacobi, Gauss–Seidel, SOR.
//!
//! Kept as reference baselines (paper background §II-B and convergence-rate
//! discussion §III-A). They implement [`LinearSolver`] over assembled
//! matrices; the structured row-based variants live in
//! [`rowbased`](crate::rowbased).

use crate::{LinearSolver, Solution, SolveReport, SolverError};
use voltprop_sparse::CsrMatrix;

/// Which point-relaxation scheme [`Relaxation`] runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RelaxScheme {
    /// Simultaneous-displacement Jacobi.
    Jacobi,
    /// Gauss–Seidel (SOR with ω = 1).
    GaussSeidel,
    /// Successive over-relaxation with factor `ω ∈ (0, 2)`.
    Sor(f64),
}

/// A point-relaxation solver.
///
/// # Example
///
/// ```
/// use voltprop_solvers::relax::{Relaxation, RelaxScheme};
/// use voltprop_solvers::LinearSolver;
/// use voltprop_sparse::TripletMatrix;
///
/// # fn main() -> Result<(), voltprop_solvers::SolverError> {
/// let mut t = TripletMatrix::new(2, 2);
/// t.stamp_conductance(0, 1, 1.0);
/// t.stamp_to_ground(0, 1.0);
/// t.stamp_to_ground(1, 1.0);
/// let sol = Relaxation::new(RelaxScheme::GaussSeidel).solve(&t.to_csr(), &[1.0, 1.0])?;
/// assert!(sol.report.converged);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Relaxation {
    /// The scheme to run.
    pub scheme: RelaxScheme,
    /// Convergence threshold on the largest per-sweep update.
    pub tolerance: f64,
    /// Sweep budget.
    pub max_sweeps: usize,
}

impl Relaxation {
    /// A relaxation solver with default tolerance `1e-9` and a budget of
    /// 1 000 000 sweeps.
    pub fn new(scheme: RelaxScheme) -> Self {
        Relaxation {
            scheme,
            tolerance: 1e-9,
            max_sweeps: 1_000_000,
        }
    }
}

impl LinearSolver for Relaxation {
    fn solve(&self, a: &CsrMatrix, b: &[f64]) -> Result<Solution, SolverError> {
        let n = b.len();
        let diag = a.diag();
        for (i, d) in diag.iter().enumerate() {
            if *d <= 0.0 {
                return Err(SolverError::Sparse(
                    voltprop_sparse::SparseError::NotPositiveDefinite { column: i },
                ));
            }
        }
        if let RelaxScheme::Sor(w) = self.scheme {
            if !(0.0 < w && w < 2.0) {
                return Err(SolverError::Unsupported {
                    what: format!("SOR omega {w} outside (0, 2)"),
                });
            }
        }
        let mut x = vec![0.0; n];
        let mut x_next = vec![0.0; n];
        let mut sweeps = 0;
        let mut max_delta = f64::INFINITY;
        while sweeps < self.max_sweeps {
            max_delta = 0.0;
            match self.scheme {
                RelaxScheme::Jacobi => {
                    for i in 0..n {
                        let (cols, vals) = a.row(i);
                        let mut acc = b[i];
                        for (c, v) in cols.iter().zip(vals) {
                            let j = *c as usize;
                            if j != i {
                                acc = (-v).mul_add(x[j], acc);
                            }
                        }
                        x_next[i] = acc / diag[i];
                        max_delta = max_delta.max((x_next[i] - x[i]).abs());
                    }
                    std::mem::swap(&mut x, &mut x_next);
                }
                RelaxScheme::GaussSeidel | RelaxScheme::Sor(_) => {
                    let omega = match self.scheme {
                        RelaxScheme::Sor(w) => w,
                        _ => 1.0,
                    };
                    for i in 0..n {
                        let (cols, vals) = a.row(i);
                        let mut acc = b[i];
                        for (c, v) in cols.iter().zip(vals) {
                            let j = *c as usize;
                            if j != i {
                                acc = (-v).mul_add(x[j], acc);
                            }
                        }
                        let gs = acc / diag[i];
                        let new = omega.mul_add(gs - x[i], x[i]);
                        max_delta = max_delta.max((new - x[i]).abs());
                        x[i] = new;
                    }
                }
            }
            sweeps += 1;
            if max_delta < self.tolerance {
                return Ok(Solution {
                    x,
                    report: SolveReport {
                        iterations: sweeps,
                        residual: max_delta,
                        converged: true,
                        workspace_bytes: 2 * n * 8,
                    },
                });
            }
        }
        Err(SolverError::DidNotConverge {
            iterations: sweeps,
            residual: max_delta,
            tolerance: self.tolerance,
        })
    }

    fn name(&self) -> &'static str {
        match self.scheme {
            RelaxScheme::Jacobi => "jacobi",
            RelaxScheme::GaussSeidel => "gauss-seidel",
            RelaxScheme::Sor(_) => "sor",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DirectCholesky, LinearSolver};
    use voltprop_sparse::TripletMatrix;

    fn system(n_side: usize) -> (CsrMatrix, Vec<f64>) {
        let n = n_side * n_side;
        let mut t = TripletMatrix::new(n, n);
        let id = |x: usize, y: usize| y * n_side + x;
        for y in 0..n_side {
            for x in 0..n_side {
                if x + 1 < n_side {
                    t.stamp_conductance(id(x, y), id(x + 1, y), 1.0);
                }
                if y + 1 < n_side {
                    t.stamp_conductance(id(x, y), id(x, y + 1), 1.0);
                }
            }
        }
        for k in (0..n).step_by(3) {
            t.stamp_to_ground(k, 0.5);
        }
        let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) * 0.01).collect();
        (t.to_csr(), b)
    }

    #[test]
    fn all_schemes_agree_with_direct() {
        let (a, b) = system(8);
        let exact = DirectCholesky::new().solve(&a, &b).unwrap();
        for scheme in [
            RelaxScheme::Jacobi,
            RelaxScheme::GaussSeidel,
            RelaxScheme::Sor(1.5),
        ] {
            let sol = Relaxation::new(scheme).solve(&a, &b).unwrap();
            let err = crate::residual::max_abs_error(&exact.x, &sol.x);
            assert!(err < 1e-6, "{scheme:?}: {err}");
        }
    }

    #[test]
    fn gs_beats_jacobi_and_sor_beats_gs() {
        let (a, b) = system(12);
        let jac = Relaxation::new(RelaxScheme::Jacobi).solve(&a, &b).unwrap();
        let gs = Relaxation::new(RelaxScheme::GaussSeidel)
            .solve(&a, &b)
            .unwrap();
        let sor = Relaxation::new(RelaxScheme::Sor(1.7))
            .solve(&a, &b)
            .unwrap();
        assert!(gs.report.iterations < jac.report.iterations);
        assert!(sor.report.iterations < gs.report.iterations);
    }

    #[test]
    fn bad_omega_rejected() {
        let (a, b) = system(3);
        assert!(matches!(
            Relaxation::new(RelaxScheme::Sor(2.0)).solve(&a, &b),
            Err(SolverError::Unsupported { .. })
        ));
    }

    #[test]
    fn nonpositive_diag_rejected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 0.0);
        assert!(matches!(
            Relaxation::new(RelaxScheme::Jacobi).solve(&t.to_csr(), &[1.0, 1.0]),
            Err(SolverError::Sparse(_))
        ));
    }
}
