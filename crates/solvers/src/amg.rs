use crate::{Preconditioner, SolverError};
use voltprop_sparse::{Cholesky, CsrMatrix, TripletMatrix};

/// Pairwise-aggregation algebraic multigrid, used as a V-cycle
/// preconditioner.
///
/// This is the structural stand-in for the multigrid preconditioner of the
/// paper's PCG comparator (refs \[6\], \[12\]): greedy pairwise aggregation by
/// strongest negative coupling, piecewise-constant prolongation, Galerkin
/// coarse operators, damped-Jacobi smoothing, and a direct solve on the
/// coarsest level.
///
/// # Example
///
/// ```
/// use voltprop_solvers::{AmgHierarchy, Preconditioner};
/// use voltprop_sparse::TripletMatrix;
///
/// # fn main() -> Result<(), voltprop_solvers::SolverError> {
/// let mut t = TripletMatrix::new(4, 4);
/// for i in 0..3 { t.stamp_conductance(i, i + 1, 1.0); }
/// t.stamp_to_ground(0, 1.0);
/// let amg = AmgHierarchy::build(&t.to_csr())?;
/// let mut z = vec![0.0; 4];
/// amg.apply_into(&[1.0, 0.0, 0.0, 0.0], &mut z);
/// assert!(z.iter().all(|v| v.is_finite()));
/// # Ok(())
/// # }
/// ```
pub struct AmgHierarchy {
    levels: Vec<Level>,
    coarse: Cholesky,
    coarse_dim: usize,
    /// Damped-Jacobi weight.
    omega: f64,
    /// Pre/post smoothing sweeps.
    sweeps: usize,
}

struct Level {
    a: CsrMatrix,
    inv_diag: Vec<f64>,
    /// Fine node → coarse aggregate.
    agg: Vec<u32>,
    n_coarse: usize,
}

impl std::fmt::Debug for AmgHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AmgHierarchy")
            .field("levels", &self.levels.len())
            .field("coarse_dim", &self.coarse_dim)
            .finish()
    }
}

impl AmgHierarchy {
    /// Coarsest-level size at which the hierarchy switches to a direct
    /// solve.
    const COARSE_LIMIT: usize = 64;
    /// Maximum number of levels (safety bound).
    const MAX_LEVELS: usize = 30;

    /// Builds the hierarchy for a symmetric positive definite matrix.
    ///
    /// # Errors
    ///
    /// [`SolverError::Sparse`] if a diagonal entry is non-positive or the
    /// coarsest-level factorization fails.
    pub fn build(a: &CsrMatrix) -> Result<Self, SolverError> {
        let mut levels = Vec::new();
        let mut current = a.clone();
        while current.nrows() > Self::COARSE_LIMIT && levels.len() < Self::MAX_LEVELS {
            let (agg, n_coarse) = aggregate_pairwise(&current);
            if n_coarse as f64 > 0.9 * current.nrows() as f64 {
                break; // aggregation stalled; stop coarsening
            }
            let coarse = galerkin(&current, &agg, n_coarse);
            let inv_diag = inverse_diagonal(&current)?;
            levels.push(Level {
                a: current,
                inv_diag,
                agg,
                n_coarse,
            });
            current = coarse;
        }
        let coarse_dim = current.nrows();
        let coarse = Cholesky::factor(&current)?;
        Ok(AmgHierarchy {
            levels,
            coarse,
            coarse_dim,
            omega: 2.0 / 3.0,
            sweeps: 1,
        })
    }

    /// Number of levels above the coarsest direct solve.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Dimension of the coarsest (directly solved) level.
    pub fn coarse_dim(&self) -> usize {
        self.coarse_dim
    }

    fn vcycle(&self, level: usize, r: &[f64], z: &mut [f64]) {
        if level == self.levels.len() {
            let solved = self.coarse.solve(r);
            z.copy_from_slice(&solved);
            return;
        }
        let lv = &self.levels[level];
        let n = lv.a.nrows();
        // Pre-smooth from zero: z = ω D⁻¹ r, then refine.
        for i in 0..n {
            z[i] = self.omega * lv.inv_diag[i] * r[i];
        }
        let mut res = vec![0.0; n];
        for _ in 1..self.sweeps {
            lv.a.spmv(z, &mut res);
            for i in 0..n {
                z[i] += self.omega * lv.inv_diag[i] * (r[i] - res[i]);
            }
        }
        // Residual and restriction.
        lv.a.spmv(z, &mut res);
        let mut rc = vec![0.0; lv.n_coarse];
        for i in 0..n {
            rc[lv.agg[i] as usize] += r[i] - res[i];
        }
        // Coarse correction.
        let mut zc = vec![0.0; lv.n_coarse];
        self.vcycle(level + 1, &rc, &mut zc);
        for i in 0..n {
            z[i] += zc[lv.agg[i] as usize];
        }
        // Post-smooth.
        for _ in 0..self.sweeps {
            lv.a.spmv(z, &mut res);
            for i in 0..n {
                z[i] += self.omega * lv.inv_diag[i] * (r[i] - res[i]);
            }
        }
    }
}

impl Preconditioner for AmgHierarchy {
    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        self.vcycle(0, r, z);
    }

    fn memory_bytes(&self) -> usize {
        let mut total = 0;
        for lv in &self.levels {
            total += lv.a.memory_bytes() + lv.inv_diag.len() * 8 + lv.agg.len() * 4;
        }
        total + self.coarse.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "amg"
    }
}

fn inverse_diagonal(a: &CsrMatrix) -> Result<Vec<f64>, SolverError> {
    a.diag()
        .into_iter()
        .enumerate()
        .map(|(i, d)| {
            if d > 0.0 {
                Ok(1.0 / d)
            } else {
                Err(SolverError::Sparse(
                    voltprop_sparse::SparseError::NotPositiveDefinite { column: i },
                ))
            }
        })
        .collect()
}

/// Greedy pairwise aggregation: each unaggregated node pairs with its
/// strongest (most negative coupling) unaggregated neighbor, or forms a
/// singleton.
fn aggregate_pairwise(a: &CsrMatrix) -> (Vec<u32>, usize) {
    let n = a.nrows();
    const UNSET: u32 = u32::MAX;
    let mut agg = vec![UNSET; n];
    let mut next = 0u32;
    for i in 0..n {
        if agg[i] != UNSET {
            continue;
        }
        let (cols, vals) = a.row(i);
        let mut best: Option<(usize, f64)> = None;
        for (c, v) in cols.iter().zip(vals) {
            let j = *c as usize;
            if j == i || agg[j] != UNSET {
                continue;
            }
            // Strong couplings in an M-matrix are large negative entries.
            if *v < 0.0 {
                let strength = -v;
                if best.is_none_or(|(_, s)| strength > s) {
                    best = Some((j, strength));
                }
            }
        }
        agg[i] = next;
        if let Some((j, _)) = best {
            agg[j] = next;
        }
        next += 1;
    }
    (agg, next as usize)
}

/// Galerkin triple product `Aᶜ = Pᵀ A P` for piecewise-constant `P`.
fn galerkin(a: &CsrMatrix, agg: &[u32], n_coarse: usize) -> CsrMatrix {
    let mut t = TripletMatrix::with_capacity(n_coarse, n_coarse, a.nnz());
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let ci = agg[i] as usize;
        for (c, v) in cols.iter().zip(vals) {
            t.push(ci, agg[*c as usize] as usize, *v);
        }
    }
    t.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n_side: usize) -> CsrMatrix {
        let n = n_side * n_side;
        let mut t = TripletMatrix::new(n, n);
        let id = |x: usize, y: usize| y * n_side + x;
        for y in 0..n_side {
            for x in 0..n_side {
                if x + 1 < n_side {
                    t.stamp_conductance(id(x, y), id(x + 1, y), 1.0);
                }
                if y + 1 < n_side {
                    t.stamp_conductance(id(x, y), id(x, y + 1), 1.0);
                }
            }
        }
        for k in 0..n_side {
            t.stamp_to_ground(k, 1.0);
        }
        t.to_csr()
    }

    #[test]
    fn hierarchy_coarsens() {
        let a = grid(20); // 400 nodes
        let amg = AmgHierarchy::build(&a).unwrap();
        assert!(amg.num_levels() >= 2, "expected real coarsening");
        assert!(amg.coarse_dim() <= AmgHierarchy::COARSE_LIMIT);
    }

    #[test]
    fn small_matrix_is_direct_only() {
        let a = grid(4); // 16 nodes < COARSE_LIMIT
        let amg = AmgHierarchy::build(&a).unwrap();
        assert_eq!(amg.num_levels(), 0);
        // Then the V-cycle is exactly a direct solve.
        let b: Vec<f64> = (0..16).map(|i| (i as f64).cos()).collect();
        let mut z = vec![0.0; 16];
        amg.apply_into(&b, &mut z);
        assert!(a.residual(&z, &b) < 1e-9);
    }

    #[test]
    fn vcycle_contracts_error() {
        // One V-cycle applied as an iteration must reduce the error of a
        // zero initial guess substantially on a mesh Laplacian.
        let a = grid(16);
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) / 17.0).collect();
        let b = a.mul_vec(&x_true);
        let amg = AmgHierarchy::build(&a).unwrap();
        let mut z = vec![0.0; n];
        amg.apply_into(&b, &mut z);
        let err0: f64 = x_true.iter().map(|v| v * v).sum::<f64>().sqrt();
        let err1: f64 = x_true
            .iter()
            .zip(&z)
            .map(|(t, u)| (t - u) * (t - u))
            .sum::<f64>()
            .sqrt();
        assert!(
            err1 < 0.8 * err0,
            "V-cycle should shrink the error: {err1} vs {err0}"
        );
    }

    #[test]
    fn aggregation_covers_all_nodes() {
        let a = grid(10);
        let (agg, nc) = aggregate_pairwise(&a);
        assert_eq!(agg.len(), 100);
        assert!((50..=100).contains(&nc));
        assert!(agg.iter().all(|&g| (g as usize) < nc));
        // Roughly pairwise: coarse count near half.
        assert!(nc <= 60, "pairwise aggregation should halve: {nc}");
    }

    #[test]
    fn galerkin_preserves_symmetry_and_rowsum() {
        let a = grid(8);
        let (agg, nc) = aggregate_pairwise(&a);
        let ac = galerkin(&a, &agg, nc);
        assert!(ac.is_symmetric(1e-12));
        // Piecewise-constant P preserves total row sums (the grounding).
        let fine_sum: f64 = a.values().iter().sum();
        let coarse_sum: f64 = ac.values().iter().sum();
        assert!((fine_sum - coarse_sum).abs() < 1e-9);
    }
}
