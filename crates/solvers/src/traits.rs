use crate::{SolveReport, SolverError};
use voltprop_grid::{NetKind, Stack3d};
use voltprop_sparse::CsrMatrix;

/// A solution of a linear system `A x = b`.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// What the solver did to get it.
    pub report: SolveReport,
}

/// A full-grid IR-drop solution: one voltage per circuit node.
#[derive(Debug, Clone)]
pub struct StackSolution {
    /// Per-node voltages, flat tier-major (pads included at their rail
    /// values).
    pub voltages: Vec<f64>,
    /// What the solver did to get them.
    pub report: SolveReport,
}

impl StackSolution {
    /// Worst IR drop relative to `rail` (use `stack.vdd()` for the power
    /// net, `0.0` — i.e. the maximum bounce — for the ground net).
    pub fn worst_drop(&self, rail: f64) -> f64 {
        self.voltages
            .iter()
            .fold(0.0f64, |m, &v| m.max((rail - v).abs()))
    }
}

/// An algebraic solver for sparse SPD systems `A x = b`.
pub trait LinearSolver {
    /// Solves the system.
    ///
    /// # Errors
    ///
    /// [`SolverError::Sparse`] on numerical breakdown,
    /// [`SolverError::DidNotConverge`] if an iteration budget runs out.
    fn solve(&self, a: &CsrMatrix, b: &[f64]) -> Result<Solution, SolverError>;

    /// A short human-readable name for tables and logs.
    fn name(&self) -> &'static str;
}

/// An IR-drop solver that works on whole 3-D stacks.
///
/// Every [`LinearSolver`] is a `StackSolver` through MNA stamping; the
/// structured methods (row-based 3-D, random walks, voltage propagation)
/// implement this trait directly and never assemble the global matrix.
pub trait StackSolver {
    /// Computes all node voltages of one supply net.
    ///
    /// # Errors
    ///
    /// See [`LinearSolver::solve`]; additionally
    /// [`SolverError::Grid`] when the model cannot be stamped and
    /// [`SolverError::Unsupported`] for structured solvers given shapes
    /// they cannot handle.
    fn solve_stack(&self, stack: &Stack3d, net: NetKind) -> Result<StackSolution, SolverError>;

    /// A short human-readable name for tables and logs.
    fn solver_name(&self) -> &'static str;
}

impl<T: LinearSolver> StackSolver for T {
    fn solve_stack(&self, stack: &Stack3d, net: NetKind) -> Result<StackSolution, SolverError> {
        let sys = stack.stamp(net)?;
        let sol = self.solve(sys.matrix(), sys.rhs())?;
        let mut report = sol.report;
        report.workspace_bytes += sys.memory_bytes();
        Ok(StackSolution {
            voltages: {
                let mut v = sys.expand(&sol.x);
                v.truncate(stack.num_nodes()); // drop virtual rail node if any
                v
            },
            report,
        })
    }

    fn solver_name(&self) -> &'static str {
        self.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_drop_is_max_deviation() {
        let s = StackSolution {
            voltages: vec![1.8, 1.75, 1.79],
            report: SolveReport::default(),
        };
        assert!((s.worst_drop(1.8) - 0.05).abs() < 1e-15);
    }
}
