//! Naive extension of the row-based method to 3-D stacks.
//!
//! This is the strawman the paper argues against in §III-A: treat the 3-D
//! grid as one big block Gauss–Seidel iteration whose blocks are the grid
//! rows of every tier, with TSV conductances coupling tiers like ordinary
//! neighbours. Because a TSV's conductance (1/0.05 Ω = 20 S) dwarfs the
//! wire conductances, the iteration matrix loses diagonal dominance margin
//! and the sweep count explodes as R_TSV shrinks — exactly the behaviour
//! benchmarked in experiment E4.
//!
//! The tier sweeps run on the prefactored [`TierEngine`]: each tier's row
//! segments are factored once up front and every sweep is substitution
//! only. Setting [`Rb3d::parallelism`] above 1 switches the sweeps to the
//! red-black row coloring, solving same-color rows concurrently.

use std::sync::Arc;

use crate::engine::{SweepSchedule, TierEngine};
use crate::{SolveReport, SolverError, StackSolution, StackSolver};
use voltprop_grid::{NetKind, Stack3d};

/// The naive 3-D row-based solver (paper §III-A baseline).
///
/// # Example
///
/// ```
/// use voltprop_grid::{Stack3d, NetKind};
/// use voltprop_solvers::{Rb3d, StackSolver};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stack = Stack3d::builder(6, 6, 3).uniform_load(1e-4).build()?;
/// let sol = Rb3d::default().solve_stack(&stack, NetKind::Power)?;
/// assert!(sol.report.converged);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Rb3d {
    /// Over-relaxation factor for the row sweeps.
    pub omega: f64,
    /// Convergence threshold on the largest global voltage update (V).
    pub tolerance: f64,
    /// Budget of full-stack iterations (each is one sweep of every tier).
    pub max_iterations: usize,
    /// Worker threads for the row sweeps: `1` keeps the sequential
    /// alternating-direction schedule, larger values sweep red-black.
    ///
    /// Rb3d rebuilds each tier's injection between sweeps, so the
    /// parallel path pays a worker-pool hand-off plus two full-tier
    /// copies **per tier per iteration** (the hand-off is allocation-free
    /// once the persistent pool is warm, but the copies are not free);
    /// it only pays off on tiers large enough to amortize that. For
    /// small grids keep `1`.
    pub parallelism: usize,
}

impl Default for Rb3d {
    fn default() -> Self {
        Rb3d {
            omega: 1.0,
            tolerance: 1e-7,
            max_iterations: 200_000,
            parallelism: 1,
        }
    }
}

impl Rb3d {
    /// Naive 3-D RB with an explicit SOR factor.
    pub fn with_omega(omega: f64) -> Self {
        Rb3d {
            omega,
            ..Default::default()
        }
    }

    /// Naive 3-D RB sweeping on `threads` worker threads.
    pub fn with_parallelism(threads: usize) -> Self {
        Rb3d {
            parallelism: threads.max(1),
            ..Default::default()
        }
    }
}

impl StackSolver for Rb3d {
    fn solve_stack(&self, stack: &Stack3d, net: NetKind) -> Result<StackSolution, SolverError> {
        stack.validate()?;
        let (w, h, tiers) = (stack.width(), stack.height(), stack.tiers());
        let per_tier = w * h;
        let top = tiers - 1;
        let rail = match net {
            NetKind::Power => stack.vdd(),
            NetKind::Ground => 0.0,
        };
        let load_sign = match net {
            NetKind::Power => -1.0,
            NetKind::Ground => 1.0,
        };
        let g_tsv = 1.0 / stack.tsv_resistance();
        let ideal_pads = stack.pad_resistance() == 0.0;
        let g_pad = if ideal_pads {
            0.0
        } else {
            1.0 / stack.pad_resistance()
        };

        // Initial guess: flat rail voltage (pads already at their value).
        let mut v = vec![rail; per_tier * tiers];

        // Per-tier static data.
        let mut fixed = vec![vec![false; per_tier]; tiers];
        let mut extra = vec![vec![0.0f64; per_tier]; tiers];
        for y in 0..h {
            for x in 0..w {
                let site = y * w + x;
                if stack.is_tsv(x, y) {
                    for (t, e) in extra.iter_mut().enumerate() {
                        let mut g = 0.0;
                        if t > 0 {
                            g += g_tsv;
                        }
                        if t < top {
                            g += g_tsv;
                        }
                        e[site] += g;
                    }
                }
                if stack.is_pad(x, y) {
                    if ideal_pads {
                        fixed[top][site] = true;
                    } else {
                        extra[top][site] += g_pad;
                    }
                }
            }
        }

        // Prefactor every tier's row segments once; all sweeps are pure
        // substitution. Tiers below the top share one (all-free) pin-mask
        // allocation.
        let schedule = SweepSchedule::from_parallelism(self.parallelism);
        let free_mask: Arc<[bool]> = Arc::from(vec![false; per_tier]);
        let mut engines: Vec<TierEngine> = Vec::with_capacity(tiers);
        for t in 0..tiers {
            let mask = if fixed[t].iter().any(|&f| f) {
                Arc::from(&fixed[t][..])
            } else {
                free_mask.clone()
            };
            engines.push(TierEngine::new(
                w,
                h,
                1.0 / stack.r_horizontal(t),
                1.0 / stack.r_vertical(t),
                mask,
                Some(&extra[t]),
                schedule,
            )?);
        }

        let mut injection = vec![0.0f64; per_tier];
        let mut iterations = 0;
        let mut max_delta = f64::INFINITY;
        while iterations < self.max_iterations {
            max_delta = 0.0;
            let downward = iterations % 2 == 0;
            for t in 0..tiers {
                // Build the injection vector for tier t from loads, TSV
                // coupling to the *current* neighbour-tier voltages, and
                // resistive-pad rail current.
                for y in 0..h {
                    for x in 0..w {
                        let site = y * w + x;
                        let node = t * per_tier + site;
                        let mut b = load_sign * stack.loads()[node];
                        if stack.is_tsv(x, y) {
                            if t > 0 {
                                b += g_tsv * v[node - per_tier];
                            }
                            if t < top {
                                b += g_tsv * v[node + per_tier];
                            }
                        }
                        if t == top && !ideal_pads && stack.is_pad(x, y) {
                            b += g_pad * rail;
                        }
                        injection[site] = b;
                    }
                }
                let tier_v = &mut v[t * per_tier..(t + 1) * per_tier];
                let delta = engines[t].sweep_once(&injection, tier_v, downward, self.omega)?;
                max_delta = max_delta.max(delta);
            }
            iterations += 1;
            if max_delta < self.tolerance {
                let workspace_bytes = engines.iter().map(TierEngine::memory_bytes).sum::<usize>()
                    + v.len() * 8
                    + injection.len() * 8
                    + tiers * per_tier * 8; // extra diag
                return Ok(StackSolution {
                    voltages: v,
                    report: SolveReport {
                        iterations,
                        residual: max_delta,
                        converged: true,
                        workspace_bytes,
                    },
                });
            }
        }
        Err(SolverError::DidNotConverge {
            iterations,
            residual: max_delta,
            tolerance: self.tolerance,
        })
    }

    fn solver_name(&self) -> &'static str {
        "rb3d-naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{residual, DirectCholesky};

    fn stack(r_tsv: f64) -> Stack3d {
        Stack3d::builder(8, 8, 3)
            .tsv_resistance(r_tsv)
            .load_profile(
                voltprop_grid::LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 5e-4,
                },
                17,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn agrees_with_direct() {
        let s = stack(0.05);
        let exact = DirectCholesky::new()
            .solve_stack(&s, NetKind::Power)
            .unwrap();
        let rb = Rb3d::default().solve_stack(&s, NetKind::Power).unwrap();
        let err = residual::max_abs_error(&exact.voltages, &rb.voltages);
        assert!(err < 5e-4, "max error {err}");
    }

    #[test]
    fn parallel_sweeps_agree_with_direct() {
        let s = stack(0.05);
        let exact = DirectCholesky::new()
            .solve_stack(&s, NetKind::Power)
            .unwrap();
        let rb = Rb3d::with_parallelism(3)
            .solve_stack(&s, NetKind::Power)
            .unwrap();
        let err = residual::max_abs_error(&exact.voltages, &rb.voltages);
        assert!(err < 5e-4, "max error {err}");
    }

    /// §III-A: once pads are sparse (most pillar tops are free nodes), the
    /// barely-dominant TSV rows make the naive iteration shuttle error
    /// between pillar terminals, and sweeps explode as R_TSV shrinks.
    /// (With a pad above *every* pillar the effect inverts — strong TSVs
    /// then anchor the lower tiers — which is exactly why VP pins the TSV
    /// terminals instead of iterating through them.)
    #[test]
    fn strong_tsvs_slow_convergence_with_sparse_pads() {
        let sparse = |r_tsv: f64| {
            let mut sites = vec![];
            for y in (0..12).step_by(6) {
                for x in (0..12).step_by(6) {
                    sites.push((x, y));
                }
            }
            Stack3d::builder(12, 12, 3)
                .wire_resistance(1.0)
                .tsv_resistance(r_tsv)
                .pad_sites(sites)
                .load_profile(
                    voltprop_grid::LoadProfile::UniformRandom {
                        min: 1e-5,
                        max: 5e-4,
                    },
                    17,
                )
                .build()
                .unwrap()
        };
        let weak = Rb3d::default()
            .solve_stack(&sparse(1.0), NetKind::Power)
            .unwrap();
        let strong = Rb3d::default()
            .solve_stack(&sparse(0.01), NetKind::Power)
            .unwrap();
        assert!(
            strong.report.iterations > 2 * weak.report.iterations,
            "strong TSVs {} vs weak {}",
            strong.report.iterations,
            weak.report.iterations
        );
    }

    #[test]
    fn resistive_pads_supported() {
        let s = Stack3d::builder(6, 6, 2)
            .pad_resistance(0.2)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let exact = DirectCholesky::new()
            .solve_stack(&s, NetKind::Power)
            .unwrap();
        let rb = Rb3d::default().solve_stack(&s, NetKind::Power).unwrap();
        let err = residual::max_abs_error(
            &exact.voltages[..s.num_nodes()],
            &rb.voltages[..s.num_nodes()],
        );
        assert!(err < 5e-4, "max error {err}");
    }

    #[test]
    fn ground_net_supported() {
        let s = stack(0.05);
        let exact = DirectCholesky::new()
            .solve_stack(&s, NetKind::Ground)
            .unwrap();
        let rb = Rb3d::default().solve_stack(&s, NetKind::Ground).unwrap();
        let err = residual::max_abs_error(&exact.voltages, &rb.voltages);
        assert!(err < 5e-4, "max error {err}");
    }

    #[test]
    fn budget_exhaustion_is_error() {
        let solver = Rb3d {
            max_iterations: 1,
            tolerance: 1e-14,
            ..Default::default()
        };
        assert!(matches!(
            solver.solve_stack(&stack(0.05), NetKind::Power),
            Err(SolverError::DidNotConverge { .. })
        ));
    }
}
