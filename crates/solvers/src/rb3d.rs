//! Naive extension of the row-based method to 3-D stacks.
//!
//! This is the strawman the paper argues against in §III-A: treat the 3-D
//! grid as one big block Gauss–Seidel iteration whose blocks are the grid
//! rows of every tier, with TSV conductances coupling tiers like ordinary
//! neighbours. Because a TSV's conductance (1/0.05 Ω = 20 S) dwarfs the
//! wire conductances, the iteration matrix loses diagonal dominance margin
//! and the sweep count explodes as R_TSV shrinks — exactly the behaviour
//! benchmarked in experiment E4.
//!
//! The tier sweeps run on the prefactored [`TierEngine`]: each tier's row
//! segments are factored once up front and every sweep is substitution
//! only. Setting [`Rb3d::parallelism`] above 1 switches the sweeps to the
//! red-black row coloring, solving same-color rows concurrently.

use std::sync::Arc;

use crate::engine::{SweepSchedule, TierEngine};
use crate::{SolveReport, SolverError, StackSolution, StackSolver};
use voltprop_grid::{NetKind, Stack3d};

/// The naive 3-D row-based solver (paper §III-A baseline).
///
/// # Example
///
/// ```
/// use voltprop_grid::{Stack3d, NetKind};
/// use voltprop_solvers::{Rb3d, StackSolver};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stack = Stack3d::builder(6, 6, 3).uniform_load(1e-4).build()?;
/// let sol = Rb3d::default().solve_stack(&stack, NetKind::Power)?;
/// assert!(sol.report.converged);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Rb3d {
    /// Over-relaxation factor for the row sweeps.
    pub omega: f64,
    /// Convergence threshold on the largest global voltage update (V).
    pub tolerance: f64,
    /// Budget of full-stack iterations (each is one sweep of every tier).
    pub max_iterations: usize,
    /// Worker threads for the row sweeps: `1` keeps the sequential
    /// alternating-direction schedule, larger values sweep red-black.
    ///
    /// Rb3d rebuilds each tier's injection between sweeps, so the
    /// parallel path pays a worker-pool hand-off plus two full-tier
    /// copies **per tier per iteration** (the hand-off is allocation-free
    /// once the persistent pool is warm, but the copies are not free);
    /// it only pays off on tiers large enough to amortize that. For
    /// small grids keep `1`.
    pub parallelism: usize,
}

impl Default for Rb3d {
    fn default() -> Self {
        Rb3d {
            omega: 1.0,
            tolerance: 1e-7,
            max_iterations: 200_000,
            parallelism: 1,
        }
    }
}

impl Rb3d {
    /// Naive 3-D RB with an explicit SOR factor.
    pub fn with_omega(omega: f64) -> Self {
        Rb3d {
            omega,
            ..Default::default()
        }
    }

    /// Naive 3-D RB sweeping on `threads` worker threads.
    pub fn with_parallelism(threads: usize) -> Self {
        Rb3d {
            parallelism: threads.max(1),
            ..Default::default()
        }
    }
}

/// The prefactored, reusable state of the naive 3-D row-based iteration:
/// every tier's row segments factored once, the TSV/pad structure baked
/// into per-tier masks, and the injection staging buffer preallocated.
///
/// [`Rb3d::solve_stack`] builds one per call; callers that solve many
/// load patterns on one grid (e.g. a `Session` in `voltprop-core`
/// routing `Backend::Rb3d`) build it once and call
/// [`Rb3dEngine::solve`] repeatedly — warm solves touch the heap only
/// through the worker-pool hand-off, which is itself allocation-free
/// once the pool is warm.
///
/// The iteration is **identical** to the one-shot [`Rb3d`] path: solving
/// through a prebuilt engine produces bitwise-equal voltages.
#[derive(Debug)]
pub struct Rb3dEngine {
    width: usize,
    height: usize,
    tiers: usize,
    vdd: f64,
    g_tsv: f64,
    ideal_pads: bool,
    g_pad: f64,
    /// Per-site TSV flag, one tier's footprint (shared by every tier).
    tsv_mask: Vec<bool>,
    /// Per-site pad flag (top tier only carries pads).
    pad_mask: Vec<bool>,
    /// Per-tier `(g_h, g_v)` baked into the engines (kept for
    /// [`Rb3dEngine::geometry_matches`]).
    tier_g: Vec<(f64, f64)>,
    engines: Vec<TierEngine>,
    injection: Vec<f64>,
}

impl Rb3dEngine {
    /// Validates the stack and prefactors every tier's row segments for
    /// the naive 3-D iteration.
    ///
    /// # Errors
    ///
    /// [`SolverError::Grid`] if the stack fails validation;
    /// [`SolverError::Sparse`] if a tier factorization fails.
    pub fn build(stack: &Stack3d, parallelism: usize) -> Result<Self, SolverError> {
        Self::build_inner(stack, parallelism, 0.0, 1)
    }

    /// [`Rb3dEngine::build`] with every tier split into `shards` row
    /// bands (see [`TierEngine::new_sharded`]): each tier sweep runs
    /// sharded with per-color halo exchanges, and results stay bitwise
    /// identical to the unsharded red-black engine at every shard and
    /// thread count.
    ///
    /// # Errors
    ///
    /// See [`Rb3dEngine::build`].
    pub fn build_sharded(
        stack: &Stack3d,
        parallelism: usize,
        shards: usize,
    ) -> Result<Self, SolverError> {
        Self::build_inner(stack, parallelism, 0.0, shards)
    }

    /// Builds the transient companion variant of the engine: every node's
    /// capacitance scaled by `alpha` (the companion coefficient, `1/h`
    /// for backward Euler or `2/h` for trapezoidal) is folded into that
    /// node's diagonal before the tier rows are factored, so the engine
    /// iterates on `G + α·diag(C)`. The per-step companion *currents* are
    /// passed to [`Rb3dEngine::solve_with_source`].
    ///
    /// # Errors
    ///
    /// See [`Rb3dEngine::build`].
    pub fn build_companion(
        stack: &Stack3d,
        parallelism: usize,
        alpha: f64,
    ) -> Result<Self, SolverError> {
        Self::build_inner(stack, parallelism, alpha, 1)
    }

    /// [`Rb3dEngine::build_companion`] with every tier split into
    /// `shards` row bands (see [`Rb3dEngine::build_sharded`]).
    ///
    /// # Errors
    ///
    /// See [`Rb3dEngine::build`].
    pub fn build_companion_sharded(
        stack: &Stack3d,
        parallelism: usize,
        alpha: f64,
        shards: usize,
    ) -> Result<Self, SolverError> {
        Self::build_inner(stack, parallelism, alpha, shards)
    }

    fn build_inner(
        stack: &Stack3d,
        parallelism: usize,
        alpha: f64,
        shards: usize,
    ) -> Result<Self, SolverError> {
        stack.validate()?;
        let (w, h, tiers) = (stack.width(), stack.height(), stack.tiers());
        let per_tier = w * h;
        let top = tiers - 1;
        let g_tsv = 1.0 / stack.tsv_resistance();
        let ideal_pads = stack.pad_resistance() == 0.0;
        let g_pad = if ideal_pads {
            0.0
        } else {
            1.0 / stack.pad_resistance()
        };

        // Per-tier static data: extra diagonal conductance from TSV
        // coupling (and resistive pads on top), pin mask for ideal pads.
        let mut tsv_mask = vec![false; per_tier];
        let mut pad_mask = vec![false; per_tier];
        let mut fixed = vec![vec![false; per_tier]; tiers];
        let mut extra = vec![vec![0.0f64; per_tier]; tiers];
        for y in 0..h {
            for x in 0..w {
                let site = y * w + x;
                if stack.is_tsv(x, y) {
                    tsv_mask[site] = true;
                    for (t, e) in extra.iter_mut().enumerate() {
                        let mut g = 0.0;
                        if t > 0 {
                            g += g_tsv;
                        }
                        if t < top {
                            g += g_tsv;
                        }
                        e[site] += g;
                    }
                }
                if stack.is_pad(x, y) {
                    pad_mask[site] = true;
                    if ideal_pads {
                        fixed[top][site] = true;
                    } else {
                        extra[top][site] += g_pad;
                    }
                }
            }
        }
        if alpha != 0.0 {
            if let Some(caps) = stack.capacitances() {
                for (t, e) in extra.iter_mut().enumerate() {
                    for (site, extra_g) in e.iter_mut().enumerate() {
                        *extra_g += alpha * caps[t * per_tier + site];
                    }
                }
            }
        }

        // Prefactor every tier's row segments once; all sweeps are pure
        // substitution. Tiers below the top share one (all-free) pin-mask
        // allocation.
        let schedule = SweepSchedule::from_parallelism(parallelism.max(1));
        let free_mask: Arc<[bool]> = Arc::from(vec![false; per_tier]);
        let tier_g: Vec<(f64, f64)> = (0..tiers)
            .map(|t| (1.0 / stack.r_horizontal(t), 1.0 / stack.r_vertical(t)))
            .collect();
        let mut engines: Vec<TierEngine> = Vec::with_capacity(tiers);
        for t in 0..tiers {
            let mask = if fixed[t].iter().any(|&f| f) {
                Arc::from(&fixed[t][..])
            } else {
                free_mask.clone()
            };
            engines.push(TierEngine::new_sharded(
                w,
                h,
                tier_g[t].0,
                tier_g[t].1,
                mask,
                Some(&extra[t]),
                schedule,
                shards,
            )?);
        }

        Ok(Rb3dEngine {
            width: w,
            height: h,
            tiers,
            vdd: stack.vdd(),
            g_tsv,
            ideal_pads,
            g_pad,
            tsv_mask,
            pad_mask,
            tier_g,
            engines,
            injection: vec![0.0f64; per_tier],
        })
    }

    /// A new engine sharing this engine's frozen half with fresh
    /// per-solve mutable state: the per-tier factored segments are shared
    /// through [`TierEngine::fork`] (no refactorization), the small
    /// topology descriptors (TSV/pad masks, per-tier conductances) are
    /// copied, and the injection staging buffer is freshly allocated.
    ///
    /// Forks solve independently — two forks may run concurrently from
    /// different threads — and reproduce the original engine's solves
    /// bitwise ([`Rb3dEngine::solve`] re-initializes `v` every call).
    #[must_use]
    pub fn fork(&self) -> Rb3dEngine {
        Rb3dEngine {
            width: self.width,
            height: self.height,
            tiers: self.tiers,
            vdd: self.vdd,
            g_tsv: self.g_tsv,
            ideal_pads: self.ideal_pads,
            g_pad: self.g_pad,
            tsv_mask: self.tsv_mask.clone(),
            pad_mask: self.pad_mask.clone(),
            tier_g: self.tier_g.clone(),
            engines: self.engines.iter().map(TierEngine::fork).collect(),
            injection: vec![0.0; self.injection.len()],
        }
    }

    /// Number of grid nodes this engine serves.
    pub fn num_nodes(&self) -> usize {
        self.width * self.height * self.tiers
    }

    /// Whether this engine's prefactored state fits the stack's geometry
    /// (footprint, tiers, rail, TSV/pad/sheet resistances, and TSV and
    /// pad sites). Loads are free to differ.
    pub fn geometry_matches(&self, stack: &Stack3d) -> bool {
        let (w, h) = (self.width, self.height);
        let pads_match = if self.ideal_pads {
            stack.pad_resistance() == 0.0
        } else {
            stack.pad_resistance() != 0.0 && self.g_pad == 1.0 / stack.pad_resistance()
        };
        w == stack.width()
            && h == stack.height()
            && self.tiers == stack.tiers()
            && self.vdd == stack.vdd()
            && self.g_tsv == 1.0 / stack.tsv_resistance()
            && pads_match
            && self.tier_g.iter().enumerate().all(|(t, &(g_h, g_v))| {
                g_h == 1.0 / stack.r_horizontal(t) && g_v == 1.0 / stack.r_vertical(t)
            })
            && (0..h * w).all(|site| {
                let (x, y) = (site % w, site / w);
                self.tsv_mask[site] == stack.is_tsv(x, y)
                    && self.pad_mask[site] == stack.is_pad(x, y)
            })
    }

    /// Runs the naive 3-D block Gauss–Seidel iteration on one load
    /// vector (`loads[node]`, flat tier-major, `num_nodes` entries),
    /// writing the solution into `v` (same layout). `v`'s contents are
    /// overwritten with the flat-rail initial guess first, so every call
    /// is deterministic regardless of what `v` held.
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] on a malformed `loads`/`v` length;
    /// [`SolverError::DidNotConverge`] if `max_iterations` full-stack
    /// sweeps cannot reach `tolerance` (in which case `v` holds the last
    /// iterate).
    pub fn solve(
        &mut self,
        loads: &[f64],
        net: NetKind,
        omega: f64,
        tolerance: f64,
        max_iterations: usize,
        v: &mut [f64],
    ) -> Result<SolveReport, SolverError> {
        self.solve_inner(loads, net, None, omega, tolerance, max_iterations, v, true)
    }

    /// [`Rb3dEngine::solve`] with an additional per-node current source
    /// (`source[node]`, A, positive into the node, already in absolute
    /// net-independent sign) added to every node's injection — the
    /// transient companion currents `α·C·v_n` (+ capacitor-current state
    /// for trapezoidal). Unlike [`Rb3dEngine::solve`], the iteration
    /// starts from the caller's `v` (a transient stepper warm-starts each
    /// step from the previous one).
    ///
    /// # Errors
    ///
    /// See [`Rb3dEngine::solve`].
    #[allow(clippy::too_many_arguments)] // mirrors `solve` plus the source
    pub fn solve_with_source(
        &mut self,
        loads: &[f64],
        net: NetKind,
        source: &[f64],
        omega: f64,
        tolerance: f64,
        max_iterations: usize,
        v: &mut [f64],
    ) -> Result<SolveReport, SolverError> {
        self.solve_inner(
            loads,
            net,
            Some(source),
            omega,
            tolerance,
            max_iterations,
            v,
            false,
        )
    }

    #[allow(clippy::too_many_arguments)] // internal fan-in of both entry points
    fn solve_inner(
        &mut self,
        loads: &[f64],
        net: NetKind,
        source: Option<&[f64]>,
        omega: f64,
        tolerance: f64,
        max_iterations: usize,
        v: &mut [f64],
        reset: bool,
    ) -> Result<SolveReport, SolverError> {
        let nn = self.num_nodes();
        if loads.len() != nn || v.len() != nn || source.is_some_and(|s| s.len() != nn) {
            return Err(SolverError::Unsupported {
                what: format!(
                    "rb3d engine serves {nn} nodes (got {} loads, {} voltages)",
                    loads.len(),
                    v.len()
                ),
            });
        }
        let (w, h, tiers) = (self.width, self.height, self.tiers);
        let per_tier = w * h;
        let top = tiers - 1;
        let rail = match net {
            NetKind::Power => self.vdd,
            NetKind::Ground => 0.0,
        };
        let load_sign = match net {
            NetKind::Power => -1.0,
            NetKind::Ground => 1.0,
        };

        // Initial guess: flat rail voltage (pads already at their value),
        // unless the caller warm-starts (transient stepping).
        if reset {
            v.fill(rail);
        }

        let mut iterations = 0;
        let mut max_delta = f64::INFINITY;
        while iterations < max_iterations {
            max_delta = 0.0;
            let downward = iterations % 2 == 0;
            for t in 0..tiers {
                // Build the injection vector for tier t from loads, TSV
                // coupling to the *current* neighbour-tier voltages, and
                // resistive-pad rail current.
                for site in 0..per_tier {
                    let node = t * per_tier + site;
                    let mut b = load_sign * loads[node];
                    if let Some(src) = source {
                        b += src[node];
                    }
                    if self.tsv_mask[site] {
                        if t > 0 {
                            b += self.g_tsv * v[node - per_tier];
                        }
                        if t < top {
                            b += self.g_tsv * v[node + per_tier];
                        }
                    }
                    if t == top && !self.ideal_pads && self.pad_mask[site] {
                        b += self.g_pad * rail;
                    }
                    self.injection[site] = b;
                }
                let tier_v = &mut v[t * per_tier..(t + 1) * per_tier];
                let delta = self.engines[t].sweep_once(&self.injection, tier_v, downward, omega)?;
                max_delta = max_delta.max(delta);
            }
            iterations += 1;
            if max_delta < tolerance {
                return Ok(SolveReport {
                    iterations,
                    residual: max_delta,
                    converged: true,
                    workspace_bytes: self.memory_bytes() + v.len() * 8,
                });
            }
        }
        Err(SolverError::DidNotConverge {
            iterations,
            residual: max_delta,
            tolerance,
        })
    }

    /// Estimated heap footprint in bytes (prefactored engines, masks,
    /// and the injection staging buffer; the caller owns `v`).
    pub fn memory_bytes(&self) -> usize {
        self.engines
            .iter()
            .map(TierEngine::memory_bytes)
            .sum::<usize>()
            + self.injection.len() * 8
            + self.tsv_mask.len()
            + self.pad_mask.len()
    }
}

impl StackSolver for Rb3d {
    fn solve_stack(&self, stack: &Stack3d, net: NetKind) -> Result<StackSolution, SolverError> {
        let mut engine = Rb3dEngine::build(stack, self.parallelism)?;
        let mut v = vec![0.0; engine.num_nodes()];
        let report = engine.solve(
            stack.loads(),
            net,
            self.omega,
            self.tolerance,
            self.max_iterations,
            &mut v,
        )?;
        Ok(StackSolution {
            voltages: v,
            report,
        })
    }

    fn solver_name(&self) -> &'static str {
        "rb3d-naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{residual, DirectCholesky, LinearSolver};

    fn stack(r_tsv: f64) -> Stack3d {
        Stack3d::builder(8, 8, 3)
            .tsv_resistance(r_tsv)
            .load_profile(
                voltprop_grid::LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 5e-4,
                },
                17,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn agrees_with_direct() {
        let s = stack(0.05);
        let exact = DirectCholesky::new()
            .solve_stack(&s, NetKind::Power)
            .unwrap();
        let rb = Rb3d::default().solve_stack(&s, NetKind::Power).unwrap();
        let err = residual::max_abs_error(&exact.voltages, &rb.voltages);
        assert!(err < 5e-4, "max error {err}");
    }

    #[test]
    fn parallel_sweeps_agree_with_direct() {
        let s = stack(0.05);
        let exact = DirectCholesky::new()
            .solve_stack(&s, NetKind::Power)
            .unwrap();
        let rb = Rb3d::with_parallelism(3)
            .solve_stack(&s, NetKind::Power)
            .unwrap();
        let err = residual::max_abs_error(&exact.voltages, &rb.voltages);
        assert!(err < 5e-4, "max error {err}");
    }

    /// §III-A: once pads are sparse (most pillar tops are free nodes), the
    /// barely-dominant TSV rows make the naive iteration shuttle error
    /// between pillar terminals, and sweeps explode as R_TSV shrinks.
    /// (With a pad above *every* pillar the effect inverts — strong TSVs
    /// then anchor the lower tiers — which is exactly why VP pins the TSV
    /// terminals instead of iterating through them.)
    #[test]
    fn strong_tsvs_slow_convergence_with_sparse_pads() {
        let sparse = |r_tsv: f64| {
            let mut sites = vec![];
            for y in (0..12).step_by(6) {
                for x in (0..12).step_by(6) {
                    sites.push((x, y));
                }
            }
            Stack3d::builder(12, 12, 3)
                .wire_resistance(1.0)
                .tsv_resistance(r_tsv)
                .pad_sites(sites)
                .load_profile(
                    voltprop_grid::LoadProfile::UniformRandom {
                        min: 1e-5,
                        max: 5e-4,
                    },
                    17,
                )
                .build()
                .unwrap()
        };
        let weak = Rb3d::default()
            .solve_stack(&sparse(1.0), NetKind::Power)
            .unwrap();
        let strong = Rb3d::default()
            .solve_stack(&sparse(0.01), NetKind::Power)
            .unwrap();
        assert!(
            strong.report.iterations > 2 * weak.report.iterations,
            "strong TSVs {} vs weak {}",
            strong.report.iterations,
            weak.report.iterations
        );
    }

    #[test]
    fn resistive_pads_supported() {
        let s = Stack3d::builder(6, 6, 2)
            .pad_resistance(0.2)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let exact = DirectCholesky::new()
            .solve_stack(&s, NetKind::Power)
            .unwrap();
        let rb = Rb3d::default().solve_stack(&s, NetKind::Power).unwrap();
        let err = residual::max_abs_error(
            &exact.voltages[..s.num_nodes()],
            &rb.voltages[..s.num_nodes()],
        );
        assert!(err < 5e-4, "max error {err}");
    }

    #[test]
    fn ground_net_supported() {
        let s = stack(0.05);
        let exact = DirectCholesky::new()
            .solve_stack(&s, NetKind::Ground)
            .unwrap();
        let rb = Rb3d::default().solve_stack(&s, NetKind::Ground).unwrap();
        let err = residual::max_abs_error(&exact.voltages, &rb.voltages);
        assert!(err < 5e-4, "max error {err}");
    }

    #[test]
    fn budget_exhaustion_is_error() {
        let solver = Rb3d {
            max_iterations: 1,
            tolerance: 1e-14,
            ..Default::default()
        };
        assert!(matches!(
            solver.solve_stack(&stack(0.05), NetKind::Power),
            Err(SolverError::DidNotConverge { .. })
        ));
    }

    #[test]
    fn prebuilt_engine_reuse_is_bitwise_identical() {
        // One engine serving many load patterns must reproduce the
        // one-shot path exactly (factors and sweep order are shared).
        let s = stack(0.05);
        let mut engine = Rb3dEngine::build(&s, 1).unwrap();
        assert!(engine.geometry_matches(&s));
        let mut v = vec![0.0; engine.num_nodes()];
        for scale in [1.0, 0.5, 1.5] {
            let loads: Vec<f64> = s.loads().iter().map(|l| scale * l).collect();
            let mut scaled = s.clone();
            scaled.set_loads(loads.clone()).unwrap();
            let one_shot = Rb3d::default()
                .solve_stack(&scaled, NetKind::Power)
                .unwrap();
            let rep = engine
                .solve(&loads, NetKind::Power, 1.0, 1e-7, 200_000, &mut v)
                .unwrap();
            assert_eq!(one_shot.voltages, v, "scale {scale}");
            assert_eq!(one_shot.report.iterations, rep.iterations);
        }
        // Geometry drift is detectable by the caller.
        let other = Stack3d::builder(6, 6, 2)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        assert!(!engine.geometry_matches(&other));
    }

    #[test]
    fn geometry_matches_covers_rail_and_resistances() {
        let base = |b: voltprop_grid::StackBuilder| b.uniform_load(1e-4).build().unwrap();
        let s = base(Stack3d::builder(8, 8, 3).pad_resistance(0.1));
        let engine = Rb3dEngine::build(&s, 1).unwrap();
        assert!(engine.geometry_matches(&s));
        // Every knob baked into the prefactored state must be compared:
        // rail, pad conductance, sheet resistances, TSV strength.
        for drifted in [
            base(Stack3d::builder(8, 8, 3).pad_resistance(0.1).vdd(1.0)),
            base(Stack3d::builder(8, 8, 3).pad_resistance(0.2)),
            base(Stack3d::builder(8, 8, 3)), // ideal pads
            base(
                Stack3d::builder(8, 8, 3)
                    .pad_resistance(0.1)
                    .tier_resistance(1, 0.04, 0.02),
            ),
            base(
                Stack3d::builder(8, 8, 3)
                    .pad_resistance(0.1)
                    .tsv_resistance(0.2),
            ),
        ] {
            assert!(!engine.geometry_matches(&drifted));
        }
    }

    #[test]
    fn companion_engine_matches_direct_companion_system() {
        // A companion-built engine with a per-node source must reproduce the
        // direct solve of the companion-stamped system G + alpha*diag(C).
        let s = Stack3d::builder(8, 8, 3)
            .tsv_resistance(0.05)
            .grid_capacitance(2e-12)
            .decap(0, 3, 3, 5e-11)
            .load_profile(
                voltprop_grid::LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 5e-4,
                },
                17,
            )
            .build()
            .unwrap();
        let alpha = 1.0 / 1e-11; // 1/h for backward Euler at h = 10 ps
        let nn = s.num_nodes();
        // Companion currents alpha*C*v_n from a made-up previous state.
        let source: Vec<f64> = (0..nn)
            .map(|i| alpha * s.capacitances().unwrap()[i] * (1.7 + 1e-3 * (i % 7) as f64))
            .collect();

        let sys = s.stamp_dynamic(NetKind::Power, alpha).unwrap();
        let mut rhs = sys.rhs().to_vec();
        for (r, sr) in rhs.iter_mut().zip(sys.restrict(&source)) {
            *r += sr;
        }
        let exact = sys.expand(&DirectCholesky::new().solve(sys.matrix(), &rhs).unwrap().x);

        let mut engine = Rb3dEngine::build_companion(&s, 1, alpha).unwrap();
        let mut v = vec![s.vdd(); nn];
        let rep = engine
            .solve_with_source(
                s.loads(),
                NetKind::Power,
                &source,
                1.0,
                1e-8,
                200_000,
                &mut v,
            )
            .unwrap();
        assert!(rep.converged);
        let err = residual::max_abs_error(&exact[..nn], &v);
        assert!(err < 5e-4, "max error {err}");

        // alpha = 0 degenerates to the static engine.
        let mut static_engine = Rb3dEngine::build_companion(&s, 1, 0.0).unwrap();
        let mut v0 = vec![0.0; nn];
        static_engine
            .solve(s.loads(), NetKind::Power, 1.0, 1e-7, 200_000, &mut v0)
            .unwrap();
        let plain = Rb3d::default().solve_stack(&s, NetKind::Power).unwrap();
        assert_eq!(plain.voltages, v0);
    }
}
