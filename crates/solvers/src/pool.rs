//! A persistent worker pool for the parallel row-sweep paths.
//!
//! The red-black schedules used to pay one `std::thread::scope` spawn per
//! solve — around 60 allocator calls plus thread start-up latency, which
//! dominated small-grid parallel solves. [`WorkerPool`] removes that cost:
//! worker threads are spawned **once** (lazily, on the first parallel
//! solve that needs them) and then park on a condition variable between
//! jobs. Dispatching a warm job is two mutex hand-offs and an `Arc`
//! refcount bump — **no heap allocation** — so a warm parallel solve is
//! allocation-free end to end, like the sequential path.
//!
//! # Job model
//!
//! A job is an [`Arc`] of a [`PoolJob`]: a `run(tid, scratch)` entry that
//! every participating thread executes with a distinct `tid`. The caller
//! of [`WorkerPool::run`] is thread 0 (the *leader*); pool worker `i`
//! runs as `tid = i + 1`. All cross-thread coordination inside a job
//! (phase barriers, reductions) is the job's own responsibility — the
//! pool only delivers the threads.
//!
//! # Scratch pinning
//!
//! Each worker owns a [`WorkerScratch`] that persists across jobs: the
//! substitution buffers grow to the largest engine a worker has ever
//! served and are reused verbatim afterwards, so cycling between engines
//! of different sizes performs no steady-state allocation and the pool's
//! footprint stays bounded by the largest tier it has seen
//! ([`WorkerPool::scratch_bytes`] reports it).
//!
//! # Concurrency and determinism
//!
//! Jobs are serialized: one job runs at a time, and concurrent
//! [`WorkerPool::run`] callers queue on an internal lock. A job always
//! receives exactly the `width` threads it asked for with stable `tid`s,
//! so any `tid`-based work partition (and therefore the engine's
//! bitwise thread-count determinism contract) is preserved. The global
//! pool ([`WorkerPool::global`]) is shared by every engine in the
//! process and never shuts down; locally constructed pools join their
//! workers on drop.
//!
//! A panic inside a job is caught on worker threads and re-raised on the
//! leader after the job drains, so the pool itself survives; note that a
//! panicking worker can leave the job's own barriers desynchronized (the
//! same hazard the scoped-spawn path had).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// Locks a mutex, recovering from poisoning: pool state and scratch are
/// plain reusable buffers that every job re-initializes, so a panicked
/// job must not brick the pool (the panic itself is re-raised separately).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Work executed by every thread of one [`WorkerPool::run`] dispatch.
///
/// `tid` ranges over `0..width` (0 is the dispatching caller); `scratch`
/// is the thread's pinned [`WorkerScratch`], reused across jobs.
pub trait PoolJob: Send + Sync {
    /// Runs this thread's share of the job.
    fn run(&self, tid: usize, scratch: &mut WorkerScratch);
}

/// Per-thread scratch pinned to a pool worker (or a scoped thread).
///
/// Buffers only ever grow (to the largest request seen), so warm jobs
/// never allocate and the footprint is bounded by the biggest engine the
/// thread has served.
#[derive(Debug, Default)]
pub struct WorkerScratch {
    /// Forward-substitution intermediates (`max_segment_len` entries for
    /// scalar sweeps, `max_segment_len * lanes` for batched sweeps).
    pub f: Vec<f64>,
    /// Per-lane active flags (batched sweeps).
    pub active: Vec<bool>,
    /// Per-lane max-|update| accumulators (batched sweeps).
    pub delta: Vec<f64>,
    /// Compact active-lane index list (batched sweeps).
    pub ids: Vec<u32>,
}

impl WorkerScratch {
    /// Grows the buffers to serve `f_len` substitution slots and `lanes`
    /// batch lanes (no-op — and allocation-free — when already large
    /// enough).
    pub fn ensure(&mut self, f_len: usize, lanes: usize) {
        if self.f.len() < f_len {
            self.f.resize(f_len, 0.0);
        }
        if self.active.len() < lanes {
            self.active.resize(lanes, false);
        }
        if self.delta.len() < lanes {
            self.delta.resize(lanes, 0.0);
        }
        if self.ids.len() < lanes {
            self.ids.resize(lanes, 0);
        }
    }

    /// Estimated heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.f.capacity() * size_of::<f64>()
            + self.active.capacity()
            + self.delta.capacity() * size_of::<f64>()
            + self.ids.capacity() * size_of::<u32>()
    }
}

/// Coordination state shared with the worker threads.
struct PoolState {
    /// Bumped once per dispatched job; workers pick up a job when the
    /// epoch moves past the last one they served.
    epoch: u64,
    /// Threads (including the leader) participating in the current job.
    width: usize,
    /// Workers still running the current job.
    remaining: usize,
    /// Workers whose `run` panicked during the current job.
    panicked: usize,
    /// The current job (present while `remaining > 0`).
    job: Option<Arc<dyn PoolJob>>,
    /// Set on drop: workers exit their loop.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch.
    work: Condvar,
    /// The leader waits here for `remaining == 0`.
    done: Condvar,
}

struct WorkerHandle {
    scratch: Arc<Mutex<WorkerScratch>>,
    handle: JoinHandle<()>,
}

/// A persistent pool of parked worker threads (see the [module
/// docs](self)).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<WorkerHandle>>,
    /// Serializes jobs and owns the leader's (tid 0) pinned scratch.
    lead: Mutex<WorkerScratch>,
    /// Jobs dispatched so far (telemetry for tests/benches).
    jobs: AtomicUsize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// An empty pool; workers are spawned lazily by [`WorkerPool::run`].
    pub fn new() -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    epoch: 0,
                    width: 0,
                    remaining: 0,
                    panicked: 0,
                    job: None,
                    shutdown: false,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
            lead: Mutex::new(WorkerScratch::default()),
            jobs: AtomicUsize::new(0),
        }
    }

    /// The process-wide pool shared by every engine. Never shuts down;
    /// its workers park between solves.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(WorkerPool::new)
    }

    /// Runs `job` on `width` threads (the caller is tid 0; `width - 1`
    /// pool workers join it) and blocks until every thread finished.
    /// Spawns missing workers on first use; a warm dispatch performs no
    /// heap allocation. Jobs serialize: concurrent callers queue.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic on the caller) any panic a worker thread hit
    /// inside `job.run`, after all threads drained.
    pub fn run(&self, width: usize, job: Arc<dyn PoolJob>) {
        assert!(width >= 1, "a job needs at least the leader thread");
        let mut lead_scratch = lock_recover(&self.lead);
        self.ensure_workers(width - 1);
        self.jobs.fetch_add(1, Ordering::Relaxed);
        if width > 1 {
            let mut st = lock_recover(&self.shared.state);
            st.epoch = st.epoch.wrapping_add(1);
            st.width = width;
            st.remaining = width - 1;
            st.panicked = 0;
            st.job = Some(job.clone());
            drop(st);
            self.shared.work.notify_all();
        }
        let leader_ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            job.run(0, &mut lead_scratch);
        }));
        let worker_panics = if width > 1 {
            let mut st = lock_recover(&self.shared.state);
            while st.remaining > 0 {
                st = self
                    .shared
                    .done
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            st.job = None;
            st.panicked
        } else {
            0
        };
        if let Err(payload) = leader_ok {
            std::panic::resume_unwind(payload);
        }
        assert!(
            worker_panics == 0,
            "{worker_panics} pool worker(s) panicked during a parallel solve"
        );
    }

    /// Worker threads spawned so far.
    pub fn workers_spawned(&self) -> usize {
        lock_recover(&self.workers).len()
    }

    /// Jobs dispatched so far.
    pub fn jobs_dispatched(&self) -> usize {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Total bytes pinned in worker (and leader) scratch buffers. Only
    /// meaningful while no job is running (it locks each scratch).
    pub fn scratch_bytes(&self) -> usize {
        // Take the leader scratch first and release it before touching
        // the worker list: `run` locks `lead` then `workers`, so holding
        // them in the opposite order here could deadlock against a
        // concurrent dispatch.
        let lead_bytes = lock_recover(&self.lead).memory_bytes();
        let workers = lock_recover(&self.workers);
        let worker_bytes: usize = workers
            .iter()
            .map(|w| lock_recover(&w.scratch).memory_bytes())
            .sum();
        lead_bytes + worker_bytes
    }

    fn ensure_workers(&self, n: usize) {
        let mut workers = lock_recover(&self.workers);
        while workers.len() < n {
            let index = workers.len();
            let scratch = Arc::new(Mutex::new(WorkerScratch::default()));
            let shared = Arc::clone(&self.shared);
            let worker_scratch = Arc::clone(&scratch);
            let handle = std::thread::Builder::new()
                .name(format!("voltprop-pool-{index}"))
                .spawn(move || worker_loop(&shared, index, &worker_scratch))
                .expect("spawn pool worker");
            workers.push(WorkerHandle { scratch, handle });
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_recover(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        let workers = std::mem::take(&mut *lock_recover(&self.workers));
        for w in workers {
            let _ = w.handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers_spawned", &self.workers_spawned())
            .field("jobs_dispatched", &self.jobs_dispatched())
            .finish()
    }
}

/// The parked-worker loop: wait for an epoch that includes this worker,
/// run the job, signal completion, park again.
fn worker_loop(shared: &PoolShared, index: usize, scratch: &Mutex<WorkerScratch>) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock_recover(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    // Only the first `width - 1` workers join this job;
                    // the rest record the epoch and keep waiting.
                    if index + 1 < st.width {
                        break;
                    }
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            st.job.clone().expect("job present while epoch active")
        };
        let ok = {
            let mut scratch = lock_recover(scratch);
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                job.run(index + 1, &mut scratch);
            }))
            .is_ok()
        };
        drop(job);
        let mut st = lock_recover(&shared.state);
        if !ok {
            st.panicked += 1;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Sums `tid * stamp` across threads (checks tids are distinct and
    /// complete).
    struct SumJob {
        width: usize,
        acc: AtomicU64,
    }

    impl PoolJob for SumJob {
        fn run(&self, tid: usize, scratch: &mut WorkerScratch) {
            assert!(tid < self.width);
            scratch.ensure(8, 2);
            self.acc.fetch_add(1 << tid, Ordering::Relaxed);
        }
    }

    #[test]
    fn run_delivers_every_tid_exactly_once() {
        let pool = WorkerPool::new();
        for width in [1usize, 2, 4, 3] {
            let job = Arc::new(SumJob {
                width,
                acc: AtomicU64::new(0),
            });
            pool.run(width, job.clone());
            assert_eq!(
                job.acc.load(Ordering::Relaxed),
                (1u64 << width) - 1,
                "width {width}"
            );
        }
        // Workers grow to the widest job and are reused afterwards.
        assert_eq!(pool.workers_spawned(), 3);
        assert_eq!(pool.jobs_dispatched(), 4);
    }

    #[test]
    fn scratch_is_pinned_and_bounded() {
        let pool = WorkerPool::new();
        let job = Arc::new(SumJob {
            width: 3,
            acc: AtomicU64::new(0),
        });
        pool.run(3, job.clone());
        let after_first = pool.scratch_bytes();
        assert!(after_first > 0);
        for _ in 0..10 {
            pool.run(3, job.clone());
        }
        assert_eq!(
            pool.scratch_bytes(),
            after_first,
            "warm jobs must not grow the pinned scratch"
        );
    }

    #[test]
    fn global_pool_is_shared() {
        let a = WorkerPool::global() as *const _;
        let b = WorkerPool::global() as *const _;
        assert_eq!(a, b);
    }

    struct PanicJob;

    impl PoolJob for PanicJob {
        fn run(&self, tid: usize, _scratch: &mut WorkerScratch) {
            if tid == 1 {
                panic!("worker boom");
            }
        }
    }

    #[test]
    fn worker_panic_is_reraised_and_pool_survives() {
        let pool = WorkerPool::new();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(2, Arc::new(PanicJob));
        }));
        assert!(res.is_err(), "worker panic must surface to the caller");
        // The pool still serves jobs afterwards.
        let job = Arc::new(SumJob {
            width: 2,
            acc: AtomicU64::new(0),
        });
        pool.run(2, job.clone());
        assert_eq!(job.acc.load(Ordering::Relaxed), 0b11);
    }
}
