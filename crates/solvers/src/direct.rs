use crate::{LinearSolver, Solution, SolveReport, SolverError};
use voltprop_sparse::{Cholesky, CsrMatrix};

/// The direct ("SPICE") solver: one sparse Cholesky factorization.
///
/// DC analysis of a linear resistive network in SPICE is exactly this
/// factorization; its memory grows with the Cholesky fill, which is what
/// makes the paper's SPICE column run out of memory past 230 K nodes.
///
/// # Example
///
/// ```
/// use voltprop_solvers::{DirectCholesky, LinearSolver};
/// use voltprop_sparse::TripletMatrix;
///
/// # fn main() -> Result<(), voltprop_solvers::SolverError> {
/// let mut t = TripletMatrix::new(2, 2);
/// t.stamp_conductance(0, 1, 1.0);
/// t.stamp_to_ground(0, 1.0);
/// t.stamp_to_ground(1, 1.0);
/// let sol = DirectCholesky::new().solve(&t.to_csr(), &[1.0, 0.0])?;
/// assert!(sol.report.converged);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectCholesky {
    _private: (),
}

impl DirectCholesky {
    /// Creates the solver (no tuning knobs: orderings are handled by the
    /// factorization).
    pub fn new() -> Self {
        DirectCholesky { _private: () }
    }
}

impl LinearSolver for DirectCholesky {
    fn solve(&self, a: &CsrMatrix, b: &[f64]) -> Result<Solution, SolverError> {
        let factor = Cholesky::factor(a)?;
        let x = factor.solve(b);
        let residual = a.residual(&x, b);
        Ok(Solution {
            x,
            report: SolveReport {
                iterations: 1,
                residual,
                converged: true,
                workspace_bytes: factor.memory_bytes() + b.len() * 8,
            },
        })
    }

    fn name(&self) -> &'static str {
        "direct-cholesky"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StackSolver;
    use voltprop_grid::{NetKind, Stack3d};

    #[test]
    fn solves_stack_via_blanket_impl() {
        let stack = Stack3d::builder(6, 5, 3)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let sol = DirectCholesky::new()
            .solve_stack(&stack, NetKind::Power)
            .unwrap();
        assert_eq!(sol.voltages.len(), stack.num_nodes());
        assert!(sol.worst_drop(1.8) > 0.0);
        assert!(
            sol.worst_drop(1.8) < 0.5,
            "drop should be a fraction of VDD"
        );
        assert_eq!(DirectCholesky::new().solver_name(), "direct-cholesky");
    }

    #[test]
    fn reports_fill_memory() {
        let stack = Stack3d::builder(10, 10, 3)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let sol = DirectCholesky::new()
            .solve_stack(&stack, NetKind::Power)
            .unwrap();
        // Fill-in makes the factor strictly bigger than the matrix itself.
        let sys = stack.stamp(NetKind::Power).unwrap();
        assert!(sol.report.workspace_bytes > sys.matrix().memory_bytes());
    }

    #[test]
    fn singular_system_is_an_error() {
        use voltprop_sparse::TripletMatrix;
        let mut t = TripletMatrix::new(2, 2);
        t.stamp_conductance(0, 1, 1.0); // no path to ground
        let err = DirectCholesky::new().solve(&t.to_csr(), &[1.0, -1.0]);
        assert!(matches!(err, Err(SolverError::Sparse(_))));
    }
}
